"""Figures 7-16 — function plot and convergence plots.

* Fig. 7: the zoomed BF6 function plot;
* Figs. 8-12: RT-simulation convergence scatters (runs #3, #4, #5, #6, #10
  of Table V);
* Figs. 13-16: hardware-execution best/average convergence curves for the
  three FPGA functions with the paper's seeds, plus the headline
  "found within N generations / evaluated x% of the space" arithmetic.
"""

from __future__ import annotations

from repro.analysis.convergence import (
    evaluations_to_best,
    first_hit_generation,
    fraction_of_space,
)
from repro.analysis.plots import best_avg_series, scatter_series
from repro.core.batch import run_batched
from repro.core.behavioral import BehavioralGA
from repro.core.system import GASystem
from repro.experiments.config import TABLE5_RUNS, fpga_params
from repro.fitness.functions import by_name

#: Table V run numbers behind Figs. 8-12, in figure order.
RT_FIGURES: list[tuple[str, int]] = [
    ("Fig. 8", 3),
    ("Fig. 9", 4),
    ("Fig. 10", 5),
    ("Fig. 11", 6),
    ("Fig. 12", 10),
]

#: Figs. 13-16 configurations: (figure, function, seed, pop, xover thr).
HW_FIGURES: list[tuple[str, str, int, int, int]] = [
    ("Fig. 13", "mBF6_2", 0x061F, 64, 10),
    ("Fig. 14", "mBF6_2", 0xA0A0, 64, 10),
    ("Fig. 15", "mBF7_2", 0xAAAA, 64, 12),
    ("Fig. 16", "mShubert2D", 0xAAAA, 64, 10),
]

#: Paper claims for the HW figures: best found within N generations.
PAPER_FOUND_WITHIN = {"Fig. 13": 10, "Fig. 14": 10, "Fig. 15": 18, "Fig. 16": 12}


def run_fig7(lo: int = 0, hi: int = 300) -> dict:
    """Fig. 7: the (zoomed) BF6 function plot.

    The paper plots the real-valued function (the zoom spans 3199.97 to
    3200.03, well below the integer fitness quantum), so this series is
    computed in floating point; the 16-bit fitness the FEM serves is the
    floor of these values.
    """
    import numpy as np

    xs = np.arange(lo, hi + 1, dtype=np.float64)
    ys = (xs * xs + xs) * np.cos(xs) / 4_000_000.0 + 3200.0
    return {
        "id": "Fig. 7",
        "x": xs.tolist(),
        "y": ys.tolist(),
        "n_local_maxima": int(((ys[1:-1] > ys[:-2]) & (ys[1:-1] > ys[2:])).sum()),
    }


def run_rt_convergence_figures(cycle_accurate: bool = False) -> dict:
    """Figs. 8-12: per-generation population scatter for five Table V runs.

    The behavioural path runs all five configurations as one batched sweep
    (:func:`repro.core.batch.run_batched`, with per-member fitness recording
    for the scatter data), bit-identical to the per-run loop."""
    by_run = {run.run: run for run in TABLE5_RUNS}
    selected = [by_run[run_no] for _fig_id, run_no in RT_FIGURES]
    if cycle_accurate:
        results = [GASystem(run.params(), by_name(run.function)).run() for run in selected]
    else:
        jobs = [(run.params(), by_name(run.function)) for run in selected]
        results = run_batched(jobs, record_members=True)
    figures = {}
    for (fig_id, run_no), run, result in zip(RT_FIGURES, selected, results):
        figures[fig_id] = {
            "run": run_no,
            "function": run.function,
            "scatter": scatter_series(result.history),
            "best": result.best_fitness,
        }
    return {"id": "Figs. 8-12", "figures": figures}


def run_hw_convergence_figures(cycle_accurate: bool = True) -> dict:
    """Figs. 13-16: best/average fitness per generation from the hardware
    (cycle-accurate) model, with the solution-space-coverage arithmetic."""
    figures = {}
    for fig_id, fn_name, seed, pop, xt in HW_FIGURES:
        fn = by_name(fn_name)
        params = fpga_params(pop, xt, seed)
        if cycle_accurate:
            result = GASystem(params, fn).run()
        else:
            result = BehavioralGA(params, fn).run()
        gens, best, avg = best_avg_series(result.history)
        found = first_hit_generation(result.history)
        figures[fig_id] = {
            "function": fn_name,
            "seed": f"{seed:04X}",
            "generations": gens,
            "best": best,
            "average": avg,
            "best_fitness": result.best_fitness,
            "found_generation": found,
            "paper_found_within": PAPER_FOUND_WITHIN[fig_id],
            "evaluations_to_best": evaluations_to_best(result.history),
            "fraction_of_space": fraction_of_space(result.history),
        }
    return {"id": "Figs. 13-16", "figures": figures}
