"""Table I — prior FPGA GA engines vs. the proposed core, live.

Regenerates the feature matrix with a measured best-BF6-fitness column at a
fixed evaluation budget, and benchmarks the sweep.
"""

import pytest

from conftest import print_table
from repro.experiments.table1 import run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_feature_matrix_with_shootout(benchmark):
    report = benchmark.pedantic(
        run_table1, kwargs={"evaluation_budget": 2048}, rounds=1, iterations=1
    )
    keys = ["work", "elitist", "pop_size", "selection", "rng", "best_fitness@budget"]
    print_table(f"Table I ({report['fitness']}, budget {report['budget']} evals)",
                report["rows"], keys)
    # The elitist, programmable proposed core should at least match the
    # rigid baselines on the hard multimodal function.
    measured = report["measured"]
    assert measured["Proposed"] >= max(
        v for k, v in measured.items() if k != "Proposed"
    ) * 0.97
