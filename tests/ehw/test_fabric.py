"""Tests for the virtual reconfigurable fabric and its fitness function."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.ehw.fabric import (
    CELL_FUNCTIONS,
    FabricFitness,
    TARGET_FUNCTIONS,
    VirtualFabric,
)

configs = st.integers(0, 0xFFFF)


class TestFabric:
    def test_cell_functions(self):
        assert CELL_FUNCTIONS[0](1, 1) == 1 and CELL_FUNCTIONS[0](1, 0) == 0
        assert CELL_FUNCTIONS[1](0, 1) == 1
        assert CELL_FUNCTIONS[2](1, 1) == 0
        assert CELL_FUNCTIONS[3](1, 1) == 0 and CELL_FUNCTIONS[3](0, 0) == 1

    @given(configs)
    def test_output_is_boolean(self, config):
        fab = VirtualFabric()
        for combo in range(16):
            bits = tuple((combo >> k) & 1 for k in range(4))
            assert fab.evaluate(config, bits) in (0, 1)

    @given(configs)
    def test_truth_table_16_bits(self, config):
        assert 0 <= VirtualFabric().truth_table(config) <= 0xFFFF

    def test_fault_injection_forces_output(self):
        fab = VirtualFabric()
        fab.inject_fault(3, 1)  # output cell stuck high
        assert fab.truth_table(0x0000) == 0xFFFF
        fab.inject_fault(3, 0)
        assert fab.truth_table(0x0000) == 0x0000

    def test_heal_all(self):
        fab = VirtualFabric()
        before = fab.truth_table(0x1234)
        fab.inject_fault(0, 1)
        fab.heal_all()
        assert fab.truth_table(0x1234) == before

    def test_bad_cell_rejected(self):
        with pytest.raises(ValueError):
            VirtualFabric().inject_fault(4, 0)

    @settings(max_examples=25)
    @given(configs)
    def test_vectorised_matches_scalar(self, config):
        fab = VirtualFabric()
        fit = FabricFitness("parity4", fab)
        vec = fit._tables_vectorised(np.asarray([config]))
        assert int(vec[0]) == fab.truth_table(config)

    @given(configs)
    def test_vectorised_matches_scalar_with_fault(self, config):
        fab = VirtualFabric()
        fab.inject_fault(1, 0)
        fit = FabricFitness("majority", fab)
        vec = fit._tables_vectorised(np.asarray([config]))
        assert int(vec[0]) == fab.truth_table(config)


class TestFabricFitness:
    def test_perfect_score_is_65520(self):
        assert FabricFitness("parity4").perfect_score == 16 * 4095

    def test_targets_defined(self):
        assert set(TARGET_FUNCTIONS) == {
            "parity4", "majority", "mux2", "and4", "xor2and",
        }
        for table in TARGET_FUNCTIONS.values():
            assert 0 <= table <= 0xFFFF

    def test_numeric_target(self):
        fit = FabricFitness(0xBEEF)
        assert fit.target_table == 0xBEEF

    def test_parity_is_evolvable_to_perfection(self):
        # XOR cells in two levels can realise 4-input parity exactly.
        fit = FabricFitness("parity4")
        assert int(fit.table().max()) == fit.perfect_score

    def test_fitness_counts_matching_rows(self):
        fit = FabricFitness("and4")
        fab = fit.fabric
        config = 0
        table = fab.truth_table(config)
        matches = 16 - bin(table ^ fit.target_table).count("1")
        assert fit(config) == matches * 4095

    def test_ga_evolves_parity_to_perfection(self):
        # The EHW landscape is rugged (config bits are categorical mux
        # selectors), so it needs the larger preset-style settings: pop 64,
        # 128 generations, mutation 4/16.
        params = GAParameters(128, 64, 10, 4, 10593)
        fit = FabricFitness("parity4")
        result = BehavioralGA(params, fit).run()
        assert result.best_fitness == fit.perfect_score

    def test_fault_recovery_scenario(self):
        # Evolve, break a cell, confirm degradation, re-evolve around it
        # (the evolutionary-recovery experiment of Stoica et al. [27]).
        # This fabric can realise at best 14/16 rows of majority healthy
        # and 13/16 with cell 0 stuck high.
        fab = VirtualFabric()
        fit = FabricFitness("majority", fab)
        params = GAParameters(128, 64, 10, 4, 45890)
        healthy = BehavioralGA(params, fit).run()
        assert healthy.best_fitness == 14 * 4095

        fab.inject_fault(0, 1)
        fit.invalidate()
        degraded = fit(healthy.best_individual)

        recovered = BehavioralGA(params.with_(rng_seed=10593), fit).run()
        assert recovered.best_fitness >= degraded
        assert recovered.best_fitness == 13 * 4095

    def test_invalidate_refreshes_table(self):
        fab = VirtualFabric()
        fit = FabricFitness("and4", fab)
        before = fit.table().copy()
        fab.inject_fault(3, 0)
        fit.invalidate()
        after = fit.table()
        assert not np.array_equal(before, after)
