"""Scaling to 32-bit chromosomes with two 16-bit cores (Sec. III-D, Fig. 6).

The paper shows how two instances of the 16-bit GA core support 32-bit
chromosomes without re-synthesis:

* each core has its own RNG; the initial 32-bit individuals are the
  concatenation of the two cores' 16-bit random words;
* only GA_Core1 (the MSB core) performs real parent selection — the
  ``scalingLogic_parSel`` block starves GA_Core2's scan with zero fitness
  until Core1 has chosen, forcing both cores onto the *same* parent index;
* crossover and mutation run independently per core, so the composite
  operator is an up-to-3-point crossover and up-to-2-bit mutation with

  ``prob32 = prob16_msb + prob16_lsb - prob16_msb * prob16_lsb``;

* fitness is evaluated on the concatenated 32-bit candidate and stored/
  accumulated only by Core1.

:class:`DualCoreGA32` is the algorithm-level model of that composition,
consuming two independent RNG streams on the same schedule the two FSMs
would (Core2 draws and discards its selection thresholds, exactly like the
starved hardware scan).  :func:`compose_rate` and
:func:`split_rate` implement the paper's probability equations.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import CellularAutomatonPRNG


def compose_rate(rate_msb: float, rate_lsb: float) -> float:
    """The paper's probability composition for independent per-core
    operators: ``p32 = p1 + p2 - p1*p2``."""
    return rate_msb + rate_lsb - rate_msb * rate_lsb


def split_rate(rate32: float) -> float:
    """Equal per-core rate achieving a desired composite rate:
    ``p16 = 1 - sqrt(1 - p32)`` (inverse of :func:`compose_rate` with
    ``p1 == p2``)."""
    if not 0.0 <= rate32 <= 1.0:
        raise ValueError(f"rate must be a probability, got {rate32}")
    return 1.0 - (1.0 - rate32) ** 0.5


def onemax32(chromosome: int) -> int:
    """32-bit OneMax scaled into the 16-bit fit_value range."""
    return bin(chromosome & 0xFFFFFFFF).count("1") * 2047


def plateau32(chromosome: int) -> int:
    """A needle-in-a-haystack style objective: rewards matching a 32-bit
    pattern nibble by nibble (used to exercise the 3-point crossover)."""
    target = 0xDEADBEEF
    score = 0
    for shift in range(0, 32, 4):
        if ((chromosome >> shift) & 0xF) == ((target >> shift) & 0xF):
            score += 1
    return score * 8191


class DualCoreGA32:
    """Two 16-bit GA engines composed into a 32-bit optimizer (Fig. 6)."""

    def __init__(
        self,
        params: GAParameters,
        fitness32: Callable[[int], int],
        rng_msb: RandomSource | None = None,
        rng_lsb: RandomSource | None = None,
        seed_lsb: int | None = None,
        record_members: bool = False,
    ):
        self.params = params
        self.fitness32 = fitness32
        self.rng1 = rng_msb or CellularAutomatonPRNG(params.rng_seed)
        lsb_seed = seed_lsb if seed_lsb is not None else (params.rng_seed ^ 0x5A5A) or 1
        self.rng2 = rng_lsb or CellularAutomatonPRNG(lsb_seed)
        self.record_members = record_members
        self.history: list[GenerationStats] = []
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _select_index(self, cum: np.ndarray, total: int) -> int:
        """Core1's proportionate selection; Core2 draws its threshold too
        (the starved scan) but the result is forced to Core1's index."""
        threshold = (self.rng1.next_word() * total) >> 16
        self.rng2.next_word()  # Core2's discarded threshold draw
        index = int(np.searchsorted(cum, threshold, side="right"))
        return min(index, len(cum) - 1)

    def _half_crossover(self, rng: RandomSource, a: int, b: int) -> tuple[int, int]:
        """One core's independent single-point crossover on a 16-bit half."""
        if (rng.next_word() & 0xF) < self.params.crossover_threshold:
            cut = rng.next_word() & 0xF
            mask = (1 << cut) - 1
            inv = ~mask & 0xFFFF
            return (a & mask) | (b & inv), (b & mask) | (a & inv)
        return a, b

    def _half_mutate(self, rng: RandomSource, half: int) -> int:
        if (rng.next_word() & 0xF) < self.params.mutation_threshold:
            return half ^ (1 << (rng.next_word() & 0xF))
        return half

    def _crossover32(self, p1: int, p2: int) -> tuple[int, int]:
        m1, l1 = (p1 >> 16) & 0xFFFF, p1 & 0xFFFF
        m2, l2 = (p2 >> 16) & 0xFFFF, p2 & 0xFFFF
        om1, om2 = self._half_crossover(self.rng1, m1, m2)
        ol1, ol2 = self._half_crossover(self.rng2, l1, l2)
        return (om1 << 16) | ol1, (om2 << 16) | ol2

    def _mutate32(self, ind: int) -> int:
        msb = self._half_mutate(self.rng1, (ind >> 16) & 0xFFFF)
        lsb = self._half_mutate(self.rng2, ind & 0xFFFF)
        return (msb << 16) | lsb

    def _record(self, generation: int, inds: list[int], fits: list[int]) -> None:
        arr = np.asarray(fits)
        best_idx = int(arr.argmax())
        self.history.append(
            GenerationStats(
                generation=generation,
                best_fitness=int(arr[best_idx]),
                best_individual=inds[best_idx],
                fitness_sum=int(arr.sum()),
                population_size=len(inds),
                fitnesses=list(fits) if self.record_members else [],
            )
        )

    # ------------------------------------------------------------------
    def run(self):
        """Run the composed 32-bit optimization; returns a
        :class:`repro.core.system.GAResult` (individuals are 32-bit)."""
        from repro.core.system import GAResult

        pop = self.params.population_size
        fn = self.fitness32
        self.history = []
        self.evaluations = 0

        inds = [
            ((self.rng1.next_word() << 16) | self.rng2.next_word())
            for _ in range(pop)
        ]
        fits = [fn(ind) for ind in inds]
        self.evaluations += pop
        best_idx = int(np.argmax(fits))
        best_ind, best_fit = inds[best_idx], fits[best_idx]
        self._record(0, inds, fits)

        for gen in range(1, self.params.n_generations + 1):
            cum = np.cumsum(fits)
            total = int(cum[-1])
            new_inds, new_fits = [best_ind], [best_fit]  # elitism via Core1
            while len(new_inds) < pop:
                p1 = inds[self._select_index(cum, total)]
                p2 = inds[self._select_index(cum, total)]
                o1, o2 = self._crossover32(p1, p2)
                o1 = self._mutate32(o1)
                f1 = fn(o1)
                new_inds.append(o1)
                new_fits.append(f1)
                self.evaluations += 1
                if f1 > best_fit:
                    best_ind, best_fit = o1, f1
                if len(new_inds) < pop:
                    o2 = self._mutate32(o2)
                    f2 = fn(o2)
                    new_inds.append(o2)
                    new_fits.append(f2)
                    self.evaluations += 1
                    if f2 > best_fit:
                        best_ind, best_fit = o2, f2
            inds, fits = new_inds, new_fits
            self._record(gen, inds, fits)

        return GAResult(
            best_individual=best_ind,
            best_fitness=best_fit,
            history=self.history,
            evaluations=self.evaluations,
            params=self.params,
            fitness_name=getattr(fn, "__name__", "fitness32"),
            cycles=None,
        )
