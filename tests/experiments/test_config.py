"""Tests for the experiment configuration data."""

from repro.experiments.config import (
    FPGA_GRID,
    FPGA_SEEDS,
    PAPER_TABLE7,
    PAPER_TABLE8,
    PAPER_TABLE9,
    TABLE5_RUNS,
    fpga_params,
)


class TestTable5Config:
    def test_ten_runs(self):
        assert [r.run for r in TABLE5_RUNS] == list(range(1, 11))

    def test_functions_partition(self):
        fns = [r.function for r in TABLE5_RUNS]
        assert fns == ["BF6"] * 5 + ["F2"] * 4 + ["F3"]

    def test_all_seeds_from_preset_set(self):
        # Table V uses the three in-built seeds only.
        assert {r.seed for r in TABLE5_RUNS} == {45890, 10593, 1567}

    def test_params_fixed_fields(self):
        for run in TABLE5_RUNS:
            p = run.params()
            assert p.n_generations == 32
            assert p.mutation_threshold == 1
            assert p.population_size in (32, 64)
            assert p.crossover_threshold in (10, 12)


class TestFPGAConfig:
    def test_six_seeds_match_paper(self):
        assert FPGA_SEEDS == [0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0, 0xFFFF]

    def test_grid_is_2x2(self):
        assert FPGA_GRID == [(32, 10), (32, 12), (64, 10), (64, 12)]

    def test_fpga_params(self):
        p = fpga_params(64, 12, 0xA0A0)
        assert p.n_generations == 64
        assert p.mutation_threshold == 1

    def test_paper_tables_complete(self):
        for table in (PAPER_TABLE7, PAPER_TABLE8, PAPER_TABLE9):
            assert set(table) == set(FPGA_SEEDS)
            assert all(len(vals) == 4 for vals in table.values())

    def test_paper_table9_values_are_65535_minus_174k(self):
        for vals in PAPER_TABLE9.values():
            for v in vals:
                assert (65535 - v) % 174 == 0

    def test_paper_best_table7_is_8135(self):
        # Sec. IV-B: "the best solution found ... evaluates to a fitness of
        # 8135" — the max over Table VII's cells.
        assert max(max(v) for v in PAPER_TABLE7.values()) == 8135
