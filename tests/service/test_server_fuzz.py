"""Protocol-robustness fuzzing of the TCP front end.

The JSON-lines framing faces untrusted peers, so it must shrug off
anything a byte stream can throw at it: garbage bytes, truncated frames,
oversized lines, half-closed sockets, non-object JSON.  Every rejection
is a typed error frame (or a silent close for empty input), the
connection handler never takes the server down, and the service answers
the next well-formed request as if nothing happened.
"""

import json
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import GAService, ServiceTCPServer
from repro.service.server import MAX_LINE_BYTES, call


@pytest.fixture(scope="module")
def fuzz_server():
    service = GAService(workers=1, mode="thread").start()
    server = ServiceTCPServer(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.endpoint
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.shutdown()


def raw_exchange(endpoint, payload: bytes, shutdown_write: bool = True) -> bytes:
    with socket.create_connection(endpoint, timeout=10) as sock:
        sock.sendall(payload)
        if shutdown_write:
            sock.shutdown(socket.SHUT_WR)  # half-close: EOF on the server
        sock.settimeout(10)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def error_kind(raw: bytes) -> str | None:
    if not raw:
        return None
    frame = json.loads(raw)
    assert frame["ok"] is False
    return frame["error"]["kind"]


class TestFraming:
    def test_empty_connection_closes_silently(self, fuzz_server):
        assert raw_exchange(fuzz_server, b"") == b""
        assert raw_exchange(fuzz_server, b"\n") == b""
        assert raw_exchange(fuzz_server, b"   \n") == b""

    def test_garbage_bytes_get_malformed_json(self, fuzz_server):
        assert error_kind(raw_exchange(fuzz_server, b"\x00\xff garbage\n")) == (
            "MalformedJSON"
        )

    def test_half_closed_truncated_frame(self, fuzz_server):
        # valid JSON but no newline before EOF: the framing is broken,
        # not the JSON
        raw = raw_exchange(fuzz_server, b'{"op": "ping"}')
        assert error_kind(raw) == "TruncatedFrame"

    def test_oversized_line_is_rejected_not_buffered(self, fuzz_server):
        blob = b'{"op": "ping", "pad": "' + b"x" * MAX_LINE_BYTES + b'"}\n'
        assert error_kind(raw_exchange(fuzz_server, blob)) == "LineTooLong"

    def test_non_object_json_frame(self, fuzz_server):
        assert error_kind(raw_exchange(fuzz_server, b"[1, 2, 3]\n")) == (
            "BadRequest"
        )
        assert error_kind(raw_exchange(fuzz_server, b'"ping"\n')) == (
            "BadRequest"
        )

    def test_submit_without_job_is_bad_request(self, fuzz_server):
        assert error_kind(raw_exchange(fuzz_server, b'{"op": "submit"}\n')) == (
            "BadRequest"
        )

    def test_error_frames_carry_detail(self, fuzz_server):
        raw = raw_exchange(fuzz_server, b"not json\n")
        frame = json.loads(raw)
        assert isinstance(frame["error"]["detail"], str)
        assert frame["error"]["detail"]


class TestFuzz:
    @settings(max_examples=40, deadline=None)
    @given(payload=st.binary(min_size=1, max_size=512))
    def test_arbitrary_bytes_never_crash_the_handler(self, fuzz_server, payload):
        raw = raw_exchange(fuzz_server, payload + b"\n")
        if raw:
            frame = json.loads(raw)  # whatever comes back is one JSON line
            assert isinstance(frame, dict) and "ok" in frame

    @settings(max_examples=25, deadline=None)
    @given(
        message=st.dictionaries(
            st.text(max_size=8),
            st.one_of(
                st.none(), st.booleans(), st.integers(), st.text(max_size=16)
            ),
            max_size=4,
        )
    )
    def test_arbitrary_json_objects_get_a_reply(self, fuzz_server, message):
        blob = json.dumps(message).encode() + b"\n"
        raw = raw_exchange(fuzz_server, blob)
        assert raw, "a JSON object frame always gets a response line"
        frame = json.loads(raw)
        assert "ok" in frame

    def test_server_still_healthy_after_fuzzing(self, fuzz_server):
        host, port = fuzz_server
        assert call(host, port, {"op": "ping"}) == {"ok": True, "op": "ping"}
        assert call(host, port, {"op": "metrics"})["ok"]
