"""VCD (Value Change Dump) waveform recording.

The debugging artefact every hardware flow ships: hook a
:class:`VCDRecorder` onto the simulation kernel and get an IEEE-1364 VCD
file of the selected signals, loadable in GTKWave — the reproduction's
stand-in for the paper's ModelSim/Chipscope waveform views (Sec. IV-B).
"""

from __future__ import annotations

import io
from typing import Sequence

from repro.hdl.signal import Signal
from repro.hdl.simulator import Simulator

#: Printable VCD identifier characters.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(chars)


class VCDRecorder:
    """Records signal value changes during simulation.

    Attach with :meth:`attach`; every tick after commit, changed signals are
    recorded.  :meth:`dump` serialises the VCD text.
    """

    def __init__(
        self,
        signals: Sequence[Signal],
        timescale: str = "20 ns",  # one tick of the 50 MHz GA clock
        module: str = "ga_core",
    ):
        if not signals:
            raise ValueError("need at least one signal to record")
        names = [s.name for s in signals]
        if len(set(names)) != len(names):
            raise ValueError("duplicate signal names in VCD selection")
        self.signals = list(signals)
        self.timescale = timescale
        self.module = module
        self.ids = {s.name: _identifier(i) for i, s in enumerate(self.signals)}
        self._last: dict[str, int | None] = {s.name: None for s in self.signals}
        self.changes: list[tuple[int, str, int, int]] = []  # (t, name, value, width)
        self.ticks = 0

    # ------------------------------------------------------------------
    def attach(self, simulator: Simulator) -> "VCDRecorder":
        simulator.probe(self._on_tick)
        return self

    def _on_tick(self, tick: int) -> None:
        self.ticks = tick
        for sig in self.signals:
            value = sig.value
            if self._last[sig.name] != value:
                self._last[sig.name] = value
                self.changes.append((tick, sig.name, value, sig.width))

    # ------------------------------------------------------------------
    def dump(self) -> str:
        """The VCD file contents."""
        out = io.StringIO()
        out.write("$date reproduced-ga-core $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write(f"$scope module {self.module} $end\n")
        for sig in self.signals:
            safe = sig.name.replace(" ", "_")
            out.write(
                f"$var wire {sig.width} {self.ids[sig.name]} {safe} $end\n"
            )
        out.write("$upscope $end\n$enddefinitions $end\n")
        out.write("$dumpvars\n")
        # initial values: first change per signal or 0
        seen: set[str] = set()
        current_time: int | None = None
        for tick, name, value, width in self.changes:
            if current_time != tick:
                out.write(f"#{tick}\n")
                current_time = tick
            ident = self.ids[name]
            if width == 1:
                out.write(f"{value}{ident}\n")
            else:
                out.write(f"b{value:b} {ident}\n")
            seen.add(name)
        out.write(f"#{self.ticks + 1}\n")
        return out.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.dump())
