"""Tests for the 32-bit dual-core construction (Fig. 6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import GAParameters
from repro.core.scaling import (
    DualCoreGA32,
    compose_rate,
    onemax32,
    plateau32,
    split_rate,
)


def params(**overrides):
    base = dict(
        n_generations=20,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestProbabilityComposition:
    @given(st.floats(0, 1), st.floats(0, 1))
    def test_compose_formula(self, p1, p2):
        # The paper's equation: p32 = p1 + p2 - p1*p2.
        p32 = compose_rate(p1, p2)
        assert p32 == pytest.approx(p1 + p2 - p1 * p2)
        assert 0.0 <= p32 <= 1.0 + 1e-12

    @given(st.floats(0, 1))
    def test_split_inverts_compose(self, p32):
        p16 = split_rate(p32)
        assert compose_rate(p16, p16) == pytest.approx(p32, abs=1e-9)

    def test_compose_exceeds_either_rate(self):
        # Independent per-core operators make the composite operator *more*
        # likely — the reason the paper advises lower per-core rates.
        assert compose_rate(0.625, 0.625) == pytest.approx(0.859375)

    def test_split_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            split_rate(1.5)


class TestFitness32:
    def test_onemax32_range(self):
        assert onemax32(0) == 0
        assert onemax32(0xFFFFFFFF) == 32 * 2047
        assert onemax32(0xFFFFFFFF) <= 0xFFFF

    def test_plateau32_optimum(self):
        assert plateau32(0xDEADBEEF) == 8 * 8191
        assert plateau32(0) < plateau32(0xDEADBEEF)


class TestDualCoreGA32:
    def test_runs_and_returns_32bit_best(self):
        result = DualCoreGA32(params(), onemax32).run()
        assert 0 <= result.best_individual < (1 << 32)
        assert result.best_fitness == onemax32(result.best_individual)

    def test_elitism_monotone(self):
        result = DualCoreGA32(params(), onemax32).run()
        series = result.best_series()
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_improves_over_random_init(self):
        result = DualCoreGA32(params(n_generations=30, population_size=32), onemax32).run()
        assert result.best_fitness > result.history[0].best_fitness

    def test_deterministic(self):
        a = DualCoreGA32(params(), onemax32).run()
        b = DualCoreGA32(params(), onemax32).run()
        assert a.best_individual == b.best_individual

    def test_two_rng_streams_are_independent(self):
        ga = DualCoreGA32(params(), onemax32)
        assert ga.rng1.seed != ga.rng2.seed

    def test_explicit_lsb_seed(self):
        ga = DualCoreGA32(params(), onemax32, seed_lsb=0x1234)
        assert ga.rng2.seed == 0x1234

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(1, 0xFFFF))
    def test_evaluation_count(self, seed):
        # pop + G*(pop-1): the elite carries its stored fitness.
        p = params(rng_seed=seed, n_generations=5, population_size=8)
        result = DualCoreGA32(p, onemax32).run()
        assert result.evaluations == 8 + 5 * 7

    def test_effective_three_point_crossover_mixes_halves(self):
        # With crossover certain and no mutation, offspring halves must each
        # be a crossover of the corresponding parent halves; run one pair
        # manually and check bit provenance.
        p = params(crossover_threshold=15, mutation_threshold=0)
        ga = DualCoreGA32(p, onemax32)
        p1, p2 = 0xAAAA5555, 0x5555AAAA
        o1, o2 = ga._crossover32(p1, p2)
        for shift in range(32):
            parents = {(p1 >> shift) & 1, (p2 >> shift) & 1}
            offspring = {(o1 >> shift) & 1, (o2 >> shift) & 1}
            assert offspring == parents

    def test_plateau_objective_progress(self):
        p = params(n_generations=40, population_size=32, mutation_threshold=4)
        result = DualCoreGA32(p, plateau32).run()
        assert result.best_fitness >= 4 * 8191  # at least half the nibbles
