"""Clocked storage elements for the cycle-accurate kernel.

These are behavioural models; the gate-level equivalents (``DFF`` /
``SCAN_REGISTER``) live in :mod:`repro.hdl.gates`.
"""

from __future__ import annotations

from repro.hdl.component import Component
from repro.hdl.signal import Signal


class Register(Component):
    """A D register with enable: ``q <= d when en else q``."""

    def __init__(self, name: str, d: Signal, q: Signal, en: Signal | None = None):
        super().__init__(name)
        if d.width != q.width:
            raise ValueError(f"register {name!r}: d width {d.width} != q width {q.width}")
        self.d = d
        self.q = q
        self.en = en

    def clock(self) -> None:
        if self.en is None or self.en.value:
            self.drive(self.q, self.d.value)

    def reset(self) -> None:
        super().reset()
        self.q.reset()


class Counter(Component):
    """An up-counter with synchronous clear and enable.

    Drives ``q`` with the current count; wraps at the signal width, like the
    32-bit cycle counter used for the paper's hardware runtime measurement.
    """

    def __init__(
        self,
        name: str,
        q: Signal,
        en: Signal | None = None,
        clear: Signal | None = None,
    ):
        super().__init__(name)
        self.q = q
        self.en = en
        self.clear = clear

    def clock(self) -> None:
        if self.clear is not None and self.clear.value:
            self.drive(self.q, 0)
        elif self.en is None or self.en.value:
            self.drive(self.q, self.q.value + 1)

    def reset(self) -> None:
        super().reset()
        self.q.reset()
