"""Table V — RT-level simulation results for BF6/F2/F3.

Runs the paper's ten configurations on the *cycle-accurate* model (this is
the RT-simulation level of the paper's flow) and reports, per run: best
fitness, the generation where the best first appeared, and the Table V
convergence generation, next to the paper's values.
"""

from __future__ import annotations

from repro.analysis.convergence import convergence_generation, first_hit_generation
from repro.core.behavioral import BehavioralGA
from repro.core.system import GASystem
from repro.experiments.config import TABLE5_RUNS, Table5Run
from repro.fitness.functions import by_name


def run_one(run: Table5Run, cycle_accurate: bool = True):
    """Execute one Table V row; returns (GAResult, report row)."""
    fn = by_name(run.function)
    params = run.params()
    if cycle_accurate:
        result = GASystem(params, fn).run()
    else:
        result = BehavioralGA(params, fn).run()
    optimum = fn.table().max()
    row = {
        "run": run.run,
        "function": run.function,
        "seed": run.seed,
        "pop": run.population,
        "xover_thr": run.crossover_threshold,
        "paper_best": run.paper_best,
        "best": result.best_fitness,
        "optimum": int(optimum),
        "gap%": round(100 * (int(optimum) - result.best_fitness) / int(optimum), 2),
        "paper_conv": run.paper_convergence,
        "found_gen": first_hit_generation(result.history),
        "conv_gen": convergence_generation(result.history),
    }
    return result, row


def run_table5(cycle_accurate: bool = True) -> dict:
    """Regenerate all ten rows of Table V."""
    rows = []
    results = {}
    for run in TABLE5_RUNS:
        result, row = run_one(run, cycle_accurate=cycle_accurate)
        rows.append(row)
        results[run.run] = result
    return {
        "id": "Table V",
        "level": "RT (cycle-accurate)" if cycle_accurate else "behavioural",
        "rows": rows,
        "results": results,
    }
