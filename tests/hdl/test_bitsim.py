"""Property tests: the packed engine is bit-identical to the scalar oracle.

Every public entry point of :mod:`repro.hdl.bitsim` is checked against the
corresponding scalar ``Netlist`` path on randomized netlists — random gate
graphs with flops (including genuine sequential feedback), optional scan
chains, and pattern counts deliberately not divisible by 64 so the tail
lanes are exercised.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import bitsim, rtlib
from repro.hdl.bitsim import (
    PackedStepper,
    compiled,
    pack_bits,
    packed_evaluate,
    simulate_many,
    tail_mask,
    unpack_bits,
)
from repro.hdl.faults import TestVector, _observe
from repro.hdl.gates import GateType
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.scan import (
    Stepper,
    insert_scan_chain,
    scan_dump,
    scan_dump_many,
    scan_load,
    scan_load_many,
)

TWO_INPUT = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]
ONE_INPUT = [GateType.NOT, GateType.BUF]
CONST = [GateType.CONST0, GateType.CONST1]


@st.composite
def random_netlists(draw):
    """A random netlist: gates in two phases around two flop batches, so
    flop outputs feed logic that feeds other flops (sequential feedback)."""
    nl = Netlist("rand")
    pool: list[int] = []
    for i in range(draw(st.integers(1, 3))):
        pool.extend(nl.add_input(f"in{i}", draw(st.integers(1, 8))))

    def grow(n_gates):
        for _ in range(n_gates):
            kind = draw(st.integers(0, 9))
            if kind < 6:
                gtype = TWO_INPUT[kind]
                a = pool[draw(st.integers(0, len(pool) - 1))]
                b = pool[draw(st.integers(0, len(pool) - 1))]
                pool.append(nl.add_gate(gtype, a, b))
            elif kind < 8:
                gtype = ONE_INPUT[kind - 6]
                a = pool[draw(st.integers(0, len(pool) - 1))]
                pool.append(nl.add_gate(gtype, a))
            else:
                pool.append(nl.add_gate(CONST[kind - 8]))

    grow(draw(st.integers(1, 12)))
    for _ in range(draw(st.integers(0, 4))):  # flop batch 1
        d = pool[draw(st.integers(0, len(pool) - 1))]
        pool.append(nl.add_dff(d, init=draw(st.integers(0, 1))))
    grow(draw(st.integers(1, 12)))
    for _ in range(draw(st.integers(0, 3))):  # flop batch 2: d may see batch-1 q
        d = pool[draw(st.integers(0, len(pool) - 1))]
        pool.append(nl.add_dff(d, init=draw(st.integers(0, 1))))

    for i in range(draw(st.integers(1, 2))):
        width = draw(st.integers(1, 4))
        nets = [pool[draw(st.integers(0, len(pool) - 1))] for _ in range(width)]
        nl.add_output(f"out{i}", nets)

    if nl.dffs and draw(st.booleans()):
        insert_scan_chain(nl)
    return nl


def _random_vectors(nl, count, rng):
    return [
        {name: int(rng.integers(0, 1 << len(nets)))
         for name, nets in nl.inputs.items()}
        for _ in range(count)
    ]


class TestPacking:
    @given(st.integers(1, 200), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_pack_unpack_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(3, n))
        assert np.array_equal(unpack_bits(pack_bits(bits), n), bits)

    def test_tail_mask_shapes(self):
        assert list(tail_mask(64)) == [bitsim.ALL_ONES]
        assert list(tail_mask(65)) == [bitsim.ALL_ONES, np.uint64(1)]
        assert list(tail_mask(3)) == [np.uint64(0b111)]


class TestCombinationalParity:
    # pattern counts straddle the 64-bit lane boundary on purpose
    @given(random_netlists(), st.integers(1, 130), st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_packed_evaluate_matches_scalar(self, nl, patterns, seed):
        rng = np.random.default_rng(seed)
        vectors = _random_vectors(nl, patterns, rng)
        assert packed_evaluate(nl, vectors) == [nl.evaluate(v) for v in vectors]

    @given(random_netlists(), st.integers(1, 70), st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_observe_packed_matches_scalar_observe(self, nl, patterns, seed):
        rng = np.random.default_rng(seed)
        vectors = [
            TestVector(
                _random_vectors(nl, 1, rng)[0],
                [int(rng.integers(0, 2)) for _ in nl.dffs],
            )
            for _ in range(patterns)
        ]
        comp = compiled(nl)
        packed = comp.observe_packed(
            [v.inputs for v in vectors], [v.flops for v in vectors]
        )
        got = unpack_bits(packed, patterns)  # (n_observables, patterns)
        for p, vec in enumerate(vectors):
            scalar = _observe(nl, vec, None)
            flat = [b for part in scalar for b in part]
            assert list(map(int, got[:, p])) == flat


class TestSequentialParity:
    @given(
        random_netlists(),
        st.integers(1, 70),
        st.integers(1, 6),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_simulate_many_matches_scalar_simulate(self, nl, machines, cycles, seed):
        # random stimulus includes test/scanin when a chain was inserted,
        # so packed scan shifting and hold blending are exercised too
        rng = np.random.default_rng(seed)
        runs = [_random_vectors(nl, cycles, rng) for _ in range(machines)]
        assert simulate_many(nl, runs) == [nl.simulate(run) for run in runs]

    def test_stepper_flop_peek_matches_scalar(self):
        nl = rtlib.build_counter(6)
        insert_scan_chain(nl)
        packed = PackedStepper(nl, 3)
        serial = [Stepper(nl) for _ in range(3)]
        stim = [dict(en=m % 2, test=0, scanin=0) for m in range(3)]
        for _ in range(5):
            got = packed.step(stim)
            want = [s.step(**v) for s, v in zip(serial, stim)]
            assert got == want
        assert packed.peek_flops() == [s.peek_flops() for s in serial]


class TestScanParity:
    def test_scan_load_dump_many_matches_serial(self):
        nl = rtlib.build_counter(8)
        insert_scan_chain(nl)
        rng = np.random.default_rng(4)
        images = [[int(b) for b in rng.integers(0, 2, 8)] for _ in range(5)]
        held = [{"en": 0} for _ in images]

        packed = PackedStepper(nl, len(images))
        scan_load_many(packed, images, held_inputs=held)
        packed_out = scan_dump_many(packed, held_inputs=held)

        serial_out = []
        for image in images:
            stepper = Stepper(nl)
            scan_load(stepper, image, en=0)
            serial_out.append(scan_dump(stepper, en=0))

        assert packed_out == serial_out == images


class TestInputValidation:
    def test_scalar_evaluate_rejects_unknown_port(self):
        nl = rtlib.build_adder(4)
        with pytest.raises(NetlistError, match="no input port"):
            nl.evaluate({"a": 1, "bb": 2})

    def test_scalar_simulate_rejects_unknown_port(self):
        nl = rtlib.build_counter(4)
        with pytest.raises(NetlistError, match="no input port"):
            nl.simulate([{"en": 1}, {"enable": 1}])

    def test_packed_evaluate_rejects_unknown_port(self):
        nl = rtlib.build_adder(4)
        with pytest.raises(NetlistError, match="no input port"):
            packed_evaluate(nl, [{"a": 1}, {"typo": 2}])

    def test_broadcast_load_rejects_unknown_port(self):
        nl = rtlib.build_adder(4)
        comp = compiled(nl)
        values = comp.blank(1)
        with pytest.raises(NetlistError, match="no input port"):
            comp.load_inputs_broadcast(values, {"nope": 1})

    def test_known_ports_may_be_omitted(self):
        # omitted ports default to 0, same as the scalar engine always did
        nl = rtlib.build_adder(4)
        assert nl.evaluate({"a": 3}) == nl.evaluate({"a": 3, "b": 0})
        assert packed_evaluate(nl, [{"a": 3}]) == [nl.evaluate({"a": 3})]


class TestCompileCache:
    def test_cache_hit_until_netlist_edited(self):
        nl = rtlib.build_adder(4)
        first = compiled(nl)
        assert compiled(nl) is first
        nl.add_output("carry_probe", [nl.outputs["sum"][3]])
        assert compiled(nl) is not first

    def test_scan_insertion_invalidates_cache(self):
        nl = rtlib.build_counter(4)
        before = compiled(nl)
        insert_scan_chain(nl)
        after = compiled(nl)
        assert after is not before
        assert after.chain_dff_pos.size == len(nl.dffs)

    def test_wide_port_rejected(self):
        nl = Netlist("wide")
        nets = nl.add_input("a", 65)
        nl.add_output("y", [nets[0]])
        with pytest.raises(NetlistError, match="at most 64"):
            compiled(nl)
