"""Evolvable-hardware substrate (Sec. II-D of the paper).

The GA IP core's target domain is intrinsic EHW: reconfigurable hardware
whose configuration is evolved in place.  This package supplies the
missing hardware as behavioural models:

* :mod:`repro.ehw.fabric` — a small virtual reconfigurable logic fabric
  (16-bit configuration word = the GA chromosome), with resource fault
  injection for the radiation-recovery scenario of Stoica et al. [27];
* :mod:`repro.ehw.system_classes` — the four intrinsic-EHW system classes
  of Lambert et al. [30] (PC-based, complete, multichip, multiboard) as
  communication-latency models wrapped around the cycle-accurate GA core,
  regenerating the Sec. II-D performance-ordering claims.
"""

from repro.ehw.fabric import FabricFitness, VirtualFabric, TARGET_FUNCTIONS
from repro.ehw.system_classes import (
    EHW_CLASSES,
    EHWClass,
    LatencyFEM,
    run_class_comparison,
)

__all__ = [
    "VirtualFabric",
    "FabricFitness",
    "TARGET_FUNCTIONS",
    "EHWClass",
    "EHW_CLASSES",
    "LatencyFEM",
    "run_class_comparison",
]
