"""Dynamic batching: coalescing pending jobs into resumable slabs.

A *slab* is the serving-layer unit of execution: up to ``max_batch`` jobs
sharing a population size, evolved together as one
:class:`~repro.core.batch.BatchBehavioralGA` replica axis.  Jobs in a slab
may differ in everything else the batch engine permits — generations,
thresholds, seeds, fitness slots — because the slab advances in *chunks*
of at most ``admit_interval`` generations and re-forms at every chunk
boundary: finished jobs retire, and compatible late arrivals are admitted
(continuous batching, exactly the policy an inference server applies to
token generation).  The chunk length is clamped to the slab's shortest
remaining job so retirement always happens on a boundary.

The policy half answers *when* to seal a new slab: immediately once
``max_batch`` compatible jobs are pending, or when the oldest has waited
``max_wait_s`` (the classic batching latency/throughput knob), or
unconditionally while draining for shutdown.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.stats import GenerationStats
from repro.service.jobs import GARequest, JobHandle, JobResult, params_to_dict


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the scheduler's batching, admission, and fault handling."""

    #: slab width cap (the replica axis of one BatchBehavioralGA)
    max_batch: int = 32
    #: max seconds the oldest pending job waits before a partial slab seals
    max_wait_s: float = 0.02
    #: generations per chunk — the late-admission boundary spacing
    admit_interval: int = 16
    #: admission-control bound on the pending queue (backpressure)
    max_pending: int = 1024
    #: hung-chunk watchdog: a dispatched chunk older than this is treated
    #: as lost (process pools are respawned, the chunk retried); ``None``
    #: disables the watchdog
    chunk_timeout_s: float | None = None
    #: queue depth at which load shedding starts (lowest-priority pending
    #: jobs fail with ``OverloadedError``); ``None`` disables shedding
    shed_queue_depth: int | None = None
    #: estimated backlog seconds (pending generations / observed
    #: generations-per-second) beyond which shedding starts; ``None``
    #: disables the estimate.  No shedding happens before the first
    #: completed chunk establishes a rate.
    max_backlog_s: float | None = None
    #: spill a resumable checkpoint of every in-flight slab each N chunk
    #: completions (only when the scheduler has a spill store)
    checkpoint_every_chunks: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0: {self.max_wait_s}")
        if self.admit_interval < 1:
            raise ValueError(
                f"admit_interval must be >= 1: {self.admit_interval}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1: {self.max_pending}")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError(
                f"chunk_timeout_s must be positive: {self.chunk_timeout_s}"
            )
        if self.shed_queue_depth is not None and self.shed_queue_depth < 1:
            raise ValueError(
                f"shed_queue_depth must be >= 1: {self.shed_queue_depth}"
            )
        if self.max_backlog_s is not None and self.max_backlog_s <= 0:
            raise ValueError(
                f"max_backlog_s must be positive: {self.max_backlog_s}"
            )
        if self.checkpoint_every_chunks < 1:
            raise ValueError(
                f"checkpoint_every_chunks must be >= 1: "
                f"{self.checkpoint_every_chunks}"
            )


def compat_key(record: "JobRecord") -> tuple:
    """Jobs sharing this key may ride one slab.

    Population size is structural (it is the member axis of the 2-D
    population array), and the engine mode is too — a slab runs entirely
    exact or entirely turbo, never mixed; hardened jobs are never batched —
    their fault streams are addressed per solo run — so each gets a unique
    key.  Island jobs (``n_islands > 1``) are their *own* slab already
    (replica axis = island), so they too run solo under a unique key.
    """
    if record.request.protection is not None:
        return ("hardened", record.seq)
    if record.request.n_islands > 1:
        return ("island", record.seq)
    if record.request.substrate != "behavioral":
        return ("substrate", record.seq)
    return (
        "batch",
        record.request.params.population_size,
        record.request.engine_mode,
    )


@dataclass
class JobRecord:
    """Scheduler-side state of one job across its slab chunks."""

    job_id: int
    request: GARequest
    handle: JobHandle
    submitted_at: float
    seq: int
    remaining: int = 0
    population: list[int] | None = None
    rng_state: int | None = None
    evaluations: int = 0
    chunks: int = 0
    started_at: float | None = None
    stats: list[tuple[int, int, int]] = field(default_factory=list)
    best_individual: int = 0
    best_fitness: int = -1
    protection_stats: dict = field(default_factory=dict)
    island_stats: dict = field(default_factory=dict)
    substrate_stats: dict = field(default_factory=dict)
    #: consecutive failed executions of the current chunk (reset on every
    #: chunk that completes); bounded by ``request.retry.max_attempts``
    attempts: int = 0
    #: cooperative-cancellation flag: honoured at the next chunk boundary
    cancel_requested: bool = False
    #: canonical run-store key (set at admission when a store is attached;
    #: the write-back address and the in-flight coalescing handle)
    store_key: str | None = None

    def __post_init__(self) -> None:
        self.remaining = self.request.params.n_generations

    @property
    def deadline_at(self) -> float:
        if self.request.deadline_s is None:
            return float("inf")
        return self.submitted_at + self.request.deadline_s

    def order_key(self) -> tuple:
        """Pending-queue order: priority, then EDF, then FIFO."""
        return (self.request.priority, self.deadline_at, self.seq)

    def to_result(self, completed_at: float) -> JobResult:
        pop = self.request.params.population_size
        return JobResult(
            job_id=self.job_id,
            best_individual=self.best_individual,
            best_fitness=self.best_fitness,
            evaluations=self.evaluations,
            fitness_name=self.request.fitness_name,
            params=self.request.params,
            history=[
                GenerationStats(
                    generation=g, best_fitness=bf, best_individual=bi,
                    fitness_sum=fs, population_size=pop,
                )
                for g, (bf, bi, fs) in enumerate(self.stats)
            ],
            latency_s=completed_at - self.submitted_at,
            wait_s=(self.started_at or completed_at) - self.submitted_at,
            n_chunks=self.chunks,
            deadline_missed=completed_at > self.deadline_at,
            protection_stats=self.protection_stats,
            island_stats=self.island_stats,
            substrate_stats=self.substrate_stats,
        )


class Slab:
    """A set of co-executing jobs plus the chunk bookkeeping around them."""

    _ids = itertools.count()

    def __init__(self, entries: list[JobRecord], policy: BatchPolicy):
        if not entries:
            raise ValueError("slab needs at least one job")
        self.slab_id = next(Slab._ids)
        self.entries = list(entries)
        self.policy = policy
        self.hardened = entries[0].request.protection is not None
        if self.hardened and len(entries) != 1:
            raise ValueError("hardened jobs run in single-job slabs")
        self.island = entries[0].request.n_islands > 1
        if self.island and len(entries) != 1:
            raise ValueError("island jobs run in single-job slabs")
        self.substrate = entries[0].request.substrate
        if self.substrate != "behavioral" and len(entries) != 1:
            raise ValueError("non-behavioral substrate jobs run in single-job slabs")
        self.pop = entries[0].request.params.population_size
        self.engine_mode = entries[0].request.engine_mode
        #: chunks completed by this slab (drives the checkpoint cadence)
        self.chunks_done = 0
        #: monotonic time of the first unrecovered chunk failure, for the
        #: recovery-latency histogram; cleared on the next success
        self.failed_at: float | None = None

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def solo(self) -> bool:
        """True for slabs that own a single job start to finish."""
        return self.hardened or self.island or self.substrate != "behavioral"

    @property
    def capacity_left(self) -> int:
        if self.solo:
            return 0
        return self.policy.max_batch - len(self.entries)

    def admit(self, records: list[JobRecord]) -> None:
        """Merge late arrivals at a chunk boundary."""
        if self.solo and records:
            raise ValueError("solo slabs do not admit")
        self.entries.extend(records)

    def next_chunk_gens(self) -> int:
        """Chunk length: the admission interval, clamped to the shortest
        remaining job so retirements land on chunk boundaries.  Hardened,
        island, and non-behavioral-substrate slabs run to completion in
        one chunk (fault injection, migration schedules, and substrate
        engines are addressed against an uninterrupted run)."""
        shortest = min(r.remaining for r in self.entries)
        if self.solo:
            return shortest
        return min(self.policy.admit_interval, shortest)

    def make_spec(self, chunk_gens: int) -> dict:
        """The picklable worker payload for the next chunk."""
        spec_entries = []
        for record in self.entries:
            spec_entries.append(
                {
                    "job_id": record.job_id,
                    "params": params_to_dict(record.request.params),
                    "fitness": record.request.fitness_name,
                    "population": record.population,
                    "rng_state": record.rng_state,
                    "record_stats": record.request.record_trace,
                }
            )
        protection = None
        if self.hardened:
            req = self.entries[0].request
            protection = {
                "preset": req.protection,
                "upset_rate": req.upset_rate,
                "campaign_seed": req.campaign_seed,
            }
        island = None
        if self.island:
            req = self.entries[0].request
            island = {
                "n_islands": req.n_islands,
                "migration_interval": req.migration_interval,
                "topology": req.topology,
            }
        return {
            "chunk_gens": chunk_gens,
            "entries": spec_entries,
            "protection": protection,
            "island": island,
            "mode": self.engine_mode,
            "substrate": self.substrate,
        }

    def apply_chunk(self, out: dict, chunk_gens: int) -> list[JobRecord]:
        """Fold a worker's chunk result back into the records.

        Returns the records that finished with this chunk (and removes
        them from the slab).  Trace splicing: a resumed chunk's local
        generation 0 restates the previous chunk's final generation, so it
        is dropped before concatenation — the spliced trace is then
        bit-identical to one uninterrupted run's.
        """
        by_id = {r.job_id: r for r in self.entries}
        finished: list[JobRecord] = []
        for entry_out in out["entries"]:
            record = by_id[entry_out["job_id"]]
            rows = entry_out["stats"]
            if record.chunks > 0:
                rows = rows[1:]
            record.stats.extend(rows)
            record.population = entry_out["population"]
            record.rng_state = entry_out["rng_state"]
            record.evaluations += entry_out["evaluations"]
            record.best_individual = entry_out["best_individual"]
            record.best_fitness = entry_out["best_fitness"]
            record.protection_stats = entry_out["protection_stats"]
            record.island_stats = entry_out.get("island_stats", {})
            record.substrate_stats = entry_out.get("substrate_stats", {})
            record.chunks += 1
            record.remaining -= chunk_gens
            record.attempts = 0  # the retry budget is per chunk
            if record.remaining <= 0:
                finished.append(record)
        self.entries = [r for r in self.entries if r.remaining > 0]
        self.chunks_done += 1
        return finished

    # -- checkpoint spill (scheduler restart / crash recovery) ----------
    def checkpoint_payload(self) -> dict:
        """This slab's resumable state as a plain JSON-ready dict.

        Each entry rides the resilience layer's checkpoint codec
        (:func:`repro.resilience.harden.encode_checkpoint`): the carried
        population + RNG stream position + best tracking at the last
        chunk boundary, plus the splice bookkeeping (``stats``,
        ``chunks``, ``remaining``, ``evaluations``) that makes the
        resumed trace bit-identical to an uninterrupted run's.
        """
        from repro.resilience.harden import encode_checkpoint

        entries = []
        for record in self.entries:
            done = record.request.params.n_generations - record.remaining
            entries.append(
                {
                    "request": record.request.to_dict(),
                    "job_id": record.job_id,
                    "remaining": record.remaining,
                    "evaluations": record.evaluations,
                    "chunks": record.chunks,
                    "stats": [list(row) for row in record.stats],
                    "state": encode_checkpoint(
                        generation=done,
                        individuals=record.population,
                        fitnesses=None,
                        best_individual=record.best_individual,
                        best_fitness=record.best_fitness,
                        rng_state=record.rng_state,
                    ),
                }
            )
        return {"engine_mode": self.engine_mode, "entries": entries}


def restore_records(payload: dict, seq_source, now: float) -> list[JobRecord]:
    """Rebuild a spilled slab's :class:`JobRecord` list with fresh handles.

    ``seq_source`` is the scheduler's sequence counter (resumed jobs get
    new queue positions but keep their original ``job_id`` for
    reporting); ``now`` becomes the records' submission time, so latency
    accounting restarts at resume — wall-clock spent crashed is not
    attributed to the service.
    """
    from repro.resilience.harden import decode_checkpoint

    records = []
    for entry in payload["entries"]:
        request = GARequest.from_dict(entry["request"])
        seq = next(seq_source)
        job_id = int(entry["job_id"])
        record = JobRecord(
            job_id=job_id,
            request=request,
            handle=JobHandle(job_id, request, now),
            submitted_at=now,
            seq=seq,
        )
        _gen, individuals, _fits, best_ind, best_fit, rng_state = (
            decode_checkpoint(entry["state"])
        )
        record.remaining = int(entry["remaining"])
        record.evaluations = int(entry["evaluations"])
        record.chunks = int(entry["chunks"])
        record.stats = [tuple(int(v) for v in row) for row in entry["stats"]]
        record.population = (
            None if individuals is None else [int(v) for v in individuals]
        )
        record.rng_state = rng_state
        record.best_individual = best_ind
        record.best_fitness = best_fit
        records.append(record)
    return records
