"""Engine-mode plumbing through the serving layer.

Turbo jobs ride the same scheduler/batcher/worker stack as exact ones but
must never share a slab with them (a slab runs entirely one mode), and a
turbo job's result must be deterministic per ``(params, seed)`` no matter
how the scheduler chunks or batches it — the serving-layer face of the
turbo composition-independence contract.
"""

import time

import pytest

from repro.core.params import GAParameters
from repro.service.batcher import BatchPolicy, JobRecord, compat_key
from repro.service.jobs import GARequest, JobHandle
from repro.service.server import GAService


def _request(seed, mode="exact", gens=24, pop=32, protection=None):
    return GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=12, mutation_threshold=1, rng_seed=seed,
        ),
        engine_mode=mode,
        protection=protection,
    )


def _record(request, seq=0):
    return JobRecord(
        job_id=seq, request=request,
        handle=JobHandle(seq, request, time.time()),
        submitted_at=time.time(), seq=seq,
    )


# -- request validation and wire format -------------------------------


def test_engine_mode_round_trips_through_wire_format():
    request = _request(0x061F, mode="turbo")
    data = request.to_dict()
    assert data["engine_mode"] == "turbo"
    assert GARequest.from_dict(data) == request


def test_engine_mode_defaults_to_exact_for_old_clients():
    data = _request(0x061F).to_dict()
    del data["engine_mode"]  # a pre-turbo client's payload
    assert GARequest.from_dict(data).engine_mode == "exact"


def test_unknown_engine_mode_rejected():
    with pytest.raises(ValueError, match="engine_mode"):
        _request(0x061F, mode="warp")


def test_turbo_plus_protection_rejected():
    with pytest.raises(ValueError, match="exact"):
        _request(0x061F, mode="turbo", protection="hardened")


# -- batching ---------------------------------------------------------


def test_modes_never_share_a_slab():
    exact = _record(_request(0x061F, mode="exact"), seq=0)
    turbo = _record(_request(0x2961, mode="turbo"), seq=1)
    same_mode = _record(_request(0x7B41, mode="turbo"), seq=2)
    assert compat_key(exact) != compat_key(turbo)
    assert compat_key(turbo) == compat_key(same_mode)


def test_slab_spec_carries_mode():
    from repro.service.batcher import Slab

    slab = Slab([_record(_request(0x061F, mode="turbo"))], BatchPolicy())
    spec = slab.make_spec(chunk_gens=8)
    assert spec["mode"] == "turbo"


# -- end to end -------------------------------------------------------


def _run_jobs(mode, admit_interval):
    policy = BatchPolicy(
        max_batch=8, max_wait_s=0.005, admit_interval=admit_interval
    )
    service = GAService(workers=2, mode="thread", policy=policy).start()
    try:
        handles = [
            service.submit(_request(100 + i, mode=mode, gens=40))
            for i in range(6)
        ]
        return [h.result(60).to_dict() for h in handles]
    finally:
        service.shutdown()


def test_turbo_jobs_deterministic_across_chunkings():
    """Chunk length and slab composition are scheduling artefacts; a
    turbo job's full result is a function of its request alone."""
    a = _run_jobs("turbo", admit_interval=16)
    b = _run_jobs("turbo", admit_interval=7)
    for x, y in zip(a, b):
        for key in ("best_individual", "best_fitness", "evaluations",
                    "history"):
            assert x[key] == y[key]


def test_mixed_mode_burst_completes():
    policy = BatchPolicy(max_batch=8, max_wait_s=0.005, admit_interval=16)
    service = GAService(workers=2, mode="thread", policy=policy).start()
    try:
        requests = [
            _request(200 + i, mode=("turbo" if i % 2 else "exact"), gens=24)
            for i in range(8)
        ]
        results = service.run_all(requests, timeout=60)
    finally:
        service.shutdown()
    assert [r.job_id for r in results] == sorted(r.job_id for r in results)
    assert all(r.best_fitness > 0 for r in results)

    # the exact jobs must be untouched by turbo slab-mates: bit-identical
    # to running them alone
    service = GAService(workers=1, mode="thread", policy=policy).start()
    try:
        solo = service.run_all(
            [r for i, r in enumerate(requests) if i % 2 == 0], timeout=60
        )
    finally:
        service.shutdown()
    mixed_exact = [r for i, r in enumerate(results) if i % 2 == 0]
    for a, b in zip(mixed_exact, solo):
        assert a.best_individual == b.best_individual
        assert a.best_fitness == b.best_fitness
        assert a.evaluations == b.evaluations
