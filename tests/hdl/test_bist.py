"""Tests for the memory march-test BIST."""

import pytest

from repro.core.ga_memory import GAMemory
from repro.core.ports import GAPorts
from repro.hdl.bist import MemoryHarness, march_c_minus, mats_plus
from repro.hdl.memory import SinglePortRAM
from repro.hdl.signal import Signal


def make_harness(depth=32, width=8):
    ram = SinglePortRAM(
        "ram",
        Signal("a", 8),
        Signal("d", width),
        Signal("q", width),
        Signal("w", 1),
        depth=depth,
    )
    return MemoryHarness(ram)


class TestHealthyMemory:
    @pytest.mark.parametrize("algorithm", [mats_plus, march_c_minus])
    def test_passes(self, algorithm):
        result = algorithm(make_harness())
        assert result.passed
        assert result.first_failure is None

    def test_operation_counts(self):
        depth = 32
        assert mats_plus(make_harness(depth)).operations == 5 * depth
        assert march_c_minus(make_harness(depth)).operations == 10 * depth

    def test_ga_memory_passes(self):
        harness = MemoryHarness(GAMemory(GAPorts.create()))
        result = march_c_minus(harness)
        assert result.passed
        assert result.operations == 10 * 256


class TestFaultDetection:
    @pytest.mark.parametrize("algorithm", [mats_plus, march_c_minus])
    @pytest.mark.parametrize("stuck", [0, 1])
    def test_stuck_bit_detected(self, algorithm, stuck):
        harness = make_harness()
        harness.inject_stuck_bit(addr=13, bit=3, value=stuck)
        result = algorithm(harness)
        assert not result.passed
        assert result.first_failure[0] == 13

    def test_coupling_fault_detected_by_march_c(self):
        harness = make_harness()
        harness.inject_coupling(aggressor=5, victim=9, bit=2)
        assert not march_c_minus(harness).passed

    def test_every_stuck_cell_position_detected(self):
        # exhaustive: any single stuck bit anywhere is caught by MATS+
        for addr in (0, 7, 31):
            for bit in (0, 7):
                harness = make_harness()
                harness.inject_stuck_bit(addr, bit, 1)
                assert not mats_plus(harness).passed, (addr, bit)

    def test_failure_reports_expected_vs_got(self):
        harness = make_harness()
        harness.inject_stuck_bit(2, 0, 1)
        result = mats_plus(harness)
        addr, expect, got = result.first_failure
        assert addr == 2 and expect != got
