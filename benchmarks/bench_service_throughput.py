"""GA-as-a-service throughput — dynamic batching vs one-at-a-time serving.

Submits 64 concurrent small jobs (pop 32, 64 generations, mixed fitness
slots and seeds) to a :class:`repro.service.GAService` backed by a
process pool, and times the same job list executed serially with
:class:`BehavioralGA` — the way a naive one-job-per-request server would.
The results are asserted bit-identical job by job; the report is the
jobs/sec of each path, the speedup, and the service's own metrics
snapshot (batch occupancy, queue depth, latency percentiles), which is
also attached to the pytest-benchmark record so it lands in
``BENCH_results.json``.
"""

import time

import pytest

from conftest import print_table
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.service import (
    BatchPolicy,
    ChaosMonkey,
    ChaosPlan,
    GARequest,
    GAService,
    RetryPolicy,
    run_slab_chunk,
)
from repro.service.jobs import params_to_dict

N_JOBS = 64
FITNESS_NAMES = ["mBF6_2", "mBF7_2", "mShubert2D", "F3"]

JOBS = [
    GARequest(
        params=GAParameters(
            n_generations=64, population_size=32,
            crossover_threshold=10 + i % 3, mutation_threshold=1,
            rng_seed=1000 + 257 * i,
        ),
        fitness_name=FITNESS_NAMES[i % len(FITNESS_NAMES)],
    )
    for i in range(N_JOBS)
]


def outcome(best_individual, best_fitness, evaluations):
    return (best_individual, best_fitness, evaluations)


def serial_outcomes():
    out = []
    for request in JOBS:
        r = BehavioralGA(
            request.params, by_name(request.fitness_name), record_members=False
        ).run()
        out.append(outcome(r.best_individual, r.best_fitness, r.evaluations))
    return out


def service_run():
    # one admission interval per job: each slab retires in a single chunk,
    # so the bench measures steady-state batching throughput (the chunked
    # late-admission path is covered by tests/service/test_determinism.py)
    policy = BatchPolicy(
        max_batch=32, max_wait_s=0.01, admit_interval=64, max_pending=N_JOBS
    )
    with GAService(workers=2, mode="process", policy=policy) as service:
        results = service.run_all(list(JOBS), timeout=600)
        snap = service.snapshot()
    return [
        outcome(r.best_individual, r.best_fitness, r.evaluations)
        for r in results
    ], snap


@pytest.mark.benchmark(group="service")
def test_service_throughput_64_concurrent_jobs(benchmark):
    # warm the fitness tables and the batch engine's orbit/outcome caches
    # in this process — process-pool workers fork from here and inherit them
    for name in FITNESS_NAMES:
        by_name(name).table()
    run_slab_chunk(
        {
            "chunk_gens": 2,
            "entries": [
                {
                    "job_id": -1,
                    "params": params_to_dict(JOBS[i].params),
                    "fitness": JOBS[i].fitness_name,
                    "population": None,
                    "rng_state": None,
                    "record_stats": False,
                }
                for i in range(len(FITNESS_NAMES))
            ],
            "protection": None,
        }
    )

    t0 = time.perf_counter()
    serial = serial_outcomes()
    t_serial = time.perf_counter() - t0

    t_service = None
    for _ in range(2):  # best of two: absorbs pool start-up jitter
        t0 = time.perf_counter()
        served, snap = service_run()
        dt = time.perf_counter() - t0
        t_service = dt if t_service is None else min(t_service, dt)
    benchmark.pedantic(service_run, rounds=1, iterations=1)

    # serving is a transport, not a solver: bit-identical results
    assert served == serial

    speedup = t_serial / t_service
    rows = [
        {"path": "serial BehavioralGA", "time_s": round(t_serial, 3),
         "jobs/sec": round(N_JOBS / t_serial, 1)},
        {"path": "GAService (2 proc workers)", "time_s": round(t_service, 3),
         "jobs/sec": round(N_JOBS / t_service, 1)},
    ]
    print_table(f"{N_JOBS} concurrent jobs, pop 32 x 64 generations", rows)
    print(f"speedup: {speedup:.1f}x")
    print(f"batch occupancy: mean {snap['batching']['mean_occupancy']:.0%}, "
          f"max {snap['batching']['max_occupancy']} of "
          f"{snap['batching']['max_batch']} slots")
    print(f"queue depth max: {snap['queue']['max_depth']}; "
          f"latency p50 {snap['latency']['p50_ms']:.0f} ms, "
          f"p95 {snap['latency']['p95_ms']:.0f} ms; "
          f"{snap['throughput']['generations_per_s']:.0f} generations/sec")

    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["jobs"] = N_JOBS
    benchmark.extra_info["service_metrics"] = snap

    # dynamic batching must buy at least 3x over one-at-a-time serving
    assert speedup >= 3.0


# -- fault-tolerance overhead ------------------------------------------
# The same job list run fault-free and under a chaos plan that kills two
# chunk dispatches.  Recovery must be cheap: lost chunks re-execute from
# carried state (never from generation 0), so the faulted run is bounded
# by fault-free time + the re-executed chunks + the (tiny) retry backoff.
FAULT_N_JOBS = 8

FAULT_JOBS = [
    GARequest(
        params=GAParameters(
            n_generations=64, population_size=32,
            crossover_threshold=10 + i % 3, mutation_threshold=1,
            rng_seed=1000 + 257 * i,
        ),
        fitness_name=FITNESS_NAMES[i % len(FITNESS_NAMES)],
        retry=RetryPolicy(max_attempts=5, backoff_s=0.002, max_backoff_s=0.02),
    )
    for i in range(FAULT_N_JOBS)
]


def faulted_run(kill_chunks=()):
    # thread mode: a chaos kill raises WorkerCrashError instead of dying
    # with the forked pool, so the bench isolates the retry machinery
    # itself from process-respawn cost (that path is covered by
    # tests/service/test_chaos.py)
    chaos = (
        ChaosMonkey(ChaosPlan(kill_chunks=tuple(kill_chunks)))
        if kill_chunks
        else None
    )
    policy = BatchPolicy(
        max_batch=4, max_wait_s=0.01, admit_interval=16,
        max_pending=FAULT_N_JOBS,
    )
    with GAService(
        workers=2, mode="thread", policy=policy, chaos=chaos
    ) as service:
        results = service.run_all(list(FAULT_JOBS), timeout=600)
        snap = service.snapshot()
    return [
        outcome(r.best_individual, r.best_fitness, r.evaluations)
        for r in results
    ], snap


@pytest.mark.benchmark(group="service")
def test_faulted_run_recovery_overhead(benchmark):
    for name in FITNESS_NAMES:
        by_name(name).table()
    faulted_run()  # warm caches and thread pools

    t_clean, t_faulted = None, None
    for _ in range(3):  # best of three: this asserts a ratio of two timings
        t0 = time.perf_counter()
        clean, _ = faulted_run()
        dt = time.perf_counter() - t0
        t_clean = dt if t_clean is None else min(t_clean, dt)
    for _ in range(3):
        t0 = time.perf_counter()
        faulted, snap = faulted_run(kill_chunks=(1, 5))
        dt = time.perf_counter() - t0
        t_faulted = dt if t_faulted is None else min(t_faulted, dt)
    benchmark.pedantic(
        lambda: faulted_run(kill_chunks=(1, 5)), rounds=1, iterations=1
    )

    # crash recovery is invisible in the numbers...
    assert faulted == clean
    assert snap["faults"]["chunk_retries"] >= 1

    # ...and nearly invisible on the clock
    overhead = t_faulted / t_clean
    rows = [
        {"run": "fault-free", "time_s": round(t_clean, 3)},
        {"run": "2 chunks killed", "time_s": round(t_faulted, 3),
         "retries": snap["faults"]["chunk_retries"]},
    ]
    print_table(
        f"{FAULT_N_JOBS} jobs, pop 32 x 64 generations, worker kills on",
        rows,
    )
    print(f"recovery overhead: {overhead:.2f}x fault-free "
          f"(recovery p95 {snap['faults']['recovery_p95_ms']:.0f} ms)")

    benchmark.extra_info["recovery_overhead"] = round(overhead, 3)
    benchmark.extra_info["faults"] = snap["faults"]

    assert overhead <= 1.5


# -- turbo engine mode -------------------------------------------------
# One slab of LARGE-preset jobs (the paper's 256-member population), run
# through the service's slab execution path in both engine modes.  Exact
# walks offspring slots serially to stay bit-identical to the RT core;
# turbo vectorises the whole generation (see docs/architecture.md), so the
# gap widens with population size — pop 256 is where a throughput-hungry
# caller would actually reach for it.
TURBO_N_JOBS = 4
TURBO_POP = 256
TURBO_GENS = 96


def _turbo_slab_spec(mode: str, gens: int = TURBO_GENS) -> dict:
    return {
        "chunk_gens": gens,
        "mode": mode,
        "protection": None,
        "entries": [
            {
                "job_id": i,
                "params": params_to_dict(
                    GAParameters(
                        n_generations=gens, population_size=TURBO_POP,
                        crossover_threshold=10 + i % 3, mutation_threshold=1,
                        rng_seed=1000 + 257 * i,
                    )
                ),
                "fitness": FITNESS_NAMES[i % len(FITNESS_NAMES)],
                "population": None,
                "rng_state": None,
                "record_stats": True,
            }
            for i in range(TURBO_N_JOBS)
        ],
    }


@pytest.mark.benchmark(group="service")
def test_turbo_slab_speedup_over_exact(benchmark):
    # warm both modes: fitness tables, orbit caches, the exact engine's
    # slot-outcome tables and the turbo kernel's binomial CDFs
    for mode in ("exact", "turbo"):
        run_slab_chunk(_turbo_slab_spec(mode, gens=4))

    best = {}
    outputs = {}
    for mode in ("exact", "turbo"):
        for _ in range(3):  # best of three: this is a ratio of two
            t0 = time.perf_counter()  # measurements, so damp noise in both
            out = run_slab_chunk(_turbo_slab_spec(mode))
            dt = time.perf_counter() - t0
            best[mode] = min(best.get(mode, dt), dt)
        outputs[mode] = out
    benchmark.pedantic(
        lambda: run_slab_chunk(_turbo_slab_spec("turbo")), rounds=1, iterations=1
    )

    # turbo is deterministic per (params, seed): repeat runs are identical
    assert outputs["turbo"] == run_slab_chunk(_turbo_slab_spec("turbo"))

    ratio = best["exact"] / best["turbo"]
    rows = [
        {"engine": mode, "time_s": round(best[mode], 3),
         "gens/sec": round(TURBO_N_JOBS * TURBO_GENS / best[mode], 0),
         "best_fitness": [e["best_fitness"] for e in outputs[mode]["entries"]]}
        for mode in ("exact", "turbo")
    ]
    print_table(
        f"{TURBO_N_JOBS}-job slab, pop {TURBO_POP} x {TURBO_GENS} generations",
        rows,
    )
    print(f"turbo speedup over exact batched path: {ratio:.1f}x")

    benchmark.extra_info["turbo_speedup"] = round(ratio, 2)
    benchmark.extra_info["jobs"] = TURBO_N_JOBS
    benchmark.extra_info["population"] = TURBO_POP

    # the whole point of the mode: at least 5x over the exact batched path
    assert ratio >= 5.0
