"""Tommiska & Vuori's PCI-card GA [6].

Table I row: fixed population of 32, fixed generations, *round-robin* parent
selection, single-point crossover, fixed rates, linear shift register (LFSR)
RNG with a fixed seed, no elitism.  Round-robin selection pairs members
cyclically — no fitness bias at the selection step; progress comes from
replacement (offspring unconditionally replace the pair, with fitness acting
only through survival of good schemata), which is why this architecture
converges more slowly on hard functions.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.fitness.base import FitnessFunction
from repro.rng.lfsr import GaloisLFSR


class TommiskaGA(PopulationBaseline):
    """Round-robin generational GA with LFSR randomness."""

    name = "Tommiska & Vuori [6]"
    population_size = 32
    elitist = False
    CROSSOVER_THRESHOLD = 10  # rate 0.625
    MUTATION_THRESHOLD = 1
    FIXED_SEED = 0xB5D7

    def __init__(self, rng=None):
        super().__init__(rng or GaloisLFSR(self.FIXED_SEED))

    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        table = fitness.table()
        pop = self.population_size
        inds = self.rng.block(pop).astype(np.int64)
        fits = table[inds].astype(np.int64)
        evals = pop
        best_idx = int(fits.argmax())
        best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
        series = [best_fit]

        while evals < evaluation_budget:
            # Round-robin pairing: (0,1), (2,3), ... with a greedy twist
            # common to round-robin schemes: the fitter of {parent,
            # offspring} at each slot survives.
            new_inds = inds.copy()
            for i in range(0, pop - 1, 2):
                p1, p2 = int(inds[i]), int(inds[i + 1])
                if self._rand4() < self.CROSSOVER_THRESHOLD:
                    o1, o2 = self._crossover_point(p1, p2)
                else:
                    o1, o2 = p1, p2
                if self._rand4() < self.MUTATION_THRESHOLD:
                    o1 = self._mutate_bit(o1)
                if self._rand4() < self.MUTATION_THRESHOLD:
                    o2 = self._mutate_bit(o2)
                f1, f2 = int(table[o1]), int(table[o2])
                evals += 2
                if f1 >= int(fits[i]):
                    new_inds[i] = o1
                if f2 >= int(fits[i + 1]):
                    new_inds[i + 1] = o2
                for off, f in ((o1, f1), (o2, f2)):
                    if f > best_fit:
                        best_ind, best_fit = off, f
            inds = new_inds
            fits = table[inds].astype(np.int64)
            series.append(best_fit)

        return BaselineResult(self.name, best_ind, best_fit, evals, series)
