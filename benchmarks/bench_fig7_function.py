"""Fig. 7 — the zoomed Binary F6 test-function plot."""

import pytest

from repro.analysis.plots import ascii_plot
from repro.experiments.figures import run_fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_bf6_plot(benchmark):
    report = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    print(ascii_plot(report["x"], report["y"], label="Fig. 7: BF6(x), x in [0, 300]"))
    # "numerous local maxima" in the zoom window
    assert report["n_local_maxima"] > 20
    # the zoom band of the paper's plot: 3199.97 .. 3200.03
    assert min(report["y"]) > 3199.9
    assert max(report["y"]) < 3200.1
