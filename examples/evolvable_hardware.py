#!/usr/bin/env python3
"""Evolvable hardware: real-time adaptive healing of a drifting circuit.

This is the paper's motivating application (Sec. I / Sec. II-D): the GA core
as the search engine of an intrinsic-EHW system that retunes analog
electronics under extreme-temperature drift — the Self-Reconfigurable
Analog Array use case of [34], [35].

The substitute for the real analog array (which we obviously don't have) is
a behavioural model of a 4-stage tunable amplifier: the 16-bit chromosome
packs four 4-bit bias codes, temperature shifts every stage's effective
gain, and fitness is the inverse error between the achieved and the target
response — the same "fitness = measured response quality" shape as the
slew-rate FEM of the fabricated ASIC.

The fitness module is served through the *external FEM port* (Fig. 5's
hybrid configuration): the circuit model lives outside the GA module and
answers over ``fit_value_ext``/``fit_valid_ext``, exactly how a fitness
function on a second chip would.
"""

from __future__ import annotations

import os

from repro import GAParameters, GASystem
from repro.fitness.mux import ExternalFEMPort

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"

#: Target per-stage gains (arbitrary units) the healed circuit must hit.
TARGET_RESPONSE = [9.0, 13.0, 6.0, 11.0]


class DriftingAmplifier:
    """Behavioural model of a 4-stage amplifier under temperature drift.

    Each stage's gain is ``bias * gain_slope(T)``; extreme temperatures
    change the slopes, so bias codes tuned at room temperature miss the
    target response and must be re-evolved.
    """

    def __init__(self, temperature_c: float):
        self.temperature_c = temperature_c
        # gain per bias LSB drifts differently per stage; coefficients are
        # sized so the target response stays reachable across the full
        # -120..+160 degC envelope (the healing problem is re-tuning, not
        # impossible physics)
        drift = (temperature_c - 25.0) / 100.0
        self.slopes = [
            1.00 + 0.110 * drift,
            1.00 - 0.085 * drift,
            1.00 + 0.060 * drift,
            1.00 - 0.095 * drift,
        ]

    def response(self, chromosome: int) -> list[float]:
        """Stage gains for a 4x4-bit bias configuration word."""
        return [
            ((chromosome >> (4 * stage)) & 0xF) * self.slopes[stage]
            for stage in range(4)
        ]

    def fitness(self, chromosome: int) -> int:
        """16-bit fitness: inverse squared error against the target."""
        err = sum(
            (got - want) ** 2
            for got, want in zip(self.response(chromosome), TARGET_RESPONSE)
        )
        return int(65535 / (1.0 + err))


def heal(temperature_c: float, seed: int) -> tuple[int, int]:
    """Evolve a compensating configuration at the given temperature."""
    circuit = DriftingAmplifier(temperature_c)
    params = GAParameters(
        n_generations=12 if FAST else 48,
        population_size=32,
        crossover_threshold=12,
        mutation_threshold=2,
        rng_seed=seed,
    )
    ext = ExternalFEMPort.create()
    # slot 1 is external; no internal FEM is selected
    system = GASystem(params, {}, select=1, external={1: ext})

    def external_fem(_tick: int) -> None:
        if system.ports.fit_request.value:
            ext.fit_value_ext.poke(circuit.fitness(system.ports.candidate.value))
            ext.fit_valid_ext.poke(1)
        else:
            ext.fit_valid_ext.poke(0)

    system.sim.probe(external_fem)
    result = system.run()
    return result.best_individual, result.best_fitness


def main() -> None:
    print("Intrinsic EHW healing demo: 4-stage amplifier, external FEM")
    print(f"target response: {TARGET_RESPONSE}\n")

    def sq_err(circuit: DriftingAmplifier, config: int) -> float:
        return sum(
            (g - w) ** 2
            for g, w in zip(circuit.response(config), TARGET_RESPONSE)
        )

    room_config, _ = heal(25.0, seed=0xB342)
    for temperature in (25.0, -120.0, 160.0):
        circuit = DriftingAmplifier(temperature)
        stale = sq_err(circuit, room_config)
        config, fitness = heal(temperature, seed=0xB342)
        response = [round(g, 2) for g in circuit.response(config)]
        print(
            f"T = {temperature:+7.1f}degC  stale-config sq.err = {stale:6.2f}  "
            f"-> healed config = {config:04X}  response = {response}  "
            f"sq.err = {sq_err(circuit, config):5.2f}  fitness = {fitness}"
        )
    print("\nThe same GA core re-heals the circuit at each temperature —")
    print("no re-synthesis, just a new start_GA pulse (Sec. III-C.3).")


if __name__ == "__main__":
    main()
