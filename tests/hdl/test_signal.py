"""Unit tests for the Signal wire model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.signal import Signal, SignalConflictError, bus


class TestSignalBasics:
    def test_initial_value(self):
        s = Signal("s", width=8, init=0xAB)
        assert s.value == 0xAB

    def test_init_masked_to_width(self):
        s = Signal("s", width=4, init=0xFF)
        assert s.value == 0xF

    def test_poke_masks(self):
        s = Signal("s", width=4)
        s.poke(0x1F)
        assert s.value == 0xF

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError):
            Signal("s", width=0)

    def test_bus_helper(self):
        s = bus("data", 16)
        assert s.width == 16 and s.value == 0


class TestTwoPhase:
    def test_queue_does_not_change_value(self):
        s = Signal("s", width=8)
        s.queue(5)
        assert s.value == 0

    def test_apply_commits(self):
        s = Signal("s", width=8)
        s.queue(5)
        s.apply()
        assert s.value == 5

    def test_conflicting_drives_raise(self):
        s = Signal("s", width=8)
        s.queue(1, driver="a")
        with pytest.raises(SignalConflictError):
            s.queue(2, driver="b")

    def test_same_value_drives_allowed(self):
        s = Signal("s", width=8)
        s.queue(7, driver="a")
        s.queue(7, driver="b")
        s.apply()
        assert s.value == 7

    def test_reset_clears_pending(self):
        s = Signal("s", width=8, init=3)
        s.poke(9)
        s.queue(5)
        s.reset()
        assert s.value == 3
        s.apply()
        assert s.value == 3


class TestBitAccess:
    def test_bit(self):
        s = Signal("s", width=8, init=0b1010_0101)
        assert s.bit(0) == 1
        assert s.bit(1) == 0
        assert s.bit(7) == 1

    def test_bits_slice(self):
        s = Signal("s", width=16, init=0xBEEF)
        assert s.bits(3, 0) == 0xF
        assert s.bits(7, 4) == 0xE
        assert s.bits(15, 8) == 0xBE

    def test_bits_bad_slice(self):
        s = Signal("s", width=16)
        with pytest.raises(ValueError):
            s.bits(0, 3)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_bits_reassemble(self, value):
        s = Signal("s", width=16, init=value)
        assert (s.bits(15, 8) << 8) | s.bits(7, 0) == value

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_bit_matches_python(self, value):
        s = Signal("s", width=16, init=value)
        for i in range(16):
            assert s.bit(i) == (value >> i) & 1
