"""The protection stack: SECDED memory, scrubbing, watchdog, checkpoints.

Two halves, matching :mod:`repro.resilience.seu`:

* :class:`ResilienceHarness` — the generation-boundary fault-and-defence
  pipeline for the behavioural engines.  Pass one as ``resilience=`` to
  :class:`~repro.core.behavioral.BehavioralGA` or
  :class:`~repro.core.batch.BatchBehavioralGA`; at every generation
  boundary it draws that boundary's upsets from its
  :class:`~repro.resilience.seu.SEUInjector`, applies them, and then runs
  whatever defences the :class:`ProtectionConfig` enables.  The harness is
  written once against ``(replica, member)`` arrays and adapted to both
  engines, so a batch of N replicas behaves bit-for-bit like N serial runs
  with the same campaign seed — the property the parity tests lock down.

* the cycle-accurate hardening components —
  :class:`SECDEDGAMemory` (block RAM storing 39-bit codewords, corrects on
  read), :class:`MemoryScrubber` (background read-correct-writeback walker),
  and :class:`FEMWatchdog` (handshake timeout -> bounded retry -> failover
  to a fallback slot of the 8-way :class:`~repro.fitness.mux.FitnessMux`) —
  wired into :class:`~repro.core.system.GASystem` via
  :class:`CycleResilienceOptions`.

Fault-model semantics (documented modelling choices):

* Upsets land at generation boundaries, after the generation's statistics
  are recorded; the fixed domain order is FEM handshake -> memory -> RNG
  state -> best register -> defences (scrub -> elite guard -> checkpoint).
* A *hang* (dropped response or dead FEM with no watchdog, or a dead FEM
  with no fallback slots left) is metric-level: the run's outcome is frozen
  at the hang generation — the paper's Sec. III-C.3c generation-best output
  is what the application last received — but the simulation itself keeps
  stepping so serial and batched replicas stay in lock-step.
* A transient FEM corruption is a *store-path* corruption: the bad value
  lands in memory but not in the best-register comparison (the comparator
  tapped the response before the upset).  No phantom champions from
  transients; corrupted champions come from best-register upsets.
* An RNG upset that would produce the all-zero CA state (the lockup fixed
  point, unreachable by normal operation) is masked — the cell array's
  feedback cannot latch it from a single flip.
* Rollback restores population, RNG state, and best register from the last
  checkpoint but *not* the lockstep generation counter: recovery costs the
  generations since the checkpoint (reported as ``generations_lost``), it
  does not rewind time.
* The elite guard validates *consistency*, not provenance: it re-evaluates
  the champion and repairs a corrupted fitness, and its monotonic shadow
  register catches champions whose re-evaluated fitness regressed; a
  best-individual flip that lands on a genuinely fitter individual passes —
  honest guard behaviour, visible in the campaign's SDC column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ga_memory import GAMemory, bank_address, unpack_word
from repro.core.ports import GAPorts
from repro.fitness.mux import MAX_SLOTS
from repro.hdl.component import Component
from repro.hdl.signal import Signal
from repro.resilience.secded import (
    CODEWORD_BITS,
    DATA_BITS,
    STATUS_CORRECTED,
    STATUS_DOUBLE,
    secded_encode,
    secded_extract,
    secded_scrub,
)
from repro.obs.metrics import get_registry
from repro.resilience.seu import FEM_DROP, SEUInjector, UpsetRates

# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtectionConfig:
    """Which defences are armed (the campaign's second sweep axis).

    ``checkpoint_interval`` of 0 disables checkpointing; ``max_rollbacks``
    bounds recovery so a pathological upset rate cannot loop forever, and
    ``fem_fallback_slots`` is how many spare FEM slots the watchdog may
    fail over to (the 8-way mux offers at most 7 spares).
    """

    name: str = "unprotected"
    secded: bool = False
    watchdog: bool = False
    elite_guard: bool = False
    checkpoint_interval: int = 0
    max_rollbacks: int = 8
    fem_fallback_slots: int = MAX_SLOTS - 1

    @property
    def word_bits(self) -> int:
        """Stored bits per memory word — the SEU cross-section.  SECDED
        widens the word to 39 bits, honestly increasing exposure."""
        return CODEWORD_BITS if self.secded else DATA_BITS


# ---------------------------------------------------------------------------
# checkpoint codec
# ---------------------------------------------------------------------------
#
# The rollback checkpoint tuple — (generation, individuals, fitnesses,
# best_individual, best_fitness, rng_state) — is also the serialization
# format the serving layer spills resumable slab state in (ROADMAP's
# checkpoint/resume item), so the codec lives here rather than privately
# inside :class:`ResilienceHarness`.  The service generalizes it to batch
# slabs by encoding one checkpoint per job record; ``fitnesses`` may be
# ``None`` there (carried populations are re-evaluated on resume).

CHECKPOINT_VERSION = 1


def encode_checkpoint(
    generation: int,
    individuals,
    fitnesses,
    best_individual: int,
    best_fitness: int,
    rng_state,
) -> dict:
    """The checkpoint tuple as a plain JSON-ready dict.

    ``individuals``/``fitnesses`` may be numpy arrays, lists, or ``None``;
    ``rng_state`` may be ``None`` for jobs that have not drawn yet.
    """

    def as_list(arr):
        if arr is None:
            return None
        return [int(v) for v in arr]

    return {
        "version": CHECKPOINT_VERSION,
        "generation": int(generation),
        "individuals": as_list(individuals),
        "fitnesses": as_list(fitnesses),
        "best_individual": int(best_individual),
        "best_fitness": int(best_fitness),
        "rng_state": None if rng_state is None else int(rng_state),
    }


def decode_checkpoint(data: dict) -> tuple:
    """Invert :func:`encode_checkpoint` back to the harness tuple
    ``(generation, individuals, fitnesses, best_individual, best_fitness,
    rng_state)`` with int64 arrays (``None`` fields pass through)."""
    version = data.get("version", CHECKPOINT_VERSION)
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )

    def as_array(values):
        if values is None:
            return None
        return np.asarray(values, dtype=np.int64)

    return (
        int(data["generation"]),
        as_array(data["individuals"]),
        as_array(data["fitnesses"]),
        int(data["best_individual"]),
        int(data["best_fitness"]),
        None if data["rng_state"] is None else int(data["rng_state"]),
    )


UNPROTECTED = ProtectionConfig()
HARDENED = ProtectionConfig(
    name="hardened",
    secded=True,
    watchdog=True,
    elite_guard=True,
    checkpoint_interval=16,
)

#: Named configs for the CLI / campaign sweep axis.
PROTECTION_PRESETS: dict[str, ProtectionConfig] = {
    "unprotected": UNPROTECTED,
    "secded": ProtectionConfig(name="secded", secded=True),
    "watchdog": ProtectionConfig(name="watchdog", watchdog=True),
    "guard": ProtectionConfig(name="guard", elite_guard=True),
    "checkpoint": ProtectionConfig(
        name="checkpoint", secded=True, checkpoint_interval=16
    ),
    "hardened": HARDENED,
}


# ---------------------------------------------------------------------------
# behavioural harness
# ---------------------------------------------------------------------------


class ResilienceHarness:
    """Generation-boundary SEU pipeline for the behavioural engines.

    One harness serves one engine run: ``n_replicas`` must match the batch
    width (1 for :class:`BehavioralGA`).  ``replica_offset`` lets a serial
    engine impersonate batch replica ``r`` exactly — the injector streams
    are addressed by ``replica_offset + local_index``.
    """

    def __init__(
        self,
        config: ProtectionConfig,
        rates: UpsetRates,
        seed: int,
        n_replicas: int = 1,
        replica_offset: int = 0,
        tracer=None,
    ):
        self.config = config
        self.rates = rates
        #: optional :class:`~repro.obs.tracer.Tracer`: recovery events
        #: (``resilience.hang`` / ``.failover`` / ``.watchdog_retry`` /
        #: ``.rollback`` / ``.elite_repair`` / ``.shadow_restore`` /
        #: ``.secded``) fire only when a fault actually lands, so the
        #: fault-free path pays nothing.  Regardless of tracing, rare-fault
        #: sites bump the process-wide metrics registry
        #: (``resilience.seu_corrected`` / ``.seu_double`` /
        #: ``.fem_failovers`` / ``.rollbacks``).
        self.tracer = tracer
        self.injector = SEUInjector(rates, seed, n_replicas, replica_offset)
        n = n_replicas
        self.n_replicas = n
        self.hung = np.zeros(n, dtype=bool)
        self.hang_gen = np.full(n, -1, dtype=np.int64)
        self.best_at_hang = np.zeros(n, dtype=np.int64)
        self.fallback_left = np.full(n, config.fem_fallback_slots, dtype=np.int64)
        self.rollbacks = np.zeros(n, dtype=np.int64)
        self.generations_lost = np.zeros(n, dtype=np.int64)
        self.corrected = np.zeros(n, dtype=np.int64)
        self.detected_double = np.zeros(n, dtype=np.int64)
        self.accepted_uncorrectable = np.zeros(n, dtype=np.int64)
        self.elite_repairs = np.zeros(n, dtype=np.int64)
        self.shadow_restores = np.zeros(n, dtype=np.int64)
        self.watchdog_retries = np.zeros(n, dtype=np.int64)
        self.failovers = np.zeros(n, dtype=np.int64)
        self._shadow_ind = np.zeros(n, dtype=np.int64)
        self._shadow_fit = np.full(n, -1, dtype=np.int64)
        self._checkpoints: list[tuple | None] = [None] * n

    # -- engine adapters ------------------------------------------------
    def serial_boundary(self, engine, gen, inds, fits, best_ind, best_fit):
        """Hook for :class:`BehavioralGA`; arrays are 1-D, best is scalar."""
        rng = engine.rng

        def rng_get(_r: int) -> int:
            return int(rng.state)

        def rng_set(_r: int, state: int) -> None:
            rng.state = state

        bi = np.array([best_ind], dtype=np.int64)
        bf = np.array([best_fit], dtype=np.int64)
        self._boundary(
            gen,
            len(inds),
            inds[None, :],
            fits[None, :],
            bi,
            bf,
            rng_get,
            rng_set,
            lambda b: engine.table[b].astype(np.int64),
        )
        return inds, fits, int(bi[0]), int(bf[0])

    def batch_boundary(self, engine, gen, inds, fits, best_ind, best_fit, cur):
        """Hook for :class:`BatchBehavioralGA`; arrays are ``(n, pop)``,
        ``cur`` is the per-replica orbit-position vector (mutated in place
        on RNG upsets and checkpoint rollback)."""
        from repro.rng.cellular_automaton import orbit_tables

        bank = engine.bank
        orbit, position = orbit_tables(bank.rule_vector, bank.width)

        def rng_get(r: int) -> int:
            return int(orbit[cur[r]])

        def rng_set(r: int, state: int) -> None:
            cur[r] = int(position[state])

        self._boundary(
            gen,
            engine.pop,
            inds,
            fits,
            best_ind,
            best_fit,
            rng_get,
            rng_set,
            engine._eval,
        )
        return inds, fits, best_ind, best_fit, cur

    # -- the pipeline ----------------------------------------------------
    def _boundary(
        self, gen, pop, inds, fits, best_ind, best_fit, rng_get, rng_set, eval_many
    ):
        cfg = self.config
        word_bits = cfg.word_bits
        n_evals = pop if gen == 0 else pop - 1
        col_base = 0 if gen == 0 else 1  # offspring columns start at 1
        rolled = np.zeros(self.n_replicas, dtype=bool)
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled

        for r in range(self.n_replicas):
            if self.hung[r]:
                continue
            u = self.injector.draw(r, pop, word_bits, n_evals)
            if u.empty:
                continue

            # -- FEM handshake faults --
            hang = False
            if u.fem_stuck:
                if cfg.watchdog and self.fallback_left[r] > 0:
                    self.fallback_left[r] -= 1
                    self.failovers[r] += 1
                    get_registry().counter("resilience.fem_failovers").inc()
                    if tracing:
                        tracer.event(
                            "resilience.failover",
                            replica=r,
                            generation=gen,
                            fallback_left=int(self.fallback_left[r]),
                        )
                else:
                    hang = True
            if not hang:
                for slot, kind, bit in u.fem_faults:
                    if kind == FEM_DROP:
                        if cfg.watchdog:
                            self.watchdog_retries[r] += 1
                            if tracing:
                                tracer.event(
                                    "resilience.watchdog_retry",
                                    replica=r,
                                    generation=gen,
                                )
                        else:
                            hang = True
                            break
                    else:
                        fits[r, col_base + slot] ^= np.int64(1) << bit
            if hang:
                self.hung[r] = True
                self.hang_gen[r] = gen
                self.best_at_hang[r] = best_fit[r]
                if tracing:
                    tracer.event(
                        "resilience.hang",
                        replica=r,
                        generation=gen,
                        best_at_hang=int(best_fit[r]),
                    )
                continue

            # -- memory upsets (through SECDED when armed) --
            if len(u.mem_slots):
                if cfg.secded:
                    rolled[r] = self._secded_memory_upsets(
                        r, gen, u, inds, fits, best_ind, best_fit, rng_set
                    )
                    if rolled[r]:
                        continue  # recovery consumes the boundary
                else:
                    packed = ((fits[r] & 0xFFFF) << 16) | (inds[r] & 0xFFFF)
                    np.bitwise_xor.at(
                        packed, u.mem_slots, np.int64(1) << u.mem_bits
                    )
                    inds[r] = packed & 0xFFFF
                    fits[r] = (packed >> 16) & 0xFFFF

            # -- RNG state upsets --
            for bit in u.rng_bits:
                state = rng_get(r) ^ (1 << int(bit))
                if state != 0:  # the all-zero lockup state is masked
                    rng_set(r, state)

            # -- best-register upsets --
            if len(u.best_bits):
                reg = ((int(best_fit[r]) & 0xFFFF) << 16) | (
                    int(best_ind[r]) & 0xFFFF
                )
                for bit in u.best_bits:
                    reg ^= 1 << int(bit)
                best_ind[r] = reg & 0xFFFF
                best_fit[r] = (reg >> 16) & 0xFFFF

        # -- elite re-evaluation guard + monotonic shadow register --
        if cfg.elite_guard:
            active = ~self.hung & ~rolled
            true_fit = np.asarray(eval_many(best_ind), dtype=np.int64)
            mismatch = active & (true_fit != best_fit)
            self.elite_repairs += mismatch
            best_fit[mismatch] = true_fit[mismatch]
            worse = active & (best_fit < self._shadow_fit)
            self.shadow_restores += worse
            best_ind[worse] = self._shadow_ind[worse]
            best_fit[worse] = self._shadow_fit[worse]
            update = active & ~worse
            self._shadow_ind[update] = best_ind[update]
            self._shadow_fit[update] = best_fit[update]
            if tracing:
                for r in np.flatnonzero(mismatch):
                    tracer.event(
                        "resilience.elite_repair",
                        replica=int(r),
                        generation=gen,
                        repaired_fitness=int(best_fit[r]),
                    )
                for r in np.flatnonzero(worse):
                    tracer.event(
                        "resilience.shadow_restore",
                        replica=int(r),
                        generation=gen,
                        restored_fitness=int(best_fit[r]),
                    )

        # -- checkpoint capture --
        if cfg.checkpoint_interval and gen % cfg.checkpoint_interval == 0:
            for r in range(self.n_replicas):
                if not self.hung[r] and not rolled[r]:
                    self._checkpoints[r] = (
                        gen,
                        inds[r].copy(),
                        fits[r].copy(),
                        int(best_ind[r]),
                        int(best_fit[r]),
                        rng_get(r),
                    )

    def _secded_memory_upsets(
        self, r, gen, u, inds, fits, best_ind, best_fit, rng_set
    ) -> bool:
        """Apply one replica's memory upsets through the SECDED codec.

        Returns True when a detected-uncorrectable word triggered a
        checkpoint rollback (the caller then skips the rest of the
        boundary for this replica).
        """
        cfg = self.config
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        slots = np.unique(u.mem_slots)
        words = ((fits[r, slots] & 0xFFFF) << 16) | (inds[r, slots] & 0xFFFF)
        codes = secded_encode(words)
        np.bitwise_xor.at(
            codes, np.searchsorted(slots, u.mem_slots), np.int64(1) << u.mem_bits
        )
        _fixed, data, status = secded_scrub(codes)
        n_corrected = int((status == STATUS_CORRECTED).sum())
        self.corrected[r] += n_corrected
        n_double = int((status == STATUS_DOUBLE).sum())
        if n_corrected:
            get_registry().counter("resilience.seu_corrected").inc(n_corrected)
        if tracing and (n_corrected or n_double):
            tracer.event(
                "resilience.secded",
                replica=r,
                generation=gen,
                corrected=n_corrected,
                double=n_double,
            )
        if n_double:
            get_registry().counter("resilience.seu_double").inc(n_double)
            self.detected_double[r] += n_double
            checkpoint = self._checkpoints[r]
            if (
                cfg.checkpoint_interval
                and checkpoint is not None
                and self.rollbacks[r] < cfg.max_rollbacks
            ):
                ck_gen, ck_inds, ck_fits, ck_bi, ck_bf, ck_rng = checkpoint
                inds[r] = ck_inds
                fits[r] = ck_fits
                best_ind[r] = ck_bi
                best_fit[r] = ck_bf
                self._shadow_ind[r] = ck_bi
                self._shadow_fit[r] = ck_bf
                rng_set(r, ck_rng)
                self.rollbacks[r] += 1
                self.generations_lost[r] += gen - ck_gen
                get_registry().counter("resilience.rollbacks").inc()
                if tracing:
                    tracer.event(
                        "resilience.rollback",
                        replica=r,
                        generation=gen,
                        checkpoint_generation=ck_gen,
                        generations_lost=gen - ck_gen,
                    )
                return True
            self.accepted_uncorrectable[r] += n_double
        inds[r, slots] = data & 0xFFFF
        fits[r, slots] = (data >> 16) & 0xFFFF
        return False

    # -- checkpoint persistence ------------------------------------------
    def export_checkpoints(self) -> list[dict | None]:
        """Every replica's last checkpoint through the module codec
        (``None`` where no checkpoint was captured yet) — the persistable
        form the serving layer's spill store also uses."""
        return [
            None if ck is None else encode_checkpoint(*ck)
            for ck in self._checkpoints
        ]

    def restore_checkpoints(self, encoded: list[dict | None]) -> None:
        """Reload checkpoints exported by :meth:`export_checkpoints`."""
        if len(encoded) != self.n_replicas:
            raise ValueError(
                f"expected {self.n_replicas} checkpoints, got {len(encoded)}"
            )
        self._checkpoints = [
            None if data is None else decode_checkpoint(data)
            for data in encoded
        ]

    # -- reporting -------------------------------------------------------
    def outcomes(self, results) -> list[dict]:
        """Per-replica outcome dicts, combining harness state with the
        engine's :class:`GAResult` list (``best_at_hang`` replaces the
        engine's best for hung replicas — the application never saw more)."""
        out = []
        for r in range(self.n_replicas):
            hung = bool(self.hung[r])
            out.append(
                {
                    "completed": not hung,
                    "hang_gen": int(self.hang_gen[r]) if hung else None,
                    "final_best": int(self.best_at_hang[r])
                    if hung
                    else int(results[r].best_fitness),
                    "corrected": int(self.corrected[r]),
                    "detected_double": int(self.detected_double[r]),
                    "accepted_uncorrectable": int(self.accepted_uncorrectable[r]),
                    "rollbacks": int(self.rollbacks[r]),
                    "generations_lost": int(self.generations_lost[r]),
                    "elite_repairs": int(self.elite_repairs[r]),
                    "shadow_restores": int(self.shadow_restores[r]),
                    "watchdog_retries": int(self.watchdog_retries[r]),
                    "failovers": int(self.failovers[r]),
                }
            )
        return out


# ---------------------------------------------------------------------------
# cycle-accurate hardening components
# ---------------------------------------------------------------------------

class SECDEDGAMemory(GAMemory):
    """GA memory whose backing array holds 39-bit SECDED codewords.

    The GA core is oblivious: writes are encoded on the way in, reads are
    decoded — with single-bit correction — on the way out.  Read-path
    correction does not write back (that is the scrubber's job), exactly
    like a block-RAM ECC wrapper.  ``corrected``/``double_errors`` count
    read-path events for the campaign report.
    """

    def __init__(self, ports: GAPorts, name: str = "ga_memory_secded"):
        super().__init__(ports, name)
        self.corrected = 0
        self.double_errors = 0

    @property
    def width(self) -> int:
        # resource accounting sees the real stored word, parity included
        return CODEWORD_BITS

    def clock(self) -> None:
        addr = self.addr.value % self.depth
        if self.wr.value:
            word = self.din.value
            self._pending_write = (addr, int(secded_encode(word)))
            self.drive(self.dout, word)
        else:
            self._pending_write = None
            _fixed, data, status = secded_scrub(self.data[addr])
            if status == STATUS_CORRECTED:
                self.corrected += 1
            elif status == STATUS_DOUBLE:
                self.double_errors += 1
            self.drive(self.dout, data)

    def population(self, bank: int, size: int) -> list[tuple[int, int]]:
        base = bank_address(bank, 0)
        return [
            unpack_word(int(secded_extract(self.data[base + i])))
            for i in range(size)
        ]

    def reset(self) -> None:
        super().reset()
        self.corrected = 0
        self.double_errors = 0


class MemoryScrubber(Component):
    """Background SECDED scrubber walking one word per enabled cycle.

    Models the ECC scrub engine of radiation-tolerant block-RAM wrappers:
    it reads a word through a backdoor port (the data array), corrects a
    single-bit error in place, and flags uncorrectable words.  ``interval``
    slows the walk (one word every ``interval`` of this component's clock
    edges) to model a low-priority scrub port.
    """

    def __init__(self, memory: SECDEDGAMemory, interval: int = 1, name: str = "scrubber"):
        super().__init__(name)
        if interval < 1:
            raise ValueError("scrub interval must be >= 1")
        self.memory = memory
        self.interval = interval
        self.scan_addr = 0
        self.countdown = interval
        self.words_scrubbed = 0
        self.corrected = 0
        self.uncorrectable = 0

    def clock(self) -> None:
        self.countdown -= 1
        if self.countdown > 0:
            return
        self.countdown = self.interval
        addr = self.scan_addr
        fixed, _data, status = secded_scrub(self.memory.data[addr])
        if status == STATUS_CORRECTED:
            self.memory.data[addr] = int(fixed)
            self.corrected += 1
        elif status == STATUS_DOUBLE:
            self.uncorrectable += 1
        self.words_scrubbed += 1
        self.scan_addr = (addr + 1) % self.memory.depth

    def reset(self) -> None:
        super().reset()
        self.scan_addr = 0
        self.countdown = self.interval
        self.words_scrubbed = 0
        self.corrected = 0
        self.uncorrectable = 0


class FEMWatchdog(Component):
    """Handshake watchdog: timeout -> bounded retry -> mux failover.

    Watches ``fit_request``/``fit_valid`` on the GA side of the mux.  A
    request outstanding for ``timeout`` cycles is a timeout; the watchdog
    retries (keeps the latency-insensitive request asserted while
    restarting its timer, with the timeout doubled each retry as backoff)
    up to ``max_retries`` times, then fails over: it repoints
    ``fitfunc_select`` at the next slot of ``fallback_order``.  A response
    from a revived FEM at any point clears the timer.
    """

    def __init__(
        self,
        fit_request: Signal,
        fit_valid: Signal,
        select: Signal,
        fallback_order: list[int],
        timeout: int = 64,
        max_retries: int = 2,
        name: str = "fem_watchdog",
    ):
        super().__init__(name)
        self.fit_request = fit_request
        self.fit_valid = fit_valid
        self.select = select
        self.fallback_order = list(fallback_order)
        self.timeout = timeout
        self.max_retries = max_retries
        self.waited = 0
        self.retries = 0
        self.timeouts = 0
        self.failovers = 0
        self._fallback_cursor = 0

    def clock(self) -> None:
        if not self.fit_request.value or self.fit_valid.value:
            self.waited = 0
            self.retries = 0
            return
        self.waited += 1
        # exponential backoff: each retry doubles the allowance
        if self.waited < self.timeout << self.retries:
            return
        self.timeouts += 1
        self.waited = 0
        if self.retries < self.max_retries:
            self.retries += 1
            return
        self.retries = 0
        if self._fallback_cursor < len(self.fallback_order):
            slot = self.fallback_order[self._fallback_cursor]
            self._fallback_cursor += 1
            self.failovers += 1
            self.select.poke(slot)

    def reset(self) -> None:
        super().reset()
        self.waited = 0
        self.retries = 0
        self.timeouts = 0
        self.failovers = 0
        self._fallback_cursor = 0


@dataclass
class CycleResilienceOptions:
    """Hardening/injection bundle for :class:`~repro.core.system.GASystem`.

    ``injector`` is an optional
    :class:`~repro.resilience.seu.CycleSEUInjector`; ``secded`` swaps the
    GA memory for :class:`SECDEDGAMemory`; ``scrub_interval`` > 0 adds a
    :class:`MemoryScrubber` (requires ``secded``); ``watchdog`` adds a
    :class:`FEMWatchdog` failing over through ``fallback_order`` (defaults
    to every configured FEM slot above the initial selection).
    """

    injector: object | None = None
    secded: bool = False
    scrub_interval: int = 0
    watchdog: bool = False
    watchdog_timeout: int = 64
    watchdog_retries: int = 2
    fallback_order: list[int] | None = None
