"""True-RNG simulation: clock-jitter entropy with von Neumann whitening.

Sec. II-C: "'True' random numbers can be generated using specialized
hardware that extracts the random numbers from a nondeterministic source
such as clock jitter in digital circuits [18] ... Applications that require
a quick response and cannot afford the high area overhead of true RNGs will
use PRNGs."

We cannot sample real jitter, so the entropy source is a simulated
ring-oscillator pair: a fast oscillator sampled by a jittery slow clock
whose period wanders with Gaussian noise.  The raw sampled bits are biased
and correlated (as real jitter TRNGs are); the classic von Neumann
corrector whitens them at the classic throughput cost — which is exactly
the "quick response" trade-off the paper cites for choosing a CA PRNG.

The simulation is seeded (reproducible) but the *consumer-visible*
characteristics — bias before/after correction, throughput ratio — mirror
the physical device.
"""

from __future__ import annotations

import numpy as np

from repro.rng.base import RandomSource


class JitterEntropySource:
    """Simulated ring-oscillator sampling with clock jitter."""

    def __init__(
        self,
        sim_seed: int = 1,
        fast_period: float = 1.0,
        slow_period: float = 97.3,
        jitter_sigma: float = 2.5,
        bias: float = 0.52,
    ):
        """``bias`` models the duty-cycle asymmetry of the sampled
        oscillator (real sources are never exactly 50/50)."""
        self._rng = np.random.default_rng(sim_seed)
        self.fast_period = fast_period
        self.slow_period = slow_period
        self.jitter_sigma = jitter_sigma
        self.bias = bias
        self._time = 0.0

    def raw_bits(self, n: int) -> np.ndarray:
        """Sample ``n`` raw (biased, possibly correlated) bits."""
        jitter = self._rng.normal(0.0, self.jitter_sigma, size=n)
        periods = np.maximum(self.slow_period + jitter, self.fast_period)
        times = self._time + np.cumsum(periods)
        self._time = float(times[-1])
        phase = (times / self.fast_period) % 1.0
        return (phase < self.bias).astype(np.uint8)


def von_neumann(bits: np.ndarray) -> np.ndarray:
    """Von Neumann corrector: consume bit pairs, emit 0 for '01', 1 for
    '10', drop '00'/'11'.  Removes bias at ~4x raw-bit cost."""
    pairs = bits[: len(bits) // 2 * 2].reshape(-1, 2)
    keep = pairs[:, 0] != pairs[:, 1]
    return pairs[keep, 0]


class TrueRNG(RandomSource):
    """16-bit word interface over the whitened jitter source.

    The ``seed`` seeds the *simulation* (for test reproducibility); a real
    TRNG has no seed — which is why the GA core cannot use one when
    deterministic replay is required.
    """

    def __init__(self, seed: int = 1, **source_kwargs):
        self.source = JitterEntropySource(sim_seed=seed, **source_kwargs)
        self._pool = np.empty(0, dtype=np.uint8)
        self.raw_consumed = 0
        super().__init__(seed if seed != 0 else 1)
        self.state = self._word()

    def _refill(self, need: int) -> None:
        while len(self._pool) < need:
            raw = self.source.raw_bits(4 * (need - len(self._pool)) + 64)
            self.raw_consumed += len(raw)
            self._pool = np.concatenate([self._pool, von_neumann(raw)])

    def _word(self) -> int:
        self._refill(16)
        bits, self._pool = self._pool[:16], self._pool[16:]
        return int(sum(int(b) << i for i, b in enumerate(bits)))

    def _advance(self, state: int) -> int:
        return self._word()

    @property
    def whitening_efficiency(self) -> float:
        """Fraction of raw bits surviving correction (~0.25 for a mildly
        biased source) — the area/latency overhead the paper alludes to."""
        emitted = self.draws * 16 + len(self._pool)
        return emitted / self.raw_consumed if self.raw_consumed else 0.0

    def state_key(self) -> int:
        # A TRNG never cycles; make every state unique for period probes.
        return self.draws
