"""Datapath + controller generation: the back end of the mini-HLS flow.

Produces a flat sequential gate netlist that executes the scheduled DFG:

* a **one-hot ring controller** with one state per control step plus a
  commit state (the style AUDI's FSM generator emits);
* a **result register** per computational value, enabled in its producing
  state;
* **shared functional units** for the expensive classes (adder/subtractor
  ALU, comparator) with state-gated AND-OR operand multiplexers — the
  "simple components such as adders, multiplexers" the paper's datapath is
  built from; cheap bitwise/mux ops are inlined (their sharing muxes would
  cost more than the operators);
* **output registers** loaded in the commit state, so results are stable
  for a full schedule period.

The synthesized netlist is verified against :meth:`repro.hls.dfg.DFG.evaluate`
(hypothesis property tests) and feeds the same scan/fault/resource/export
tooling as the hand-built GA datapath.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.gates import DFF, GateType
from repro.hdl.netlist import Netlist
from repro.hdl.rtlib import (
    const_word,
    mux2_word,
    not_word,
    ripple_adder,
    xor_word,
    and_word,
    or_word,
    less_than,
    equals,
)
from repro.hls.allocate import Allocation, allocate
from repro.hls.dfg import DFG, OpType, WORD
from repro.hls.schedule import ResourceConstraints, Schedule, asap, list_schedule


@dataclass
class SynthesisResult:
    """A synthesized design plus its HLS reports."""

    netlist: Netlist
    schedule: Schedule
    allocation: Allocation

    @property
    def latency(self) -> int:
        """Clock cycles from start until outputs are committed."""
        return self.schedule.length + 1


def synthesize(
    dfg: DFG,
    resources: ResourceConstraints | None = None,
    schedule: Schedule | None = None,
) -> SynthesisResult:
    """Run schedule -> allocate -> generate for a DFG."""
    if schedule is None:
        schedule = (
            list_schedule(dfg, resources) if resources is not None else asap(dfg)
        )
    allocation = allocate(schedule)
    netlist = _generate(dfg, schedule, allocation)
    return SynthesisResult(netlist=netlist, schedule=schedule, allocation=allocation)


# ----------------------------------------------------------------------
def _generate(dfg: DFG, schedule: Schedule, allocation: Allocation) -> Netlist:
    nl = Netlist(f"hls_{dfg.name}")
    n_states = schedule.length + 1  # + commit state

    # --- primary inputs and constants -----------------------------------
    sources: dict[int, list[int]] = {}
    for op in dfg.ops:
        if op.type == OpType.INPUT:
            sources[op.index] = nl.add_input(op.name, WORD)
        elif op.type == OpType.CONST:
            sources[op.index] = const_word(nl, op.value, WORD)

    # --- one-hot ring controller -----------------------------------------
    states = [nl.net(f"state[{s}]") for s in range(n_states)]
    for s in range(n_states):
        prev = states[(s - 1) % n_states]
        nl.dffs.append(DFF(d=prev, q=states[s], init=1 if s == 0 else 0,
                           name=f"fsm[{s}]"))
        nl._driven.add(states[s])

    # --- result registers (allocated lazily, after FU outputs exist) ------
    # register nets first so consumers can reference them
    reg_nets: dict[int, list[int]] = {}
    for op in dfg.computational_ops:
        reg_nets[op.index] = [
            nl.net(f"v{op.index}[{b}]") for b in range(op.width)
        ]

    def value_nets(index: int, width: int = WORD) -> list[int]:
        """Operand nets, zero-padded/truncated to the requested width."""
        op = dfg.ops[index]
        nets = sources[index] if op.is_source else reg_nets[index]
        if len(nets) < width:
            zero = const_word(nl, 0, 1)[0]
            nets = list(nets) + [zero] * (width - len(nets))
        return nets[:width]

    # --- shared FUs: ALU (add/sub) and comparator -------------------------
    fu_result: dict[int, list[int]] = {}  # op index -> FU output nets

    def state_or(indices: list[int]) -> int:
        """OR of the given state nets (CONST0 when empty)."""
        if not indices:
            return nl.add_gate(GateType.CONST0)
        acc = states[indices[0]]
        for s in indices[1:]:
            acc = nl.add_gate(GateType.OR, acc, states[s])
        return acc

    def operand_mux(entries: list[tuple[int, list[int]]], width: int) -> list[int]:
        """State-gated AND-OR mux: entries are (step, source nets)."""
        out = []
        for b in range(width):
            terms = [
                nl.add_gate(GateType.AND, states[step], nets[b])
                for step, nets in entries
            ]
            acc = terms[0]
            for t in terms[1:]:
                acc = nl.add_gate(GateType.OR, acc, t)
            out.append(acc)
        return out

    shared: dict[tuple[str, int], list[int]] = {}
    for (fu_class, slot) in sorted(set(allocation.binding.values())):
        if fu_class not in ("alu", "cmp"):
            continue
        op_indices = allocation.ops_on_unit(fu_class, slot)
        entries_a = [
            (schedule.steps[i], value_nets(dfg.ops[i].operands[0])) for i in op_indices
        ]
        entries_b = [
            (schedule.steps[i], value_nets(dfg.ops[i].operands[1])) for i in op_indices
        ]
        in_a = operand_mux(entries_a, WORD) if len(entries_a) > 1 else entries_a[0][1]
        in_b = operand_mux(entries_b, WORD) if len(entries_b) > 1 else entries_b[0][1]
        if fu_class == "alu":
            sub_steps = [
                schedule.steps[i] for i in op_indices if dfg.ops[i].type == OpType.SUB
            ]
            sub_sel = state_or(sub_steps)
            b_eff = [
                nl.add_gate(GateType.XOR, bit, sub_sel) for bit in in_b
            ]
            total, _ = ripple_adder(nl, in_a, b_eff, cin=sub_sel)
            for i in op_indices:
                fu_result[i] = total
        else:  # cmp
            lt = less_than(nl, in_a, in_b)
            eq = equals(nl, in_a, in_b)
            eq_steps = [
                schedule.steps[i] for i in op_indices if dfg.ops[i].type == OpType.EQ
            ]
            eq_sel = state_or(eq_steps)
            picked = mux2_word(nl, eq_sel, [lt], [eq])
            for i in op_indices:
                fu_result[i] = picked

    # --- inlined cheap ops -------------------------------------------------
    for op in dfg.computational_ops:
        if op.index in fu_result:
            continue
        if op.type == OpType.AND:
            fu_result[op.index] = and_word(
                nl, value_nets(op.operands[0]), value_nets(op.operands[1])
            )
        elif op.type == OpType.OR:
            fu_result[op.index] = or_word(
                nl, value_nets(op.operands[0]), value_nets(op.operands[1])
            )
        elif op.type == OpType.XOR:
            fu_result[op.index] = xor_word(
                nl, value_nets(op.operands[0]), value_nets(op.operands[1])
            )
        elif op.type == OpType.NOT:
            fu_result[op.index] = not_word(nl, value_nets(op.operands[0]))
        elif op.type == OpType.MUX:
            sel = value_nets(op.operands[0], 1)[0]
            fu_result[op.index] = mux2_word(
                nl, sel, value_nets(op.operands[1]), value_nets(op.operands[2])
            )
        else:
            raise AssertionError(f"unbound op {op.type}")

    # --- result registers with state enables ------------------------------
    for op in dfg.computational_ops:
        enable = states[schedule.steps[op.index]]
        result = fu_result[op.index][: op.width]
        for b, qnet in enumerate(reg_nets[op.index]):
            held = mux2_word(nl, enable, [qnet], [result[b]])[0]
            nl.dffs.append(DFF(d=held, q=qnet, init=0, name=f"v{op.index}[{b}]"))
            nl._driven.add(qnet)

    # --- output registers committed in the final state ---------------------
    commit = states[n_states - 1]
    for op in dfg.ops:
        if op.type != OpType.OUTPUT:
            continue
        src = value_nets(op.operands[0], WORD)
        out_nets = []
        for b in range(WORD):
            qnet = nl.net(f"{op.name}[{b}]")
            held = mux2_word(nl, commit, [qnet], [src[b]])[0]
            nl.dffs.append(DFF(d=held, q=qnet, init=0, name=f"{op.name}[{b}]"))
            nl._driven.add(qnet)
            out_nets.append(qnet)
        nl.add_output(op.name, out_nets)

    # expose the controller state for observability/debug
    nl.add_output("fsm_state", states)
    return nl
