"""Unit tests for the declarative Moore FSM helper."""

import pytest

from repro.hdl.fsm import MooreFSM
from repro.hdl.signal import Signal
from repro.hdl.simulator import Simulator


def test_transitions_follow_table():
    out = Signal("out", 4)
    fsm = MooreFSM(
        "seq",
        states={
            "A": lambda m: "B",
            "B": lambda m: "C",
            "C": lambda m: None,
        },
        initial="A",
    )
    sim = Simulator()
    sim.add(fsm)
    assert fsm.state == "A"
    sim.step()
    assert fsm.state == "B"
    sim.step()
    assert fsm.state == "C"
    sim.step()
    assert fsm.state == "C"


def test_action_can_drive_signals():
    out = Signal("out", 8)

    def emit(m):
        m.drive(out, 0x42)
        return None

    fsm = MooreFSM("d", {"S": emit}, initial="S")
    sim = Simulator()
    sim.add(fsm)
    sim.step()
    assert out.value == 0x42


def test_unknown_initial_state_rejected():
    with pytest.raises(ValueError):
        MooreFSM("x", {"A": lambda m: None}, initial="Z")


def test_transition_to_unknown_state_rejected():
    fsm = MooreFSM("x", {"A": lambda m: "NOPE"}, initial="A")
    sim = Simulator()
    sim.add(fsm)
    with pytest.raises(ValueError):
        sim.step()


def test_reset_returns_to_initial():
    fsm = MooreFSM("x", {"A": lambda m: "B", "B": lambda m: None}, initial="A")
    sim = Simulator()
    sim.add(fsm)
    sim.step()
    assert fsm.state == "B"
    sim.reset()
    assert fsm.state == "A"


def test_conditional_transition_on_signal():
    go = Signal("go", 1)
    fsm = MooreFSM(
        "hs",
        states={
            "WAIT": lambda m: "RUN" if go.value else None,
            "RUN": lambda m: None,
        },
        initial="WAIT",
    )
    sim = Simulator()
    sim.add(fsm)
    sim.step(3)
    assert fsm.state == "WAIT"
    go.poke(1)
    sim.step()
    assert fsm.state == "RUN"
