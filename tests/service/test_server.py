"""The TCP front end and the ``repro serve`` / ``repro submit`` CLI."""

import json
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core.params import GAParameters
from repro.service import (
    GARequest,
    GAService,
    ServiceError,
    ServiceTCPServer,
    submit_remote,
)
from repro.service.server import call

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def request(seed=45890, gens=8, pop=16) -> GARequest:
    return GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
        )
    )


@pytest.fixture()
def live_server():
    service = GAService(workers=1, mode="thread").start()
    server = ServiceTCPServer(service, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.endpoint
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        service.shutdown()


class TestTCPServer:
    def test_ping(self, live_server):
        host, port = live_server
        assert call(host, port, {"op": "ping"}) == {"ok": True, "op": "ping"}

    def test_submit_round_trip_returns_full_result(self, live_server):
        host, port = live_server
        result = submit_remote(host, port, request(), timeout=30)
        assert result.best_fitness >= 0
        assert len(result.history) == 8 + 1  # gen 0 .. gens

    def test_metrics_op_reflects_served_jobs(self, live_server):
        host, port = live_server
        submit_remote(host, port, request(seed=10593), timeout=30)
        response = call(host, port, {"op": "metrics"})
        assert response["ok"]
        assert response["metrics"]["jobs"]["completed"] >= 1

    def test_unknown_op_and_malformed_json_are_soft_errors(self, live_server):
        host, port = live_server
        bad_op = call(host, port, {"op": "explode"})
        assert not bad_op["ok"] and bad_op["error"]["kind"] == "BadRequest"
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"this is not json\n")
            line = sock.makefile("r").readline()
        response = json.loads(line)
        assert not response["ok"]
        assert response["error"]["kind"] == "MalformedJSON"
        assert "detail" in response["error"]

    def test_remote_rejection_surfaces_as_service_error(self):
        # a closed service rejects submissions; the client must see a
        # ServiceError naming the remote failure, not a silent hang
        service = GAService(workers=1, mode="thread").start()
        service.shutdown(drain=True)
        server = ServiceTCPServer(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.endpoint
            with pytest.raises(ServiceError, match="ServiceClosedError"):
                submit_remote(host, port, request(), timeout=10)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestCLIRoundTrip:
    def test_serve_then_submit_subprocesses(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        server = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--max-jobs", "1", "--workers", "1", "--mode", "thread",
            ],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env, cwd=REPO_ROOT,
        )
        try:
            banner = server.stdout.readline().strip()
            assert banner.startswith("serving on ")
            host, port = banner.split()[-1].rsplit(":", 1)
            submit = subprocess.run(
                [
                    sys.executable, "-m", "repro", "submit",
                    "--host", host, "--port", port,
                    "--pop", "16", "--gens", "8", "--seed", "45890",
                ],
                capture_output=True, text=True, env=env, cwd=REPO_ROOT,
                timeout=60,
            )
            assert submit.returncode == 0, submit.stderr
            assert "best" in submit.stdout
            assert server.wait(timeout=30) == 0  # --max-jobs 1 exits cleanly
        finally:
            if server.poll() is None:
                server.kill()
                server.wait()
