"""Table IX — mShubert2D best fitness; multiple global optima found.

The 24 cells run as one batched sweep (``run_fpga_table`` fans them into
two :class:`BatchBehavioralGA` calls, one per population size)."""

import pytest

from conftest import print_table
from repro.experiments.table789 import run_fpga_table


@pytest.mark.benchmark(group="table9")
def test_table9_shubert_grid(benchmark):
    report = benchmark.pedantic(
        run_fpga_table, args=("mShubert2D",), rounds=1, iterations=1
    )
    keys = ["seed", "pop32/XR10", "pop32/XR12", "pop64/XR10", "pop64/XR12",
            "paper_pop64/XR10"]
    print_table("Table IX (mShubert2D, optimum 65535)", report["rows"], keys)
    print(f"optimum hits: {report['optimum_hits']}")

    # Paper claim: the global optimum 65,535 is found (bold cells in
    # Table IX).  The paper's function has 48 global optima and hits ~6 of
    # 24 cells; our reconstruction has 4 optima (see MShubert2D docstring),
    # so proportionally fewer cells hit — at least one must.
    assert report["gap_pct"] == 0.0
    assert len(report["optimum_hits"]) >= 1
