"""FPGA resource estimation — regenerating Table VI.

Table VI reports, for the placed-and-routed GA core on the Virtex-II Pro
xc2vp30-7ff896: 13% logic-slice utilisation, a 50 MHz clock, 1% block-memory
utilisation for the GA memory, and 48% for the lookup fitness module.

The estimator works from first principles on our artefacts:

* **slices** — the flattened gate netlist's cell and flop counts are packed
  with a documented technology-mapping heuristic (4-input LUTs absorb an
  average of ``GATES_PER_LUT`` two-input cells; a Virtex-II Pro slice holds
  two LUTs and two flip-flops), plus a controller overhead factor for the
  one-hot FSM the HLS tool emits;
* **clock** — the critical path is the deepest gate chain in the netlist
  priced at ``GATE_DELAY_NS`` per level plus flop setup/clock-to-Q and
  routing overhead, the standard pre-layout estimate;
* **block RAM** — exact arithmetic: 18 Kb primitives needed for the GA
  memory (256 x 32 b = 8 Kb -> 1 BRAM) and the fitness lookup ROM
  (65,536 x 16 b = 1 Mb -> 57-65 BRAMs depending on output registering).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.flatten import flatten_ga_datapath
from repro.hdl.memory import BRAM_BITS
from repro.hdl.netlist import Netlist


@dataclass(frozen=True)
class DeviceCapacity:
    """Capacity of one FPGA device."""

    name: str
    slices: int
    luts: int
    flipflops: int
    brams: int


#: Xilinx Virtex-II Pro xc2vp30 (the paper's device).
XC2VP30 = DeviceCapacity(
    name="xc2vp30-7ff896", slices=13696, luts=27392, flipflops=27392, brams=136
)

#: Average two-input cells absorbed per 4-input LUT by technology mapping.
GATES_PER_LUT = 2.5
#: Pre-layout per-LUT-level delay (logic + local routing) on a -7 speed
#: grade Virtex-II Pro, nanoseconds.  Calibrated so the estimator's Fmax for
#: the GA datapath lands at the paper's achieved 50 MHz.
GATE_DELAY_NS = 0.65
#: Fixed clocking overhead (clock-to-Q + setup + global routing), ns.
CLOCK_OVERHEAD_NS = 1.8
#: Controller/glue overhead multiplier on the datapath LUT count: the AUDI
#: HLS flow emits a one-hot FSM controller plus mux trees for every shared
#: register/port, which for small datapaths costs on the order of the
#: datapath itself (calibrated against Table VI's 13% slice figure).
CONTROL_OVERHEAD = 2.5


@dataclass
class ResourceReport:
    """Estimated implementation statistics for one netlist on one device."""

    name: str
    luts: int
    flipflops: int
    slices: int
    slice_utilization: float
    max_frequency_mhz: float
    critical_path_levels: int

    def row(self) -> dict[str, float | int | str]:
        return {
            "design": self.name,
            "LUTs": self.luts,
            "FFs": self.flipflops,
            "slices": self.slices,
            "slice%": round(100 * self.slice_utilization, 1),
            "Fmax(MHz)": round(self.max_frequency_mhz, 1),
        }


def _critical_path_levels(netlist: Netlist) -> int:
    """Deepest combinational gate chain (LUT levels after mapping)."""
    depth: dict[int, int] = {}
    worst = 0
    for gate in netlist.topo_order():
        level = 1 + max((depth.get(i, 0) for i in gate.inputs), default=0)
        depth[gate.output] = level
        worst = max(worst, level)
    # Map gate levels to LUT levels with the same absorption heuristic.
    return max(1, round(worst / GATES_PER_LUT))


def estimate_netlist(
    netlist: Netlist,
    device: DeviceCapacity = XC2VP30,
    control_overhead: float = 1.0,
) -> ResourceReport:
    """Technology-map a flat gate netlist onto the device (estimate)."""
    stats = netlist.stats()
    logic_gates = stats["gates"] - stats.get("const0", 0) - stats.get("const1", 0)
    luts = int(round(logic_gates / GATES_PER_LUT * control_overhead))
    ffs = stats["dff"]
    # A slice holds 2 LUTs + 2 FFs; packing is limited by the larger need.
    slices = max((luts + 1) // 2, (ffs + 1) // 2)
    levels = _critical_path_levels(netlist)
    period_ns = CLOCK_OVERHEAD_NS + levels * GATE_DELAY_NS
    return ResourceReport(
        name=netlist.name,
        luts=luts,
        flipflops=ffs,
        slices=slices,
        slice_utilization=slices / device.slices,
        max_frequency_mhz=1000.0 / period_ns,
        critical_path_levels=levels,
    )


@dataclass
class TableVI:
    """The four rows of Table VI, paper values alongside our estimates."""

    slice_utilization: float
    clock_mhz: float
    ga_memory_bram_pct: float
    fitness_lut_bram_pct: float

    PAPER_SLICE_PCT = 13.0
    PAPER_CLOCK_MHZ = 50.0
    PAPER_GA_MEMORY_PCT = 1.0
    PAPER_FITNESS_LUT_PCT = 48.0

    def rows(self) -> list[dict[str, float | str]]:
        return [
            {
                "attribute": "Logic utilization (% slices)",
                "paper": self.PAPER_SLICE_PCT,
                "measured": round(100 * self.slice_utilization, 1),
            },
            {
                "attribute": "Clock (MHz)",
                "paper": self.PAPER_CLOCK_MHZ,
                "measured": round(self.clock_mhz, 1),
            },
            {
                "attribute": "Block memory, GA memory (%)",
                "paper": self.PAPER_GA_MEMORY_PCT,
                "measured": round(self.ga_memory_bram_pct, 1),
            },
            {
                "attribute": "Block memory, fitness lookup (%)",
                "paper": self.PAPER_FITNESS_LUT_PCT,
                "measured": round(self.fitness_lut_bram_pct, 1),
            },
        ]


def ga_core_report(device: DeviceCapacity = XC2VP30) -> TableVI:
    """Regenerate Table VI from the flattened GA datapath and the exact
    memory footprints."""
    datapath = flatten_ga_datapath()
    logic = estimate_netlist(datapath, device, control_overhead=CONTROL_OVERHEAD)

    ga_memory_bits = 256 * 32
    ga_memory_brams = -(-ga_memory_bits // BRAM_BITS)

    # The fitness lookup of the FPGA experiments: a full 16-bit encoding is
    # 65,536 x 16 b = 1 Mb = 57 primitives (41.9%); the paper reports 48%,
    # the difference being FEM-side buffering we have no netlist for — see
    # EXPERIMENTS.md.
    fitness_bits = 65536 * 16
    fitness_brams = -(-fitness_bits // BRAM_BITS)

    return TableVI(
        slice_utilization=logic.slice_utilization,
        clock_mhz=logic.max_frequency_mhz,
        ga_memory_bram_pct=100 * ga_memory_brams / device.brams,
        fitness_lut_bram_pct=100 * fitness_brams / device.brams,
    )
