"""Metrics registry: instruments, percentile edge cases, concurrency.

Includes the ServiceMetrics edge-case tests the issue calls out (p50/p95
with zero and one latency sample must be well-defined, not NaN or an
IndexError) and a concurrency test hammering one registry from the same
thread pool the serving layer uses for slab chunks.
"""

import concurrent.futures
import json

import pytest

from repro.core.params import GAParameters
from repro.obs import (
    MetricsRegistry,
    engine_rates,
    get_registry,
    percentile,
    record_engine_run,
)
from repro.service import BatchPolicy, GARequest, GAService
from repro.service.metrics import ServiceMetrics
from repro.service.metrics import percentile as service_percentile


# -- percentile edge cases ------------------------------------------------
def test_percentile_empty_is_zero():
    for q in (0, 50, 95, 100):
        assert percentile([], q) == 0.0


def test_percentile_single_sample_is_itself():
    for q in (0, 50, 95, 100):
        assert percentile([7.5], q) == 7.5


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 50) == 3.0
    assert percentile(values, 100) == 5.0


def test_service_metrics_reexports_percentile():
    # historical import path used by older analysis snippets
    assert service_percentile is percentile


# -- instruments ----------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    c = reg.counter("c")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.counter("c") is c  # get-or-create is idempotent

    g = reg.gauge("g")
    g.set(3)
    g.set(1)
    assert g.value == 1 and g.max == 3

    h = reg.histogram("h")
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.count == 3 and h.sum == 6.0 and h.max == 3.0
    assert h.mean == 2.0 and h.quantile(50) == 2.0


def test_histogram_summary_empty_and_single():
    reg = MetricsRegistry()
    empty = reg.histogram("empty").summary()
    assert empty == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    h = reg.histogram("one")
    h.observe(0.25)
    single = h.summary()
    assert single["count"] == 1
    assert single["mean"] == single["p50"] == single["p95"] == single["max"] == 0.25


def test_histogram_reservoir_caps_samples_but_not_totals():
    reg = MetricsRegistry()
    h = reg.histogram("capped", max_samples=10)
    for i in range(25):
        h.observe(float(i))
    assert len(h.samples) == 10
    assert h.count == 25 and h.sum == sum(range(25)) and h.max == 24.0


def test_snapshot_shape_and_reset():
    reg = MetricsRegistry()
    reg.counter("a").inc(2)
    reg.gauge("b").set(7)
    reg.histogram("c").observe(1.0)
    snap = reg.snapshot()
    json.dumps(snap)
    assert snap["counters"] == {"a": 2}
    assert snap["gauges"]["b"] == {"value": 7, "max": 7}
    assert snap["histograms"]["c"]["count"] == 1
    assert snap["uptime_s"] >= 0
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == {} and snap["gauges"] == {} and snap["histograms"] == {}


def test_record_engine_run_and_rates():
    reg = MetricsRegistry()
    record_engine_run(64, 1024, 0.5, registry=reg)
    record_engine_run(32, 512, 0.25, registry=reg)
    assert reg.counter("engine.runs").value == 2
    assert reg.counter("engine.generations").value == 96
    assert reg.counter("engine.evaluations").value == 1536
    assert reg.histogram("engine.run_seconds").count == 2
    rates = engine_rates(registry=reg)
    assert rates["runs"] == 2
    assert rates["generations_per_s"] > 0


def test_record_archipelago_run_and_rates():
    from repro.obs import archipelago_rates, record_archipelago_run

    reg = MetricsRegistry()
    record_archipelago_run(256, 64, 8, 256 * 7, 0.5, registry=reg)
    record_archipelago_run(4, 16, 2, 4, 0.1, registry=reg)
    assert reg.counter("island.runs").value == 2
    assert reg.counter("island.islands").value == 260
    assert reg.counter("island.island_generations").value == 256 * 64 + 64
    assert reg.counter("island.epochs").value == 10
    assert reg.counter("island.migrations").value == 256 * 7 + 4
    assert reg.histogram("island.run_seconds").count == 2
    rates = archipelago_rates(registry=reg)
    assert rates["runs"] == 2
    assert rates["islands"] == 260
    assert rates["migrations"] == 256 * 7 + 4
    assert rates["island_generations_per_s"] > 0


def test_archipelago_run_records_into_default_registry():
    from repro.obs import REGISTRY, archipelago_rates
    from repro.core.params import GAParameters
    from repro.fitness.functions import by_name
    from repro.parallel import VectorIslandGA

    before = REGISTRY.counter("island.runs").value
    VectorIslandGA(
        GAParameters(
            n_generations=6, population_size=8, crossover_threshold=10,
            mutation_threshold=2, rng_seed=3,
        ),
        by_name("F3"),
        n_islands=3,
        migration_interval=3,
    ).run()
    assert REGISTRY.counter("island.runs").value == before + 1
    assert archipelago_rates()["runs"] >= 1


# -- concurrency ----------------------------------------------------------
def test_registry_totals_exact_under_thread_hammering():
    reg = MetricsRegistry()
    n_threads, per_thread = 8, 2000

    def hammer(k):
        c = reg.counter("hits")
        h = reg.histogram("lat")
        g = reg.gauge("depth")
        for i in range(per_thread):
            c.inc()
            h.observe(float(i))
            g.set(i)

    with concurrent.futures.ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(hammer, range(n_threads)))
    assert reg.counter("hits").value == n_threads * per_thread
    assert reg.histogram("lat").count == n_threads * per_thread
    assert reg.gauge("depth").max == per_thread - 1


def test_slab_chunk_profile_recorded_from_worker_pool_threads():
    """Thread-mode service workers record chunk timings into the process
    registry concurrently; every dispatched chunk must land exactly once."""
    hist = get_registry().histogram("profile.service.slab_chunk")
    before = hist.count
    jobs = [
        GARequest(
            params=GAParameters(
                n_generations=24, population_size=16,
                crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
            ),
            fitness_name="mBF6_2",
        )
        for seed in (45890, 10593, 1567, 777)
    ]
    policy = BatchPolicy(max_batch=2, max_wait_s=0.005, admit_interval=6)
    with GAService(workers=3, mode="thread", policy=policy) as service:
        service.run_all(jobs, timeout=60)
        chunks = service.metrics.chunks
    assert chunks > 0
    assert hist.count - before == chunks


# -- ServiceMetrics on its private registry -------------------------------
def test_service_metrics_latency_percentiles_no_samples():
    metrics = ServiceMetrics(max_batch=4)
    snap = metrics.snapshot()
    lat = snap["latency"]
    assert lat["p50_ms"] == lat["p95_ms"] == lat["max_ms"] == 0.0
    assert lat["mean_wait_ms"] == 0.0
    assert snap["batching"]["mean_occupancy"] == 0.0
    json.dumps(snap)


def test_service_metrics_latency_percentiles_single_sample():
    metrics = ServiceMetrics(max_batch=4)
    metrics.job_completed(latency_s=0.050, wait_s=0.010)
    lat = metrics.snapshot()["latency"]
    assert lat["p50_ms"] == lat["p95_ms"] == lat["max_ms"] == pytest.approx(50.0)
    assert lat["mean_wait_ms"] == pytest.approx(10.0)


def test_service_metrics_public_surface_matches_recorded_activity():
    metrics = ServiceMetrics(max_batch=8)
    metrics.job_submitted(depth=3)
    metrics.job_submitted(depth=5)
    metrics.job_rejected()
    metrics.chunk_dispatched(n_entries=4, chunk_gens=16)
    metrics.chunk_dispatched(n_entries=8, chunk_gens=16)
    metrics.queue_drained_to(1)
    metrics.job_completed(latency_s=0.2, wait_s=0.1)
    metrics.job_failed()
    assert metrics.submitted == 2
    assert metrics.rejected == 1
    assert metrics.completed == 1
    assert metrics.failed == 1
    assert metrics.chunks == 2
    assert metrics.queue_depth == 1 and metrics.max_queue_depth == 5
    assert metrics.max_occupancy == 8
    assert metrics.chunk_occupancy_sum == pytest.approx(4 / 8 + 8 / 8)
    assert metrics.generations_executed == (4 + 8) * 16
    assert metrics.latencies_s == [0.2] and metrics.waits_s == [0.1]
    snap = metrics.snapshot()
    assert snap["jobs"] == {
        "submitted": 2, "completed": 1, "failed": 1, "rejected": 1, "pending": 1,
    }
    assert snap["batching"]["chunks"] == 2
    assert snap["batching"]["mean_occupancy"] == pytest.approx(0.75)


def test_independent_service_metrics_do_not_share_state():
    a, b = ServiceMetrics(), ServiceMetrics()
    a.job_rejected()
    assert a.rejected == 1 and b.rejected == 0
    assert a.registry is not b.registry


def test_to_json_writes_file(tmp_path):
    metrics = ServiceMetrics()
    path = tmp_path / "metrics.json"
    text = metrics.to_json(str(path))
    assert json.loads(text)["jobs"]["submitted"] == 0
    assert json.loads(path.read_text())["jobs"]["submitted"] == 0
