"""Galois LFSR — the RNG style used by the Tommiska & Vuori baseline.

Table I lists "LSHR/fixed" (linear shift register, fixed seed) as the RNG of
implementation [6].  A 16-bit maximal-length Galois LFSR with taps
``x^16 + x^14 + x^13 + x^11 + 1`` (mask ``0xB400``) provides the same period
(``2**16 - 1``) as the CA but with the well-known shift-register correlation
structure, making it the natural comparison point for the RNG-quality
ablation.
"""

from __future__ import annotations

from repro.rng.base import RandomSource

#: Tap mask of the maximal-length polynomial x^16 + x^14 + x^13 + x^11 + 1.
DEFAULT_TAPS = 0xB400


class GaloisLFSR(RandomSource):
    """16-bit Galois (one-shift-per-word output register read) LFSR."""

    def __init__(self, seed: int, taps: int = DEFAULT_TAPS, width: int = 16):
        self.width = width
        self.taps = taps
        super().__init__(seed)

    def _advance(self, state: int) -> int:
        lsb = state & 1
        state >>= 1
        if lsb:
            state ^= self.taps
        return state
