"""Tests pinning the test functions to the paper's claimed optima."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fitness import (
    BF6,
    F2,
    F3,
    MBF6_2,
    MBF7_2,
    MShubert2D,
    by_name,
    decode_two_vars,
    encode_two_vars,
)

chromosomes = st.integers(0, 0xFFFF)


class TestEncoding:
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_roundtrip(self, x, y):
        assert decode_two_vars(encode_two_vars(x, y)) == (x, y)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_two_vars(256, 0)

    def test_registry(self):
        assert by_name("BF6").name == "BF6"
        with pytest.raises(KeyError):
            by_name("nope")


class TestBF6:
    def test_global_optimum(self):
        # Paper: single global maximum value 4271 (text says x=65522; exact
        # argmax of the printed formula is 65521, same fitness).
        fn = BF6()
        best, value = fn.optimum()
        assert value == 4271
        assert best in (65521, 65522)

    def test_value_at_zero(self):
        assert BF6()(0) == 3200

    def test_fits_16_bits(self):
        table = BF6().table()
        assert table.min() >= 0 and table.max() <= 0xFFFF

    def test_many_local_maxima(self):
        # Fig. 7: "numerous local maxima" — count strict interior peaks.
        t = BF6().table().astype(np.int64)
        peaks = np.sum((t[1:-1] > t[:-2]) & (t[1:-1] > t[2:]))
        assert peaks > 1000


class TestF2:
    def test_optimum_is_minimax(self):
        fn = F2()
        best, value = fn.optimum()
        assert value == 3060
        assert decode_two_vars(best) == (255, 0)

    def test_worst_case_is_zero(self):
        assert F2()(encode_two_vars(0, 255)) == 0

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_formula(self, x, y):
        assert F2()(encode_two_vars(x, y)) == 8 * x - 4 * y + 1020


class TestF3:
    def test_optimum_is_maximax(self):
        fn = F3()
        best, value = fn.optimum()
        assert value == 3060
        assert decode_two_vars(best) == (255, 255)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_formula(self, x, y):
        assert F3()(encode_two_vars(x, y)) == 8 * x + 4 * y


class TestMBF6_2:
    def test_global_optimum_matches_paper(self):
        # Paper: "single globally optimal solution at x = 65521 with a
        # value = 8183" — exact match.
        best, value = MBF6_2().optimum()
        assert (best, value) == (65521, 8183)

    def test_paper_best_found_value(self):
        # Paper Sec. IV-B: "the best solution found ... was 65345. This
        # solution evaluates to a fitness of 8135".
        assert MBF6_2()(65345) == 8135

    def test_solution_space_size(self):
        assert len(MBF6_2().table()) == 65536


class TestMBF7_2:
    def test_optimum_location_matches_paper(self):
        # Paper: optimum at x = 247, y = 249.  (The paper prints value
        # 63904; the printed formula's exact value there is 63994.)
        best, value = MBF7_2().optimum()
        assert decode_two_vars(best) == (247, 249)
        assert value == 63994

    def test_paper_reported_candidate(self):
        # Paper's best found: x = 0xEC, y = 0xFF with fitness ~61496.
        value = MBF7_2()(encode_two_vars(0xEC, 0xFF))
        assert abs(value - 61496) < 100


class TestMShubert2D:
    def test_global_max_is_65535(self):
        fn = MShubert2D()
        _, value = fn.optimum()
        assert value == 65535

    def test_multiple_global_optima(self):
        fn = MShubert2D()
        assert len(fn.optima()) >= 4

    def test_values_quantized_in_steps_of_174(self):
        table = MShubert2D().table().astype(np.int64)
        assert np.all((65535 - table) % 174 == 0)

    def test_minimum_is_48135(self):
        # 65535 - 174*100, the lowest best-fitness value in Table IX.
        assert MShubert2D().table().min() == 48135

    def test_symmetric_in_variables(self):
        fn = MShubert2D()
        for x, y in [(10, 200), (30, 74), (0, 255)]:
            assert fn(encode_two_vars(x, y)) == fn(encode_two_vars(y, x))


class TestVectorisedConsistency:
    @pytest.mark.parametrize("name", ["BF6", "F2", "F3", "mBF6_2", "mBF7_2", "mShubert2D"])
    def test_scalar_matches_array(self, name):
        fn = by_name(name)
        rng = np.random.default_rng(1)
        sample = rng.integers(0, 65536, size=64, dtype=np.uint32)
        array = fn.evaluate_array(sample)
        for chrom, expected in zip(sample, array):
            assert fn(int(chrom)) == int(expected)

    @pytest.mark.parametrize("name", ["BF6", "F2", "F3", "mBF6_2", "mBF7_2", "mShubert2D"])
    def test_table_matches_optimum(self, name):
        fn = by_name(name)
        best, value = fn.optimum()
        assert fn(best) == value
        assert value == fn.table().max()
