#!/usr/bin/env python3
"""Island-model parallel GA — the multi-core direction of Sec. II-B.

Several GA engines (think: several GA IP cores on one fabric, or one per
FPGA in a multichip intrinsic-EHW system) evolve independent populations;
at every epoch boundary each island's champion migrates to its ring
neighbour.  Compare a single engine against island ensembles at equal and
at scaled evaluation budgets.
"""

import time

from repro import BehavioralGA, GAParameters
from repro.fitness import MBF6_2
from repro.parallel import IslandGA


def main() -> None:
    fn = MBF6_2()
    optimum = int(fn.table().max())
    params = GAParameters(
        n_generations=64,
        population_size=32,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )

    print(f"objective: mBF6_2 (optimum {optimum})\n")

    single = BehavioralGA(params, fn).run()
    print(f"single engine           : best {single.best_fitness:>5}, "
          f"evals {single.evaluations}")

    for n_islands in (2, 4, 8):
        t0 = time.perf_counter()
        res = IslandGA(
            params, fn, n_islands=n_islands, migration_interval=8
        ).run()
        dt = time.perf_counter() - t0
        print(f"{n_islands} islands (sequential) : best {res.best_fitness:>5}, "
              f"evals {res.evaluations:>5}, migrations {res.migrations:>2}, "
              f"island bests {res.island_bests}, {dt * 1e3:.0f} ms")

    print("\nprocess-pool execution (same results, wall-clock scaling):")
    for procs in (1, 2, 4):
        ga = IslandGA(params, fn, n_islands=4, migration_interval=8,
                      processes=procs)
        t0 = time.perf_counter()
        res = ga.run()
        dt = time.perf_counter() - t0
        print(f"processes={procs}: best {res.best_fitness:>5} in {dt * 1e3:6.0f} ms")
    print("\n(for these small populations process startup dominates; the")
    print(" pool pays off when fitness evaluation is expensive, e.g. real")
    print(" EHW measurement loops)")


if __name__ == "__main__":
    main()
