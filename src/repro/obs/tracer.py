"""Structured tracing: nested spans and instant events as JSON lines.

The paper validates its engine by watching internal state evolve — the
per-generation best/sum-of-fitness traces of Figs. 8-12 and the hardware
convergence counters of Tables VII-IX.  :class:`Tracer` is the software
rendition of those probe points: engines emit *events* (one record per
generation boundary, recovery action, migration epoch, ...) and *spans*
(timed, nested scopes: a run, an epoch, a service chunk) into a single
ordered stream with monotonic timestamps.  The stream round-trips through
JSON lines, so ``repro trace`` output is greppable, diffable, and feeds
the :mod:`repro.obs.analyze` reconstruction helpers directly.

Zero cost when disabled
-----------------------

The process-wide default tracer is :data:`NULL_TRACER`, whose ``enabled``
flag is False and whose methods are no-ops.  Instrumented call sites hoist
one check (``tracing = tracer is not None and tracer.enabled``) out of
their hot loops; per-iteration work happens only under that flag, so a
run without tracing executes the exact pre-instrumentation code path (the
bit-identity and <2 % overhead guarantees are locked down in
``tests/obs/`` and ``benchmarks/bench_obs_overhead.py``).

Record schema (one JSON object per line)::

    {"type": "span",  "name": ..., "id": n, "parent": m | null,
     "t0": seconds, "dur": seconds, ...attrs}
    {"type": "event", "name": ..., "parent": m | null,
     "ts": seconds, ...attrs}

Timestamps are ``time.perf_counter()`` relative to the tracer's creation,
so they are monotonic within one trace and carry no wall-clock identity.
Span records are written when the span *closes* (they carry the duration);
ordering questions are therefore answered with ids and timestamps, never
with line order.  The tracer is thread-safe: the emit path takes one lock
and the span stack is thread-local, so service worker threads interleave
records without corrupting nesting.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Any, Iterator


class NullTracer:
    """The disabled tracer: every probe point is a no-op.

    ``enabled`` is False so instrumented loops skip their per-iteration
    work entirely; ``span``/``event`` still exist so coarse call sites
    (one call per run or per chunk) need no guard at all.
    """

    enabled = False

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[None]:
        yield None

    def event(self, name: str, **attrs) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled singleton (see :func:`get_tracer`).
NULL_TRACER = NullTracer()


class Tracer:
    """A live tracer collecting span/event records.

    Parameters
    ----------
    sink:
        Where JSON lines go: a path, an open text file, or None.  With a
        path the file is owned (and closed) by the tracer; with None the
        records live only in :attr:`records`.
    keep_records:
        Also keep every record in memory (default: True — analysis
        helpers and tests read :attr:`records` directly; pass False for
        long streaming runs writing to a file).
    """

    enabled = True

    def __init__(self, sink: str | IO[str] | None = None, keep_records: bool = True):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._epoch = time.perf_counter()
        self.records: list[dict] = []
        self._keep = keep_records
        self._file: IO[str] | None = None
        self._owns_file = False
        if isinstance(sink, str):
            self._file = open(sink, "w", encoding="utf-8")
            self._owns_file = True
        elif sink is not None:
            self._file = sink
        if not keep_records and self._file is None:
            raise ValueError("a tracer needs a sink, kept records, or both")

    # -- internals ------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, record: dict) -> None:
        with self._lock:
            if self._keep:
                self.records.append(record)
            if self._file is not None:
                self._file.write(json.dumps(record) + "\n")

    # -- probe points ---------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[int]:
        """A timed, nested scope; yields the span id.

        The record is emitted at exit (it carries the duration); events
        and child spans opened inside reference it via ``parent``.
        """
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1] if stack else None
        t0 = self._now()
        stack.append(span_id)
        try:
            yield span_id
        finally:
            stack.pop()
            self._emit(
                {
                    "type": "span",
                    "name": name,
                    "id": span_id,
                    "parent": parent,
                    "t0": t0,
                    "dur": self._now() - t0,
                    **attrs,
                }
            )

    def event(self, name: str, **attrs: Any) -> None:
        """An instant record, parented to the innermost open span."""
        stack = self._stack()
        self._emit(
            {
                "type": "event",
                "name": name,
                "parent": stack[-1] if stack else None,
                "ts": self._now(),
                **attrs,
            }
        )

    def close(self) -> None:
        """Flush and (when the tracer opened it) close the sink file."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                if self._owns_file:
                    self._file.close()
                self._file = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# the process-wide default tracer
# ---------------------------------------------------------------------------

_default: NullTracer | Tracer = NULL_TRACER
_default_lock = threading.Lock()


def get_tracer() -> NullTracer | Tracer:
    """The process-wide tracer; :data:`NULL_TRACER` unless one is set.

    Call sites that cannot be handed a tracer explicitly (the service's
    slab workers, module-level helpers) read this.  The default is the
    disabled singleton, so reading it costs one global load.
    """
    return _default


def set_tracer(tracer: NullTracer | Tracer | None) -> None:
    """Install (or with None, remove) the process-wide tracer."""
    global _default
    with _default_lock:
        _default = tracer if tracer is not None else NULL_TRACER


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope ``tracer`` as the process-wide default, restoring on exit."""
    previous = _default
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def read_trace(path: str) -> list[dict]:
    """Load a JSON-lines trace file back into record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
