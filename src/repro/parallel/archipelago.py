"""Vectorized archipelago: the whole island model as one batched slab.

The legacy island loop (:mod:`repro.parallel.islands`) treats each island
as a unit of Python work — one engine construction per island per epoch in
batched mode, pickled round-trips per epoch in pooled mode.  This module
maps the archipelago onto a *single* resumable
:class:`~repro.core.batch.BatchBehavioralGA` whose replica axis is the
island axis: one ``(islands, pop)`` population array, one multi-stream RNG
bank, advanced ``migration_interval`` generations per :meth:`step`, which
is the "many GA IP cores on one fabric" direction of Sec. II-B scaled the
way Torquato & Fernandes run fully pipelined concurrent populations — and
the (islands x pop x bits) layout a future GPU/array backend needs.

Migration is a pure array operation.  A :class:`MigrationTopology` holds
the archipelago wiring as precomputed edge arrays (``sources``, ``dests``,
and each edge's rank among its destination's incoming edges), so an epoch
boundary is: gather every island's champion, rank each destination's
members worst-first with one stable argsort, scatter the migrants over the
``rank``-th worst slots, re-evaluate the touched cells, and re-anchor the
best-tracking registers — no per-island Python loops.

Exactness contract: for any ``(params, seed, topology)`` the exact-mode
:class:`VectorIslandGA` is bit-identical to the legacy epoch loop (which
is itself bit-identical to the pooled mode) — the differential suite in
``tests/parallel/test_archipelago.py`` locks all three together.  Turbo
mode carries the engine's usual turbo contract: same operator
distributions, different word allocation, deterministic per (params,
seed, topology) and independent of step chunking.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchBehavioralGA
from repro.core.params import GAParameters
from repro.core.validate import parse_topology, validate_island_params
from repro.fitness.base import FitnessFunction
from repro.obs.metrics import record_archipelago_run


@dataclass(frozen=True)
class MigrationTopology:
    """Archipelago wiring as precomputed edge index arrays.

    Edge ``e`` sends the champion of island ``sources[e]`` to island
    ``dests[e]``.  Edges are sorted by destination and ``rank[e]`` numbers
    an edge among its destination's incoming edges (0, 1, ...), so a
    destination receiving k migrants replaces its k worst members — the
    rank-0 edge replaces the very worst, exactly like the hardware-style
    ring's ``argmin`` replacement, and ties between equal-fitness members
    resolve to the lowest member index (stable sort).
    """

    name: str
    n_islands: int
    sources: np.ndarray
    dests: np.ndarray
    rank: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        sources = np.asarray(self.sources, dtype=np.int64)
        dests = np.asarray(self.dests, dtype=np.int64)
        if sources.shape != dests.shape or sources.ndim != 1:
            raise ValueError("sources and dests must be equal-length 1-D")
        if sources.size and (
            sources.min() < 0
            or sources.max() >= self.n_islands
            or dests.min() < 0
            or dests.max() >= self.n_islands
        ):
            raise ValueError("edge endpoints must be island indices")
        if np.any(sources == dests):
            raise ValueError("self-edges are not allowed")
        order = np.argsort(dests, kind="stable")
        sources, dests = sources[order], dests[order]
        # rank within each destination group = position - group start
        starts = np.searchsorted(dests, dests, side="left")
        rank = np.arange(dests.size, dtype=np.int64) - starts
        object.__setattr__(self, "sources", sources)
        object.__setattr__(self, "dests", dests)
        object.__setattr__(self, "rank", rank)

    @property
    def n_edges(self) -> int:
        return int(self.dests.size)

    @property
    def max_fan_in(self) -> int:
        """Most migrants any single island receives per boundary."""
        return int(self.rank.max()) + 1 if self.n_edges else 0


def ring_topology(n_islands: int) -> MigrationTopology:
    """Island ``i`` sends to ``(i + 1) mod n`` — the legacy hardware-style
    ring.  One island degenerates to zero edges (nothing to rotate)."""
    if n_islands < 2:
        empty = np.empty(0, dtype=np.int64)
        return MigrationTopology("ring", n_islands, empty, empty)
    dests = np.arange(n_islands, dtype=np.int64)
    return MigrationTopology("ring", n_islands, (dests - 1) % n_islands, dests)


def torus_topology(n_islands: int) -> MigrationTopology:
    """2-D wrap-around grid: every island sends right and down.

    The grid is the most-square factorization ``rows x cols = n`` with
    ``rows <= cols``; a prime count degenerates to a ``1 x n`` row whose
    "down" edges are self-edges and are dropped, leaving a ring.
    """
    if n_islands < 2:
        empty = np.empty(0, dtype=np.int64)
        return MigrationTopology("torus", n_islands, empty, empty)
    rows = 1
    for r in range(int(n_islands**0.5), 0, -1):
        if n_islands % r == 0:
            rows = r
            break
    cols = n_islands // rows
    r, c = np.divmod(np.arange(n_islands, dtype=np.int64), cols)
    sources, dests = [], []
    if cols > 1:
        sources.append(r * cols + c)
        dests.append(r * cols + (c + 1) % cols)
    if rows > 1:
        sources.append(r * cols + c)
        dests.append(((r + 1) % rows) * cols + c)
    return MigrationTopology(
        "torus", n_islands, np.concatenate(sources), np.concatenate(dests)
    )


def random_topology(
    n_islands: int, fan_in: int, seed: int
) -> MigrationTopology:
    """Each island receives champions from ``fan_in`` distinct other
    islands, wired seed-deterministically (same seed, same graph — on any
    platform, via a dedicated PCG64 stream that never touches the GA's
    CA-PRNG words)."""
    if n_islands < 2:
        empty = np.empty(0, dtype=np.int64)
        return MigrationTopology("random", n_islands, empty, empty)
    k = min(fan_in, n_islands - 1)
    rng = np.random.Generator(
        np.random.PCG64(np.random.SeedSequence([seed, n_islands, k]))
    )
    scores = rng.random((n_islands, n_islands))
    np.fill_diagonal(scores, np.inf)  # never pick yourself
    sources = np.argsort(scores, axis=1, kind="stable")[:, :k].ravel()
    dests = np.repeat(np.arange(n_islands, dtype=np.int64), k)
    return MigrationTopology("random", n_islands, sources, dests)


def build_topology(spec: str, n_islands: int, seed: int) -> MigrationTopology:
    """Build the wiring for a validated topology spec (``"ring"``,
    ``"torus"``, ``"random"``/``"random:<k>"``)."""
    name, fan_in = parse_topology(spec)
    if name == "ring":
        return ring_topology(n_islands)
    if name == "torus":
        return torus_topology(n_islands)
    return random_topology(n_islands, fan_in, seed)


def island_seeds(params: GAParameters, n_islands: int) -> list[int]:
    """Decorrelated per-island offsets of the programmed seed (the
    programmable-seed feature, once per core) — shared with the legacy
    loop so both paths seed identically."""
    return [
        ((params.rng_seed + 0x9E37 * i) & 0xFFFF) or 1 for i in range(n_islands)
    ]


class VectorIslandGA:
    """Island model executed as one resumable batched slab.

    Bit-identical to the legacy :class:`~repro.parallel.islands.IslandGA`
    epoch loop in exact mode (``IslandGA`` with ``processes=1`` delegates
    here); turbo mode runs the same archipelago on the vectorised
    generation kernel.  ``record_champions`` gates the O(epochs x islands)
    ``epoch_champions`` tuple history — leave it off for thousand-island
    runs.
    """

    def __init__(
        self,
        params: GAParameters,
        fitness: FitnessFunction,
        n_islands: int = 4,
        migration_interval: int = 8,
        topology: str | MigrationTopology = "ring",
        record_champions: bool = True,
        tracer=None,
        engine_mode: str = "exact",
    ):
        if isinstance(topology, MigrationTopology):
            validate_island_params(n_islands, migration_interval, topology.name)
            if topology.n_islands != n_islands:
                raise ValueError(
                    f"topology wires {topology.n_islands} islands, "
                    f"got n_islands={n_islands}"
                )
            self.topology = topology
        else:
            validate_island_params(n_islands, migration_interval, topology)
            self.topology = build_topology(topology, n_islands, params.rng_seed)
        if engine_mode not in ("exact", "turbo"):
            raise ValueError(
                f"engine_mode must be 'exact' or 'turbo': {engine_mode!r}"
            )
        if self.topology.max_fan_in >= params.population_size:
            raise ValueError(
                f"topology fan-in {self.topology.max_fan_in} would replace "
                f"a whole population of {params.population_size}"
            )
        self.params = params
        self.fitness = fitness
        self.n_islands = n_islands
        self.migration_interval = migration_interval
        self.record_champions = record_champions
        self.tracer = tracer
        self.engine_mode = engine_mode
        self.seeds = island_seeds(params, n_islands)

    # ------------------------------------------------------------------
    def epoch_schedule(self) -> list[int]:
        """Generations per epoch (same contract as the legacy loop): full
        ``migration_interval`` epochs plus a final partial remainder."""
        full, remainder = divmod(
            self.params.n_generations, self.migration_interval
        )
        schedule = [self.migration_interval] * full
        if remainder:
            schedule.append(remainder)
        return schedule

    def _migrate(self, batch: BatchBehavioralGA, champ_ind: np.ndarray) -> None:
        """One migration boundary as three array operations: rank members
        worst-first, scatter champions over the topology, re-anchor."""
        topo = self.topology
        order = batch.worst_member_order()
        cols = order[topo.dests, topo.rank]
        batch.replace_members(topo.dests, cols, champ_ind[topo.sources])
        # a freshly arrived migrant can be an island's champion — restart
        # the champion race from the migrated populations, exactly like
        # the legacy loop's fresh engine per epoch
        batch.reanchor_best()

    def run(self):
        """Run every epoch on one carried slab; returns an
        :class:`~repro.parallel.islands.IslandResult`."""
        from contextlib import nullcontext

        from repro.parallel.islands import IslandResult

        schedule = self.epoch_schedule()
        topo = self.topology
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        params_list = [
            self.params.with_(rng_seed=seed) for seed in self.seeds
        ]
        batch = BatchBehavioralGA(
            params_list,
            self.fitness,
            record_members=False,
            tracer=tracer,
            mode=self.engine_mode,
            record_history=False,
        )
        island_fit = np.full(self.n_islands, -1, dtype=np.int64)
        island_ind = np.zeros(self.n_islands, dtype=np.int64)
        migrations = 0
        best_per_epoch: list[int] = []
        epoch_summary: list[tuple[int, int, int]] = []
        epoch_champions: list[list[tuple[int, int]]] = []

        started = time.perf_counter()
        run_scope = (
            tracer.span(
                "ga.run",
                engine="island",
                vectorized=True,
                fitness=self.fitness.name,
                islands=self.n_islands,
                migration_interval=self.migration_interval,
                topology=topo.name,
                generations=self.params.n_generations,
            )
            if tracing
            else nullcontext()
        )
        with run_scope:
            for epoch, epoch_gens in enumerate(schedule):
                epoch_scope = (
                    tracer.span("island.epoch", epoch=epoch, gens=epoch_gens)
                    if tracing
                    else nullcontext()
                )
                with epoch_scope:
                    if epoch == 0:
                        # inside the first epoch span so the generation-0
                        # trace event nests like the legacy loop's
                        batch.begin()
                    batch.step(epoch_gens)
                    champ_ind, champ_fit = batch.champions()
                    improved = champ_fit > island_fit
                    island_fit = np.where(improved, champ_fit, island_fit)
                    island_ind = np.where(improved, champ_ind, island_ind)
                    if epoch < len(schedule) - 1 and topo.n_edges:
                        self._migrate(batch, champ_ind)
                        migrations += topo.n_edges
                        if tracing:
                            tracer.event(
                                "island.migration",
                                epoch=epoch,
                                migrants=topo.n_edges,
                                champions=(
                                    [
                                        [int(c), int(f)]
                                        for c, f in zip(champ_ind, champ_fit)
                                    ]
                                    if self.record_champions
                                    else None
                                ),
                            )
                    best = int(island_fit.argmax())
                    best_per_epoch.append(int(island_fit[best]))
                    epoch_summary.append(
                        (
                            int(island_fit[best]),
                            int(island_ind[best]),
                            int(champ_fit.sum()),
                        )
                    )
                    if self.record_champions:
                        epoch_champions.append(
                            list(
                                zip(champ_ind.tolist(), champ_fit.tolist())
                            )
                        )
        batch.finalize()
        record_archipelago_run(
            self.n_islands,
            self.params.n_generations,
            len(schedule),
            migrations,
            time.perf_counter() - started,
        )

        overall = int(island_fit.argmax())
        return IslandResult(
            best_individual=int(island_ind[overall]),
            best_fitness=int(island_fit[overall]),
            island_bests=island_fit.tolist(),
            migrations=migrations,
            evaluations=int(batch.evaluations.sum()),
            best_per_epoch=best_per_epoch,
            epoch_champions=epoch_champions,
            epoch_summary=epoch_summary,
        )
