"""Shared helpers for the benchmark harnesses.

Each ``bench_*.py`` regenerates one table or figure of the paper.  The
pytest-benchmark plugin times the regeneration; the printed report is the
reproduced artefact itself (rows or an ASCII plot) with the paper's values
alongside, mirroring EXPERIMENTS.md.

At session end the collected timings are also dumped to
``BENCH_results.json`` in the repo root, so the performance trajectory
stays machine-readable across PRs (the CI smoke job runs the suite with
``--benchmark-disable``, which still exercises every bench body once and
records the run with empty timing stats).
"""

from __future__ import annotations

import json
import os
import time
import warnings

#: Version of the BENCH_results.json payload and the per-run trajectory
#: rows appended to BENCH_trajectory.jsonl.  Bump when a field changes
#: meaning so downstream trend tooling can branch on it.
RESULTS_SCHEMA_VERSION = 1


def print_table(title: str, rows: list[dict], keys: list[str] | None = None) -> None:
    """Render rows as an aligned text table to the captured stdout."""
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    keys = keys or list(rows[0].keys())
    widths = {
        k: max(len(str(k)), *(len(str(r.get(k, ""))) for r in rows)) for k in keys
    }
    print(f"\n== {title} ==")
    print(" | ".join(str(k).ljust(widths[k]) for k in keys))
    print("-+-".join("-" * widths[k] for k in keys))
    for r in rows:
        print(" | ".join(str(r.get(k, "")).ljust(widths[k]) for k in keys))


def _maybe(getter):
    try:
        value = getter()
    except Exception:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    # keep counts (rounds, iterations) as ints; only real measurements
    # become floats
    return value if isinstance(value, int) else float(value)


def pytest_sessionfinish(session, exitstatus):
    """Dump per-bench timings to ``BENCH_results.json`` (repo root)."""
    bsession = getattr(session.config, "_benchmarksession", None)
    if bsession is None:
        return
    rows = []
    for bench in getattr(bsession, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        rows.append(
            {
                "name": getattr(bench, "name", None),
                "fullname": getattr(bench, "fullname", None),
                "group": getattr(bench, "group", None),
                "rounds": _maybe(lambda: stats.rounds),
                "mean_s": _maybe(lambda: stats.mean),
                "min_s": _maybe(lambda: stats.min),
                "max_s": _maybe(lambda: stats.max),
                "stddev_s": _maybe(lambda: stats.stddev),
                "extra_info": dict(getattr(bench, "extra_info", None) or {}),
            }
        )
    payload = {
        "schema": RESULTS_SCHEMA_VERSION,
        "generated_unix": time.time(),
        "pytest_exitstatus": int(exitstatus),
        "benchmarks_disabled": bool(getattr(bsession, "disabled", False)),
        "benchmarks": sorted(rows, key=lambda r: str(r["fullname"])),
    }
    path = os.path.join(str(session.config.rootdir), "BENCH_results.json")
    try:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as exc:  # never fail a bench run over the artefact dump
        warnings.warn(
            f"could not write bench artefact {path}: {exc}",
            RuntimeWarning,
            stacklevel=1,
        )
        return

    # one compact trajectory row per run: mean time + headline extra_info
    # per bench, appended so the perf history survives across PRs
    trajectory_row = {
        "schema": RESULTS_SCHEMA_VERSION,
        "generated_unix": payload["generated_unix"],
        "pytest_exitstatus": payload["pytest_exitstatus"],
        "benchmarks_disabled": payload["benchmarks_disabled"],
        "git_sha": os.environ.get("GITHUB_SHA") or None,
        "benchmarks": {
            str(r["fullname"]): {
                "group": r["group"],
                "mean_s": r["mean_s"],
                "extra_info": r["extra_info"],
            }
            for r in rows
        },
    }
    trajectory_path = os.path.join(
        str(session.config.rootdir), "BENCH_trajectory.jsonl"
    )
    try:
        with open(trajectory_path, "a") as handle:
            json.dump(trajectory_row, handle, sort_keys=True)
            handle.write("\n")
    except OSError as exc:
        warnings.warn(
            f"could not append trajectory row {trajectory_path}: {exc}",
            RuntimeWarning,
            stacklevel=1,
        )
