"""Tests for the intrinsic-EHW system-class latency models (Sec. II-D)."""

import pytest

from repro.core.params import GAParameters
from repro.core.system import GASystem
from repro.ehw.system_classes import (
    EHW_CLASSES,
    LatencyFEM,
    run_class_comparison,
)
from repro.fitness import F3
from repro.fitness.mux import FEMInterface
from repro.hdl.simulator import Simulator


def small_params():
    return GAParameters(2, 6, 10, 2, 45890)


class TestLatencyFEM:
    def run_one(self, ehw_class, evaluation_cycles=1):
        iface = FEMInterface.create("fem")
        fem = LatencyFEM("fem", iface, F3(), ehw_class, evaluation_cycles)
        sim = Simulator()
        sim.add(fem)
        iface.candidate.poke(0xFF00)
        iface.fit_request.poke(1)
        ticks = sim.wait_high(iface.fit_valid, 10_000)
        value = iface.fit_value.value
        iface.fit_request.poke(0)
        sim.wait_low(iface.fit_valid)
        return ticks, value

    def test_returns_correct_fitness(self):
        _ticks, value = self.run_one(EHW_CLASSES[0])
        assert value == F3()(0xFF00)

    def test_latency_scales_with_class(self):
        fast, _ = self.run_one(EHW_CLASSES[0])
        slow, _ = self.run_one(EHW_CLASSES[2])
        assert slow > fast
        assert slow - fast == pytest.approx(
            EHW_CLASSES[2].round_trip - EHW_CLASSES[0].round_trip, abs=3
        )

    def test_evaluation_time_adds(self):
        quick, _ = self.run_one(EHW_CLASSES[0], evaluation_cycles=1)
        long, _ = self.run_one(EHW_CLASSES[0], evaluation_cycles=100)
        assert long - quick == pytest.approx(99, abs=3)


class TestClassTaxonomy:
    def test_four_classes(self):
        assert [c.name.split(" ")[0] for c in EHW_CLASSES] == [
            "complete", "multichip", "multiboard", "PC-based",
        ]

    def test_latency_ordering(self):
        trips = [c.round_trip for c in EHW_CLASSES]
        assert trips == sorted(trips)
        assert trips[0] < trips[-1]


class TestComparison:
    def test_runtime_ordering_matches_section(self):
        rows = run_class_comparison(F3(), small_params(), evaluation_cycles=(1,))
        cycles = [r["total_cycles"] for r in rows]
        assert cycles == sorted(cycles)

    def test_results_identical_across_classes(self):
        # Communication latency slows the system down but cannot change the
        # evolution (same draws, same candidates).
        rows = run_class_comparison(F3(), small_params(), evaluation_cycles=(1,))
        assert len({r["best"] for r in rows}) == 1

    def test_evaluation_time_amortises_communication(self):
        # Sec. II-D: multichip/multiboard "are useful in applications where
        # the fitness evaluation time dominates the communication time".
        rows = run_class_comparison(F3(), small_params(), evaluation_cycles=(1, 400))
        def spread(eval_cycles):
            sub = [r for r in rows if r["eval_cycles"] == eval_cycles]
            return max(r["total_cycles"] for r in sub) / min(
                r["total_cycles"] for r in sub
            )
        assert spread(400) < spread(1)

    def test_fem_factory_plumbs_through_gasystem(self):
        params = small_params()
        system = GASystem(
            params,
            F3(),
            fem_factory=lambda name, iface, fn: LatencyFEM(
                name, iface, fn, EHW_CLASSES[1]
            ),
        )
        result = system.run()
        assert isinstance(system.fems[0], LatencyFEM)
        assert result.best_fitness > 0
