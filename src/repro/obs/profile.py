"""Profiling hooks: timed scopes and a sampling wall-clock profiler.

:class:`ProfileScope` is the cheap, always-available hook — a context
manager that times its body into a registry histogram (and optionally a
tracer span).  The serving layer wraps every slab chunk in one, so
``repro stats`` can report the chunk-time distribution without any
tracing armed.

:class:`SamplingProfiler` answers the *where do cycles go* question the
paper answers with post-P&R timing reports: a daemon thread samples the
target thread's Python stack at a fixed interval and aggregates frame
hit counts.  Sampling observes without instrumenting, so the profiled
run's arithmetic (and its RNG draw sequence) is untouched — the same
non-perturbation contract the tracer keeps.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import NULL_TRACER


class ProfileScope:
    """Time a named section into ``profile.<name>`` (histogram seconds).

    Usage::

        with ProfileScope("service.slab_chunk"):
            run_slab_chunk(spec)

    When a live tracer is supplied the scope also opens a span of the
    same name, nesting any events emitted inside the body.
    """

    def __init__(self, name: str, registry: MetricsRegistry | None = None,
                 tracer=None):
        self.name = name
        self._histogram = (registry or get_registry()).histogram(f"profile.{name}")
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._span = None
        self._t0 = 0.0
        self.elapsed: float | None = None

    def __enter__(self) -> "ProfileScope":
        if self._tracer.enabled:
            self._span = self._tracer.span(self.name)
            self._span.__enter__()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._t0
        self._histogram.observe(self.elapsed)
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
            self._span = None


class SamplingProfiler:
    """Wall-clock stack sampler for one thread.

    Samples ``sys._current_frames()`` for the target thread (default: the
    thread that calls :meth:`start`) every ``interval_s`` seconds from a
    daemon thread, counting hits per innermost frame and per full stack.
    ``top(n)`` renders the innermost-frame ranking — the flat profile;
    :attr:`samples` is the total sample count for normalisation.
    """

    def __init__(self, interval_s: float = 0.005, target_thread_id: int | None = None):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0: {interval_s}")
        self.interval_s = interval_s
        self._target_id = target_thread_id
        self.samples = 0
        self.frame_hits: dict[tuple[str, str, int], int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        if self._target_id is None:
            self._target_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="obs-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- sampling -------------------------------------------------------
    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target_id)
            if frame is None:  # target thread exited
                continue
            self.samples += 1
            code = frame.f_code
            key = (code.co_filename, code.co_name, frame.f_lineno)
            self.frame_hits[key] = self.frame_hits.get(key, 0) + 1

    # -- reporting ------------------------------------------------------
    def top(self, n: int = 10) -> list[dict]:
        """The ``n`` hottest innermost frames with their sample share."""
        total = max(self.samples, 1)
        ranked = sorted(self.frame_hits.items(), key=lambda kv: -kv[1])[:n]
        return [
            {
                "function": func,
                "file": filename,
                "line": lineno,
                "samples": hits,
                "share": round(hits / total, 4),
            }
            for (filename, func, lineno), hits in ranked
        ]
