"""Behavioural (numpy-vectorised) twin of the GA core.

Implements *exactly* the algorithm of :class:`repro.core.ga_core.GACore` —
same operators, same proportionate-selection arithmetic, same RNG draw
sequence — without the clock.  Given the same parameters and RNG it produces
bit-identical populations and statistics (property-tested in
``tests/core/test_equivalence.py``), which lets the sweep experiments
(Tables V, VII-IX) run in milliseconds while the cycle-accurate model
anchors fidelity.

This is the "behavioral VHDL model" level of the paper's design flow
(Sec. III-B), and also the vectorisation fast path the HPC guides prescribe:
the per-generation work is two ``np.cumsum``/``searchsorted`` selections and
table-lookup fitness, with only the unavoidable sequential RNG dependency
left in Python.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.core.validate import validate_initial_population
from repro.fitness.base import FitnessFunction
from repro.obs.metrics import record_engine_run
from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import (
    DEFAULT_RULE_VECTOR,
    CellularAutomatonPRNG,
)


class BehavioralGA:
    """Algorithm-level GA engine with the IP core's exact semantics.

    Parameters
    ----------
    params:
        The five programmable parameters (population limit here is the
        architectural 256, not the 128 imposed by the single-chip memory).
    fitness:
        Any :class:`FitnessFunction`; evaluated through its lookup table,
        mirroring the paper's block-ROM FEM.
    rng:
        Random source; defaults to the CA PRNG seeded from ``params``.
    record_members:
        Keep every member's fitness per generation (Figs. 8-12 scatter
        data).  Disable for large sweeps to save memory.
    resilience:
        Optional :class:`~repro.resilience.harden.ResilienceHarness`
        (``n_replicas=1``).  Its ``serial_boundary`` hook runs after every
        generation is recorded, injecting that boundary's upsets and
        applying the armed protections; with zero upset rates the hook is
        a no-op and the run stays bit-identical to an unhardened one.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When enabled, the
        run emits one ``ga.run`` span, a ``ga.generation`` event per
        generation boundary (best/sum — the Fig. 8 data), and a
        ``ga.phases`` event per evolved generation with the wall time
        spent in selection, crossover, mutation, and evaluation.
        Tracing never touches the RNG or the arithmetic, so a traced run
        is bit-identical to an untraced one; with the default ``None``
        the only cost is one hoisted flag check per generation.
    mode:
        ``"exact"`` (default) runs the per-offspring loop below,
        draw-for-draw identical to the hardware.  ``"turbo"`` delegates to
        a single-replica :class:`~repro.core.batch.BatchBehavioralGA` in
        turbo mode — the fully vectorised generation step of
        :mod:`repro.core.turbo` — which keeps every operator's
        distribution but not the exact RNG word allocation (see the
        exact-vs-turbo contract in ``docs/architecture.md``).  Turbo
        requires the CA PRNG at its default rule/spacing and does not
        support a resilience harness (hardened runs stay exact).
    """

    def __init__(
        self,
        params: GAParameters,
        fitness: FitnessFunction,
        rng: RandomSource | None = None,
        record_members: bool = True,
        resilience=None,
        tracer=None,
        mode: str = "exact",
    ):
        if mode not in ("exact", "turbo"):
            raise ValueError(f"mode must be 'exact' or 'turbo': {mode!r}")
        if mode == "turbo" and resilience is not None:
            raise ValueError(
                "turbo mode does not support a resilience harness; "
                "hardened runs must use exact mode"
            )
        self.params = params
        self.fitness = fitness
        self.rng = rng if rng is not None else CellularAutomatonPRNG(params.rng_seed)
        self.record_members = record_members
        self.resilience = resilience
        self.tracer = tracer
        self.mode = mode
        self.table = fitness.table()
        self.history: list[GenerationStats] = []
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _select(self, cum_fits: np.ndarray, total: int) -> int:
        """Proportionate selection index: threshold = (rn * sum) >> 16,
        pick the first member whose cumulative fitness exceeds it (last
        member as the hardware's fallback)."""
        threshold = (self.rng.next_word() * total) >> 16
        index = int(np.searchsorted(cum_fits, threshold, side="right"))
        return min(index, len(cum_fits) - 1)

    def _crossover(self, p1: int, p2: int) -> tuple[int, int]:
        if (self.rng.next_word() & 0xF) < self.params.crossover_threshold:
            cut = self.rng.next_word() & 0xF
            mask = (1 << cut) - 1
            inv = ~mask & 0xFFFF
            return (p1 & mask) | (p2 & inv), (p2 & mask) | (p1 & inv)
        return p1, p2

    def _mutate(self, ind: int) -> int:
        if (self.rng.next_word() & 0xF) < self.params.mutation_threshold:
            point = self.rng.next_word() & 0xF
            return ind ^ (1 << point)
        return ind

    def _record(self, generation: int, inds: np.ndarray, fits: np.ndarray) -> None:
        best_idx = int(fits.argmax())
        self.history.append(
            GenerationStats(
                generation=generation,
                best_fitness=int(fits[best_idx]),
                best_individual=int(inds[best_idx]),
                fitness_sum=int(fits.sum()),
                population_size=len(inds),
                fitnesses=fits.tolist() if self.record_members else [],
            )
        )
        if self.tracer is not None and self.tracer.enabled:
            g = self.history[-1]
            self.tracer.event(
                "ga.generation",
                generation=g.generation,
                best_fitness=g.best_fitness,
                best_individual=g.best_individual,
                fitness_sum=g.fitness_sum,
            )

    # ------------------------------------------------------------------
    def run(self, initial: np.ndarray | None = None):
        """Execute the full optimization cycle of Fig. 2; returns a
        :class:`repro.core.system.GAResult`.

        ``initial`` optionally seeds the population with given individuals
        (used by the island model to carry populations across migration
        epochs); when omitted the population is drawn from the RNG exactly
        like the hardware.  A seeded population is already evaluated, so it
        does not count towards ``self.evaluations`` — only genuinely new
        FEM requests do.  The final population is kept in
        ``self.final_population``.
        """
        from contextlib import nullcontext

        from repro.core.system import GAResult  # deferred: avoids cycle

        if self.mode == "turbo":
            return self._run_turbo(initial)

        pop = self.params.population_size
        table = self.table
        self.history = []
        self.evaluations = 0
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        t_run = perf_counter()

        run_scope = (
            tracer.span(
                "ga.run",
                engine="behavioral",
                fitness=self.fitness.name,
                pop=pop,
                generations=self.params.n_generations,
                seed=self.params.rng_seed,
            )
            if tracing
            else nullcontext()
        )
        with run_scope:
            if initial is not None:
                inds = validate_initial_population(initial, (pop,))
            else:
                inds = self.rng.block(pop).astype(np.int64)
                self.evaluations += pop
            fits = table[inds].astype(np.int64)
            # hardware tie-breaking: first occurrence of the max wins
            best_idx = int(fits.argmax())
            best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
            self._record(0, inds, fits)
            if self.resilience is not None:
                inds, fits, best_ind, best_fit = self.resilience.serial_boundary(
                    self, 0, inds, fits, best_ind, best_fit
                )

            for gen in range(1, self.params.n_generations + 1):
                if tracing:
                    ph = {"selection": 0.0, "crossover": 0.0, "mutation": 0.0,
                          "eval": 0.0, "elitism": 0.0, "record": 0.0}
                    t = perf_counter()
                cum = np.cumsum(fits)
                total = int(cum[-1])
                new_inds = np.empty(pop, dtype=np.int64)
                new_fits = np.empty(pop, dtype=np.int64)
                new_inds[0], new_fits[0] = best_ind, best_fit  # elitism
                count = 1
                if tracing:
                    now = perf_counter()
                    ph["elitism"] += now - t
                    t = now
                while count < pop:
                    p1 = int(inds[self._select(cum, total)])
                    p2 = int(inds[self._select(cum, total)])
                    if tracing:
                        now = perf_counter()
                        ph["selection"] += now - t
                        t = now
                    off1, off2 = self._crossover(p1, p2)
                    if tracing:
                        now = perf_counter()
                        ph["crossover"] += now - t
                        t = now
                    off1 = self._mutate(off1)
                    if tracing:
                        now = perf_counter()
                        ph["mutation"] += now - t
                        t = now
                    f1 = int(table[off1])
                    new_inds[count], new_fits[count] = off1, f1
                    count += 1
                    self.evaluations += 1
                    if f1 > best_fit:
                        best_ind, best_fit = off1, f1
                    if tracing:
                        now = perf_counter()
                        ph["eval"] += now - t
                        t = now
                    if count < pop:
                        off2 = self._mutate(off2)
                        if tracing:
                            now = perf_counter()
                            ph["mutation"] += now - t
                            t = now
                        f2 = int(table[off2])
                        new_inds[count], new_fits[count] = off2, f2
                        count += 1
                        self.evaluations += 1
                        if f2 > best_fit:
                            best_ind, best_fit = off2, f2
                        if tracing:
                            now = perf_counter()
                            ph["eval"] += now - t
                            t = now
                inds, fits = new_inds, new_fits
                self._record(gen, inds, fits)
                if tracing:
                    now = perf_counter()
                    ph["record"] += now - t
                    t = now
                if self.resilience is not None:
                    inds, fits, best_ind, best_fit = self.resilience.serial_boundary(
                        self, gen, inds, fits, best_ind, best_fit
                    )
                    if tracing:
                        ph["scrub"] = perf_counter() - t
                if tracing:
                    tracer.event("ga.phases", generation=gen, phases=ph)

        self.final_population = inds.copy()
        record_engine_run(
            self.params.n_generations, self.evaluations, perf_counter() - t_run
        )
        return GAResult(
            best_individual=best_ind,
            best_fitness=best_fit,
            history=self.history,
            evaluations=self.evaluations,
            params=self.params,
            fitness_name=self.fitness.name,
            cycles=None,
        )

    # ------------------------------------------------------------------
    def _run_turbo(self, initial: np.ndarray | None):
        """Thin serial facade over a one-replica turbo batch run.

        The batch engine carries the whole vectorised hot path; this
        wrapper only adapts shapes, keeps ``self.rng`` in sync so
        serial-style callers (the island workers) can keep carrying
        stream state across calls, and re-emits the results through the
        serial attributes (``history``/``evaluations``/
        ``final_population``).
        """
        from contextlib import nullcontext

        from repro.core.batch import BatchBehavioralGA  # deferred: avoids cycle

        rng = self.rng
        if not isinstance(rng, CellularAutomatonPRNG):
            raise TypeError(
                "turbo mode requires the CA PRNG "
                f"(got {type(rng).__name__}); use mode='exact'"
            )
        if rng.rule_vector != DEFAULT_RULE_VECTOR or rng.spacing != 1 or rng.width != 16:
            raise ValueError(
                "turbo mode supports the default CA rule vector, width, and "
                "spacing only; use mode='exact' for custom streams"
            )
        pop = self.params.population_size
        if initial is not None:
            initial = validate_initial_population(initial, (pop,)).reshape(1, pop)

        batch = BatchBehavioralGA(
            [self.params],
            self.fitness,
            record_members=self.record_members,
            rng_states=[rng.state],
            tracer=self.tracer,
            mode="turbo",
        )
        tracer = self.tracer
        run_scope = (
            tracer.span(
                "ga.run",
                engine="behavioral",
                mode="turbo",
                fitness=self.fitness.name,
                pop=pop,
                generations=self.params.n_generations,
                seed=self.params.rng_seed,
            )
            if tracer is not None and tracer.enabled
            else nullcontext()
        )
        with run_scope:
            (result,) = batch.run(initial=initial)
        self.history = batch.histories[0]
        self.evaluations = int(batch.evaluations[0])
        self.final_population = batch.final_populations[0].copy()
        rng.state = int(batch.rng_states[0])
        rng.draws += int(batch.bank.draws[0])
        return result
