"""Yoshida & Yasuoka's GA processor [8] with simplified tournament selection.

Table I row: fixed population, steady-state architecture "that supports
efficient pipelining and a simplified tournament selection".  The simplified
tournament: draw two random members, the fitter is a parent; repeat for the
second parent; the offspring replaces the loser of a final random pair —
every operation is a constant-latency pipeline stage (no fitness-sum scan).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.fitness.base import FitnessFunction
from repro.rng.cellular_automaton import CellularAutomatonPRNG


class YoshidaGA(PopulationBaseline):
    """Steady-state GA with simplified (binary) tournament selection."""

    name = "Yoshida et al. [8]"
    population_size = 32
    elitist = False
    CROSSOVER_THRESHOLD = 12
    MUTATION_THRESHOLD = 2
    FIXED_SEED = 0x3C91

    def __init__(self, rng=None):
        super().__init__(rng or CellularAutomatonPRNG(self.FIXED_SEED))

    def _rand_index(self) -> int:
        return self.rng.next_word() % self.population_size

    def _tournament(self, fits: np.ndarray) -> int:
        a, b = self._rand_index(), self._rand_index()
        return a if fits[a] >= fits[b] else b

    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        table = fitness.table()
        pop = self.population_size
        inds = self.rng.block(pop).astype(np.int64)
        fits = table[inds].astype(np.int64)
        evals = pop
        best_idx = int(fits.argmax())
        best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
        series = [best_fit]

        while evals < evaluation_budget:
            i1 = self._tournament(fits)
            i2 = self._tournament(fits)
            p1, p2 = int(inds[i1]), int(inds[i2])
            if self._rand4() < self.CROSSOVER_THRESHOLD:
                off, _ = self._crossover_point(p1, p2)
            else:
                off = p1
            if self._rand4() < self.MUTATION_THRESHOLD:
                off = self._mutate_bit(off)
            f = int(table[off])
            evals += 1
            # replace the loser of one more random pair
            a, b = self._rand_index(), self._rand_index()
            loser = a if fits[a] < fits[b] else b
            inds[loser] = off
            fits[loser] = f
            if f > best_fit:
                best_ind, best_fit = off, f
            if evals % pop == 0:
                series.append(best_fit)

        return BaselineResult(self.name, best_ind, best_fit, evals, series)
