"""Programmable GA parameters, Table III indices, Table IV preset modes.

The GA core's behaviour is governed by five programmable parameters loaded
through the initialization handshake (Sec. III-B.6): number of generations
(32-bit, loaded as two 16-bit halves), population size, crossover threshold,
mutation threshold, and the RNG seed.  The 4-bit thresholds encode rates in
sixteenths: threshold 10 = rate 0.625, threshold 1 = rate 0.0625 — exactly
the values the paper quotes in Sec. IV.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.rng.cellular_automaton import PRESET_SEEDS


class UnprogrammedParameterError(ValueError):
    """A required Table III parameter was never loaded over the handshake.

    Raised by :meth:`GAParameters.from_index_values` so a forgotten
    initialization word surfaces by *name* instead of as a baffling
    range-check failure on the zero default (e.g. "population_size out of
    range: 0").
    """

    def __init__(self, missing: list["ParameterIndex"]):
        self.missing = list(missing)
        names = ", ".join(f"{m.name} (index {int(m)})" for m in self.missing)
        super().__init__(
            f"Table III parameter(s) never programmed: {names}; load them "
            "over the index/value handshake or select a preset mode"
        )


class ParameterIndex(enum.IntEnum):
    """Table III: index values of the GA core's programmable parameters."""

    NUM_GENERATIONS_LO = 0  # bits [15:0]
    NUM_GENERATIONS_HI = 1  # bits [31:16]
    POPULATION_SIZE = 2
    CROSSOVER_RATE = 3
    MUTATION_RATE = 4
    RNG_SEED = 5


class PresetMode(enum.IntEnum):
    """Table IV: the 2-bit preset selector values."""

    USER = 0b00
    SMALL = 0b01  # pop 32,  512 gens,  xover 12, mut 1
    MEDIUM = 0b10  # pop 64,  1024 gens, xover 13, mut 2
    LARGE = 0b11  # pop 128, 4096 gens, xover 14, mut 3


@dataclass(frozen=True)
class GAParameters:
    """A complete setting of the five programmable parameters."""

    n_generations: int
    population_size: int
    crossover_threshold: int
    mutation_threshold: int
    rng_seed: int

    #: Hardware limits: 32-bit generation counter, 8-bit population size,
    #: 4-bit thresholds, 16-bit non-zero seed.
    MAX_GENERATIONS = (1 << 32) - 1
    MAX_POPULATION = 256

    def __post_init__(self) -> None:
        if not 1 <= self.n_generations <= self.MAX_GENERATIONS:
            raise ValueError(f"n_generations out of range: {self.n_generations}")
        if not 2 <= self.population_size <= self.MAX_POPULATION:
            raise ValueError(f"population_size out of range: {self.population_size}")
        if not 0 <= self.crossover_threshold <= 15:
            raise ValueError(
                f"crossover_threshold must be 4-bit: {self.crossover_threshold}"
            )
        if not 0 <= self.mutation_threshold <= 15:
            raise ValueError(
                f"mutation_threshold must be 4-bit: {self.mutation_threshold}"
            )
        if not 1 <= self.rng_seed <= 0xFFFF:
            raise ValueError(f"rng_seed must be 16-bit non-zero: {self.rng_seed}")

    # ------------------------------------------------------------------
    @property
    def crossover_rate(self) -> float:
        """Crossover probability = threshold / 16 (4-bit random compare)."""
        return self.crossover_threshold / 16.0

    @property
    def mutation_rate(self) -> float:
        """Mutation probability = threshold / 16."""
        return self.mutation_threshold / 16.0

    def to_index_values(self) -> list[tuple[ParameterIndex, int]]:
        """The (index, 16-bit value) words the initialization handshake
        transfers, in Table III order."""
        return [
            (ParameterIndex.NUM_GENERATIONS_LO, self.n_generations & 0xFFFF),
            (ParameterIndex.NUM_GENERATIONS_HI, (self.n_generations >> 16) & 0xFFFF),
            (ParameterIndex.POPULATION_SIZE, self.population_size & 0xFFFF),
            (ParameterIndex.CROSSOVER_RATE, self.crossover_threshold),
            (ParameterIndex.MUTATION_RATE, self.mutation_threshold),
            (ParameterIndex.RNG_SEED, self.rng_seed),
        ]

    @classmethod
    def from_index_values(
        cls, words: dict[int, int], default_seed: int | None = None
    ) -> "GAParameters":
        """Reassemble parameters from handshake words (inverse of
        :meth:`to_index_values`).

        Raises :class:`UnprogrammedParameterError` when a required Table
        III word is absent — population size and both rate thresholds must
        be programmed, as must at least one half of the generation count
        (a single half is fine: the other half defaults to zero bits).
        """
        seed = words.get(ParameterIndex.RNG_SEED, default_seed)
        if seed is None:
            raise ValueError("RNG seed neither programmed nor defaulted")
        missing = [
            index
            for index in (
                ParameterIndex.POPULATION_SIZE,
                ParameterIndex.CROSSOVER_RATE,
                ParameterIndex.MUTATION_RATE,
            )
            if index not in words
        ]
        if (
            ParameterIndex.NUM_GENERATIONS_LO not in words
            and ParameterIndex.NUM_GENERATIONS_HI not in words
        ):
            missing.insert(0, ParameterIndex.NUM_GENERATIONS_LO)
        if missing:
            raise UnprogrammedParameterError(missing)
        return cls(
            n_generations=(
                words.get(ParameterIndex.NUM_GENERATIONS_LO, 0)
                | (words.get(ParameterIndex.NUM_GENERATIONS_HI, 0) << 16)
            ),
            population_size=words.get(ParameterIndex.POPULATION_SIZE, 0),
            crossover_threshold=words.get(ParameterIndex.CROSSOVER_RATE, 0),
            mutation_threshold=words.get(ParameterIndex.MUTATION_RATE, 0),
            rng_seed=seed,
        )

    def with_(self, **changes) -> "GAParameters":
        """Functional update helper for parameter sweeps."""
        return replace(self, **changes)


#: Table IV preset parameter settings.  The preset seeds are the core's
#: three in-built RNG seeds (Sec. II-C), one per preset mode.
PRESET_MODES: dict[PresetMode, GAParameters] = {
    PresetMode.SMALL: GAParameters(
        n_generations=512,
        population_size=32,
        crossover_threshold=12,
        mutation_threshold=1,
        rng_seed=PRESET_SEEDS[0],
    ),
    PresetMode.MEDIUM: GAParameters(
        n_generations=1024,
        population_size=64,
        crossover_threshold=13,
        mutation_threshold=2,
        rng_seed=PRESET_SEEDS[1],
    ),
    PresetMode.LARGE: GAParameters(
        n_generations=4096,
        population_size=128,
        crossover_threshold=14,
        mutation_threshold=3,
        rng_seed=PRESET_SEEDS[2],
    ),
}
