"""Tests for stuck-at fault simulation and random-pattern ATPG."""


from repro.hdl import rtlib
from repro.hdl.faults import (
    Fault,
    TestVector,
    detects,
    enumerate_faults,
    fault_simulate,
    generate_tests,
    random_vectors,
)
from repro.hdl.flatten import merge
from repro.hdl.netlist import Netlist
from repro.hdl.gates import GateType


def xor_cell():
    nl = Netlist("xor_cell")
    a = nl.add_input("a", 1)
    b = nl.add_input("b", 1)
    nl.add_output("y", [nl.add_gate(GateType.XOR, a[0], b[0])])
    return nl


class TestFaultModel:
    def test_enumerates_both_polarities(self):
        faults = enumerate_faults(xor_cell())
        nets = {f.net for f in faults}
        assert len(faults) == 2 * len(nets)

    def test_xor_exhaustive_coverage(self):
        nl = xor_cell()
        vectors = [
            TestVector({"a": a, "b": b}, []) for a in (0, 1) for b in (0, 1)
        ]
        report = fault_simulate(nl, vectors)
        assert report.coverage == 1.0

    def test_single_vector_detects_some_not_all(self):
        nl = xor_cell()
        report = fault_simulate(nl, [TestVector({"a": 0, "b": 0}, [])])
        assert 0 < report.detected < report.total_faults

    def test_detects_specific_fault(self):
        nl = xor_cell()
        out_net = nl.outputs["y"][0]
        # output stuck at 1 is visible with a=b=0 (good output 0)
        assert detects(nl, TestVector({"a": 0, "b": 0}, []), Fault(out_net, 1))
        assert not detects(nl, TestVector({"a": 0, "b": 1}, []), Fault(out_net, 1))

    def test_flops_are_pseudo_io(self):
        # A fault on a flop's D net must be observable via the scan-model
        # pseudo-outputs even with no primary output change.
        nl = Netlist("reg")
        a = nl.add_input("a", 1)
        buf = nl.add_gate(GateType.BUF, a[0])
        q = nl.add_dff(buf)
        nl.add_output("q", [q])
        fault = Fault(buf, 0)
        assert detects(nl, TestVector({"a": 1}, [0]), fault)


class TestATPG:
    def test_adder_high_coverage(self):
        nl = rtlib.build_adder(8)
        vectors, report = generate_tests(nl, target_coverage=0.98, seed=3)
        assert report.coverage >= 0.98
        assert report.vectors_used == len(vectors)

    def test_vectors_are_compacted(self):
        # every kept vector earned its place by detecting a new fault
        nl = rtlib.build_adder(4)
        vectors, report = generate_tests(nl, target_coverage=0.99, seed=5)
        assert len(vectors) < 64  # far fewer than random_vectors would need

    def test_sequential_block_coverage(self):
        nl = Netlist("dut")
        merge(nl, rtlib.build_counter(8), "cnt")
        vectors, report = generate_tests(nl, target_coverage=0.88, seed=7)
        assert report.coverage >= 0.88

    def test_random_vectors_shape(self):
        nl = rtlib.build_ca_rng(16)
        vectors = random_vectors(nl, 5, seed=1)
        assert len(vectors) == 5
        assert all(len(v.flops) == len(nl.dffs) for v in vectors)
        assert all(set(v.inputs) == set(nl.inputs) for v in vectors)

    def test_crossover_unit_testable(self):
        # The genetic-operator datapath reaches solid stuck-at coverage with
        # few scan patterns — the Sec. III-C.2 testability claim in numbers.
        # The thermometer-mask decoder compares against *constants*, which
        # leaves logically redundant (untestable) faults beyond the tie-cell
        # filter; 75%+ of the enumerated fault list is the achievable band
        # for the unoptimized netlist.
        nl = rtlib.build_crossover_unit(16)
        _vectors, report = generate_tests(
            nl, target_coverage=0.75, max_vectors=256, seed=11
        )
        assert report.coverage >= 0.75
        assert report.vectors_used < 100

    def test_fault_sampling_mode(self):
        from repro.hdl.faults import sample_faults

        nl = rtlib.build_adder(8)
        sample = sample_faults(nl, 50, seed=3)
        assert len(sample) == 50
        assert len(set(sample)) == 50
        _vectors, report = generate_tests(
            nl, target_coverage=0.95, seed=3, faults=sample
        )
        assert report.total_faults == 50
        assert report.coverage >= 0.9

    def test_sample_larger_than_universe_returns_all(self):
        from repro.hdl.faults import enumerate_faults, sample_faults

        nl = xor_cell()
        assert sample_faults(nl, 10_000) == enumerate_faults(nl)

    def test_budget_respected(self):
        nl = rtlib.build_comparator(16)
        _vectors, report = generate_tests(
            nl, target_coverage=1.0, batch=4, max_vectors=8, seed=1
        )
        # with such a tiny budget we stop early but report honestly
        assert report.coverage <= 1.0

    def test_stops_at_first_vector_crossing_target(self):
        # target coverage is re-checked after every kept vector, not just at
        # batch boundaries: dropping the final kept vector must fall below
        # the target, so no vector past the crossing point was kept.
        nl = rtlib.build_adder(8)
        for engine in ("serial", "packed"):
            vectors, report = generate_tests(
                nl, target_coverage=0.90, batch=32, seed=3, engine=engine
            )
            assert report.coverage >= 0.90
            partial = fault_simulate(nl, vectors[:-1], engine=engine)
            assert partial.coverage < 0.90


# every rtlib block, at a width where the serial oracle stays fast
ORACLE_BLOCKS = [
    ("adder8", lambda: rtlib.build_adder(8)),
    ("comparator8", lambda: rtlib.build_comparator(8)),
    ("crossover8", lambda: rtlib.build_crossover_unit(8, cut_bits=3)),
    ("mutation8", lambda: rtlib.build_mutation_unit(8, point_bits=3)),
    ("ca_rng8", lambda: rtlib.build_ca_rng(8, rule_vector=0x6C)),
    ("param_reg8", lambda: rtlib.build_parameter_register(8)),
    ("counter8", lambda: rtlib.build_counter(8)),
]


class TestEngineParity:
    """PPSFP / fault-parallel packed engines vs the serial oracle."""

    def _reports_equal(self, a, b):
        return (
            (a.total_faults, a.detected, a.vectors_used) ==
            (b.total_faults, b.detected, b.vectors_used)
            and sorted(map(str, a.undetected)) == sorted(map(str, b.undetected))
        )

    def test_fault_simulate_parity_on_every_block(self):
        for name, build in ORACLE_BLOCKS:
            nl = build()
            # 70 vectors straddles the 64-pattern PPSFP batch boundary
            vectors = random_vectors(nl, 70, seed=2)
            serial = fault_simulate(nl, vectors, engine="serial")
            packed = fault_simulate(nl, vectors, engine="packed")
            assert self._reports_equal(serial, packed), (
                f"{name}: packed report diverges from the serial oracle"
            )

    def test_generate_tests_parity_on_every_block(self):
        for name, build in ORACLE_BLOCKS:
            nl = build()
            kept_s, rep_s = generate_tests(
                nl, target_coverage=0.9, max_vectors=48, seed=9, engine="serial"
            )
            kept_p, rep_p = generate_tests(
                nl, target_coverage=0.9, max_vectors=48, seed=9, engine="packed"
            )
            assert kept_s == kept_p, f"{name}: engines kept different vectors"
            assert self._reports_equal(rep_s, rep_p), name

    def test_detects_parity(self):
        nl = rtlib.build_mutation_unit(8, point_bits=3)
        vectors = random_vectors(nl, 4, seed=5)
        for fault in enumerate_faults(nl):
            for vector in vectors:
                assert detects(nl, vector, fault, engine="packed") == detects(
                    nl, vector, fault, engine="serial"
                )

    def test_parity_with_fault_subset_and_empty_sets(self):
        from repro.hdl.faults import sample_faults

        nl = rtlib.build_adder(8)
        vectors = random_vectors(nl, 10, seed=1)
        sample = sample_faults(nl, 25, seed=4)
        serial = fault_simulate(nl, vectors, faults=sample, engine="serial")
        packed = fault_simulate(nl, vectors, faults=sample, engine="packed")
        assert self._reports_equal(serial, packed)
        # degenerate corners must agree too
        for faults, vecs in ([], vectors), (sample, []):
            serial = fault_simulate(nl, vecs, faults=faults, engine="serial")
            packed = fault_simulate(nl, vecs, faults=faults, engine="packed")
            assert self._reports_equal(serial, packed)

    def test_unknown_engine_rejected(self):
        import pytest

        nl = xor_cell()
        with pytest.raises(ValueError, match="unknown fault-simulation engine"):
            fault_simulate(nl, [], engine="gpu")
