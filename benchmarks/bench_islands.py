"""Extension: island-model scaling (the multi-core direction of Sec. II-B).

How solution quality scales with the number of GA engines at a fixed
per-engine budget — the fabric-level parallelism a user would deploy
several of these IP cores for.
"""

import pytest

from conftest import print_table
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import BF6
from repro.parallel import IslandGA

PARAMS = GAParameters(
    n_generations=32,
    population_size=32,
    crossover_threshold=10,
    mutation_threshold=1,
    rng_seed=45890,
)


@pytest.mark.benchmark(group="islands")
def test_island_scaling(benchmark):
    def sweep():
        rows = []
        single = BehavioralGA(PARAMS, BF6()).run()
        rows.append(
            {
                "engines": 1,
                "best": single.best_fitness,
                "evaluations": single.evaluations,
                "migrations": 0,
            }
        )
        for n in (2, 4, 8):
            result = IslandGA(
                PARAMS, BF6(), n_islands=n, migration_interval=8
            ).run()
            rows.append(
                {
                    "engines": n,
                    "best": result.best_fitness,
                    "evaluations": result.evaluations,
                    "migrations": result.migrations,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Island-model scaling on BF6 (optimum 4271)", rows)

    # more engines, more coverage: the ensemble never does worse than the
    # single engine, and the 8-engine ensemble lands within 1% of optimum
    bests = [r["best"] for r in rows]
    assert max(bests[1:]) >= bests[0]
    assert bests[-1] >= 4271 * 0.99
