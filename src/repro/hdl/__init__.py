"""Cycle-accurate hardware simulation substrate.

This package is the Python stand-in for the paper's VHDL/Verilog design
levels.  It provides two worlds and a bridge between them:

* A **cycle-accurate synchronous kernel** (:mod:`repro.hdl.signal`,
  :mod:`repro.hdl.component`, :mod:`repro.hdl.simulator`,
  :mod:`repro.hdl.register`, :mod:`repro.hdl.memory`, :mod:`repro.hdl.fsm`)
  used to model the GA IP core, its memories, the RNG module, and the
  handshake protocols of Table II at clock-cycle granularity.  All component
  outputs are registered (Moore style) and updated with two-phase
  ``clock()``/``commit()`` semantics, which mirrors how the synthesized
  netlist behaves between rising clock edges.

* A **gate-level netlist world** (:mod:`repro.hdl.gates`,
  :mod:`repro.hdl.netlist`, :mod:`repro.hdl.rtlib`, :mod:`repro.hdl.flatten`,
  :mod:`repro.hdl.scan`) with the same primitive alphabet the paper's
  flattening flow emits (``NAND``, ``NOR``, ``AND``, ``OR``, ``XOR``,
  ``SCAN_REGISTER``), structural generators for the datapath blocks of the
  GA core, RTL-to-gate flattening, scan-chain insertion, and netlist
  simulation for equivalence checking.

The resource estimator in :mod:`repro.analysis.resources` consumes gate-level
netlists produced here to regenerate Table VI of the paper.
"""

from repro.hdl.signal import Signal, SignalConflictError
from repro.hdl.component import Component
from repro.hdl.simulator import Simulator, SimulationTimeout
from repro.hdl.register import Register, Counter
from repro.hdl.memory import SinglePortRAM, BlockROM
from repro.hdl.fsm import MooreFSM
from repro.hdl.gates import GateType, Gate
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.bitsim import (
    CompiledNetlist,
    PackedStepper,
    compiled,
    packed_evaluate,
    simulate_many,
)
from repro.hdl.scan import (
    Stepper,
    insert_scan_chain,
    scan_dump,
    scan_dump_many,
    scan_load,
    scan_load_many,
)
from repro.hdl.export import lint, read_netlist, write_netlist
from repro.hdl.optimize import equivalent, optimize
from repro.hdl.vcd import VCDRecorder

__all__ = [
    "Signal",
    "SignalConflictError",
    "Component",
    "Simulator",
    "SimulationTimeout",
    "Register",
    "Counter",
    "SinglePortRAM",
    "BlockROM",
    "MooreFSM",
    "GateType",
    "Gate",
    "Netlist",
    "NetlistError",
    "CompiledNetlist",
    "PackedStepper",
    "compiled",
    "packed_evaluate",
    "simulate_many",
    "Stepper",
    "insert_scan_chain",
    "scan_dump",
    "scan_dump_many",
    "scan_load",
    "scan_load_many",
    "lint",
    "read_netlist",
    "write_netlist",
    "equivalent",
    "optimize",
    "VCDRecorder",
]
