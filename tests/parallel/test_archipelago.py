"""Differential conformance suite for the vectorized archipelago.

Three implementations of the island model must agree bit-for-bit in
exact mode — the vectorized slab (:class:`VectorIslandGA`), the legacy
batched epoch loop (``IslandGA.run_epoch_loop`` with ``processes=1``),
and the pooled epoch fan-out (``processes>1``) — for every
``(params, seed, topology)``.  Turbo mode must be deterministic and
agree between the carried slab and the per-epoch chunking of the legacy
loop (composition independence).  Random topologies must be
seed-deterministic.  The service must round-trip an ``n_islands`` job to
the same numbers as a local run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import GAParameters
from repro.core.validate import validate_island_params
from repro.fitness import BF6, F3
from repro.fitness.functions import by_name
from repro.parallel import IslandGA, VectorIslandGA, build_topology
from repro.parallel.archipelago import (
    MigrationTopology,
    random_topology,
    ring_topology,
    torus_topology,
)

TOPOLOGIES = ["ring", "torus", "random", "random:3"]


def params(**overrides):
    base = dict(
        n_generations=18,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestTopologies:
    def test_ring_is_the_legacy_rotation(self):
        topo = ring_topology(5)
        assert topo.n_edges == 5
        # destination i receives from (i - 1) mod n
        assert topo.dests.tolist() == [0, 1, 2, 3, 4]
        assert topo.sources.tolist() == [4, 0, 1, 2, 3]
        assert topo.rank.tolist() == [0] * 5
        assert topo.max_fan_in == 1

    def test_single_island_has_no_edges(self):
        for builder in (ring_topology, torus_topology):
            assert builder(1).n_edges == 0
        assert random_topology(1, 2, 7).n_edges == 0

    def test_torus_grid_edges(self):
        topo = torus_topology(12)  # 3 x 4 grid
        assert topo.n_edges == 24  # right + down per island
        assert topo.max_fan_in == 2
        assert not np.any(topo.sources == topo.dests)

    def test_torus_prime_degenerates_to_ring(self):
        topo = torus_topology(7)  # 1 x 7 row: down edges are self-edges
        assert topo.n_edges == 7
        assert topo.max_fan_in == 1

    def test_random_topology_seed_deterministic(self):
        a = random_topology(10, 3, seed=77)
        b = random_topology(10, 3, seed=77)
        c = random_topology(10, 3, seed=78)
        assert np.array_equal(a.sources, b.sources)
        assert np.array_equal(a.dests, b.dests)
        assert not (
            np.array_equal(a.sources, c.sources)
            and np.array_equal(a.dests, c.dests)
        )

    def test_random_topology_fan_in_and_wiring(self):
        topo = random_topology(9, 3, seed=5)
        assert topo.n_edges == 27
        assert topo.max_fan_in == 3
        assert not np.any(topo.sources == topo.dests)
        for dest in range(9):
            srcs = topo.sources[topo.dests == dest]
            assert len(set(srcs.tolist())) == 3  # distinct sources

    def test_random_fan_in_clamped_to_n_minus_one(self):
        topo = random_topology(4, 99, seed=1)
        assert topo.max_fan_in == 3

    def test_self_edges_rejected(self):
        with pytest.raises(ValueError, match="self-edges"):
            MigrationTopology(
                "ring", 3, np.array([0, 1]), np.array([0, 2])
            )

    def test_build_topology_dispatch(self):
        assert build_topology("ring", 4, 1).name == "ring"
        assert build_topology("torus", 4, 1).name == "torus"
        assert build_topology("random:2", 4, 1).name == "random"


class TestExactBitIdentity:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize(
        "n_islands,interval,gens,seed",
        [(1, 3, 10, 7), (2, 8, 20, 1), (5, 4, 21, 1234), (8, 3, 17, 99)],
    )
    def test_vector_matches_legacy_loop(
        self, topology, n_islands, interval, gens, seed
    ):
        p = params(n_generations=gens, rng_seed=seed)
        legacy = IslandGA(
            p, F3(), n_islands=n_islands, migration_interval=interval,
            topology=topology,
        ).run_epoch_loop()
        vec = VectorIslandGA(
            p, F3(), n_islands=n_islands, migration_interval=interval,
            topology=topology,
        ).run()
        assert vec == legacy

    def test_delegated_run_is_the_vector_path(self):
        ga = IslandGA(params(), BF6(), n_islands=4, migration_interval=5)
        assert ga.run() == ga.run_epoch_loop()

    @settings(max_examples=15, deadline=None)
    @given(
        n_islands=st.integers(1, 7),
        interval=st.integers(1, 9),
        gens=st.integers(1, 24),
        seed=st.integers(1, 0xFFFF),
        topology=st.sampled_from(TOPOLOGIES),
    )
    def test_property_vector_vs_legacy(
        self, n_islands, interval, gens, seed, topology
    ):
        p = params(
            n_generations=gens, population_size=8, rng_seed=seed
        )
        legacy = IslandGA(
            p, F3(), n_islands=n_islands, migration_interval=interval,
            topology=topology,
        ).run_epoch_loop()
        vec = VectorIslandGA(
            p, F3(), n_islands=n_islands, migration_interval=interval,
            topology=topology,
        ).run()
        assert vec == legacy

    @pytest.mark.parametrize("topology", ["ring", "torus"])
    def test_pooled_matches_vector(self, topology):
        p = params(n_generations=12, population_size=8)
        with IslandGA(
            p, F3(), n_islands=3, migration_interval=4, processes=2,
            topology=topology,
        ) as pooled_ga:
            pooled = pooled_ga.run()
            # the persistent pool survives a second run on the same
            # instance and still agrees (warm worker fitness caches)
            pooled_again = pooled_ga.run()
        vec = IslandGA(
            p, F3(), n_islands=3, migration_interval=4, topology=topology
        ).run()
        assert pooled == vec
        assert pooled_again == vec

    def test_thousand_islands_bit_identical(self):
        # the acceptance-criteria shape: a 1000-island exact-mode slab
        # agrees with the legacy processes=1 epoch loop
        p = params(n_generations=6, population_size=8, rng_seed=0x061F)
        kwargs = dict(n_islands=1000, migration_interval=3)
        vec = VectorIslandGA(p, F3(), **kwargs).run()
        legacy = IslandGA(p, F3(), **kwargs).run_epoch_loop()
        assert vec == legacy
        assert len(vec.island_bests) == 1000
        assert vec.migrations == 1000  # one ring boundary

    def test_record_champions_off_drops_only_champions(self):
        p = params()
        full = VectorIslandGA(
            p, F3(), n_islands=4, migration_interval=6
        ).run()
        lean = VectorIslandGA(
            p, F3(), n_islands=4, migration_interval=6,
            record_champions=False,
        ).run()
        assert lean.epoch_champions == []
        assert full.epoch_champions
        lean.epoch_champions = full.epoch_champions
        assert lean == full


class TestTurbo:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_turbo_deterministic_and_composition_independent(self, topology):
        p = params(n_generations=21, rng_seed=0x2961)
        kwargs = dict(n_islands=5, migration_interval=4, topology=topology)
        a = VectorIslandGA(p, BF6(), engine_mode="turbo", **kwargs).run()
        b = VectorIslandGA(p, BF6(), engine_mode="turbo", **kwargs).run()
        # the legacy loop re-chunks the same turbo streams as one fresh
        # engine per epoch; turbo word consumption is composition-
        # independent, so the carried slab must agree draw-for-draw
        c = IslandGA(
            p, BF6(), engine_mode="turbo", **kwargs
        ).run_epoch_loop()
        assert a == b == c

    def test_turbo_differs_from_exact_but_same_accounting(self):
        p = params(n_generations=20)
        kwargs = dict(n_islands=4, migration_interval=5)
        exact = VectorIslandGA(p, BF6(), **kwargs).run()
        turbo = VectorIslandGA(p, BF6(), engine_mode="turbo", **kwargs).run()
        assert exact.evaluations == turbo.evaluations
        assert exact.migrations == turbo.migrations
        assert len(exact.best_per_epoch) == len(turbo.best_per_epoch)


class TestValidationParity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_islands=0),
            dict(migration_interval=0),
            dict(topology="star"),
            dict(topology="ring:3"),
            dict(topology="random:0"),
        ],
    )
    def test_same_error_from_every_layer(self, kwargs):
        from repro.service.jobs import GARequest

        base = dict(n_islands=4, migration_interval=8, topology="ring")
        merged = {**base, **kwargs}
        with pytest.raises(ValueError) as direct:
            validate_island_params(**merged)
        with pytest.raises(ValueError) as legacy:
            IslandGA(params(), F3(), **merged)
        with pytest.raises(ValueError) as vector:
            VectorIslandGA(params(), F3(), **merged)
        with pytest.raises(ValueError) as wire:
            GARequest(params=params(), **merged)
        assert (
            str(direct.value)
            == str(legacy.value)
            == str(vector.value)
            == str(wire.value)
        )

    def test_fan_in_cannot_swallow_population(self):
        with pytest.raises(ValueError, match="fan-in"):
            VectorIslandGA(
                params(population_size=4), F3(), n_islands=8,
                topology="random:4",
            )


class TestServiceRoundTrip:
    def test_island_job_matches_local_run(self):
        from repro.service import GARequest, GAService
        from repro.service.batcher import BatchPolicy

        p = params(n_generations=24, rng_seed=0x2961)
        request = GARequest(
            params=p, fitness_name="mBF6_2", n_islands=6,
            migration_interval=5, topology="torus",
        )
        with GAService(workers=2, mode="thread",
                       policy=BatchPolicy(max_batch=8)) as service:
            result = service.submit(request).result(timeout=60)
        local = IslandGA(
            p, by_name("mBF6_2"), n_islands=6, migration_interval=5,
            topology="torus",
        ).run()
        assert result.best_fitness == local.best_fitness
        assert result.best_individual == local.best_individual
        assert result.evaluations == local.evaluations
        assert result.n_chunks == 1  # island slabs run solo, unchunked
        assert result.island_stats["migrations"] == local.migrations
        assert result.island_stats["island_bests"] == local.island_bests
        # an island job's history rows are per epoch
        assert [
            (g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ] == [tuple(row) for row in local.epoch_summary]

    def test_wire_round_trip_carries_island_fields(self):
        from repro.service import GARequest

        request = GARequest(
            params=params(), n_islands=16, migration_interval=3,
            topology="random:2",
        )
        assert GARequest.from_dict(request.to_dict()) == request

    def test_island_jobs_do_not_batch_with_ordinary_jobs(self):
        from repro.service import GARequest, GAService
        from repro.service.batcher import BatchPolicy

        p = params(n_generations=8)
        island = GARequest(params=p, n_islands=4)
        plain = GARequest(params=p)
        with GAService(workers=1, mode="thread",
                       policy=BatchPolicy(max_batch=8)) as service:
            results = service.run_all([island, plain, plain], timeout=60)
        assert results[0].island_stats
        assert not results[1].island_stats
        # the plain jobs agree with a solo run regardless of the island
        # job sharing the queue
        assert results[1].best_fitness == results[2].best_fitness
