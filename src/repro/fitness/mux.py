"""8-way fitness-function multiplexing (Sec. III-B.5 and Fig. 5).

"The GA core can handle up to eight different fitness evaluation modules,
and the user can select the required fitness evaluation module by providing
a 3-bit fitness selection value."  Slots may be *internal* (FEMs synthesized
next to the core) or *external* (a FEM on another chip/board, reached
through the ``fit_value_ext``/``fit_valid_ext`` pins of Table II) — this is
what makes the hybrid intrinsic-EHW system of Fig. 5 possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl.component import Component
from repro.hdl.signal import Signal

#: Width of the fitfunc_select port (Table II row 23).
SELECT_WIDTH = 3
#: Maximum number of fitness-function slots (2**SELECT_WIDTH).
MAX_SLOTS = 1 << SELECT_WIDTH


@dataclass
class FEMInterface:
    """The four-signal fitness handshake bundle (Table II rows 8-11)."""

    candidate: Signal
    fit_request: Signal
    fit_value: Signal
    fit_valid: Signal

    @classmethod
    def create(cls, prefix: str) -> "FEMInterface":
        """Fresh signal bundle with conventional names/widths."""
        return cls(
            candidate=Signal(f"{prefix}.candidate", 16),
            fit_request=Signal(f"{prefix}.fit_request", 1),
            fit_value=Signal(f"{prefix}.fit_value", 16),
            fit_valid=Signal(f"{prefix}.fit_valid", 1),
        )


@dataclass
class ExternalFEMPort:
    """Pins for a fitness module housed on another chip or board.

    ``fit_value_ext`` / ``fit_valid_ext`` are Table II rows 24-25; the
    candidate and request reach the external module through the shared
    candidate bus and ``fit_request`` (shown bold in Fig. 5).
    """

    fit_value_ext: Signal
    fit_valid_ext: Signal

    @classmethod
    def create(cls, prefix: str = "ext") -> "ExternalFEMPort":
        return cls(
            fit_value_ext=Signal(f"{prefix}.fit_value_ext", 16),
            fit_valid_ext=Signal(f"{prefix}.fit_valid_ext", 1),
        )


class FitnessMux(Component):
    """Routes the GA-side handshake to the selected FEM slot.

    ``slots`` maps select values (0-7) to internal :class:`FEMInterface`
    bundles; select values present in ``external`` route the response path
    to the external pins instead.  Routing is registered (one cycle each
    way), which the latency-insensitive handshake absorbs.
    """

    def __init__(
        self,
        name: str,
        ga_side: FEMInterface,
        select: Signal,
        slots: dict[int, FEMInterface] | None = None,
        external: dict[int, ExternalFEMPort] | None = None,
    ):
        super().__init__(name)
        self.ga_side = ga_side
        self.select = select
        self.slots = dict(slots or {})
        self.external = dict(external or {})
        overlap = set(self.slots) & set(self.external)
        if overlap:
            raise ValueError(f"slots {sorted(overlap)} are both internal and external")
        for index in list(self.slots) + list(self.external):
            if not 0 <= index < MAX_SLOTS:
                raise ValueError(f"slot index {index} out of range 0..{MAX_SLOTS - 1}")

    def clock(self) -> None:
        sel = self.select.value
        # Forward path: candidate + request to the selected internal FEM
        # (external FEMs observe the shared candidate/request pins directly).
        for index, iface in self.slots.items():
            if index == sel:
                self.drive(iface.candidate, self.ga_side.candidate.value)
                self.drive(iface.fit_request, self.ga_side.fit_request.value)
            else:
                self.drive(iface.fit_request, 0)
        # Return path: value + valid from the selected source.
        if sel in self.slots:
            src = self.slots[sel]
            self.drive(self.ga_side.fit_value, src.fit_value.value)
            self.drive(self.ga_side.fit_valid, src.fit_valid.value)
        elif sel in self.external:
            ext = self.external[sel]
            self.drive(self.ga_side.fit_value, ext.fit_value_ext.value)
            self.drive(self.ga_side.fit_valid, ext.fit_valid_ext.value)
        else:
            self.drive(self.ga_side.fit_valid, 0)

    def reset(self) -> None:
        super().reset()
        self.ga_side.fit_valid.reset()
        self.ga_side.fit_value.reset()
        for iface in self.slots.values():
            iface.fit_request.reset()
