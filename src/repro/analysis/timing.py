"""Hardware/software runtime comparison — Sec. IV-C.

The paper measures the C GA on the Virtex-II Pro's PowerPC (with the lookup
FEM on the fabric, reached over the bus) at **37.615 ms** for the
pop-32 / 32-generation mBF6_2 run, against the 50 MHz hardware GA — a
**5.16x** speedup, i.e. a hardware runtime of ~7.29 ms (~364.5k cycles at
50 MHz, ~345 cycles per evaluation).

We cannot run a PowerPC, so the software side is priced by an
instruction-cost model over the :class:`~repro.baselines.software_ga.SoftwareGA`
operation counters.  The constants below are calibrated (documented, not
hidden) so the modelled software runtime lands on the paper's 37.6 ms; the
hardware side uses *our* cycle-accurate core's measured cycle count.  Our
FSM is leaner than the paper's synthesized controller (~62 vs. ~345 cycles
per evaluation), so the measured speedup comes out *higher* than 5.16x; the
report also includes a "paper-equivalent hardware" row that prices the
hardware at the paper's implied cycles-per-evaluation, which reproduces the
5.16x figure.  Both rows are printed by ``benchmarks/bench_speedup.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.software_ga import OpCounters, SoftwareGA
from repro.core.params import GAParameters
from repro.core.system import GA_CLOCK_HZ, GASystem
from repro.fitness.base import FitnessFunction

#: Paper's measured software runtime (pop 32, 32 gens, mBF6_2), seconds.
PAPER_SOFTWARE_RUNTIME_S = 0.037615
#: Paper's reported hardware speedup.
PAPER_SPEEDUP = 5.16
#: Hardware cycles per fitness evaluation implied by the paper's numbers:
#: (37.615 ms / 5.16) * 50 MHz / (33 generations x 32 individuals).
PAPER_HW_CYCLES_PER_EVAL = PAPER_SOFTWARE_RUNTIME_S / PAPER_SPEEDUP * GA_CLOCK_HZ / (33 * 32)


@dataclass(frozen=True)
class PowerPCCostModel:
    """CPU cycles per software-GA operation class.

    Calibrated against the paper's 37.615 ms measurement: the dominant term
    is the bus round-trip per fitness request (driver call + PLB read +
    handshake polling), which is exactly the "time- and resource-consuming
    communication protocols" the paper's introduction motivates removing.
    """

    clock_hz: float = 100e6  # embedded PowerPC 405 at the board clock
    rng_call: int = 60  # CA step in C: 16-cell loop with shifts/xors
    selection_scan: int = 12  # loop body: load, add, compare, branch
    fitness_call: int = 3100  # bus round-trip incl. driver + polling
    memory_op: int = 10
    arith_op: int = 6

    def price(self, ops: OpCounters) -> float:
        """Software runtime in seconds for a counted run."""
        cycles = (
            ops.rng_calls * self.rng_call
            + ops.selection_scans * self.selection_scan
            + ops.fitness_calls * self.fitness_call
            + ops.memory_ops * self.memory_op
            + ops.arith_ops * self.arith_op
        )
        return cycles / self.clock_hz


def software_runtime(
    ops: OpCounters, model: PowerPCCostModel | None = None
) -> float:
    """Seconds the counted software run takes under the cost model."""
    return (model or PowerPCCostModel()).price(ops)


def hardware_runtime(cycles: int, clock_hz: float = GA_CLOCK_HZ) -> float:
    """Seconds a hardware run of ``cycles`` GA-domain cycles takes."""
    return cycles / clock_hz


@dataclass
class SpeedupReport:
    """Both speedup views for one configuration."""

    software_seconds: float
    hardware_seconds: float
    hardware_cycles: int
    evaluations: int
    speedup_measured: float
    speedup_paper_equivalent: float

    def rows(self) -> list[dict[str, float | str]]:
        return [
            {
                "quantity": "software runtime (modelled PowerPC)",
                "paper": PAPER_SOFTWARE_RUNTIME_S,
                "measured": self.software_seconds,
            },
            {
                "quantity": "hardware runtime (this core @50MHz)",
                "paper": PAPER_SOFTWARE_RUNTIME_S / PAPER_SPEEDUP,
                "measured": self.hardware_seconds,
            },
            {
                "quantity": "speedup (this core)",
                "paper": PAPER_SPEEDUP,
                "measured": self.speedup_measured,
            },
            {
                "quantity": "speedup (paper-equivalent hw cycles/eval)",
                "paper": PAPER_SPEEDUP,
                "measured": self.speedup_paper_equivalent,
            },
        ]


def speedup_experiment(
    params: GAParameters,
    fitness: FitnessFunction,
    model: PowerPCCostModel | None = None,
) -> SpeedupReport:
    """Run the Sec. IV-C comparison on one configuration."""
    model = model or PowerPCCostModel()
    software = SoftwareGA(params, fitness)
    software.run()
    sw_seconds = model.price(software.ops)

    hw_result = GASystem(params, fitness).run()
    hw_seconds = hardware_runtime(hw_result.cycles)

    paper_equiv_cycles = PAPER_HW_CYCLES_PER_EVAL * hw_result.evaluations
    paper_equiv_seconds = hardware_runtime(int(paper_equiv_cycles))

    return SpeedupReport(
        software_seconds=sw_seconds,
        hardware_seconds=hw_seconds,
        hardware_cycles=hw_result.cycles,
        evaluations=hw_result.evaluations,
        speedup_measured=sw_seconds / hw_seconds,
        speedup_paper_equivalent=sw_seconds / paper_equiv_seconds,
    )
