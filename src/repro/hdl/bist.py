"""Memory built-in self test: march algorithms for the GA memory.

The GA memory is a 256 x 32-bit single-port block RAM; a fabricated ASIC
(Sec. V) would test it with a march algorithm rather than scan.  This
module implements **MATS+** and **March C-** over any
:class:`~repro.hdl.memory.SinglePortRAM`, with a fault-injection harness
(stuck-at cells, coupling faults) proving the algorithms detect what they
claim to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.hdl.memory import SinglePortRAM


@dataclass
class MarchResult:
    """Outcome of a march test."""

    algorithm: str
    passed: bool
    operations: int
    first_failure: tuple[int, int, int] | None = None  # (addr, expect, got)


class MemoryHarness:
    """Direct read/write access to a RAM model with optional fault hooks.

    ``stuck_bits`` maps (address, bit) -> forced value;
    ``coupling`` maps aggressor address -> (victim address, bit): writing
    the aggressor flips the victim's bit (an idempotent coupling fault).
    """

    def __init__(self, ram: SinglePortRAM):
        self.ram = ram
        self.stuck_bits: dict[tuple[int, int], int] = {}
        self.coupling: dict[int, tuple[int, int]] = {}
        self.operations = 0

    # fault injection -----------------------------------------------------
    def inject_stuck_bit(self, addr: int, bit: int, value: int) -> None:
        self.stuck_bits[(addr, bit)] = value & 1

    def inject_coupling(self, aggressor: int, victim: int, bit: int) -> None:
        self.coupling[aggressor] = (victim, bit)

    # faulty accesses -----------------------------------------------------
    def write(self, addr: int, value: int) -> None:
        self.operations += 1
        self.ram.data[addr] = value & ((1 << self.ram.width) - 1)
        self._apply_stuck(addr)
        if addr in self.coupling:
            victim, bit = self.coupling[addr]
            self.ram.data[victim] ^= 1 << bit

    def read(self, addr: int) -> int:
        self.operations += 1
        self._apply_stuck(addr)
        return self.ram.data[addr]

    def _apply_stuck(self, addr: int) -> None:
        for (a, bit), value in self.stuck_bits.items():
            if a == addr:
                word = self.ram.data[addr]
                word = (word & ~(1 << bit)) | (value << bit)
                self.ram.data[addr] = word


def _march(
    harness: MemoryHarness,
    algorithm: str,
    elements: list[tuple[str, list[Callable[[MemoryHarness, int, int], tuple[bool, int]]]]],
    background: int,
    width_mask: int,
) -> MarchResult:
    depth = harness.ram.depth
    for element_dir, ops in elements:
        addresses = range(depth) if element_dir == "up" else range(depth - 1, -1, -1)
        for addr in addresses:
            for op in ops:
                ok, got = op(harness, addr, width_mask)
                if not ok:
                    return MarchResult(
                        algorithm, False, harness.operations,
                        first_failure=(addr, got >> 32, got & 0xFFFFFFFF),
                    )
    return MarchResult(algorithm, True, harness.operations)


def _r(expected: int):
    def op(h: MemoryHarness, addr: int, mask: int):
        got = h.read(addr)
        want = expected & mask
        return got == want, (want << 32) | got

    return op


def _w(value: int):
    def op(h: MemoryHarness, addr: int, mask: int):
        h.write(addr, value & mask)
        return True, 0

    return op


def mats_plus(harness: MemoryHarness) -> MarchResult:
    """MATS+: {up(w0); up(r0,w1); down(r1,w0)} — detects all stuck-at and
    address-decoder faults in 5N operations."""
    mask = (1 << harness.ram.width) - 1
    ones = mask
    return _march(
        harness,
        "MATS+",
        [
            ("up", [_w(0)]),
            ("up", [_r(0), _w(ones)]),
            ("down", [_r(ones), _w(0)]),
        ],
        background=0,
        width_mask=mask,
    )


def march_c_minus(harness: MemoryHarness) -> MarchResult:
    """March C-: {up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0);
    up(r0)} — additionally detects unlinked idempotent coupling faults in
    10N operations."""
    mask = (1 << harness.ram.width) - 1
    ones = mask
    return _march(
        harness,
        "March C-",
        [
            ("up", [_w(0)]),
            ("up", [_r(0), _w(ones)]),
            ("up", [_r(ones), _w(0)]),
            ("down", [_r(0), _w(ones)]),
            ("down", [_r(ones), _w(0)]),
            ("up", [_r(0)]),
        ],
        background=0,
        width_mask=mask,
    )
