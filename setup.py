"""Setup shim.

This offline environment lacks the ``wheel`` package, so PEP 660 editable
installs fail; this shim lets ``pip install -e . --no-use-pep517`` (legacy
``setup.py develop``) work.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
