"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, build_parser, main


class TestParser:
    # commands with required arguments: the minimal invocation that parses
    REQUIRED = {
        "replay": ["0" * 64, "--store-dir", "runs"],
        "store": ["ls", "--store-dir", "runs"],
        "experiment": ["ls"],
    }

    def test_all_commands_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name, *self.REQUIRED.get(name, [])])
            assert args.command == name

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.fitness == "mBF6_2"
        assert args.pop == 64
        assert args.seed == "0x061F"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "speedup" in out

    def test_run_behavioural(self, capsys):
        rc = main([
            "run", "--fitness", "F3", "--pop", "16", "--gens", "8",
            "--seed", "45890",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "F3: best" in out and "optimum 3060" in out

    def test_run_cycle_accurate(self, capsys):
        rc = main([
            "run", "--fitness", "F2", "--pop", "8", "--gens", "4",
            "--seed", "10593", "--cycle-accurate",
        ])
        assert rc == 0
        assert "GA cycles" in capsys.readouterr().out

    def test_run_hex_seed(self, capsys):
        assert main(["run", "--fitness", "F3", "--pop", "8", "--gens", "2",
                     "--seed", "0xB342"]) == 0

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "Table VI" in out and "Clock (MHz)" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        assert "Fig. 7" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Proposed" in out
