"""A virtual reconfigurable logic fabric — the evolvable hardware itself.

A 4-input, 4-cell programmable logic block whose entire configuration fits
the GA core's 16-bit chromosome: each cell's nibble selects a two-input
Boolean function and an input pair.  Cells 0-1 read the primary inputs;
cells 2-3 can also read earlier cells, giving two logic levels — enough to
evolve nontrivial functions (parity, majority, comparators) while keeping
the configuration space exactly the core's search space.

Fault injection models radiation-induced resource failures: a faulty cell's
output is stuck, and the GA must *re-evolve around it* (the evolutionary
recovery experiment of Stoica et al. [27]).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.fitness.base import FitnessFunction

#: Two-input cell functions selected by the low 2 bits of a cell's nibble.
CELL_FUNCTIONS: list[Callable[[int, int], int]] = [
    lambda a, b: a & b,  # 00: AND
    lambda a, b: a | b,  # 01: OR
    lambda a, b: a ^ b,  # 10: XOR
    lambda a, b: 1 - (a & b),  # 11: NAND
]

#: Input-pair choices per cell, selected by the high 2 bits of its nibble.
#: Sources 0-3 are the primary inputs; 4-5 are cells 0-1 (only legal for
#: cells 2-3; earlier cells wrap onto primary inputs).
_PAIR_CHOICES: list[list[tuple[int, int]]] = [
    [(0, 1), (1, 2), (2, 3), (0, 3)],  # cell 0
    [(0, 2), (1, 3), (0, 1), (2, 3)],  # cell 1
    [(4, 5), (4, 2), (5, 3), (0, 4)],  # cell 2
    [(4, 5), (5, 2), (4, 3), (1, 5)],  # cell 3 (output cell)
]


class VirtualFabric:
    """The reconfigurable block: configuration word -> Boolean function."""

    N_INPUTS = 4
    N_CELLS = 4

    def __init__(self) -> None:
        #: stuck-at faults per cell: None (healthy) or 0/1.
        self.faults: list[int | None] = [None] * self.N_CELLS

    # ------------------------------------------------------------------
    def inject_fault(self, cell: int, stuck_at: int) -> None:
        """Break a cell: its output is stuck regardless of configuration."""
        if not 0 <= cell < self.N_CELLS:
            raise ValueError(f"no such cell {cell}")
        self.faults[cell] = stuck_at & 1

    def heal_all(self) -> None:
        """Clear all injected faults (a fresh device)."""
        self.faults = [None] * self.N_CELLS

    # ------------------------------------------------------------------
    def evaluate(self, config: int, inputs: tuple[int, int, int, int]) -> int:
        """Output bit of the configured fabric for one input combination."""
        sources = list(inputs)  # indices 0-3
        for cell in range(self.N_CELLS):
            nibble = (config >> (4 * cell)) & 0xF
            func = CELL_FUNCTIONS[nibble & 0b11]
            pair = _PAIR_CHOICES[cell][(nibble >> 2) & 0b11]
            a = sources[pair[0]] if pair[0] < len(sources) else 0
            b = sources[pair[1]] if pair[1] < len(sources) else 0
            out = func(a, b)
            if self.faults[cell] is not None:
                out = self.faults[cell]
            sources.append(out)  # cell i becomes source 4 + i
        return sources[-1]

    def truth_table(self, config: int) -> int:
        """The configured function as a 16-bit truth table (bit i = output
        for input combination i = {d,c,b,a})."""
        table = 0
        for combo in range(16):
            bits = tuple((combo >> k) & 1 for k in range(self.N_INPUTS))
            table |= self.evaluate(config, bits) << combo
        return table


#: Target functions to evolve, as 16-entry truth tables (input index i has
#: bits a=i0, b=i1, c=i2, d=i3).
def _tt(fn: Callable[[int, int, int, int], int]) -> int:
    table = 0
    for combo in range(16):
        a, b, c, d = ((combo >> k) & 1 for k in range(4))
        table |= (fn(a, b, c, d) & 1) << combo
    return table


TARGET_FUNCTIONS: dict[str, int] = {
    "parity4": _tt(lambda a, b, c, d: a ^ b ^ c ^ d),
    "majority": _tt(lambda a, b, c, d: int(a + b + c + d >= 2)),
    "mux2": _tt(lambda a, b, c, d: b if a else c),
    "and4": _tt(lambda a, b, c, d: a & b & c & d),
    "xor2and": _tt(lambda a, b, c, d: (a ^ b) & (c | d)),
}


class FabricFitness(FitnessFunction):
    """Fitness of a fabric configuration: truth-table agreement with a
    target function, scaled into the 16-bit fit_value range.

    Each matching row of the 16-row truth table is worth 4095, so a perfect
    configuration scores 65,520 — an intrinsic-EHW fitness with exactly the
    core's interface.
    """

    n_vars = 1

    def __init__(self, target: str | int, fabric: VirtualFabric | None = None):
        if isinstance(target, str):
            self.target_name = target
            self.target_table = TARGET_FUNCTIONS[target]
        else:
            self.target_name = f"tt{target:04X}"
            self.target_table = target & 0xFFFF
        self.fabric = fabric if fabric is not None else VirtualFabric()
        self.name = f"fabric:{self.target_name}"

    @property
    def perfect_score(self) -> int:
        return 16 * 4095

    def _tables_vectorised(self, configs: np.ndarray) -> np.ndarray:
        """Truth tables for many configurations at once (numpy fast path;
        cross-checked against :meth:`VirtualFabric.truth_table` in tests)."""
        configs = configs.astype(np.int64)
        n = len(configs)
        tables = np.zeros(n, dtype=np.int64)
        faults = self.fabric.faults
        for combo in range(16):
            sources = [
                np.full(n, (combo >> k) & 1, dtype=np.int64) for k in range(4)
            ]
            for cell in range(VirtualFabric.N_CELLS):
                nibble = (configs >> (4 * cell)) & 0xF
                fsel = nibble & 0b11
                psel = (nibble >> 2) & 0b11
                a = np.zeros(n, dtype=np.int64)
                b = np.zeros(n, dtype=np.int64)
                for p, pair in enumerate(_PAIR_CHOICES[cell]):
                    mask = psel == p
                    if pair[0] < len(sources):
                        a[mask] = sources[pair[0]][mask]
                    if pair[1] < len(sources):
                        b[mask] = sources[pair[1]][mask]
                out = np.select(
                    [fsel == 0, fsel == 1, fsel == 2, fsel == 3],
                    [a & b, a | b, a ^ b, 1 - (a & b)],
                )
                if faults[cell] is not None:
                    out = np.full(n, faults[cell], dtype=np.int64)
                sources.append(out)
            tables |= sources[-1] << combo
        return tables

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        tables = self._tables_vectorised(np.asarray(chromosomes))
        diff = tables ^ self.target_table
        # popcount of the 16-bit mismatch word
        mismatches = np.zeros(len(tables), dtype=np.int64)
        for k in range(16):
            mismatches += (diff >> k) & 1
        return (16 - mismatches) * 4095

    def table(self) -> np.ndarray:
        """Cached full-space table (the fabric is only 65,536 configs)."""
        if self._table is None:
            self._table = super().table()
        return self._table

    def invalidate(self) -> None:
        """Drop the cached table after a fault changes the fabric."""
        self._table = None
