"""Table VII — mBF6_2 best fitness across the 6-seed x 4-setting grid.

The 24 cells run as one batched sweep (``run_fpga_table`` fans them into
two :class:`BatchBehavioralGA` calls, one per population size)."""

import pytest

from conftest import print_table
from repro.experiments.table789 import run_fpga_table


@pytest.mark.benchmark(group="table7")
def test_table7_mbf6_grid(benchmark):
    report = benchmark.pedantic(
        run_fpga_table, args=("mBF6_2",), rounds=1, iterations=1
    )
    keys = ["seed", "pop32/XR10", "paper_pop32/XR10", "pop32/XR12",
            "paper_pop32/XR12", "pop64/XR10", "paper_pop64/XR10",
            "pop64/XR12", "paper_pop64/XR12"]
    print_table("Table VII (mBF6_2, optimum 8183)", report["rows"], keys)
    print(f"best overall: {report['best_overall']}, gap {report['gap_pct']}%")

    # Paper claims: best found within 0.59% of the global optimum 8183,
    # with strong variation across seeds (the programmable-seed argument).
    assert report["gap_pct"] <= 0.6
    cells = [
        row[c] for row in report["rows"]
        for c in ("pop32/XR10", "pop32/XR12", "pop64/XR10", "pop64/XR12")
    ]
    assert max(cells) - min(cells) > 200  # seed/parameter sensitivity
