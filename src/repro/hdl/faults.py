"""Stuck-at fault simulation and scan-based test generation.

The scan chain of Sec. III-C.2 exists to make the flattened core testable:
with every register controllable/observable through the chain, testing the
chip reduces to testing the *combinational* logic between flops.  This
module provides that manufacturing-test substrate:

* the single stuck-at-0/1 fault model over all driven nets;
* fault simulation under the scan-test model (flop outputs are
  pseudo-inputs, flop inputs are pseudo-outputs) with fault dropping, in
  two engines:

  - ``engine="serial"`` — the original one-Boolean-at-a-time oracle;
  - ``engine="packed"`` (default via ``"auto"``) — PPSFP
    (parallel-pattern single-fault propagation) on the bit-parallel
    levelized engine of :mod:`repro.hdl.bitsim`: 64 test patterns ride
    the bit lanes of each ``uint64`` word and a chunk of single-fault
    machines rides the word lanes, so one levelized sweep fault-simulates
    thousands of (fault, pattern) pairs;

* random-pattern test generation with compaction; its inner loop uses the
  *fault-parallel* packed mode — 64 remaining faults per word (plus the
  fault-free machine in bit 0) against one candidate vector per sweep —
  which is the shape ATPG wants: many live faults, one new vector;
* coverage reporting for the full flattened GA core.  The packed engines
  made the full ~10k-fault universe of the flattened core simulable
  without sampling (see ``benchmarks/bench_fault_engine.py``); both
  engines produce bit-identical :class:`CoverageReport`\\ s, locked in by
  ``tests/hdl/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.hdl import bitsim
from repro.hdl.netlist import Netlist

#: Patterns per PPSFP pass (one uint64 bit lane).
_PPSFP_BATCH = 64
#: Single-fault machines propagated per levelized sweep (word lanes).
_PPSFP_CHUNK = 128


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on one net."""

    net: int
    stuck_at: int  # 0 or 1

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"n{self.net}/SA{self.stuck_at}"


@dataclass
class TestVector:
    """One scan-test pattern: values for primary inputs and flop states."""

    #: Keep pytest from trying to collect this as a test class.
    __test__ = False

    inputs: dict[str, int]
    flops: list[int]


def enumerate_faults(netlist: Netlist) -> list[Fault]:
    """All single stuck-at faults on driven nets (gate outputs, flop
    outputs, primary inputs).

    Trivially untestable faults are excluded: a tie cell's output stuck at
    its own constant value is undetectable by construction (constant-rich
    structures like the thermometer decoders still contain *logically*
    redundant faults beyond this filter — reported as undetected).
    """
    from repro.hdl.gates import GateType

    const_value: dict[int, int] = {}
    for gate in netlist.gates:
        if gate.type == GateType.CONST0:
            const_value[gate.output] = 0
        elif gate.type == GateType.CONST1:
            const_value[gate.output] = 1

    nets: set[int] = set()
    for gate in netlist.gates:
        nets.add(gate.output)
        nets.update(gate.inputs)
    for dff in netlist.dffs:
        nets.add(dff.q)
        nets.add(dff.d)
    for port_nets in netlist.inputs.values():
        nets.update(port_nets)
    return [
        Fault(net, sa)
        for net in sorted(nets)
        for sa in (0, 1)
        if const_value.get(net) != sa
    ]


def _observe(netlist: Netlist, vector: TestVector, fault: Fault | None) -> tuple:
    """Combinational response under the scan-test model (scalar oracle).

    Returns (primary output values..., flop D values...) with the optional
    fault injected.  Flop Q nets take the scanned-in state.
    """
    values = [0] * netlist.net_count
    netlist._apply_inputs(values, vector.inputs)
    for dff, state in zip(netlist.dffs, vector.flops):
        values[dff.q] = state
    if fault is not None:
        values[fault.net] = fault.stuck_at
    for gate in netlist.topo_order():
        out = gate.evaluate(values)
        if fault is not None and gate.output == fault.net:
            out = fault.stuck_at
        values[gate.output] = out
    pos = tuple(
        tuple(values[n] for n in nets) for nets in netlist.outputs.values()
    )
    pseudo = tuple(values[dff.d] for dff in netlist.dffs)
    return pos + (pseudo,)


def sample_faults(netlist: Netlist, n: int, seed: int = 1) -> list[Fault]:
    """A uniform random sample of the fault universe.

    Fault *sampling* is the standard industry technique for estimating
    coverage on designs too large for full serial fault simulation (the
    packed engine now handles this repo's designs unsampled, but sampling
    mode is kept for oracle duty and very large merged netlists).
    """
    universe = enumerate_faults(netlist)
    if n >= len(universe):
        return universe
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(universe), size=n, replace=False)
    return [universe[i] for i in sorted(picks)]


def _resolve_engine(engine: str) -> str:
    if engine == "auto":
        return "packed"
    if engine in ("packed", "serial"):
        return engine
    raise ValueError(f"unknown fault-simulation engine {engine!r}")


# ----------------------------------------------------------------------
# PPSFP: parallel-pattern single-fault propagation
# ----------------------------------------------------------------------
def _ppsfp_first_detections(
    comp: bitsim.CompiledNetlist,
    vectors: list[TestVector],
    faults: Iterable[Fault],
) -> dict[Fault, int]:
    """For a batch of <= 64 patterns, map each detected fault to the index
    of the first vector in ``vectors`` that detects it.

    Patterns ride bit lanes; a chunk of single-fault machines rides word
    lanes, each column re-sweeping the whole program with its own fault
    forced — single-fault propagation, vectorized both ways.
    """
    count = len(vectors)
    base = np.zeros((comp.net_count, 1), dtype=np.uint64)
    comp.load_inputs(base, [v.inputs for v in vectors])
    comp.load_flops(base, [v.flops for v in vectors])
    good_obs = comp.sweep(base.copy())[comp.observables]  # (n_obs, 1)
    mask = bitsim.tail_mask(count)[0]

    found: dict[Fault, int] = {}
    faults = list(faults)
    for start in range(0, len(faults), _PPSFP_CHUNK):
        chunk = faults[start : start + _PPSFP_CHUNK]
        rows = np.array([f.net for f in chunk], dtype=np.intp)
        cols = np.arange(len(chunk))
        stuck = np.where(
            np.array([f.stuck_at for f in chunk], dtype=bool),
            bitsim.ALL_ONES,
            np.uint64(0),
        )

        def force(v, rows=rows, cols=cols, stuck=stuck):
            v[rows, cols] = stuck

        values = np.repeat(base, len(chunk), axis=1)
        comp.sweep(values, force=force)
        diff = (values[comp.observables] ^ good_obs) & mask
        detect_words = np.bitwise_or.reduce(diff, axis=0)  # (chunk,)
        for j in np.nonzero(detect_words)[0]:
            word = int(detect_words[j])
            found[chunk[j]] = (word & -word).bit_length() - 1
    return found


def detects(
    netlist: Netlist, vector: TestVector, fault: Fault, engine: str = "auto"
) -> bool:
    """True when the vector's observed response differs from the fault-free
    machine's — the fault is detected."""
    if _resolve_engine(engine) == "serial":
        return _observe(netlist, vector, None) != _observe(netlist, vector, fault)
    comp = bitsim.compiled(netlist)
    return fault in _ppsfp_first_detections(comp, [vector], [fault])


@dataclass
class CoverageReport:
    """Outcome of fault simulation over a vector set."""

    total_faults: int
    detected: int
    vectors_used: int
    undetected: list[Fault]

    @property
    def coverage(self) -> float:
        return self.detected / self.total_faults if self.total_faults else 1.0


def fault_simulate(
    netlist: Netlist,
    vectors: Iterable[TestVector],
    faults: list[Fault] | None = None,
    engine: str = "auto",
) -> CoverageReport:
    """Fault simulation with fault dropping.

    ``engine="serial"`` is the scalar oracle; ``engine="packed"`` (the
    ``"auto"`` default) runs PPSFP batches of 64 patterns and produces an
    identical report, including ``vectors_used`` (the number of vectors a
    serial simulator would consume before every fault dropped).
    """
    faults = list(faults) if faults is not None else enumerate_faults(netlist)
    if _resolve_engine(engine) == "serial":
        return _fault_simulate_serial(netlist, vectors, faults)

    vectors = list(vectors)
    comp = bitsim.compiled(netlist)
    remaining = set(faults)
    last_drop = -1
    for start in range(0, len(vectors), _PPSFP_BATCH):
        if not remaining:
            break
        batch = vectors[start : start + _PPSFP_BATCH]
        for fault, index in _ppsfp_first_detections(comp, batch, remaining).items():
            remaining.discard(fault)
            if start + index > last_drop:
                last_drop = start + index
    if faults and not remaining:
        used = last_drop + 1
    elif not faults:
        used = min(1, len(vectors))  # serial loop still consumes one vector
    else:
        used = len(vectors)
    return CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        vectors_used=used,
        undetected=sorted(remaining, key=lambda f: (f.net, f.stuck_at)),
    )


def _fault_simulate_serial(
    netlist: Netlist, vectors: Iterable[TestVector], faults: list[Fault]
) -> CoverageReport:
    remaining = set(faults)
    used = 0
    for vector in vectors:
        used += 1
        good = _observe(netlist, vector, None)
        dropped = [
            f for f in remaining if _observe(netlist, vector, f) != good
        ]
        remaining.difference_update(dropped)
        if not remaining:
            break
    return CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        vectors_used=used,
        undetected=sorted(remaining, key=lambda f: (f.net, f.stuck_at)),
    )


def random_vectors(
    netlist: Netlist, count: int, seed: int = 1
) -> list[TestVector]:
    """Random scan patterns (what an LFSR-based BIST would feed)."""
    rng = np.random.default_rng(seed)
    vectors = []
    for _ in range(count):
        inputs = {
            port: int(rng.integers(0, 1 << len(nets)))
            for port, nets in netlist.inputs.items()
        }
        flops = [int(b) for b in rng.integers(0, 2, size=len(netlist.dffs))]
        vectors.append(TestVector(inputs=inputs, flops=flops))
    return vectors


class _FaultParallelSim:
    """Fault-parallel packed simulation: 64 faults per word, one vector.

    Packed position 0 is the fault-free machine; position ``j`` (j >= 1)
    runs with fault ``packed[j - 1]`` forced.  One levelized sweep then
    answers "which remaining faults does this vector detect?" — the ATPG
    inner-loop question.  The fault list is re-packed once most of it has
    been dropped, so sweeps shrink as coverage grows.
    """

    def __init__(self, netlist: Netlist, faults: Iterable[Fault]):
        self.comp = bitsim.compiled(netlist)
        self._pack(list(faults))

    def _pack(self, faults: list[Fault]) -> None:
        self.packed = faults
        slots = len(faults) + 1  # slot 0 = fault-free machine
        self.lanes = bitsim.lane_count(slots)
        valid = bitsim.tail_mask(slots)
        valid[0] &= ~np.uint64(1)  # bit 0 is the good machine
        self.valid = valid
        by_net: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for j, fault in enumerate(faults, start=1):
            lane, bit = divmod(j, bitsim.WORD_BITS)
            masks, vals = by_net.setdefault(
                fault.net,
                (np.zeros(self.lanes, np.uint64), np.zeros(self.lanes, np.uint64)),
            )
            masks[lane] |= np.uint64(1) << np.uint64(bit)
            if fault.stuck_at:
                vals[lane] |= np.uint64(1) << np.uint64(bit)
        self.rows = np.array(sorted(by_net), dtype=np.intp)
        self.masks = np.array([by_net[n][0] for n in sorted(by_net)], dtype=np.uint64)
        self.vals = np.array([by_net[n][1] for n in sorted(by_net)], dtype=np.uint64)

    def detect(self, vector: TestVector, remaining: set[Fault]) -> list[Fault]:
        """Faults from ``remaining`` that ``vector`` detects."""
        if 2 * len(remaining) < len(self.packed):
            self._pack([f for f in self.packed if f in remaining])
        comp = self.comp
        values = np.zeros((comp.net_count, self.lanes), dtype=np.uint64)
        comp.load_inputs_broadcast(values, vector.inputs)
        comp.load_flops_broadcast(values, vector.flops)
        if self.rows.size:

            def force(v):
                v[self.rows] = (v[self.rows] & ~self.masks) | self.vals

            comp.sweep(values, force=force)
        else:
            comp.sweep(values)
        obs = values[comp.observables]  # (n_obs, lanes)
        good = np.where((obs[:, 0] & np.uint64(1)).astype(bool), bitsim.ALL_ONES, np.uint64(0))
        detect_words = np.bitwise_or.reduce(obs ^ good[:, None], axis=0) & self.valid
        dropped = []
        for lane in np.nonzero(detect_words)[0]:
            word = int(detect_words[lane])
            while word:
                bit = (word & -word).bit_length() - 1
                fault = self.packed[lane * bitsim.WORD_BITS + bit - 1]
                if fault in remaining:
                    dropped.append(fault)
                word &= word - 1
        return dropped


def generate_tests(
    netlist: Netlist,
    target_coverage: float = 0.95,
    batch: int = 32,
    max_vectors: int = 2048,
    seed: int = 1,
    faults: list[Fault] | None = None,
    engine: str = "auto",
) -> tuple[list[TestVector], CoverageReport]:
    """Random-pattern ATPG: grow the vector set until the coverage target
    or the budget is reached.  Returns (kept vectors, final report).

    Only vectors that detect at least one new fault are kept (test
    compaction), and the coverage target is re-checked after every kept
    vector, so no budget is burned once the target is met mid-batch.
    Pass a ``faults`` subset (e.g. from :func:`sample_faults`) to run in
    fault-sampling mode; both engines keep identical vectors and produce
    identical reports.
    """
    faults = list(faults) if faults is not None else enumerate_faults(netlist)
    packed = _resolve_engine(engine) == "packed"
    sim = _FaultParallelSim(netlist, faults) if packed else None
    remaining = set(faults)
    kept: list[TestVector] = []
    produced = 0
    batch_seed = seed

    def coverage_met() -> bool:
        return 1 - len(remaining) / len(faults) >= target_coverage

    while remaining and produced < max_vectors and not coverage_met():
        for vector in random_vectors(netlist, batch, seed=batch_seed):
            produced += 1
            if packed:
                dropped = sim.detect(vector, remaining)
            else:
                good = _observe(netlist, vector, None)
                dropped = [
                    f for f in remaining if _observe(netlist, vector, f) != good
                ]
            if dropped:
                remaining.difference_update(dropped)
                kept.append(vector)
                if coverage_met():
                    break
            if not remaining or produced >= max_vectors:
                break
        batch_seed += 1
    report = CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        vectors_used=len(kept),
        undetected=sorted(remaining, key=lambda f: (f.net, f.stuck_at)),
    )
    return kept, report
