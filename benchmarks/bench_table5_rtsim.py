"""Table V — the ten RT-level simulation runs (cycle-accurate model).

Prints best fitness, optimum gap, first-hit generation and the 5%-rule
convergence generation per run, next to the paper's reported values.
"""

import pytest

from conftest import print_table
from repro.experiments.table5 import run_table5


@pytest.mark.benchmark(group="table5")
def test_table5_rt_simulations(benchmark):
    report = benchmark.pedantic(
        run_table5, kwargs={"cycle_accurate": True}, rounds=1, iterations=1
    )
    keys = [
        "run", "function", "seed", "pop", "xover_thr",
        "paper_best", "best", "optimum", "gap%",
        "paper_conv", "found_gen", "conv_gen",
    ]
    print_table("Table V (RT-level cycle-accurate simulation)", report["rows"], keys)

    rows = report["rows"]
    # Reproduction targets (claims, not cell-exact values — the silicon's
    # PRNG stream is unpublished):
    # 1. every run converges within the 32 generations;
    assert all(r["conv_gen"] <= 32 for r in rows)
    # 2. the optimum is found for at least one setting of each linear
    #    function (the paper's F2/F3 behaviour);
    assert any(r["best"] == r["optimum"] for r in rows if r["function"] == "F2")
    # 3. BF6 lands within a few percent of the optimum for the best run.
    bf6_gap = min(r["gap%"] for r in rows if r["function"] == "BF6")
    assert bf6_gap <= 3.7
