"""Ablation: intrinsic-EHW system classes (Sec. II-D).

Runs the same cycle-accurate GA under the four system classes (complete,
multichip, multiboard, PC-based) at two intrinsic-evaluation-time regimes,
reproducing the section's two claims: the performance ordering, and the
amortisation of communication once fitness evaluation dominates.
"""

import pytest

from conftest import print_table
from repro.core.params import GAParameters
from repro.ehw import run_class_comparison
from repro.fitness import MBF6_2


@pytest.mark.benchmark(group="ehw-classes")
def test_ehw_system_class_comparison(benchmark):
    params = GAParameters(
        n_generations=8,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    rows = benchmark.pedantic(
        run_class_comparison,
        args=(MBF6_2(),),
        kwargs={"params": params, "evaluation_cycles": (1, 500)},
        rounds=1,
        iterations=1,
    )
    print_table("Intrinsic-EHW system classes (Sec. II-D)", rows)

    fast = [r for r in rows if r["eval_cycles"] == 1]
    slow = [r for r in rows if r["eval_cycles"] == 500]
    # claim 1: complete < multichip < multiboard < PC
    assert [r["total_cycles"] for r in fast] == sorted(
        r["total_cycles"] for r in fast
    )
    # claim 2: long evaluations amortise the communication penalty
    spread_fast = fast[-1]["total_cycles"] / fast[0]["total_cycles"]
    spread_slow = slow[-1]["total_cycles"] / slow[0]["total_cycles"]
    assert spread_slow < spread_fast
    # evolution result independent of the communication class
    assert len({r["best"] for r in rows}) == 1
