"""Fig. 6 / Sec. III-D — 32-bit optimization with two 16-bit cores.

Benchmarks the dual-core composition on 32-bit objectives and validates the
probability-composition guidance (lower per-core rates to limit the
disruption of the effective 3-point crossover).
"""

import pytest

from conftest import print_table
from repro.core.params import GAParameters
from repro.core.scaling import DualCoreGA32, compose_rate, onemax32, plateau32, split_rate


def _params(xt: int, seed: int = 45890) -> GAParameters:
    return GAParameters(
        n_generations=48,
        population_size=32,
        crossover_threshold=xt,
        mutation_threshold=2,
        rng_seed=seed,
    )


@pytest.mark.benchmark(group="scaling32")
def test_dual_core_onemax32(benchmark):
    result = benchmark.pedantic(
        lambda: DualCoreGA32(_params(10), onemax32).run(), rounds=1, iterations=1
    )
    optimum = onemax32(0xFFFFFFFF)
    print(
        f"\n32-bit OneMax: best {result.best_fitness}/{optimum} "
        f"({result.best_individual:08X}), evals {result.evaluations}"
    )
    assert result.best_fitness >= 0.85 * optimum


@pytest.mark.benchmark(group="scaling32")
def test_composed_rate_guidance(benchmark):
    """The paper's advice: program lower per-core probabilities because the
    composite rate is p1 + p2 - p1*p2.  Compare naive (both cores at the
    16-bit rate) vs. compensated (split_rate) settings across seeds."""

    def sweep():
        rows = []
        for seed in (45890, 10593, 1567, 0x2961):
            naive = DualCoreGA32(_params(10, seed), plateau32).run()
            # compensated: per-core threshold ~= 16 * split_rate(0.625) -> 6
            comp_thr = round(16 * split_rate(10 / 16))
            comp = DualCoreGA32(_params(comp_thr, seed), plateau32).run()
            rows.append(
                {
                    "seed": f"{seed:04X}",
                    "naive(thr10,eff0.86)": naive.best_fitness,
                    f"compensated(thr{comp_thr},eff0.63)": comp.best_fitness,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Dual-core crossover-rate compensation (plateau32)", rows)
    assert compose_rate(10 / 16, 10 / 16) == pytest.approx(0.859375)
