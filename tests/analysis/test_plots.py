"""Tests for the figure-series extraction and ASCII renderer."""


from repro.analysis.plots import (
    ascii_plot,
    best_avg_series,
    function_series,
    render_convergence,
    scatter_series,
)
from repro.core.stats import GenerationStats
from repro.fitness import BF6


def history():
    return [
        GenerationStats(0, 50, 1, 120, 4, fitnesses=[10, 20, 40, 50]),
        GenerationStats(1, 60, 2, 180, 4, fitnesses=[40, 40, 40, 60]),
    ]


class TestScatterSeries:
    def test_deduplicates_equal_fitness_per_generation(self):
        # Fig. 8 caption: "the plots show only one of multiple members with
        # the same fitness in any generation".
        points = scatter_series(history())
        assert points.count((1, 40)) == 1
        assert (0, 10) in points and (1, 60) in points

    def test_sorted_within_generation(self):
        points = scatter_series(history())
        gen0 = [f for g, f in points if g == 0]
        assert gen0 == sorted(gen0)


class TestBestAvgSeries:
    def test_series_shapes(self):
        gens, best, avg = best_avg_series(history())
        assert gens == [0, 1]
        assert best == [50, 60]
        assert avg == [30.0, 45.0]


class TestFunctionSeries:
    def test_fig7_range(self):
        xs, ys = function_series(BF6(), 0, 300)
        assert len(xs) == 301
        assert ys[0] == 3200  # BF6(0)

    def test_values_match_function(self):
        fn = BF6()
        xs, ys = function_series(fn, 10, 20)
        for x, y in zip(xs, ys):
            assert fn(int(x)) == int(y)


class TestAsciiPlot:
    def test_contains_points_and_frame(self):
        out = ascii_plot([0, 1, 2], [0, 5, 10], width=20, height=5, label="t")
        assert "*" in out
        assert out.count("|") >= 5
        assert "t [y:" in out

    def test_empty_data(self):
        assert ascii_plot([], []) == "(no data)"

    def test_constant_series_no_crash(self):
        out = ascii_plot([0, 1], [5, 5], width=10, height=3)
        assert "*" in out

    def test_render_convergence(self):
        out = render_convergence(history(), label="fig13")
        assert "fig13" in out and "*" in out
