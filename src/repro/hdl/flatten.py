"""RTL-to-gate flattening: merging structural blocks into one netlist.

The paper's flow flattens the RT-level design into a single gate-level
Verilog netlist (Fig. 1).  Here :func:`merge` splices one block netlist into
a parent, remapping nets; :func:`flatten_ga_datapath` assembles the complete
GA-core datapath (the muxes/adders/comparators/crossover/mutation/RNG blocks
plus all architectural registers) into one flat netlist.  That flat netlist
is what the scan-chain inserter and the Table VI resource estimator consume.
"""

from __future__ import annotations

from repro.hdl.gates import DFF, Gate
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl import rtlib


def merge(
    parent: Netlist,
    block: Netlist,
    prefix: str,
    connections: dict[str, list[int]] | None = None,
    expose_outputs: bool = True,
) -> dict[str, list[int]]:
    """Splice ``block`` into ``parent``.

    ``connections`` maps block input-port names to existing parent nets;
    unconnected block inputs become new parent inputs named
    ``{prefix}.{port}``.  Returns a mapping of the block's output ports to
    their new parent nets; when ``expose_outputs`` these also become parent
    output ports.
    """
    connections = connections or {}
    remap: dict[int, int] = {}

    def map_net(old: int) -> int:
        if old not in remap:
            name = block.net_names.get(old, "")
            remap[old] = parent.net(f"{prefix}.{name}" if name else "")
        return remap[old]

    for port, nets in block.inputs.items():
        if port in connections:
            if len(connections[port]) != len(nets):
                raise NetlistError(
                    f"merge {block.name!r}: port {port!r} width mismatch "
                    f"({len(connections[port])} vs {len(nets)})"
                )
            for old, new in zip(nets, connections[port]):
                remap[old] = new
        else:
            new_nets = parent.add_input(f"{prefix}.{port}", len(nets))
            for old, new in zip(nets, new_nets):
                remap[old] = new

    for gate in block.gates:
        out = map_net(gate.output)
        ins = tuple(map_net(i) for i in gate.inputs)
        parent.gates.append(Gate(gate.type, ins, out))
        parent._driven.add(out)
    for dff in block.dffs:
        parent.dffs.append(
            DFF(
                d=map_net(dff.d),
                q=map_net(dff.q),
                init=dff.init,
                name=f"{prefix}.{dff.name}" if dff.name else "",
            )
        )
        parent._driven.add(remap[dff.q])

    parent._order = None
    out_ports: dict[str, list[int]] = {}
    for port, nets in block.outputs.items():
        mapped = [map_net(n) for n in nets]
        out_ports[port] = mapped
        if expose_outputs:
            parent.add_output(f"{prefix}.{port}", mapped)
    return out_ports


#: Architectural register inventory of the GA core (width, count, purpose).
#: These are the registers the AUDI-synthesized controller/datapath carries
#: beyond the library blocks; they are flattened as plain DFF groups.
GA_CORE_REGISTERS: list[tuple[str, int, int]] = [
    ("num_generations", 32, 1),  # Table III indices 0-1
    ("population_size", 16, 1),  # Table III index 2
    ("crossover_threshold", 4, 1),  # Table III index 3
    ("mutation_threshold", 4, 1),  # Table III index 4
    ("rng_seed", 16, 1),  # Table III index 5
    ("generation_index", 32, 1),
    ("population_index", 8, 2),  # current / new population fill counters
    ("mem_address", 8, 1),
    ("parent", 16, 2),
    ("offspring", 16, 2),
    ("candidate_out", 16, 1),
    ("best_individual", 16, 1),
    ("best_fitness", 16, 1),
    ("gen_best_individual", 16, 1),
    ("gen_best_fitness", 16, 1),
    ("fitness_sum", 32, 2),  # current population / accumulating new population
    ("cumulative_sum", 32, 1),
    ("selection_threshold", 32, 1),
    ("fit_value_latch", 16, 1),
    ("fsm_state", 6, 1),
    ("handshake_flags", 4, 1),
]


def flatten_ga_datapath(rule_vector: int = 0x6C04) -> Netlist:
    """Build the flattened gate-level GA-core datapath.

    Instantiates every rtlib block the GA optimisation cycle uses (Fig. 2)
    plus the architectural registers above, producing the single flat
    netlist the resource estimator and scan-chain tooling operate on.
    """
    top = Netlist("ga_core_flat")
    blocks: list[tuple[str, Netlist]] = [
        # fitness-sum and cumulative-sum accumulators (32-bit, Sec. III-B.2)
        ("acc_sum", rtlib.build_adder(32)),
        ("acc_cum", rtlib.build_adder(32)),
        # selection threshold comparator (cumulative > threshold)
        ("cmp_sel", rtlib.build_comparator(32)),
        # best-fitness comparator (elitism, Sec. III-B.1)
        ("cmp_best", rtlib.build_comparator(16)),
        # crossover / mutation rate comparators (4-bit random vs threshold)
        ("cmp_xover", rtlib.build_comparator(4)),
        ("cmp_mut", rtlib.build_comparator(4)),
        # genetic operators (Fig. 3, Sec. III-B.3/4)
        ("xover", rtlib.build_crossover_unit(16)),
        ("mut1", rtlib.build_mutation_unit(16)),
        ("mut2", rtlib.build_mutation_unit(16)),
        # cellular-automaton RNG (Sec. II-C)
        ("rng", rtlib.build_ca_rng(16, rule_vector)),
        # loop counters
        ("cnt_gen", rtlib.build_counter(32)),
        ("cnt_pop", rtlib.build_counter(8)),
        ("cnt_addr", rtlib.build_counter(8)),
    ]
    for prefix, block in blocks:
        merge(top, block, prefix)

    # Architectural registers: simple DFF banks with load muxes.
    for name, width, count in GA_CORE_REGISTERS:
        for k in range(count):
            reg = rtlib.build_parameter_register(width)
            merge(top, reg, f"{name}{k}" if count > 1 else name)
    return top
