"""Deterministic single-event-upset injection.

Two injectors live here, one per modelling level:

* :class:`SEUInjector` — the generation-boundary fault source for the
  behavioural engines (:class:`~repro.core.behavioral.BehavioralGA` and the
  batched :class:`~repro.core.batch.BatchBehavioralGA`).  Each replica owns
  an independent, seed-derived ``numpy`` PCG64 stream, so the same
  ``(seed, replica)`` pair produces the same upset sequence whether the
  replica runs serially or inside a batch — the property the
  serial-vs-batch parity tests lock down.  The injector only *draws* fault
  events; applying them (and defending against them) is the
  :class:`~repro.resilience.harden.ResilienceHarness`'s job.

* :class:`CycleSEUInjector` — a tick-scheduled intruder for the
  cycle-accurate :class:`~repro.core.system.GASystem`.  It registers as a
  simulator probe and mutates committed state *between* clock edges (the
  physical moment an SEU strikes): GA-memory words, the CA-PRNG state
  register, whitelisted GA-core FSM registers, the FSM state vector itself,
  and the FEM response path (dropped or corrupted ``fit_valid`` responses).

Upset rates are per-bit per-generation probabilities; the word 'rate'
always means that.  The SECDED-protected memory exposes 39 bits per word
instead of 32, and the harness reports that larger cross-section honestly —
ECC is not free area.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

# ---------------------------------------------------------------------------
# behavioural-engine injection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UpsetRates:
    """Per-domain upset probabilities for the behavioural fault model.

    ``memory``/``rng``/``best_reg`` are per-bit per-generation flip
    probabilities (memory words expose 32 bits unprotected, 39 under
    SECDED; the RNG state register is 16 bits; the best register packs
    ``{best_fit, best_ind}`` into 32 bits).  ``fem`` is the probability
    that one fitness response is faulty (a 16-bit word on a handshake, so
    :meth:`uniform` derives it as ``16 * rate``), ``fem_drop_fraction``
    the share of faulty responses that are *dropped* (``fit_valid`` never
    arrives) rather than corrupted, and ``fem_stuck`` the per-generation
    probability that the active FEM slot dies outright.
    """

    memory: float = 0.0
    rng: float = 0.0
    best_reg: float = 0.0
    fem: float = 0.0
    fem_drop_fraction: float = 0.25
    fem_stuck: float = 0.0

    @classmethod
    def uniform(cls, rate: float) -> "UpsetRates":
        """One scalar rate applied across every domain, scaled by each
        domain's exposure (the campaign's sweep axis)."""
        return cls(
            memory=rate,
            rng=rate,
            best_reg=rate,
            fem=16 * rate,
            fem_stuck=4 * rate,
        )

    def total_zero(self) -> bool:
        return (
            self.memory == 0.0
            and self.rng == 0.0
            and self.best_reg == 0.0
            and self.fem == 0.0
            and self.fem_stuck == 0.0
        )


#: Transient FEM response fault kinds.
FEM_CORRUPT = "corrupt"
FEM_DROP = "drop"


@dataclass
class BoundaryUpsets:
    """Every upset drawn for one replica at one generation boundary."""

    mem_slots: np.ndarray  # population slot index per memory upset
    mem_bits: np.ndarray  # bit position (within the stored word) per upset
    rng_bits: np.ndarray  # flipped bits of the 16-bit RNG state register
    best_bits: np.ndarray  # flipped bits of the packed 32-bit best register
    fem_faults: list  # (eval_slot, kind, bit) transient response faults
    fem_stuck: bool  # the active FEM slot died this generation

    @property
    def empty(self) -> bool:
        return (
            len(self.mem_slots) == 0
            and len(self.rng_bits) == 0
            and len(self.best_bits) == 0
            and not self.fem_faults
            and not self.fem_stuck
        )


class SEUInjector:
    """Seed-driven per-replica upset source for the behavioural engines.

    Parameters
    ----------
    rates:
        Per-domain upset probabilities.
    seed:
        Campaign-level seed; replica ``r`` draws from the PCG64 stream
        seeded with ``SeedSequence([seed, replica_offset + r])``, making a
        batch of N replicas reproduce N independent serial runs exactly.
    n_replicas / replica_offset:
        Stream bookkeeping; a serial engine standing in for batch replica
        ``r`` uses ``n_replicas=1, replica_offset=r``.
    """

    def __init__(
        self,
        rates: UpsetRates,
        seed: int,
        n_replicas: int = 1,
        replica_offset: int = 0,
    ):
        self.rates = rates
        self.seed = seed
        self.n_replicas = n_replicas
        self.replica_offset = replica_offset
        self._streams = [
            np.random.Generator(
                np.random.PCG64(np.random.SeedSequence([seed, replica_offset + r]))
            )
            for r in range(n_replicas)
        ]
        # per-domain totals, for the campaign report
        self.counts = {
            "memory": 0,
            "rng": 0,
            "best": 0,
            "fem_corrupt": 0,
            "fem_drop": 0,
            "fem_stuck": 0,
        }

    # ------------------------------------------------------------------
    def draw(
        self, replica: int, n_mem_words: int, word_bits: int, n_evals: int
    ) -> BoundaryUpsets:
        """Draw one generation boundary's upsets for one replica.

        The draw order is fixed (FEM stuck, FEM transients, memory, RNG,
        best register) so the stream consumption is identical for the
        serial and batched engines.
        """
        g = self._streams[replica]
        r = self.rates

        fem_stuck = bool(r.fem_stuck > 0.0 and g.random() < r.fem_stuck)
        fem_faults: list = []
        if r.fem > 0.0 and n_evals > 0:
            k = int(g.binomial(n_evals, min(r.fem, 1.0)))
            if k:
                slots = np.sort(g.choice(n_evals, size=min(k, n_evals), replace=False))
                for slot in slots.tolist():
                    if g.random() < r.fem_drop_fraction:
                        fem_faults.append((slot, FEM_DROP, 0))
                    else:
                        fem_faults.append((slot, FEM_CORRUPT, int(g.integers(16))))

        total_mem_bits = n_mem_words * word_bits
        if r.memory > 0.0 and total_mem_bits:
            k = int(g.binomial(total_mem_bits, min(r.memory, 1.0)))
            flat = g.integers(total_mem_bits, size=k)
            mem_slots = (flat // word_bits).astype(np.int64)
            mem_bits = (flat % word_bits).astype(np.int64)
        else:
            mem_slots = np.empty(0, dtype=np.int64)
            mem_bits = np.empty(0, dtype=np.int64)

        if r.rng > 0.0:
            k = int(g.binomial(16, min(r.rng, 1.0)))
            rng_bits = g.integers(16, size=k).astype(np.int64)
        else:
            rng_bits = np.empty(0, dtype=np.int64)

        if r.best_reg > 0.0:
            k = int(g.binomial(32, min(r.best_reg, 1.0)))
            best_bits = g.integers(32, size=k).astype(np.int64)
        else:
            best_bits = np.empty(0, dtype=np.int64)

        self.counts["memory"] += len(mem_slots)
        self.counts["rng"] += len(rng_bits)
        self.counts["best"] += len(best_bits)
        self.counts["fem_corrupt"] += sum(1 for f in fem_faults if f[1] == FEM_CORRUPT)
        self.counts["fem_drop"] += sum(1 for f in fem_faults if f[1] == FEM_DROP)
        self.counts["fem_stuck"] += int(fem_stuck)

        return BoundaryUpsets(
            mem_slots=mem_slots,
            mem_bits=mem_bits,
            rng_bits=rng_bits,
            best_bits=best_bits,
            fem_faults=fem_faults,
            fem_stuck=fem_stuck,
        )


# ---------------------------------------------------------------------------
# cycle-accurate injection
# ---------------------------------------------------------------------------

#: GA-core registers the cycle injector may flip, with their widths.  These
#: are the architectural registers of the Fig. 2 datapath; flipping any of
#: them is a legal SEU outcome (including ``cur_bank``, whose corruption now
#: surfaces as a bank-select error instead of silently aliasing banks).
CORE_REGISTER_TARGETS: dict[str, int] = {
    "best_ind": 16,
    "best_fit": 16,
    "cur_sum": 32,
    "new_sum": 32,
    "gen_index": 32,
    "pop_index": 8,
    "new_count": 8,
    "cur_bank": 1,
    "rn_latch": 16,
    "fit_latch": 16,
    "sel_threshold": 32,
    "cum_sum": 32,
    "scan_index": 8,
    "parent1": 16,
    "parent2": 16,
    "off1": 16,
    "off2": 16,
    "current_offspring": 16,
}

#: Canonical FSM state encoding used by the ``fsm`` upset domain.  A flipped
#: state-vector bit lands on another row; indices past the end model a
#: one-hot vector decoding to *no* active state — the core locks up (and the
#: surrounding system's watchdog/timeout machinery has to notice).
FSM_STATE_SPACE: tuple[str, ...] = (
    "IDLE",
    "FETCH_RN",
    "INITPOP_EVAL",
    "INITPOP_STORE",
    "INITPOP_DONE",
    "ELITE",
    "SEL1_BEGIN",
    "SEL1_THRESHOLD",
    "SEL1_READ",
    "SEL1_WAIT",
    "SEL1_SCAN",
    "SEL2_BEGIN",
    "SEL2_THRESHOLD",
    "SEL2_READ",
    "SEL2_WAIT",
    "SEL2_SCAN",
    "XOVER_DECIDE",
    "XOVER_APPLY",
    "MUT1_DECIDE",
    "MUT1_APPLY",
    "EVAL1",
    "STORE1",
    "MUT2_PREP",
    "MUT2_DECIDE",
    "MUT2_APPLY",
    "EVAL2",
    "STORE2",
    "GEN_END",
    "GEN_RECORD",
    "DONE",
)


@dataclass(frozen=True)
class CycleSEUEvent:
    """One scheduled upset in the cycle-accurate system.

    ``domain`` selects the target:

    * ``"memory"``   — flip ``bit`` of GA-memory word ``addr`` (bit 0..31
      raw, 0..38 when the SECDED memory is installed);
    * ``"rng"``      — flip ``bit`` of the RNG module's 16-bit state;
    * ``"register"`` — flip ``bit`` of GA-core register ``name``
      (see :data:`CORE_REGISTER_TARGETS`);
    * ``"fsm"``      — flip ``bit`` of the core's encoded FSM state index;
    * ``"fem_dead"`` — FEM in slot ``addr`` stops answering (drops every
      subsequent ``fit_valid``);
    * ``"fem_revive"`` — undo ``fem_dead`` for slot ``addr``;
    * ``"fem_corrupt"`` — XOR the FEM's next response with ``1 << bit``.
    """

    tick: int
    domain: str
    addr: int = 0
    bit: int = 0
    name: str = ""


class CycleSEUInjector:
    """Tick-scheduled SEU intruder for :class:`~repro.core.system.GASystem`.

    Construct with an explicit event list (deterministic campaigns and
    regression tests) or via :meth:`poisson_schedule`.  ``attach`` wires it
    to a system and registers the probe; events land *after* the commit of
    their tick, i.e. between clock edges, exactly where a real upset falls.
    """

    def __init__(self, events: list[CycleSEUEvent]):
        self.events = sorted(events, key=lambda e: e.tick)
        self.applied: list[CycleSEUEvent] = []
        self.skipped: list[CycleSEUEvent] = []
        self._system = None
        self._cursor = 0

    @classmethod
    def poisson_schedule(
        cls,
        seed: int,
        duration_ticks: int,
        mean_upsets: float,
        domains: tuple[str, ...] = ("memory", "rng", "register"),
        mem_depth: int = 256,
        word_bits: int = 32,
    ) -> "CycleSEUInjector":
        """A deterministic random schedule: ``Poisson(mean_upsets)`` events
        uniform over the run, each targeting a uniform (domain, addr, bit)."""
        g = np.random.Generator(np.random.PCG64(np.random.SeedSequence([seed])))
        n = int(g.poisson(mean_upsets))
        events = []
        names = list(CORE_REGISTER_TARGETS)
        for _ in range(n):
            tick = int(g.integers(duration_ticks))
            domain = domains[int(g.integers(len(domains)))]
            if domain == "memory":
                events.append(
                    CycleSEUEvent(
                        tick,
                        "memory",
                        addr=int(g.integers(mem_depth)),
                        bit=int(g.integers(word_bits)),
                    )
                )
            elif domain == "rng":
                events.append(CycleSEUEvent(tick, "rng", bit=int(g.integers(16))))
            elif domain == "register":
                name = names[int(g.integers(len(names)))]
                events.append(
                    CycleSEUEvent(
                        tick,
                        "register",
                        name=name,
                        bit=int(g.integers(CORE_REGISTER_TARGETS[name])),
                    )
                )
            elif domain == "fsm":
                events.append(CycleSEUEvent(tick, "fsm", bit=int(g.integers(5))))
            else:
                raise ValueError(f"unsupported domain for random schedule: {domain}")
        return cls(events)

    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Register on the system's simulator (called by ``GASystem``)."""
        self._system = system
        system.sim.probe(self._on_tick)

    def _on_tick(self, tick: int) -> None:
        while self._cursor < len(self.events) and self.events[self._cursor].tick <= tick:
            event = self.events[self._cursor]
            self._cursor += 1
            if self._apply(event):
                self.applied.append(event)
            else:
                self.skipped.append(event)

    # ------------------------------------------------------------------
    def _apply(self, event: CycleSEUEvent) -> bool:
        sys_ = self._system
        if sys_ is None:  # pragma: no cover - attach() not called
            return False
        if event.domain == "memory":
            data = sys_.memory.data
            addr = event.addr % len(data)
            data[addr] ^= 1 << event.bit
            return True
        if event.domain == "rng":
            source = sys_.rng_module.source
            flipped = source.state ^ (1 << (event.bit % source.width))
            if flipped == 0:
                return False  # the all-zero CA lockup state is excluded
            source.state = flipped
            return True
        if event.domain == "register":
            width = CORE_REGISTER_TARGETS.get(event.name)
            if width is None:
                raise ValueError(f"unknown register target {event.name!r}")
            mask = (1 << width) - 1
            value = getattr(sys_.core, event.name)
            setattr(sys_.core, event.name, (value ^ (1 << (event.bit % width))) & mask)
            return True
        if event.domain == "fsm":
            state = sys_.core.state
            try:
                index = FSM_STATE_SPACE.index(state)
            except ValueError:
                return False  # already corrupted into lockup
            sys_.core.state = _fsm_flip(index, event.bit)
            return True
        if event.domain == "fem_dead":
            fem = sys_.fems.get(event.addr)
            if fem is None:
                return False
            fem.dead = True
            return True
        if event.domain == "fem_revive":
            fem = sys_.fems.get(event.addr)
            if fem is None:
                return False
            fem.dead = False
            return True
        if event.domain == "fem_corrupt":
            fem = sys_.fems.get(event.addr)
            if fem is None:
                return False
            fem.corrupt_next ^= 1 << (event.bit % 16)
            return True
        raise ValueError(f"unknown SEU domain {event.domain!r}")


def _fsm_flip(index: int, bit: int) -> str:
    """State reached when ``bit`` of the encoded FSM state index flips.

    Out-of-range indices model a corrupted one-hot vector that decodes to no
    active state: the returned name has no handler, so the core freezes.
    """
    flipped = index ^ (1 << bit)
    if flipped < len(FSM_STATE_SPACE):
        return FSM_STATE_SPACE[flipped]
    return f"LOCKUP_{flipped}"
