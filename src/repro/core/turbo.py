"""Turbo generation kernel — the fully vectorised GA inner loop.

The exact batched engine (:class:`repro.core.batch.BatchBehavioralGA`) is
bit-identical to the serial core, which forces it to walk offspring slots
one by one: the CA-PRNG's *conditional* word consumption (a failed
crossover decision skips the cut word) makes each slot's stream position
depend on the previous slot's outcome.  Turbo mode drops bit-identity in
favour of throughput and removes that serial dependency entirely:

* **Word-parallel CA-PRNG advance** — every generation pre-draws one
  fixed-width block of words per replica from the shared orbit
  (:meth:`repro.rng.cellular_automaton.CAStreamBank.block2d`), so the RNG
  is one gather per generation instead of one per slot.
* **One `searchsorted` selection** — all ``replica x slot`` parent picks
  run through a single flattened cumulative-sum search, the same
  row-offset trick the exact engine applies per slot, applied once.
* **Array-wide crossover** — decision and cut fields for every slot at
  once; the combine mask is built exactly as in the exact engine
  (``inv = (0xFFFF << cut) & 0xFFFF``), just across the whole array.
* **Binomial-sampled mutation** (Cicirello, PAPERS.md) — instead of one
  decision word per offspring, the *number* of mutation events per replica
  per generation is drawn from ``Binomial(pop - 1, threshold / 16)`` by
  inverse-CDF on a single word, then only the events themselves consume
  words: O(flips) draws instead of O(offspring).

Equivalence contract (documented in ``docs/architecture.md``): turbo keeps
every operator's *distribution* — proportionate selection thresholds,
crossover probability and cut law, the Binomial mutation-event count — but
reallocates which orbit words feed which decision, so populations are not
bit-identical to exact mode.  Mutation events land on offspring *with
replacement* (two events may hit the same offspring — a second-order
difference from exact mode's at-most-one-flip-per-offspring, vanishing as
``1/pop``).  Per-replica word consumption is a pure function of that
replica's own stream, so a turbo run is deterministic for its
``(params, seed)`` regardless of slab composition or chunking — the same
composition-independence the exact engine guarantees.
"""

from __future__ import annotations

from math import comb

import numpy as np

_BINOMIAL_CDF_CACHE: dict[tuple[int, int], np.ndarray] = {}


def binomial_cdf(n: int, threshold: int) -> np.ndarray:
    """CDF of ``Binomial(n, threshold / 16)`` as an ``(n + 1,)`` float64
    array; ``cdf[k] = P(X <= k)``.  Cached per ``(n, threshold)``.

    Inverse-CDF sampling: for ``u`` uniform on [0, 1),
    ``k = sum(cdf < u)`` is Binomial-distributed — one uniform word buys
    the whole generation's mutation-event count.
    """
    key = (n, threshold)
    cached = _BINOMIAL_CDF_CACHE.get(key)
    if cached is not None:
        return cached
    p = threshold / 16.0
    q = 1.0 - p
    pmf = [comb(n, k) * p**k * q ** (n - k) for k in range(n + 1)]
    cdf = np.cumsum(np.asarray(pmf, dtype=np.float64))
    cdf[-1] = 1.0  # guard the float tail: k can never exceed n
    if len(_BINOMIAL_CDF_CACHE) >= 64:
        _BINOMIAL_CDF_CACHE.clear()
    _BINOMIAL_CDF_CACHE[key] = cdf
    return cdf


class TurboKernel:
    """Precomputed per-batch state for the vectorised generation step.

    One instance per :class:`~repro.core.batch.BatchBehavioralGA` in turbo
    mode; :meth:`generation` evolves one full offspring generation for all
    replicas with a handful of array operations and advances the stream
    bank in place.
    """

    def __init__(self, params_list, rows: np.ndarray, row_offsets: np.ndarray):
        n = len(params_list)
        pop = params_list[0].population_size
        self.pop = pop
        self.n_offspring = pop - 1
        # each slot selects two parents and yields two offspring (the last
        # slot yields one when pop - 1 is odd), exactly the exact engine's
        # pairing
        self.n_slots = (self.n_offspring + 1) // 2
        # per-generation block: 2 selection words per slot, one crossover
        # word per slot (decision nibble + cut nibble), one binomial word
        self.block_width = 3 * self.n_slots + 1
        self._rows = rows
        self._row_offsets = row_offsets
        self._xover_col = np.array(
            [p.crossover_threshold for p in params_list], dtype=np.int64
        )[:, None]
        self._cdf_rows = np.stack(
            [binomial_cdf(self.n_offspring, p.mutation_threshold) for p in params_list]
        )
        # flat index of each replica's last member: the hardware's
        # last-member fallback clamp, repeated for every pick of a row
        self._sel_cap = np.repeat(rows * pop, 2 * self.n_slots) + (pop - 1)

    def generation(
        self,
        bank,
        inds: np.ndarray,
        fits: np.ndarray,
        best_ind: np.ndarray,
    ) -> np.ndarray:
        """One offspring generation for every replica; returns the new
        ``(n_replicas, pop)`` population (column 0 = the carried elite).

        Consumes ``block_width + k[r]`` words from replica ``r``'s stream,
        where ``k[r]`` is its Binomial mutation-event count this
        generation.
        """
        n = inds.shape[0]
        n_slots, n_off = self.n_slots, self.n_offspring

        words = bank.block2d(self.block_width).astype(np.int64)
        sel_w = words[:, : 2 * n_slots]
        xword = words[:, 2 * n_slots : 3 * n_slots]
        xdec = xword & 0xF
        xcut = (xword >> 4) & 0xF
        u = words[:, -1].astype(np.float64) / 65536.0

        # proportionate selection, every slot's two parents in a single
        # flattened searchsorted: threshold = (rn * sum) >> 16, first
        # member whose cumulative fitness exceeds it
        cum = fits.cumsum(axis=1)
        total = cum[:, -1:]
        flat = (cum + self._row_offsets).ravel()
        thresholds = (sel_w * total) >> 16
        picks = np.minimum(
            flat.searchsorted(
                (thresholds + self._row_offsets).ravel(), side="right"
            ),
            self._sel_cap,
        )
        parents = inds.ravel()[picks].reshape(n, 2 * n_slots)
        p1, p2 = parents[:, 0::2], parents[:, 1::2]

        # single-point crossover as an XOR update, array-wide: the combine
        # mask is zero wherever the slot's crossover decision failed
        inv = (0xFFFF << xcut) & 0xFFFF
        diff = (p1 ^ p2) & np.where(xdec < self._xover_col, inv, 0)
        offspring = np.empty((n, 2 * n_slots), dtype=np.int64)
        offspring[:, 0::2] = p1 ^ diff
        offspring[:, 1::2] = p2 ^ diff

        new_inds = np.empty((n, self.pop), dtype=np.int64)
        new_inds[:, 0] = best_ind  # elitism
        new_inds[:, 1:] = offspring[:, :n_off]

        # binomial-sampled mutation: one inverse-CDF word per replica
        # yields this generation's event count k[r]; only the events
        # themselves draw further words (offspring via multiply-shift,
        # bit from the low nibble), each replica advancing its own stream
        # by exactly k[r] — composition-independent by construction
        k = (self._cdf_rows < u[:, None]).sum(axis=1)
        mw = bank.draw_ragged(k)
        if mw.shape[1]:
            mw = mw.astype(np.int64)
            live = np.nonzero(np.arange(mw.shape[1])[None, :] < k[:, None])
            w = mw[live]
            flat = live[0] * self.pop + 1 + ((w * n_off) >> 16)
            np.bitwise_xor.at(
                new_inds.reshape(-1), flat, np.int64(1) << (w & 0xF)
            )
        return new_inds
