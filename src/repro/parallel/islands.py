"""Island-model parallel GA over multiple engine instances.

Models a fabric carrying several GA IP cores (the multi-core direction of
Sec. II-B / the hybrid system of Fig. 5): ``n_islands`` behavioural engines
evolve independent populations in epochs of ``migration_interval``
generations; at each epoch boundary every island's champion migrates to its
ring neighbour, replacing the neighbour's worst member.  Populations are
carried across epochs (no restarts).  When ``n_generations`` is not a
multiple of ``migration_interval`` a final partial epoch runs the
remainder, so exactly ``n_generations`` generations execute per island;
no migration happens after the final epoch (there is nothing left to
evolve the migrants).

Two execution modes:

* ``processes=1`` — all islands evolve in one :class:`BatchBehavioralGA`
  call per epoch (the batched fast path: one 2-D numpy population array,
  one multi-stream RNG bank), fully deterministic;
* ``processes>1`` — epochs fan out over a ``multiprocessing`` pool; results
  are identical to the batched mode because each island owns an
  independently seeded RNG and migration happens at synchronised epoch
  barriers (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.base import FitnessFunction
from repro.fitness.functions import by_name
from repro.rng.cellular_automaton import CellularAutomatonPRNG


@dataclass
class IslandResult:
    """Outcome of an island-model run.

    ``epoch_champions[e][i]`` is island ``i``'s ``(individual, fitness)``
    champion at the end of epoch ``e`` — the full migration-candidate
    history, not just the final survivor — which is what job result
    traces (and migration-policy analysis) need.
    """

    best_individual: int
    best_fitness: int
    island_bests: list[int]
    migrations: int
    evaluations: int
    best_per_epoch: list[int]
    epoch_champions: list[list[tuple[int, int]]] = field(default_factory=list)


def _epoch_worker(args: tuple) -> tuple[int, list[int], int, int, int, int]:
    """Run one island for one epoch.  Module-level so it pickles.

    args: (fitness_name, island_index, params_dict, epoch_gens, rng_state,
    rng_seed, population_or_None, engine_mode)
    returns: (island, final_population, best_ind, best_fit, rng_state,
    evaluations)
    """
    (
        fn_name,
        island,
        params_dict,
        epoch_gens,
        rng_state,
        rng_seed,
        population,
        engine_mode,
    ) = args
    fn = by_name(fn_name)
    params = GAParameters(**params_dict).with_(n_generations=epoch_gens)
    rng = CellularAutomatonPRNG(rng_seed)
    rng.state = rng_state
    ga = BehavioralGA(params, fn, rng=rng, record_members=False, mode=engine_mode)
    initial = np.asarray(population, dtype=np.int64) if population is not None else None
    result = ga.run(initial=initial)
    return (
        island,
        ga.final_population.tolist(),
        result.best_individual,
        result.best_fitness,
        rng.state,
        result.evaluations,
    )


class IslandGA:
    """Ring-topology island model over behavioural GA engines."""

    def __init__(
        self,
        params: GAParameters,
        fitness: FitnessFunction,
        n_islands: int = 4,
        migration_interval: int = 8,
        processes: int = 1,
        tracer=None,
        engine_mode: str = "exact",
    ):
        if n_islands < 2:
            raise ValueError("island model needs at least 2 islands")
        if migration_interval < 1:
            raise ValueError("migration interval must be >= 1")
        if engine_mode not in ("exact", "turbo"):
            raise ValueError(
                f"engine_mode must be 'exact' or 'turbo': {engine_mode!r}"
            )
        #: ``"exact"`` or ``"turbo"``; turbo islands stay deterministic in
        #: both execution modes because the turbo engine's word consumption
        #: is composition-independent (solo == batch row, per stream)
        self.engine_mode = engine_mode
        self.params = params
        self.fitness = fitness
        self.n_islands = n_islands
        self.migration_interval = migration_interval
        self.processes = processes
        #: optional :class:`~repro.obs.tracer.Tracer`: one ``ga.run`` span,
        #: an ``island.epoch`` span per epoch (nesting the batched engine's
        #: per-generation events on the in-process path) and an
        #: ``island.migration`` event per ring rotation.  Results are
        #: identical with tracing on or off, in both execution modes; the
        #: ``processes>1`` pool traces at epoch granularity only (the
        #: tracer does not cross process boundaries).
        self.tracer = tracer
        # Island seeds: decorrelated offsets of the programmed seed
        # (the programmable-seed feature, once per core).
        self.seeds = [
            ((params.rng_seed + 0x9E37 * i) & 0xFFFF) or 1 for i in range(n_islands)
        ]

    # ------------------------------------------------------------------
    def epoch_schedule(self) -> list[int]:
        """Generations per epoch: full ``migration_interval`` epochs plus a
        final partial epoch for the remainder, summing to exactly
        ``n_generations``."""
        full, remainder = divmod(self.params.n_generations, self.migration_interval)
        schedule = [self.migration_interval] * full
        if remainder:
            schedule.append(remainder)
        return schedule

    def _epoch_jobs(self, epoch_gens, states, populations):
        params_dict = dict(
            n_generations=self.params.n_generations,
            population_size=self.params.population_size,
            crossover_threshold=self.params.crossover_threshold,
            mutation_threshold=self.params.mutation_threshold,
            rng_seed=self.params.rng_seed,
        )
        return [
            (
                self.fitness.name,
                i,
                params_dict,
                epoch_gens,
                states[i],
                self.seeds[i],
                populations[i],
                self.engine_mode,
            )
            for i in range(self.n_islands)
        ]

    def _batched_epoch(self, epoch_gens, states, populations):
        """The ``processes=1`` fast path: evolve every island in one
        :class:`BatchBehavioralGA` call (bit-identical to the per-island
        workers — same per-stream draw sequence, same operators)."""
        params_list = [
            self.params.with_(n_generations=epoch_gens, rng_seed=self.seeds[i])
            for i in range(self.n_islands)
        ]
        batch = BatchBehavioralGA(
            params_list, self.fitness, record_members=False, rng_states=states,
            tracer=self.tracer, mode=self.engine_mode,
        )
        initial = (
            np.asarray(populations, dtype=np.int64)
            if populations[0] is not None
            else None
        )
        results = batch.run(initial=initial)
        return [
            (
                i,
                batch.final_populations[i].tolist(),
                results[i].best_individual,
                results[i].best_fitness,
                int(batch.rng_states[i]),
                results[i].evaluations,
            )
            for i in range(self.n_islands)
        ]

    def _migrate(self, populations, champions):
        """Ring migration: island i's champion replaces the worst member of
        island (i+1) mod N."""
        table = self.fitness.table()
        for i in range(self.n_islands):
            migrant, _fit = champions[(i - 1) % self.n_islands]
            pop = np.asarray(populations[i], dtype=np.int64)
            fits = table[pop]
            worst = int(fits.argmin())
            pop[worst] = migrant
            populations[i] = pop.tolist()

    def run(self) -> IslandResult:
        """Run all epochs; batched in-process or pooled per ``processes``."""
        from contextlib import nullcontext

        schedule = self.epoch_schedule()
        states = list(self.seeds)
        populations: list[list[int] | None] = [None] * self.n_islands
        island_best: list[tuple[int, int]] = [(0, -1)] * self.n_islands
        evaluations = 0
        migrations = 0
        best_per_epoch: list[int] = []
        epoch_champions: list[list[tuple[int, int]]] = []
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled

        pool = None
        if self.processes > 1:
            import multiprocessing as mp

            pool = mp.Pool(self.processes)
        run_scope = (
            tracer.span(
                "ga.run",
                engine="island",
                fitness=self.fitness.name,
                islands=self.n_islands,
                migration_interval=self.migration_interval,
                generations=self.params.n_generations,
            )
            if tracing
            else nullcontext()
        )
        try:
            with run_scope:
                for epoch, epoch_gens in enumerate(schedule):
                    epoch_scope = (
                        tracer.span("island.epoch", epoch=epoch, gens=epoch_gens)
                        if tracing
                        else nullcontext()
                    )
                    with epoch_scope:
                        if pool is not None:
                            jobs = self._epoch_jobs(epoch_gens, states, populations)
                            results = pool.map(_epoch_worker, jobs)
                        else:
                            results = self._batched_epoch(
                                epoch_gens, states, populations
                            )
                        champions: list[tuple[int, int]] = [
                            (0, -1)
                        ] * self.n_islands
                        for island, final_pop, cand, fit, state, evals in results:
                            states[island] = state
                            populations[island] = final_pop
                            evaluations += evals
                            champions[island] = (cand, fit)
                            if fit > island_best[island][1]:
                                island_best[island] = (cand, fit)
                        if epoch < len(schedule) - 1:
                            # no migration after the final epoch: the
                            # migrants would never evolve and would inflate
                            # the migration count
                            self._migrate(populations, champions)
                            migrations += self.n_islands
                            if tracing:
                                tracer.event(
                                    "island.migration",
                                    epoch=epoch,
                                    champions=[
                                        [int(c), int(f)] for c, f in champions
                                    ],
                                )
                        best_per_epoch.append(max(f for _c, f in island_best))
                        epoch_champions.append([(c, f) for c, f in champions])
        finally:
            if pool is not None:
                pool.close()
                pool.join()

        overall = max(island_best, key=lambda cf: cf[1])
        return IslandResult(
            best_individual=overall[0],
            best_fitness=overall[1],
            island_bests=[f for _c, f in island_best],
            migrations=migrations,
            evaluations=evaluations,
            best_per_epoch=best_per_epoch,
            epoch_champions=epoch_champions,
        )
