"""Profiling hooks: timed scopes and the sampling wall-clock profiler."""

import time

import pytest

from repro.obs import MetricsRegistry, ProfileScope, SamplingProfiler, Tracer


def test_profile_scope_times_into_registry_histogram():
    reg = MetricsRegistry()
    with ProfileScope("unit.section", registry=reg) as scope:
        time.sleep(0.002)
    assert scope.elapsed is not None and scope.elapsed >= 0.002
    h = reg.histogram("profile.unit.section")
    assert h.count == 1
    assert h.max == pytest.approx(scope.elapsed)


def test_profile_scope_opens_a_span_when_traced():
    reg = MetricsRegistry()
    tracer = Tracer()
    with ProfileScope("unit.traced", registry=reg, tracer=tracer):
        tracer.event("inside")
    (span,) = [r for r in tracer.records if r["type"] == "span"]
    assert span["name"] == "unit.traced"
    (event,) = [r for r in tracer.records if r["type"] == "event"]
    assert event["parent"] == span["id"]


def test_profile_scope_records_even_on_exception():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        with ProfileScope("unit.fail", registry=reg):
            raise ValueError("boom")
    assert reg.histogram("profile.unit.fail").count == 1


def test_sampling_profiler_finds_the_busy_frame():
    def busy_wait(deadline):
        while time.perf_counter() < deadline:
            pass

    profiler = SamplingProfiler(interval_s=0.001)
    with profiler:
        busy_wait(time.perf_counter() + 0.08)
    assert profiler.samples > 0
    top = profiler.top(5)
    assert top, "no frames sampled"
    for row in top:
        assert set(row) == {"function", "file", "line", "samples", "share"}
        assert 0 < row["share"] <= 1
    assert any(row["function"] == "busy_wait" for row in top)


def test_sampling_profiler_lifecycle_guards():
    profiler = SamplingProfiler(interval_s=0.01)
    profiler.start()
    with pytest.raises(RuntimeError):
        profiler.start()
    profiler.stop()
    profiler.stop()  # idempotent
    with pytest.raises(ValueError):
        SamplingProfiler(interval_s=0)
