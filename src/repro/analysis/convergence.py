"""Convergence metrics used throughout the paper's evaluation.

Table V's "convergence" column: "the generation number when the difference
in average fitness between the current generation and next generation is
less than 5%".  Figs. 13-16's headline numbers: the generation at which the
final best first appears, the evaluation count up to that point
(``(generations + 1 initial population) x population size``), and that
count as a fraction of the 65,536-point solution space.
"""

from __future__ import annotations

from repro.core.stats import GenerationStats


def convergence_generation(
    history: list[GenerationStats], threshold: float = 0.05, sustained: bool = True
) -> int:
    """Table V rule: "the generation number when the difference in average
    fitness between the current generation and next generation is less than
    5%".

    With ``sustained`` (the default) the condition must hold for *every*
    later generation too — the population has actually settled; a single
    quiet step early in a run (common when the function's mean offset dwarfs
    its dynamic range, as with BF6's +3200) does not count.  Returns the
    last generation number if the sequence never settles.
    """
    if not history:
        raise ValueError("empty history")
    quiet = []
    for current, nxt in zip(history, history[1:]):
        avg = current.average
        quiet.append(avg != 0 and abs(nxt.average - avg) / avg < threshold)
    if not sustained:
        for (current, flag) in zip(history, quiet):
            if flag:
                return current.generation
        return history[-1].generation
    # first index from which every step is quiet
    for i in range(len(quiet)):
        if all(quiet[i:]):
            return history[i].generation
    return history[-1].generation


def first_hit_generation(history: list[GenerationStats]) -> int:
    """Generation at which the run's final best fitness first appears
    (Figs. 13-16: "the GA core finds the best solution within the first N
    generations")."""
    if not history:
        raise ValueError("empty history")
    final_best = history[-1].best_fitness
    for gen in history:
        if gen.best_fitness >= final_best:
            return gen.generation
    return history[-1].generation


def evaluations_to_best(history: list[GenerationStats]) -> int:
    """Candidate solutions evaluated up to (and including) the generation
    that first reaches the final best — the paper's
    ``({N generations + 1 initial population} x {population size})``."""
    hit = first_hit_generation(history)
    pop = history[0].population_size
    return (hit + 1) * pop


def fraction_of_space(history: list[GenerationStats], space: int = 1 << 16) -> float:
    """Fraction of the solution space evaluated before finding the best
    (Sec. IV-B reports <1.1% for mBF6_2, <1.9% for mBF7_2)."""
    return evaluations_to_best(history) / space
