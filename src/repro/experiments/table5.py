"""Table V — RT-level simulation results for BF6/F2/F3.

Runs the paper's ten configurations on the *cycle-accurate* model (this is
the RT-simulation level of the paper's flow) and reports, per run: best
fitness, the generation where the best first appeared, and the Table V
convergence generation, next to the paper's values.

With ``cycle_accurate=False`` the ten rows run on the batched behavioural
engine instead — grouped by population size into two
:class:`repro.core.batch.BatchBehavioralGA` calls (the functions differ per
row; the batch engine carries one fitness table per replica), bit-identical
to looping :class:`BehavioralGA` row by row.
"""

from __future__ import annotations

from repro.analysis.convergence import convergence_generation, first_hit_generation
from repro.core.batch import run_batched
from repro.core.behavioral import BehavioralGA
from repro.core.system import GAResult, GASystem
from repro.experiments.config import TABLE5_RUNS, Table5Run
from repro.fitness.functions import by_name


def _row(run: Table5Run, result: GAResult) -> dict:
    """One report row of Table V from a finished run."""
    optimum = int(by_name(run.function).table().max())
    return {
        "run": run.run,
        "function": run.function,
        "seed": run.seed,
        "pop": run.population,
        "xover_thr": run.crossover_threshold,
        "paper_best": run.paper_best,
        "best": result.best_fitness,
        "optimum": optimum,
        "gap%": round(100 * (optimum - result.best_fitness) / optimum, 2),
        "paper_conv": run.paper_convergence,
        "found_gen": first_hit_generation(result.history),
        "conv_gen": convergence_generation(result.history),
    }


def run_one(run: Table5Run, cycle_accurate: bool = True):
    """Execute one Table V row; returns (GAResult, report row)."""
    fn = by_name(run.function)
    params = run.params()
    if cycle_accurate:
        result = GASystem(params, fn).run()
    else:
        result = BehavioralGA(params, fn).run()
    return result, _row(run, result)


def run_table5(cycle_accurate: bool = True) -> dict:
    """Regenerate all ten rows of Table V."""
    rows = []
    results = {}
    if cycle_accurate:
        for run in TABLE5_RUNS:
            result, row = run_one(run, cycle_accurate=True)
            rows.append(row)
            results[run.run] = result
    else:
        jobs = [(run.params(), by_name(run.function)) for run in TABLE5_RUNS]
        for run, result in zip(TABLE5_RUNS, run_batched(jobs, record_members=True)):
            rows.append(_row(run, result))
            results[run.run] = result
    return {
        "id": "Table V",
        "level": "RT (cycle-accurate)" if cycle_accurate else "behavioural",
        "rows": rows,
        "results": results,
    }
