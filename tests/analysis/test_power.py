"""Tests for the switching-activity power estimator."""

import pytest

from repro.analysis.power import CELL_CAPACITANCE_FF, estimate_power
from repro.hdl import rtlib
from repro.hdl.flatten import merge
from repro.hdl.netlist import Netlist


def random_stimulus(n, seed=1):
    import numpy as np

    rng = np.random.default_rng(seed)
    return [{"a": int(rng.integers(0, 65536)), "b": int(rng.integers(0, 65536))}
            for _ in range(n)]


class TestPowerEstimation:
    def test_idle_logic_burns_only_leakage(self):
        nl = rtlib.build_adder(16)
        report = estimate_power(nl, [{"a": 0, "b": 0}] * 20)
        # after the first settling cycle nothing toggles
        assert report.dynamic_mw < 0.01
        assert report.leakage_mw > 0

    def test_active_logic_burns_dynamic_power(self):
        nl = rtlib.build_adder(16)
        report = estimate_power(nl, random_stimulus(50))
        assert report.dynamic_mw > 0.01  # tens of uW for a lone 16-bit adder
        assert report.total_mw == pytest.approx(
            report.dynamic_mw + report.leakage_mw
        )

    def test_power_scales_with_activity(self):
        nl = rtlib.build_adder(16)
        quiet = estimate_power(nl, [{"a": 1, "b": 2}] * 50)
        busy = estimate_power(nl, random_stimulus(50))
        assert busy.dynamic_mw > quiet.dynamic_mw

    def test_power_scales_with_clock(self):
        nl = rtlib.build_adder(16)
        slow = estimate_power(nl, random_stimulus(30), clock_hz=25e6)
        fast = estimate_power(nl, random_stimulus(30), clock_hz=50e6)
        assert fast.dynamic_mw == pytest.approx(2 * slow.dynamic_mw, rel=0.01)

    def test_sequential_block(self):
        nl = Netlist("dut")
        merge(nl, rtlib.build_counter(8), "cnt")
        vectors = [{"cnt.en": 1, "cnt.clear": 0}] * 64
        report = estimate_power(nl, vectors)
        assert report.toggles > 0  # the counter's low bits toggle constantly
        assert 0 < report.activity < 1

    def test_empty_stimulus_rejected(self):
        with pytest.raises(ValueError):
            estimate_power(rtlib.build_adder(4), [])

    def test_cell_tables_cover_all_gate_types(self):
        from repro.hdl.gates import GateType

        for gtype in GateType:
            assert gtype.value in CELL_CAPACITANCE_FF

    def test_ga_datapath_power_is_milliwatt_scale(self):
        # Order-of-magnitude sanity: a ~4k-gate 0.18um datapath at 50 MHz
        # lands in the single-digit mW band.
        from repro.hdl.flatten import flatten_ga_datapath

        nl = flatten_ga_datapath()
        import numpy as np

        rng = np.random.default_rng(7)
        vectors = [
            {name: int(rng.integers(0, 1 << len(nets)))
             for name, nets in nl.inputs.items()}
            for _ in range(20)
        ]
        report = estimate_power(nl, vectors)
        assert 0.05 < report.total_mw < 50
