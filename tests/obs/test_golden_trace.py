"""Golden traces and the bit-identity contract.

The tracer must be a pure observer: a traced run emits exactly the
engine's recorded history as ``ga.generation`` events (the golden
sequence), and switching tracing on must not change a single bit of any
engine's output — serial, batched, cycle-accurate, island, or hardened.
"""

import numpy as np

from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.core.system import GASystem
from repro.fitness.functions import by_name
from repro.obs import Tracer, events, get_registry, spans
from repro.obs.analyze import best_series, phase_breakdown, sum_series
from repro.parallel.islands import IslandGA
from repro.resilience import PROTECTION_PRESETS, ResilienceHarness, UpsetRates

PARAMS = GAParameters(
    n_generations=32, population_size=32,
    crossover_threshold=10, mutation_threshold=1, rng_seed=0x061F,
)
FN = by_name("mBF6_2")


def history_rows(result):
    return [
        (g.generation, g.best_fitness, g.best_individual, g.fitness_sum)
        for g in result.history
    ]


# -- golden trace ---------------------------------------------------------
def test_serial_golden_generation_sequence():
    tracer = Tracer()
    result = BehavioralGA(PARAMS, FN, tracer=tracer).run()
    evs = events(tracer.records, "ga.generation")
    assert [
        (e["generation"], e["best_fitness"], e["best_individual"], e["fitness_sum"])
        for e in evs
    ] == history_rows(result)
    (run,) = spans(tracer.records, "ga.run")
    assert run["engine"] == "behavioral" and run["seed"] == PARAMS.rng_seed
    assert all(e["parent"] == run["id"] for e in evs)
    phases = events(tracer.records, "ga.phases")
    assert len(phases) == PARAMS.n_generations
    for ev in phases:
        assert {"selection", "crossover", "mutation", "eval",
                "elitism", "record"} <= set(ev["phases"])
        assert all(v >= 0 for v in ev["phases"].values())
    assert best_series(tracer.records) == result.best_series()
    assert sum_series(tracer.records) == [g.fitness_sum for g in result.history]
    assert set(phase_breakdown(tracer.records)) == set(phases[0]["phases"])


def test_batch_golden_events_carry_per_replica_lists():
    params_list = [PARAMS.with_(rng_seed=s) for s in (0x061F, 0x2961, 45890)]
    tracer = Tracer()
    batch = BatchBehavioralGA(params_list, FN, record_members=False, tracer=tracer)
    results = batch.run()
    evs = events(tracer.records, "ga.generation")
    assert len(evs) == PARAMS.n_generations + 1
    for r, result in enumerate(results):
        stream = [e["best_fitness"][r] for e in evs]
        assert stream == result.best_series()
        assert best_series(tracer.records, replica=r) == result.best_series()


# -- bit identity: tracing on vs off --------------------------------------
def test_serial_bit_identity():
    base = BehavioralGA(PARAMS, FN)
    traced = BehavioralGA(PARAMS, FN, tracer=Tracer())
    r0, r1 = base.run(), traced.run()
    assert history_rows(r0) == history_rows(r1)
    assert (r0.best_individual, r0.best_fitness, r0.evaluations) == (
        r1.best_individual, r1.best_fitness, r1.evaluations
    )
    assert np.array_equal(base.final_population, traced.final_population)


def test_batch_bit_identity():
    params_list = [PARAMS.with_(rng_seed=s) for s in (0x061F, 0x2961)]
    base = BatchBehavioralGA(params_list, FN, record_members=False)
    traced = BatchBehavioralGA(
        params_list, FN, record_members=False, tracer=Tracer()
    )
    r0, r1 = base.run(), traced.run()
    for a, b in zip(r0, r1):
        assert history_rows(a) == history_rows(b)
        assert (a.best_individual, a.best_fitness) == (b.best_individual, b.best_fitness)
    assert np.array_equal(base.final_populations, traced.final_populations)
    assert np.array_equal(base.rng_states, traced.rng_states)


def test_cycle_accurate_bit_identity_and_trace():
    params = PARAMS.with_(n_generations=8, population_size=16)
    tracer = Tracer()
    r0 = GASystem(params, FN).run()
    r1 = GASystem(params, FN, tracer=tracer).run()
    assert history_rows(r0) == history_rows(r1)
    assert r0.cycles == r1.cycles
    evs = events(tracer.records, "cycle.generation")
    assert [
        (e["generation"], e["best_fitness"], e["best_individual"], e["fitness_sum"])
        for e in evs
    ] == history_rows(r1)
    (pc,) = events(tracer.records, "cycle.phase_cycles")
    assert sum(pc["cycles"].values()) == pc["total"] == r1.cycles
    assert pc["cycles"]["selection"] > 0 and pc["cycles"]["eval"] > 0


def test_island_bit_identity_and_epoch_spans():
    tracer = Tracer()
    base = IslandGA(PARAMS, FN, n_islands=4, migration_interval=8).run()
    traced = IslandGA(
        PARAMS, FN, n_islands=4, migration_interval=8, tracer=tracer
    ).run()
    assert base.best_fitness == traced.best_fitness
    assert base.island_bests == traced.island_bests
    assert base.best_per_epoch == traced.best_per_epoch
    assert base.epoch_champions == traced.epoch_champions
    epochs = spans(tracer.records, "island.epoch")
    assert [e["epoch"] for e in epochs] == [0, 1, 2, 3]
    (run,) = spans(tracer.records, "ga.run")
    assert run["engine"] == "island"
    assert all(e["parent"] == run["id"] for e in epochs)
    migrations = events(tracer.records, "island.migration")
    assert len(migrations) == 3  # no migration after the final epoch
    # the batched engine's generation events nest inside each epoch span
    gen_parents = {e["parent"] for e in events(tracer.records, "ga.generation")}
    assert gen_parents == {e["id"] for e in epochs}


# -- resilience recovery events -------------------------------------------
def test_hardened_bit_identity_and_recovery_events():
    def hardened(tracer):
        harness = ResilienceHarness(
            PROTECTION_PRESETS["hardened"], UpsetRates.uniform(2e-3),
            seed=2026, n_replicas=1, tracer=tracer,
        )
        ga = BehavioralGA(
            PARAMS, FN, record_members=False, resilience=harness, tracer=tracer
        )
        return ga.run(), harness

    corrected_before = get_registry().counter("resilience.seu_corrected").value
    r0, h0 = hardened(None)
    tracer = Tracer()
    r1, h1 = hardened(tracer)
    assert history_rows(r0) == history_rows(r1)
    assert (r0.best_individual, r0.best_fitness) == (r1.best_individual, r1.best_fitness)
    assert h0.outcomes([r0]) == h1.outcomes([r1])

    # at this upset rate the hardened preset must have corrected something
    assert int(h1.corrected[0]) > 0
    secded_events = events(tracer.records, "resilience.secded")
    assert sum(e["corrected"] for e in secded_events) == int(h1.corrected[0])
    repairs = events(tracer.records, "resilience.elite_repair")
    assert len(repairs) == int(h1.elite_repairs[0])
    # both runs (traced + untraced) bumped the process-wide counter
    corrected_after = get_registry().counter("resilience.seu_corrected").value
    assert corrected_after - corrected_before == 2 * int(h1.corrected[0])


def test_zero_rate_harness_emits_no_recovery_events():
    tracer = Tracer()
    harness = ResilienceHarness(
        PROTECTION_PRESETS["hardened"], UpsetRates.uniform(0.0),
        seed=2026, n_replicas=1, tracer=tracer,
    )
    BehavioralGA(
        PARAMS, FN, record_members=False, resilience=harness, tracer=tracer
    ).run()
    names = {r["name"] for r in tracer.records}
    assert not any(n.startswith("resilience.") for n in names)
