"""Tests for the TRNG simulation and the extended statistical battery."""

import numpy as np
import pytest

from repro.rng import quality
from repro.rng.cellular_automaton import CellularAutomatonPRNG
from repro.rng.lcg import PoorLCG
from repro.rng.trng import JitterEntropySource, TrueRNG, von_neumann


class TestVonNeumann:
    def test_canonical_pairs(self):
        bits = np.array([0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint8)
        # pairs: 01 -> 0, 10 -> 1, 00 -> drop, 11 -> drop
        assert von_neumann(bits).tolist() == [0, 1]

    def test_removes_bias(self):
        rng = np.random.default_rng(3)
        biased = (rng.random(200_000) < 0.7).astype(np.uint8)
        corrected = von_neumann(biased)
        assert abs(float(corrected.mean()) - 0.5) < 0.01

    def test_throughput_cost(self):
        rng = np.random.default_rng(4)
        raw = (rng.random(100_000) < 0.5).astype(np.uint8)
        corrected = von_neumann(raw)
        assert len(corrected) == pytest.approx(len(raw) / 4, rel=0.1)

    def test_odd_length_input(self):
        assert von_neumann(np.array([1, 0, 1], dtype=np.uint8)).tolist() == [1]


class TestJitterSource:
    def test_raw_bits_are_biased(self):
        src = JitterEntropySource(sim_seed=1, bias=0.6)
        raw = src.raw_bits(50_000)
        assert 0.55 < float(raw.mean()) < 0.65

    def test_reproducible_given_sim_seed(self):
        a = JitterEntropySource(sim_seed=7).raw_bits(1000)
        b = JitterEntropySource(sim_seed=7).raw_bits(1000)
        assert np.array_equal(a, b)


class TestTrueRNG:
    def test_words_are_16_bit(self):
        trng = TrueRNG(seed=2)
        for _ in range(50):
            assert 0 <= trng.next_word() <= 0xFFFF

    def test_whitened_stream_is_unbiased(self):
        trng = TrueRNG(seed=5)
        words = trng.block(3000).astype(np.int64)
        mean_frac, worst = quality.bit_balance(words)
        assert abs(mean_frac - 0.5) < 0.02
        assert worst < 0.05

    def test_whitening_efficiency_near_quarter(self):
        trng = TrueRNG(seed=5)
        trng.block(500)
        assert 0.05 < trng.whitening_efficiency < 0.3

    def test_never_detects_a_period(self):
        trng = TrueRNG(seed=9)
        assert quality.measure_period(trng, limit=2000) == 2000

    def test_usable_as_ga_rng(self):
        # A TRNG-driven GA runs fine — it just can't be replayed, the
        # reason the core exposes a *programmable seed* instead.
        from repro.core.behavioral import BehavioralGA
        from repro.core.params import GAParameters
        from repro.fitness import F3

        params = GAParameters(4, 8, 10, 2, 1)
        result = BehavioralGA(params, F3(), rng=TrueRNG(seed=11)).run()
        assert result.best_fitness > 0


class TestExtendedBattery:
    def test_runs_test_passes_good_stream(self):
        words = CellularAutomatonPRNG(45890, spacing=4).block(8000).astype(np.int64)
        assert quality.runs_test(words) > 1e-4

    def test_runs_test_fails_alternating_stream(self):
        words = np.tile([1000, 60000], 4000).astype(np.int64)
        assert quality.runs_test(words) < 1e-6

    def test_runs_test_fails_sorted_stream(self):
        words = np.sort(CellularAutomatonPRNG(45890).block(4000)).astype(np.int64)
        assert quality.runs_test(words) < 1e-6

    def test_gap_test_passes_good_stream(self):
        words = CellularAutomatonPRNG(10593, spacing=4).block(20000).astype(np.int64)
        assert quality.gap_test(words) > 1e-4

    def test_gap_test_fails_strided_stream(self):
        # A counter visits the target range in one periodic burst per lap:
        # the gap distribution is degenerate and the test collapses.
        words = (np.arange(20000, dtype=np.int64) * 257) & 0xFFFF
        assert quality.gap_test(words) < 1e-4

    def test_poor_lcg_fails_somewhere_in_battery(self):
        # The poor LCG's specific weaknesses are its short period and
        # serial correlation (the gap test alone doesn't catch it).
        report = quality.evaluate(PoorLCG(45890))
        assert not report.is_good()

    def test_gap_test_insufficient_data(self):
        assert quality.gap_test(np.array([70000] * 30)) == 0.0
