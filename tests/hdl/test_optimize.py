"""Tests for the netlist optimizer (constant propagation + dead logic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import rtlib
from repro.hdl.gates import GateType
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.optimize import equivalent, optimize, strip_dead


class TestConstantFolding:
    def test_and_with_zero_folds(self):
        nl = Netlist("t")
        a = nl.add_input("a", 1)
        zero = nl.add_gate(GateType.CONST0)
        nl.add_output("y", [nl.add_gate(GateType.AND, a[0], zero)])
        opt = optimize(nl)
        assert opt.evaluate({"a": 1})["y"] == 0
        # only the tie cell remains
        assert opt.stats()["gates"] <= 1

    @pytest.mark.parametrize(
        "gtype,const,a,expected",
        [
            (GateType.AND, 1, 1, 1),
            (GateType.OR, 0, 1, 1),
            (GateType.XOR, 0, 1, 1),
            (GateType.XOR, 1, 1, 0),
            (GateType.NAND, 1, 1, 0),
            (GateType.NOR, 0, 0, 1),
            (GateType.XNOR, 1, 1, 1),
        ],
    )
    def test_one_const_rules(self, gtype, const, a, expected):
        nl = Netlist("t")
        ain = nl.add_input("a", 1)
        cnet = nl.add_gate(GateType.CONST1 if const else GateType.CONST0)
        nl.add_output("y", [nl.add_gate(gtype, ain[0], cnet)])
        opt = optimize(nl)
        assert opt.evaluate({"a": a})["y"] == expected

    def test_buffer_chains_collapse(self):
        nl = Netlist("t")
        a = nl.add_input("a", 1)
        x = a[0]
        for _ in range(5):
            x = nl.add_gate(GateType.BUF, x)
        nl.add_output("y", [x])
        opt = optimize(nl)
        assert opt.stats()["gates"] == 0
        assert opt.evaluate({"a": 1})["y"] == 1

    def test_double_negation_survives_with_correct_function(self):
        nl = Netlist("t")
        a = nl.add_input("a", 1)
        nl.add_output("y", [nl.add_gate(GateType.NOT, nl.add_gate(GateType.NOT, a[0]))])
        opt = optimize(nl)
        assert opt.evaluate({"a": 1})["y"] == 1
        assert opt.evaluate({"a": 0})["y"] == 0


class TestDeadLogic:
    def test_unobserved_gates_removed(self):
        nl = Netlist("t")
        a = nl.add_input("a", 4)
        used = nl.add_gate(GateType.AND, a[0], a[1])
        nl.add_gate(GateType.XOR, a[2], a[3])  # dead
        nl.add_output("y", [used])
        opt = strip_dead(nl)
        assert opt.stats()["gates"] == 1

    def test_logic_feeding_flops_survives(self):
        nl = Netlist("t")
        a = nl.add_input("a", 1)
        g = nl.add_gate(GateType.NOT, a[0])
        nl.add_dff(g)
        opt = strip_dead(nl)
        assert opt.stats()["gates"] == 1

    def test_scan_nets_kept(self):
        from repro.hdl.flatten import merge
        from repro.hdl.scan import insert_scan_chain

        nl = Netlist("t")
        merge(nl, rtlib.build_counter(4), "cnt")
        insert_scan_chain(nl)
        opt = strip_dead(nl)
        assert opt.scan_ports == nl.scan_ports


class TestEquivalencePreservation:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_adder_unchanged(self, a, b):
        nl = optimize(rtlib.build_adder(16))
        assert nl.evaluate({"a": a, "b": b})["sum"] == (a + b) & 0xFFFF

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 0xFFFF), st.integers(0, 15))
    def test_mutation_unit_unchanged(self, ind, point):
        nl = optimize(rtlib.build_mutation_unit(16))
        out = nl.evaluate({"ind": ind, "point": point, "en": 1})
        assert out["out"] == ind ^ (1 << point)

    def test_constant_rich_block_shrinks(self):
        # the thermometer decoder compares against constants: folding wins
        raw = rtlib.build_crossover_unit(16)
        opt = optimize(raw)
        assert opt.stats()["gates"] < raw.stats()["gates"]
        out = opt.evaluate({"p1": 0xAAAA, "p2": 0x5555, "cut": 7})
        ref = raw.evaluate({"p1": 0xAAAA, "p2": 0x5555, "cut": 7})
        assert out == ref

    def test_sequential_behaviour_preserved(self):
        from repro.hdl.scan import Stepper
        from repro.rng.cellular_automaton import CellularAutomatonPRNG

        opt = optimize(rtlib.build_ca_rng(16))
        stepper = Stepper(opt)
        stepper.step(seed=0xB342, load=1, en=0)
        rng = CellularAutomatonPRNG(0xB342)
        for _ in range(30):
            assert stepper.step(load=0, en=1)["rn"] == rng.next_word()

    def test_optimizer_is_idempotent(self):
        once = optimize(rtlib.build_crossover_unit(16))
        twice = optimize(once)
        assert once.stats() == twice.stats()

    def test_every_rtlib_block_equivalent_after_optimize(self):
        # the packed-engine equivalence check sweeps 256 random scan-model
        # patterns per block in one pass — the miter the optimizer must pass
        builders = [
            rtlib.build_adder,
            rtlib.build_comparator,
            rtlib.build_crossover_unit,
            rtlib.build_mutation_unit,
            rtlib.build_ca_rng,
            rtlib.build_parameter_register,
        ]
        for build in builders:
            raw = build()
            assert equivalent(raw, optimize(raw), patterns=256, seed=1), raw.name

    def test_equivalent_flags_functional_difference(self):
        good = rtlib.build_adder(8)
        broken = rtlib.build_adder(8)
        # swap the top sum bit for its complement
        top = broken.outputs["sum"][-1]
        broken.outputs["sum"][-1] = broken.add_gate(GateType.NOT, top)
        assert not equivalent(good, broken, patterns=64, seed=2)

    def test_equivalent_requires_matching_interfaces(self):
        with pytest.raises(NetlistError, match="interfaces differ"):
            equivalent(rtlib.build_adder(8), rtlib.build_adder(16))


class TestSmartGA:
    def test_fixed_matches_programmable_decisions(self):
        from repro.core.params import GAParameters
        from repro.hls.smartga import fixed_datapath

        params = GAParameters(32, 32, 12, 3, 0xB342)
        fixed = fixed_datapath(params)
        for rx in range(16):
            out = fixed.evaluate(
                {"rand_xover": rx, "rand_mut": rx,
                 "generation_index": 32, "population_index": 32}
            )
            assert out["do_crossover"] == int(rx < 12)
            assert out["do_mutation"] == int(rx < 3)
            assert out["generations_done"] == 1
            assert out["seed"] == 0xB342

    def test_fixing_parameters_saves_area(self):
        from repro.hls.smartga import comparison

        report = comparison()
        assert report.gate_saving_pct > 30
        assert report.ff_saving > 0

    def test_reprogramming_is_cycles_not_resynthesis(self):
        from repro.hls.smartga import comparison

        report = comparison()
        assert report.reprogram_cycles < 200
        assert report.resynthesis_seconds > 0
