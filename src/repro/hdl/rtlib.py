"""Structural RTL component library.

These generators build gate-level implementations of the "simple components
such as adders, multiplexers, etc." that the AUDI HLS flow instantiates in
the GA core's datapath (Sec. III-A).  Each word-level helper appends gates to
an existing :class:`~repro.hdl.netlist.Netlist` and returns the output nets
(LSB first); each ``build_*`` function returns a complete netlist block with
named ports, ready for flattening, scan insertion, equivalence checking, and
resource estimation.
"""

from __future__ import annotations

from typing import Sequence

from repro.hdl.gates import DFF, GateType
from repro.hdl.netlist import Netlist

Nets = list[int]


# ----------------------------------------------------------------------
# word-level helpers
# ----------------------------------------------------------------------
def const_word(nl: Netlist, value: int, width: int) -> Nets:
    """Nets tied to the bits of ``value``."""
    return [
        nl.add_gate(GateType.CONST1 if (value >> i) & 1 else GateType.CONST0)
        for i in range(width)
    ]


def not_word(nl: Netlist, a: Sequence[int]) -> Nets:
    """Bitwise complement."""
    return [nl.add_gate(GateType.NOT, bit) for bit in a]


def _bitwise(nl: Netlist, gtype: GateType, a: Sequence[int], b: Sequence[int]) -> Nets:
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    return [nl.add_gate(gtype, x, y) for x, y in zip(a, b)]


def and_word(nl: Netlist, a: Sequence[int], b: Sequence[int]) -> Nets:
    """Bitwise AND."""
    return _bitwise(nl, GateType.AND, a, b)


def or_word(nl: Netlist, a: Sequence[int], b: Sequence[int]) -> Nets:
    """Bitwise OR."""
    return _bitwise(nl, GateType.OR, a, b)


def xor_word(nl: Netlist, a: Sequence[int], b: Sequence[int]) -> Nets:
    """Bitwise XOR."""
    return _bitwise(nl, GateType.XOR, a, b)


def mux2_word(nl: Netlist, sel: int, a: Sequence[int], b: Sequence[int]) -> Nets:
    """2:1 word multiplexer: out = b when sel else a."""
    nsel = nl.add_gate(GateType.NOT, sel)
    out = []
    for x, y in zip(a, b):
        lo = nl.add_gate(GateType.AND, x, nsel)
        hi = nl.add_gate(GateType.AND, y, sel)
        out.append(nl.add_gate(GateType.OR, lo, hi))
    return out


def full_adder(nl: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """One-bit full adder; returns (sum, carry-out)."""
    axb = nl.add_gate(GateType.XOR, a, b)
    s = nl.add_gate(GateType.XOR, axb, cin)
    c1 = nl.add_gate(GateType.AND, a, b)
    c2 = nl.add_gate(GateType.AND, axb, cin)
    cout = nl.add_gate(GateType.OR, c1, c2)
    return s, cout


def ripple_adder(
    nl: Netlist, a: Sequence[int], b: Sequence[int], cin: int | None = None
) -> tuple[Nets, int]:
    """Ripple-carry adder; returns (sum nets, carry-out net)."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    carry = cin if cin is not None else nl.add_gate(GateType.CONST0)
    total = []
    for x, y in zip(a, b):
        s, carry = full_adder(nl, x, y, carry)
        total.append(s)
    return total, carry


def less_than(nl: Netlist, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned ``a < b``: the borrow out of ``a + ~b + 1``."""
    one = nl.add_gate(GateType.CONST1)
    _, carry = ripple_adder(nl, a, not_word(nl, b), cin=one)
    return nl.add_gate(GateType.NOT, carry)


def equals(nl: Netlist, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned equality via an XNOR reduction tree."""
    bits = _bitwise(nl, GateType.XNOR, a, b)
    while len(bits) > 1:
        nxt = []
        for i in range(0, len(bits) - 1, 2):
            nxt.append(nl.add_gate(GateType.AND, bits[i], bits[i + 1]))
        if len(bits) % 2:
            nxt.append(bits[-1])
        bits = nxt
    return bits[0]


def thermometer_mask(nl: Netlist, n: Sequence[int], width: int = 16) -> Nets:
    """Crossover bit mask: bit ``i`` is 1 iff ``i < n`` (Sec. III-B.3).

    ``n`` is the 4-bit random cut point; the mask selects the low part of the
    first parent.
    """
    return [less_than(nl, const_word(nl, i, len(n)), list(n)) for i in range(width)]


def onehot_decoder(nl: Netlist, n: Sequence[int], width: int = 16) -> Nets:
    """Mutation bit mask: one-hot decode of the mutation point."""
    return [equals(nl, const_word(nl, i, len(n)), list(n)) for i in range(width)]


def ca_next_word(nl: Netlist, state: Sequence[int], rule_vector: int) -> Nets:
    """Next state of the null-boundary hybrid rule-90/150 cellular automaton.

    Cell ``i`` follows rule 150 (neighbours XOR self) when bit ``i`` of
    ``rule_vector`` is set, rule 90 (neighbours only) otherwise.
    """
    width = len(state)
    zero = nl.add_gate(GateType.CONST0)
    nxt = []
    for i in range(width):
        left = state[i + 1] if i + 1 < width else zero
        right = state[i - 1] if i - 1 >= 0 else zero
        cell = nl.add_gate(GateType.XOR, left, right)
        if (rule_vector >> i) & 1:
            cell = nl.add_gate(GateType.XOR, cell, state[i])
        nxt.append(cell)
    return nxt


# ----------------------------------------------------------------------
# complete blocks
# ----------------------------------------------------------------------
def build_adder(width: int = 16) -> Netlist:
    """Adder block: ``sum = a + b`` with carry-out (fitness accumulator)."""
    nl = Netlist(f"adder{width}")
    a = nl.add_input("a", width)
    b = nl.add_input("b", width)
    total, cout = ripple_adder(nl, a, b)
    nl.add_output("sum", total)
    nl.add_output("cout", [cout])
    return nl


def build_comparator(width: int = 16) -> Netlist:
    """Comparator block: ``lt = a < b``, ``eq = a == b`` (threshold tests)."""
    nl = Netlist(f"cmp{width}")
    a = nl.add_input("a", width)
    b = nl.add_input("b", width)
    nl.add_output("lt", [less_than(nl, a, b)])
    nl.add_output("eq", [equals(nl, a, b)])
    return nl


def build_crossover_unit(width: int = 16, cut_bits: int = 4) -> Netlist:
    """Single-point crossover datapath of Fig. 3.

    ``off1 = (p1 & mask) | (p2 & ~mask)`` and symmetrically for ``off2``,
    where ``mask`` has ones from position 0 to ``cut - 1``.
    """
    nl = Netlist(f"xover{width}")
    p1 = nl.add_input("p1", width)
    p2 = nl.add_input("p2", width)
    cut = nl.add_input("cut", cut_bits)
    mask = thermometer_mask(nl, cut, width)
    nmask = not_word(nl, mask)
    off1 = or_word(nl, and_word(nl, p1, mask), and_word(nl, p2, nmask))
    off2 = or_word(nl, and_word(nl, p2, mask), and_word(nl, p1, nmask))
    nl.add_output("off1", off1)
    nl.add_output("off2", off2)
    return nl


def build_mutation_unit(width: int = 16, point_bits: int = 4) -> Netlist:
    """Single-bit mutation datapath: XOR with a gated one-hot mask."""
    nl = Netlist(f"mut{width}")
    ind = nl.add_input("ind", width)
    point = nl.add_input("point", point_bits)
    en = nl.add_input("en", 1)[0]
    onehot = onehot_decoder(nl, point, width)
    gated = [nl.add_gate(GateType.AND, bit, en) for bit in onehot]
    nl.add_output("out", xor_word(nl, ind, gated))
    return nl


def build_ca_rng(width: int = 16, rule_vector: int = 0x6C04) -> Netlist:
    """Sequential cellular-automaton RNG block.

    Ports: ``seed``/``load`` (synchronous seed load), ``en`` (advance), and
    the current random word ``rn``.  The default rule vector is the verified
    maximal-length 16-cell hybrid 90/150 vector used across this repo.
    """
    nl = Netlist(f"ca_rng{width}")
    seed = nl.add_input("seed", width)
    load = nl.add_input("load", 1)[0]
    en = nl.add_input("en", 1)[0]
    # Flops with a temporary d; rewired below once next-state logic exists.
    qs = [nl.net(f"state[{i}]") for i in range(width)]
    nxt = ca_next_word(nl, qs, rule_vector)
    held = mux2_word(nl, en, qs, nxt)
    dvals = mux2_word(nl, load, held, seed)
    for i in range(width):
        nl.dffs.append(DFF(d=dvals[i], q=qs[i], init=0, name=f"ca[{i}]"))
        nl._driven.add(qs[i])
    nl.add_output("rn", qs)
    return nl


def build_parameter_register(width: int = 16) -> Netlist:
    """A loadable parameter register (one per Table III index)."""
    nl = Netlist(f"param_reg{width}")
    d = nl.add_input("d", width)
    load = nl.add_input("load", 1)[0]
    qs = [nl.net(f"q[{i}]") for i in range(width)]
    dvals = mux2_word(nl, load, qs, d)
    for i in range(width):
        nl.dffs.append(DFF(d=dvals[i], q=qs[i], init=0, name=f"param[{i}]"))
        nl._driven.add(qs[i])
    nl.add_output("q", qs)
    return nl


def build_counter(width: int = 8) -> Netlist:
    """Loadable up-counter (generation index, population index, address)."""
    nl = Netlist(f"counter{width}")
    en = nl.add_input("en", 1)[0]
    clear = nl.add_input("clear", 1)[0]
    qs = [nl.net(f"q[{i}]") for i in range(width)]
    one = const_word(nl, 1, width)
    inc, _ = ripple_adder(nl, qs, one)
    held = mux2_word(nl, en, qs, inc)
    zero = const_word(nl, 0, width)
    dvals = mux2_word(nl, clear, held, zero)
    for i in range(width):
        nl.dffs.append(DFF(d=dvals[i], q=qs[i], init=0, name=f"cnt[{i}]"))
        nl._driven.add(qs[i])
    nl.add_output("q", qs)
    return nl
