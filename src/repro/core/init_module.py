"""The initialization module (Fig. 4, Sec. IV-B).

"The initialization module consists of a simple finite state machine to
perform the two-way handshaking operation using the data_valid and data_ack
signals to initialize the various GA parameters one by one."

In the paper this FSM runs in the fast (200 MHz) clock domain; wire it with
``divider=1`` while the GA module components use ``divider=4`` to model that
(or run everything in one domain — the handshake is latency-insensitive).
"""

from __future__ import annotations

from repro.core.params import GAParameters
from repro.core.ports import GAPorts
from repro.hdl.component import Component


class InitializationModule(Component):
    """Programs a :class:`GAParameters` set through the Table III handshake."""

    def __init__(self, ports: GAPorts, params: GAParameters, name: str = "init_module"):
        super().__init__(name)
        self.ports = ports
        self.params = params
        self.words = params.to_index_values()
        self.word_index = 0
        self.state = "LOAD"
        self.done = False

    def clock(self) -> None:
        p = self.ports
        if self.state == "LOAD":
            if self.word_index >= len(self.words):
                self.drive(p.ga_load, 0)
                self.set_state(state="DONE", done=True)
                return
            self.drive(p.ga_load, 1)
            index, value = self.words[self.word_index]
            self.drive(p.index, int(index))
            self.drive(p.value, value)
            self.drive(p.data_valid, 1)
            self.set_state(state="WAIT_ACK")
        elif self.state == "WAIT_ACK":
            if p.data_ack.value:
                self.drive(p.data_valid, 0)
                self.set_state(state="WAIT_ACK_LOW")
        elif self.state == "WAIT_ACK_LOW":
            if not p.data_ack.value:
                self.set_state(state="LOAD", word_index=self.word_index + 1)
        # DONE: hold ga_load low, nothing else to do.

    def reset(self) -> None:
        super().reset()
        self.word_index = 0
        self.state = "LOAD"
        self.done = False
        for sig in (self.ports.ga_load, self.ports.data_valid,
                    self.ports.index, self.ports.value):
            sig.reset()
