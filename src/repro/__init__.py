"""repro — a full-system reproduction of the customizable FPGA GA IP core.

This library reproduces Fernando, Katkoori, Keymeulen, Zebulum & Stoica,
"Customizable FPGA IP Core Implementation of a General-Purpose Genetic
Algorithm Engine" (IEEE TEVC 14(1), 2010; first presented at IPDPS 2008) as
a production-quality Python system:

* :mod:`repro.hdl`        — cycle-accurate simulation kernel + gate-level
  netlists, flattening, scan chains (the VHDL/Verilog substrate);
* :mod:`repro.rng`        — the cellular-automaton PRNG and comparison
  generators, with quality metrics;
* :mod:`repro.fitness`    — the paper's six test functions and the
  lookup/combinational/multiplexed fitness evaluation modules;
* :mod:`repro.core`       — the GA IP core itself: Table II ports,
  Table III/IV parameters, the cycle-accurate FSM, its vectorised
  behavioural twin, the Fig. 4 system assembly, and the Fig. 6 32-bit
  dual-core scaling;
* :mod:`repro.baselines`  — the prior FPGA GA engines of Table I and the
  software GA of the speedup study;
* :mod:`repro.analysis`   — convergence metrics, the Table VI resource
  estimator, the Sec. IV-C timing model, figure-series extraction;
* :mod:`repro.experiments` — one runner per paper table/figure;
* :mod:`repro.parallel`   — the island-model multi-core extension;
* :mod:`repro.resilience` — SEU injection, SECDED/watchdog hardening,
  fault campaigns;
* :mod:`repro.service`    — GA-as-a-service: async job scheduler with
  dynamic batching, a worker pool, and service metrics;
* :mod:`repro.store`      — the content-addressed run store: canonical
  job keys, cached results, in-flight coalescing, ``repro replay``;
* :mod:`repro.obs`        — unified observability: structured tracing,
  the process-wide metrics registry, and profiling hooks (zero-cost
  when disabled, bit-identical results when enabled).

Quickstart::

    from repro import GAParameters, GASystem
    from repro.fitness import MBF6_2

    params = GAParameters(n_generations=64, population_size=64,
                          crossover_threshold=10, mutation_threshold=1,
                          rng_seed=0x061F)
    result = GASystem(params, MBF6_2()).run()
    print(result.best_individual, result.best_fitness)
"""

from repro.core import (
    BehavioralGA,
    DualCoreGA32,
    GACore,
    GAParameters,
    GAResult,
    GASystem,
    PresetMode,
)
from repro.fitness import by_name as fitness_by_name
from repro.obs import Tracer, read_trace, use_tracer
from repro.service import GARequest, GAService

__version__ = "1.0.0"

__all__ = [
    "GAParameters",
    "GASystem",
    "GAResult",
    "GACore",
    "BehavioralGA",
    "DualCoreGA32",
    "PresetMode",
    "GARequest",
    "GAService",
    "Tracer",
    "read_trace",
    "use_tracer",
    "fitness_by_name",
    "__version__",
]
