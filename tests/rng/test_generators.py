"""Tests for the LFSR/LCG baselines and the quality metrics."""

import numpy as np
import pytest

from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import CellularAutomatonPRNG
from repro.rng.lcg import LCG16, PoorLCG
from repro.rng.lfsr import GaloisLFSR
from repro.rng import quality


class TestLFSR:
    def test_first_word_is_seed(self):
        assert GaloisLFSR(0xBEEF).next_word() == 0xBEEF

    def test_maximal_period(self):
        assert quality.measure_period(GaloisLFSR(1)) == 0xFFFF

    def test_known_step(self):
        # One Galois step of state 1: lsb set -> shift then xor taps.
        lfsr = GaloisLFSR(1)
        lfsr.next_word()
        assert lfsr.state == 0xB400

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            GaloisLFSR(0)


class TestLCG:
    def test_lcg16_long_period(self):
        # Full 32-bit state: period far exceeds the measurement cap.
        assert quality.measure_period(LCG16(1), limit=1 << 16) == 1 << 16

    def test_poor_lcg_short_period(self):
        assert quality.measure_period(PoorLCG(1)) < 0xFFFF

    def test_deterministic(self):
        a = LCG16(99).block(20)
        b = LCG16(99).block(20)
        assert np.array_equal(a, b)


class TestQualityMetrics:
    def test_ca_rng_characteristics(self):
        # Raw hybrid-CA streams have a long period, uniform distribution and
        # balanced bits, but the local update leaves lag-1 correlation; the
        # spacing option (free-running CA between reads) removes it.
        report = quality.evaluate(CellularAutomatonPRNG(45890))
        assert report.period == 0xFFFF
        assert report.chi2_pvalue > 1e-4
        assert report.worst_bit_bias < 0.05
        assert abs(report.serial_correlation) > 0.1  # the documented flaw

    def test_ca_rng_with_spacing_is_good(self):
        # spacing must be coprime to the orbit length 65535 = 3*5*17*257 to
        # keep the full period; powers of two always are.
        report = quality.evaluate(CellularAutomatonPRNG(45890, spacing=4))
        assert report.is_good(), report

    def test_spacing_matches_stepped_stream(self):
        # spaced draw k equals plain draw 3k, for both block and next_word
        spaced = CellularAutomatonPRNG(0x2961, spacing=3)
        plain = CellularAutomatonPRNG(0x2961)
        assert np.array_equal(spaced.block(10), plain.block(30)[::3])
        stepped = CellularAutomatonPRNG(0x2961, spacing=3, precompute=False)
        spaced.reseed(0x2961)
        for _ in range(10):
            assert stepped.next_word() == spaced.next_word()

    def test_bad_spacing_rejected(self):
        with pytest.raises(ValueError):
            CellularAutomatonPRNG(1, spacing=0)

    def test_lfsr_is_good_enough(self):
        report = quality.evaluate(GaloisLFSR(45890))
        assert report.period == 0xFFFF
        assert abs(report.bit_balance - 0.5) < 0.02

    def test_poor_lcg_flagged(self):
        report = quality.evaluate(PoorLCG(45890))
        assert not report.is_good(), report

    def test_bit_balance_on_constant_stream(self):
        words = np.full(1000, 0xFFFF, dtype=np.int64)
        mean_frac, worst = quality.bit_balance(words)
        assert mean_frac == 1.0 and worst == 0.5

    def test_serial_correlation_detects_counter(self):
        words = np.arange(10000, dtype=np.int64) & 0xFFFF
        assert quality.serial_correlation(words) > 0.99

    def test_chi_square_uniform_stream(self):
        rng = np.random.default_rng(7)
        words = rng.integers(0, 65536, size=50000)
        assert quality.chi_square_uniformity(words) > 1e-3

    def test_evaluate_leaves_source_reseeded(self):
        src = CellularAutomatonPRNG(1567)
        quality.evaluate(src, samples=100)
        assert src.state == 1567 and src.draws == 0


class TestRandomSourceBase:
    def test_base_advance_not_implemented(self):
        src = RandomSource.__new__(RandomSource)
        src.width = 16
        src.seed = src.state = 1
        src.draws = 0
        with pytest.raises(NotImplementedError):
            src.next_word()

    def test_reseed_validates(self):
        src = GaloisLFSR(5)
        with pytest.raises(ValueError):
            src.reseed(0)
        with pytest.raises(ValueError):
            src.reseed(1 << 16)
