"""The GA IP core — the paper's primary contribution.

Modules:

* :mod:`repro.core.params` — the programmable GA parameters, Table III
  index map, and Table IV preset modes;
* :mod:`repro.core.ports` — the 25-signal port interface of Table II;
* :mod:`repro.core.ga_core` — the cycle-accurate GA core FSM;
* :mod:`repro.core.ga_memory` — the {candidate, fitness} population memory;
* :mod:`repro.core.rng_module` — the RNG module serving 16-bit words;
* :mod:`repro.core.init_module` — the parameter-initialization FSM;
* :mod:`repro.core.system` — the full Fig. 4 system assembly and runner;
* :mod:`repro.core.behavioral` — the numpy-vectorised algorithm twin
  (bit-identical populations given the same RNG stream);
* :mod:`repro.core.batch` — the batched sweep engine evolving N replicas
  at once as ``(replica, member)`` arrays, bit-identical to N serial runs;
* :mod:`repro.core.scaling` — the 32-bit dual-core construction of Fig. 6.
"""

from repro.core.params import (
    GAParameters,
    ParameterIndex,
    PRESET_MODES,
    PresetMode,
)
from repro.core.ports import GAPorts, PORT_SPEC
from repro.core.ga_core import GACore
from repro.core.ga_memory import GAMemory, pack_word, unpack_word
from repro.core.rng_module import RNGModule
from repro.core.init_module import InitializationModule
from repro.core.system import GAResult, GASystem, GenerationStats
from repro.core.behavioral import BehavioralGA
from repro.core.batch import BatchBehavioralGA, run_batched
from repro.core.scaling import DualCoreGA32, compose_rate

__all__ = [
    "GAParameters",
    "ParameterIndex",
    "PRESET_MODES",
    "PresetMode",
    "GAPorts",
    "PORT_SPEC",
    "GACore",
    "GAMemory",
    "pack_word",
    "unpack_word",
    "RNGModule",
    "InitializationModule",
    "GAResult",
    "GASystem",
    "GenerationStats",
    "BehavioralGA",
    "BatchBehavioralGA",
    "run_batched",
    "DualCoreGA32",
    "compose_rate",
]
