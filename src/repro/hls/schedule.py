"""Operation scheduling: ASAP, ALAP, and resource-constrained list
scheduling (the second stage of the Sec. III-A flow).

All operations take one control step; sources (inputs/constants) are
available at step 0 and outputs simply observe their producer's register.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.dfg import DFG, FU_CLASS, Op, OpType


@dataclass
class Schedule:
    """Control-step assignment for every computational op."""

    dfg: DFG
    steps: dict[int, int]  # op index -> control step (0-based)

    @property
    def length(self) -> int:
        """Total control steps (the synthesized FSM's state count)."""
        return 1 + max(self.steps.values()) if self.steps else 1

    def ops_in_step(self, step: int) -> list[Op]:
        return [self.dfg.ops[i] for i, s in self.steps.items() if s == step]

    def validate(self) -> None:
        """Data dependencies must be respected: an op runs strictly after
        every computational producer."""
        for index, step in self.steps.items():
            for operand in self.dfg.ops[index].operands:
                producer = self.dfg.ops[operand]
                if producer.is_source:
                    continue
                if self.steps[producer.index] >= step:
                    raise ValueError(
                        f"op {index} at step {step} depends on op "
                        f"{producer.index} at step {self.steps[producer.index]}"
                    )


@dataclass(frozen=True)
class ResourceConstraints:
    """Available functional units per class (None = unlimited)."""

    alu: int | None = None
    cmp: int | None = None
    logic: int | None = None
    mux: int | None = None

    def limit(self, fu_class: str) -> int | None:
        return getattr(self, fu_class)


def _ready_order(dfg: DFG) -> list[Op]:
    return dfg.computational_ops


def asap(dfg: DFG) -> Schedule:
    """As-soon-as-possible schedule (unlimited resources)."""
    steps: dict[int, int] = {}
    for op in _ready_order(dfg):
        earliest = 0
        for operand in op.operands:
            producer = dfg.ops[operand]
            if not producer.is_source:
                earliest = max(earliest, steps[producer.index] + 1)
        steps[op.index] = earliest
    return Schedule(dfg, steps)


def alap(dfg: DFG, length: int | None = None) -> Schedule:
    """As-late-as-possible schedule for a given length (default: ASAP
    length — the critical path)."""
    base = asap(dfg)
    length = length if length is not None else base.length
    steps: dict[int, int] = {}
    for op in reversed(_ready_order(dfg)):
        latest = length - 1
        for consumer in dfg.consumers(op.index):
            if consumer.type == OpType.OUTPUT:
                continue
            latest = min(latest, steps[consumer.index] - 1)
        if latest < 0:
            raise ValueError(f"schedule length {length} infeasible")
        steps[op.index] = latest
    schedule = Schedule(dfg, steps)
    schedule.validate()
    return schedule


def mobility(dfg: DFG) -> dict[int, int]:
    """ALAP - ASAP slack per op (list scheduling's priority key)."""
    early = asap(dfg).steps
    late = alap(dfg).steps
    return {i: late[i] - early[i] for i in early}


def list_schedule(dfg: DFG, resources: ResourceConstraints) -> Schedule:
    """Classic mobility-priority list scheduling under FU limits."""
    slack = mobility(dfg)
    remaining = {op.index for op in dfg.computational_ops}
    steps: dict[int, int] = {}
    step = 0
    guard = 4 * len(remaining) + 8
    while remaining:
        if step > guard:
            raise RuntimeError("list scheduling failed to converge")
        used: dict[str, int] = {}
        ready = sorted(
            (
                i
                for i in remaining
                if all(
                    dfg.ops[o].is_source or steps.get(o, step) < step
                    for o in dfg.ops[i].operands
                    if not dfg.ops[o].is_source
                )
                and all(
                    dfg.ops[o].is_source or o in steps
                    for o in dfg.ops[i].operands
                )
            ),
            key=lambda i: (slack[i], i),
        )
        for index in ready:
            fu_class = FU_CLASS[dfg.ops[index].type]
            limit = resources.limit(fu_class)
            if limit is not None and used.get(fu_class, 0) >= limit:
                continue
            used[fu_class] = used.get(fu_class, 0) + 1
            steps[index] = step
            remaining.discard(index)
        step += 1
    schedule = Schedule(dfg, steps)
    schedule.validate()
    return schedule
