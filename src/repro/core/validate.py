"""Shared input validation for the behavioural GA engines.

The serial and batched engines accept caller-supplied initial populations
(the island model carrying populations across epochs, the service layer
resuming suspended slabs).  Both must enforce the same contract — 16-bit
non-negative integer chromosomes in the engine's expected layout — and,
critically, must *disagree on nothing*: a payload that raises from one
engine raises the same named error from the other (the parity property in
``tests/core/test_validate.py``).  Before this helper existed the serial
engine silently masked out-of-range members with ``& 0xFFFF`` while the
batch engine raised, so the same bad job produced different populations
depending on which engine the scheduler happened to route it through.
"""

from __future__ import annotations

import numpy as np


def validate_initial_population(
    initial, expected_shape: tuple[int, ...]
) -> np.ndarray:
    """Check an initial population and return it as a fresh int64 array.

    ``expected_shape`` is ``(population_size,)`` for the serial engine and
    ``(n_replicas, population_size)`` for the batched one.  Raises
    ``ValueError`` naming the defect (dtype, shape, or member range) —
    never silently coerces.
    """
    arr = np.asarray(initial)
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(
            "initial populations must be an integer array of 16-bit "
            f"chromosomes, got dtype {arr.dtype}"
        )
    if arr.shape != expected_shape:
        raise ValueError(
            f"initial populations have shape {arr.shape}, "
            f"expected {expected_shape}"
        )
    if arr.size and (int(arr.min()) < 0 or int(arr.max()) > 0xFFFF):
        raise ValueError(
            "initial population members must be 16-bit values in "
            f"[0, 65535]; got range [{int(arr.min())}, {int(arr.max())}]"
        )
    return arr.astype(np.int64, copy=True)
