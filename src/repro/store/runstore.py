"""The persistent content-addressed run store.

One directory holds every finished run the process (or fleet sharing the
directory) has ever computed, keyed by the canonical job hash of
:func:`repro.store.keys.job_key` — the software twin of the paper's
lookup-table FEM (Sec. IV-C), lifted from fitness values to whole GA
runs.  Layout::

    <root>/
      objects/<key>.json   # one finished run per file, atomic
      spill/               # in-progress slab checkpoints (CheckpointStore)

Entries are written atomically (temp file + ``os.replace``) so a crash
mid-write can never leave a half entry that a later lookup would trust,
and each carries provenance: the store schema version, the repo version,
the engine mode, and the wall-clock cost of the cold computation — enough
for ``repro replay`` to re-execute and re-verify any entry years later.

The ``spill/`` subdirectory is the serving layer's
:class:`~repro.service.checkpoint.CheckpointStore` root: in-progress long
jobs checkpoint into the store (through the
``encode_checkpoint``/``decode_checkpoint`` codec of
:mod:`repro.resilience.harden`) and resume from it, so one ``--store-dir``
configures both the result cache and crash recovery.  ``gc()`` reclaims
what both halves leave behind: interrupted temp files, corrupt or
mis-keyed entries, and spill files orphaned by dead processes.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from pathlib import Path

from typing import TYPE_CHECKING

from repro.obs.metrics import get_registry
from repro.store.keys import KEY_SCHEMA_VERSION, job_key

if TYPE_CHECKING:  # service imports stay lazy at runtime so that
    # ``repro.store`` is importable while ``repro.service`` is still
    # mid-initialization (the scheduler imports store.keys during init)
    from repro.service.checkpoint import CheckpointStore
    from repro.service.jobs import GARequest, JobResult

log = logging.getLogger("repro.store")

#: On-disk format version of one store entry.  Independent of the key
#: schema version (which addresses entries); both ride the provenance.
STORE_SCHEMA_VERSION = 1


@dataclass
class StoreEntry:
    """One finished run: its request, result, and provenance."""

    key: str
    request: "GARequest"
    result: "JobResult"
    provenance: dict
    path: Path


class RunStore:
    """A directory of content-addressed finished runs."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.objects.mkdir(parents=True, exist_ok=True)
        reg = get_registry()
        self._puts = reg.counter("store.puts")
        self._gets = reg.counter("store.gets")
        self._hits = reg.counter("store.hits")

    def checkpoint_store(self) -> "CheckpointStore":
        """The spill store for in-progress slabs, under this store's root
        (one ``--store-dir`` configures caching and crash recovery)."""
        from repro.service.checkpoint import CheckpointStore

        return CheckpointStore(self.root / "spill")

    # -- addressing -----------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.objects / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> list[str]:
        """Every entry key currently in the store, sorted."""
        return sorted(p.stem for p in self.objects.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())

    # -- read / write ---------------------------------------------------
    def put(self, request: "GARequest", result: "JobResult", **provenance) -> str:
        """Persist one finished run under its canonical key (atomic).

        Returns the key.  Extra keyword arguments join the provenance
        block (e.g. ``compute_s=...`` from the serving layer).
        """
        key = job_key(request)
        import repro

        payload = {
            "store_version": STORE_SCHEMA_VERSION,
            "key": key,
            "request": request.to_dict(),
            "result": result.to_dict(),
            "provenance": {
                "key_schema": KEY_SCHEMA_VERSION,
                "repro_version": repro.__version__,
                "engine_mode": request.engine_mode,
                "fitness_name": request.fitness_name,
                "created_unix": time.time(),
                **provenance,
            },
        }
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
        self._puts.inc()
        return key

    def get(self, key: str) -> StoreEntry | None:
        """Load one entry; ``None`` on miss or an unreadable file."""
        self._gets.inc()
        path = self.path_for(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            entry = self._parse(key, path, payload)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            log.warning("unreadable store entry %s: %s", path, exc)
            return None
        self._hits.inc()
        return entry

    def get_result(self, key: str) -> "JobResult | None":
        entry = self.get(key)
        return None if entry is None else entry.result

    def entries(self) -> list[StoreEntry]:
        """Every readable entry (unreadable ones are skipped, warned)."""
        loaded = []
        for key in self.keys():
            entry = self.get(key)
            if entry is not None:
                loaded.append(entry)
        return loaded

    def delete(self, key: str) -> bool:
        try:
            self.path_for(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def _parse(self, key: str, path: Path, payload: dict) -> StoreEntry:
        from repro.service.jobs import GARequest, JobResult

        version = payload.get("store_version")
        if version != STORE_SCHEMA_VERSION:
            raise ValueError(f"unsupported store_version {version!r}")
        return StoreEntry(
            key=key,
            request=GARequest.from_dict(payload["request"]),
            result=JobResult.from_dict(payload["result"]),
            provenance=dict(payload.get("provenance", {})),
            path=path,
        )

    # -- maintenance (``repro store verify|gc``) ------------------------
    def verify(self) -> list[dict]:
        """Integrity-check every entry file.

        Each report row is ``{"key", "ok", "reason"}``.  An entry is bad
        when it cannot be parsed, when its stored request no longer hashes
        to its file name (bit rot, or a key-schema change), or when its
        recorded key disagrees with the file name.  ``repro replay``
        performs the stronger check — re-executing and comparing bits.
        """
        rows = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                with open(path) as handle:
                    payload = json.load(handle)
                entry = self._parse(key, path, payload)
            except (OSError, ValueError, KeyError, TypeError) as exc:
                rows.append({"key": key, "ok": False, "reason": str(exc)})
                continue
            if payload.get("key") != key:
                rows.append(
                    {
                        "key": key,
                        "ok": False,
                        "reason": f"recorded key {payload.get('key')!r} "
                        "disagrees with file name",
                    }
                )
            elif job_key(entry.request) != key:
                rows.append(
                    {
                        "key": key,
                        "ok": False,
                        "reason": "stored request no longer hashes to this key",
                    }
                )
            else:
                rows.append({"key": key, "ok": True, "reason": ""})
        return rows

    def gc(self, all_spills: bool = False) -> dict:
        """Reclaim debris: temp files, corrupt/mis-keyed entries, and
        spill checkpoints orphaned by dead processes.

        A spill file is orphaned when the pid embedded in its name
        (``slab-<pid>-<id>.json``) is no longer alive; ``all_spills=True``
        reclaims every spill regardless (after a fleet-wide stop).
        Returns removal counts.
        """
        removed = {"tmp": 0, "corrupt": 0, "spills": 0}
        for tmp in self.objects.glob("*.tmp"):
            tmp.unlink(missing_ok=True)
            removed["tmp"] += 1
        for row in self.verify():
            if not row["ok"]:
                if self.delete(row["key"]):
                    removed["corrupt"] += 1
                    log.warning(
                        "gc removed bad entry %s: %s", row["key"], row["reason"]
                    )
        spill_root = self.root / "spill"
        if spill_root.is_dir():
            for tmp in spill_root.glob("*.tmp"):
                tmp.unlink(missing_ok=True)
                removed["tmp"] += 1
            for path in spill_root.glob("slab-*.json"):
                if all_spills or self._spill_orphaned(path):
                    path.unlink(missing_ok=True)
                    removed["spills"] += 1
        return removed

    @staticmethod
    def _spill_orphaned(path: Path) -> bool:
        """True when the spill's writer process is certainly gone."""
        parts = path.stem.split("-")
        if len(parts) < 3:
            return True  # not a name CheckpointStore writes
        try:
            pid = int(parts[1])
        except ValueError:
            return True
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
            return False  # alive (or at least present)
        except ProcessLookupError:
            return True
        except PermissionError:
            return False  # alive, owned by someone else
        except OSError:
            return False
