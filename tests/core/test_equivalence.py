"""The flagship property: the cycle-accurate GA core and the vectorised
behavioural model produce bit-identical runs.

This is the reproduction's analogue of the paper's RT-level-vs-behavioral
verification ("The RT-level VHDL model was simulated thoroughly to test the
correctness of the synthesized netlist", Sec. III-A): two independent
implementations of the same specification, checked for exact agreement on
populations, statistics, and results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GAParameters, GASystem
from repro.core.behavioral import BehavioralGA
from repro.fitness import BF6, F2, F3, MShubert2D


def run_both(params, fn):
    hw = GASystem(params, fn).run()
    sw = BehavioralGA(params, fn).run()
    return hw, sw


class TestExactEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(1, 0xFFFF),
        pop=st.integers(4, 16),
        gens=st.integers(1, 5),
        xt=st.integers(0, 15),
        mt=st.integers(0, 15),
    )
    def test_random_configurations(self, seed, pop, gens, xt, mt):
        params = GAParameters(gens, pop, xt, mt, seed)
        hw, sw = run_both(params, F3())
        assert hw.best_individual == sw.best_individual
        assert hw.best_fitness == sw.best_fitness
        assert hw.evaluations == sw.evaluations
        assert [g.as_tuple() for g in hw.history] == [
            g.as_tuple() for g in sw.history
        ]

    @pytest.mark.parametrize("fn_cls", [BF6, F2, F3, MShubert2D])
    def test_every_member_identical_across_functions(self, fn_cls):
        params = GAParameters(
            n_generations=3,
            population_size=10,
            crossover_threshold=10,
            mutation_threshold=4,
            rng_seed=10593,
        )
        hw, sw = run_both(params, fn_cls())
        for h, s in zip(hw.history, sw.history):
            assert h.fitnesses == s.fitnesses

    def test_paper_rt_configuration(self):
        # Run #1 of Table V: seed 45890, pop 32, crossover threshold 10.
        params = GAParameters(
            n_generations=8,  # truncated for test runtime
            population_size=32,
            crossover_threshold=10,
            mutation_threshold=1,
            rng_seed=45890,
        )
        hw, sw = run_both(params, BF6())
        assert [g.as_tuple() for g in hw.history] == [
            g.as_tuple() for g in sw.history
        ]

    def test_zero_crossover_zero_mutation(self):
        # Degenerate thresholds: offspring are pure parent copies.
        params = GAParameters(2, 6, 0, 0, 1567)
        hw, sw = run_both(params, F2())
        assert [g.as_tuple() for g in hw.history] == [
            g.as_tuple() for g in sw.history
        ]

    def test_always_crossover_always_mutate(self):
        params = GAParameters(2, 6, 15, 15, 1567)
        hw, sw = run_both(params, F2())
        assert [g.as_tuple() for g in hw.history] == [
            g.as_tuple() for g in sw.history
        ]

    def test_odd_population_size(self):
        # Odd sizes drop the second offspring of the final pair.
        params = GAParameters(3, 7, 10, 2, 45890)
        hw, sw = run_both(params, F3())
        assert [g.as_tuple() for g in hw.history] == [
            g.as_tuple() for g in sw.history
        ]
