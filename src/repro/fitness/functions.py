"""The six test functions of the paper's evaluation (Sec. IV).

RT-level simulation functions (Table V, Figs. 7-12):

* :class:`BF6`   — modified Binary F6, the hard multimodal benchmark;
* :class:`F2`    — mini-max linear function;
* :class:`F3`    — maxi-max linear function.

FPGA hardware-experiment functions (Tables VII-IX, Figs. 13-16):

* :class:`MBF6_2`    — scaled Binary F6 (global optimum 8183 at x=65521);
* :class:`MBF7_2`    — modified Binary F7 (optimum at x=247, y=249);
* :class:`MShubert2D` — 2-D Shubert-derived function with multiple optima.

All functions return exact integers (floor of the real-valued expression),
pinned to the paper's claimed optima by unit tests where the printed formula
is self-consistent.  See the class docstrings for the two documented
deviations (``MBF7_2`` value, ``MShubert2D`` reconstruction).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.fitness.base import FitnessFunction


class BF6(FitnessFunction):
    """Test function #1 (Sec. IV-A): ``BF6(x) = (x^2+x)*cos(x)/4e6 + 3200``.

    x is the full 16-bit chromosome interpreted in radians.  Global maximum:
    fitness 4271 (the paper reports the optimum at x = 65522; the exact
    argmax of the printed formula is x = 65521 with the same fitness 4271 —
    an off-by-one in the paper's text).
    """

    name = "BF6"
    n_vars = 1

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        x = chromosomes.astype(np.float64)
        value = (x * x + x) * np.cos(x) / 4_000_000.0 + 3200.0
        return np.floor(value).astype(np.int64)


class F2(FitnessFunction):
    """Test function #2: ``F2(x, y) = 8x - 4y + 1020`` (mini-max).

    Maximized by x = 255, y = 0 with fitness 3060; minimum value is 0, so
    the output is always a legal unsigned fitness.
    """

    name = "F2"
    n_vars = 2

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        c = chromosomes.astype(np.int64)
        x, y = (c >> 8) & 0xFF, c & 0xFF
        return 8 * x - 4 * y + 1020


class F3(FitnessFunction):
    """Test function #3: ``F3(x, y) = 8x + 4y`` (maxi-max).

    Maximized by x = y = 255 with fitness 3060.
    """

    name = "F3"
    n_vars = 2

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        c = chromosomes.astype(np.int64)
        x, y = (c >> 8) & 0xFF, c & 0xFF
        return 8 * x + 4 * y


class MBF6_2(FitnessFunction):
    """Modified & scaled Binary F6: ``4096 + (x^2+x)*cos(x)/2^20``.

    Matches the paper exactly: global optimum fitness 8183 at x = 65521,
    and the paper's best-found solution x = 65345 evaluates to 8135 here
    too (Sec. IV-B).
    """

    name = "mBF6_2"
    n_vars = 1

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        x = chromosomes.astype(np.float64)
        value = 4096.0 + (x * x + x) * np.cos(x) / float(1 << 20)
        return np.floor(value).astype(np.int64)


class MBF7_2(FitnessFunction):
    """Modified Binary F7: ``32768 + 56*(x*sin(4x) + 1.25*y*sin(2y))``.

    The printed formula peaks at (x, y) = (247, 249) — exactly where the
    paper locates its optimum — with value 63994; the paper states 63904,
    a 0.14% discrepancy we attribute to rounding/typo in the paper (the
    optimum *location* is reproduced exactly).
    """

    name = "mBF7_2"
    n_vars = 2

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        c = chromosomes.astype(np.int64)
        x = ((c >> 8) & 0xFF).astype(np.float64)
        y = (c & 0xFF).astype(np.float64)
        value = 32768.0 + 56.0 * (x * np.sin(4.0 * x) + 1.25 * y * np.sin(2.0 * y))
        return np.floor(value).astype(np.int64)


class MShubert2D(FitnessFunction):
    """2-D Shubert-derived maximization function (reconstruction).

    The paper prints ``65535 - 174*(150 + sum_k sum_i i*cos((i+1)*x_k + i))``
    but that expression's maximum is ~43,909, contradicting the paper's own
    Table IX which reports best-fitness values up to 65,535 — all of the
    form ``65535 - 174*k`` for integer k in [0, 100].  We therefore
    reconstruct the quantization: with ``S(x1,x2)`` the double cosine sum
    over integer radians,

    ``fitness = 65535 - 174 * round((S - S_min) / step)``,

    where ``S_min`` is the exact grid minimum of S and ``step`` spans the
    grid range in 100 quantization levels.  This preserves every verifiable
    property of the paper's function: global maximum exactly 65,535,
    minimum exactly 48,135 (= 65535 - 174*100, the lowest Table IX value),
    fitness values quantized in steps of 174, and multiple distinct global
    optima (the paper reports 48 in the continuous domain; the integer-grid
    reconstruction has 4).
    """

    name = "mShubert2D"
    n_vars = 2

    #: Number of quantization levels spanning the S range.
    LEVELS = 100

    def __init__(self) -> None:
        i = np.arange(1, 6, dtype=np.float64)
        grid = np.arange(256, dtype=np.float64)
        # g[b] = sum_i i*cos((i+1)*b + i) for each byte value b
        self._g = (i[None, :] * np.cos((i[None, :] + 1) * grid[:, None] + i[None, :])).sum(axis=1)
        s_min = 2.0 * self._g.min()
        s_max = 2.0 * self._g.max()
        self._s_min = s_min
        self._step = (s_max - s_min) / self.LEVELS

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        c = chromosomes.astype(np.int64)
        x1, x2 = (c >> 8) & 0xFF, c & 0xFF
        s = self._g[x1] + self._g[x2]
        k = np.floor((s - self._s_min) / self._step + 0.5).astype(np.int64)
        return 65535 - 174 * k


#: All registered fitness functions by name: the six paper test functions
#: plus extension workloads (e.g. the sequential-logic targets) added via
#: :func:`register`.
REGISTRY: dict[str, type[FitnessFunction]] = {
    cls.name: cls for cls in (BF6, F2, F3, MBF6_2, MBF7_2, MShubert2D)
}


def register(cls: type[FitnessFunction]) -> type[FitnessFunction]:
    """Add a no-arg-constructible fitness class to the shared registry.

    Registered names become valid ``GARequest.fitness_name`` values and
    participate in the shared-instance memoization of :func:`by_name`.
    """
    if not cls.name or cls.name == FitnessFunction.name:
        raise ValueError(f"{cls.__name__} needs a distinct .name to register")
    existing = REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise ValueError(f"fitness name {cls.name!r} already registered")
    REGISTRY[cls.name] = cls
    return cls


#: process-wide shared instances — registry functions are pure, so one
#: instance (and therefore one 65,536-entry LUT build, see
#: :meth:`FitnessFunction.table`) serves every caller in the process
_SHARED: dict[str, FitnessFunction] = {}
_SHARED_LOCK = threading.Lock()


def by_name(name: str) -> FitnessFunction:
    """The shared paper test function for a name (e.g. ``"mBF6_2"``).

    Registry functions are stateless, so instances are memoized: every
    engine, worker thread, and bench in the process shares one object and
    its cached lookup table — the software analogue of the paper's one
    block-ROM FEM image serving all replicas.  (Mutable fitness classes
    outside the registry, e.g. ``ehw.fabric.FabricFitness``, are not
    routed through here and keep per-instance tables.)
    """
    try:
        with _SHARED_LOCK:
            fn = _SHARED.get(name)
            if fn is None:
                fn = _SHARED[name] = REGISTRY[name]()
            return fn
    except KeyError:
        raise KeyError(
            f"unknown fitness function {name!r}; available: {sorted(REGISTRY)}"
        ) from None


def fresh_instance(name: str) -> FitnessFunction:
    """A private (non-shared) instance, for callers that mutate state."""
    try:
        return REGISTRY[name]()
    except KeyError:
        raise KeyError(
            f"unknown fitness function {name!r}; available: {sorted(REGISTRY)}"
        ) from None


# Extension workloads self-register on import; importing here (after the
# registry machinery exists) keeps `REGISTRY`/`by_name` the single lookup
# surface for the service layer without a circular import.
from repro.fitness import sequential as _sequential  # noqa: E402

for _cls in (
    _sequential.SeqCounter4,
    _sequential.SeqDetect101,
    _sequential.MOSeqBlend,
):
    register(_cls)
del _sequential, _cls
