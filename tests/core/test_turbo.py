"""Differential conformance suite for the turbo engine mode.

Turbo trades bit-identity for throughput under a documented equivalence
contract (``docs/architecture.md``): every operator keeps its
distribution, only the RNG word allocation changes.  This suite pins the
contract down from four sides:

* determinism — turbo is a pure function of ``(params, seed)``:
  composition-independent (solo == batch row) and chunking-invariant
  (``step()`` resumption is invisible);
* anchoring — generation 0 is byte-identical to exact mode (same initial
  draw, same evaluation, same elite);
* statistics — on the Tables VII-IX functions, turbo's success rate /
  mean best / convergence match exact mode within seeded bounds;
* observability — turbo traces parse with the same ``obs.analyze``
  helpers as every other engine's.
"""

import numpy as np
import pytest

from repro.analysis.convergence import convergence_generation
from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.obs.analyze import best_series, phase_breakdown, sum_series
from repro.obs.tracer import Tracer
from repro.rng.cellular_automaton import CellularAutomatonPRNG


def _params(seed, pop=32, gens=24, xt=12, mt=1):
    return GAParameters(
        n_generations=gens, population_size=pop,
        crossover_threshold=xt, mutation_threshold=mt, rng_seed=seed,
    )


FN = by_name("mBF6_2")


# -- determinism ------------------------------------------------------


def test_turbo_solo_equals_batch_row():
    """Word consumption is per-stream: a replica's result cannot depend
    on its slab-mates."""
    plist = [_params(seed) for seed in (0x061F, 0x2961, 0x7B41, 0x1D05)]
    batch = BatchBehavioralGA(plist, FN, mode="turbo")
    batched = batch.run()
    for i, params in enumerate(plist):
        solo_engine = BatchBehavioralGA([params], FN, mode="turbo")
        (solo,) = solo_engine.run()
        assert solo.best_individual == batched[i].best_individual
        assert solo.best_fitness == batched[i].best_fitness
        assert [g.best_fitness for g in solo.history] == [
            g.best_fitness for g in batched[i].history
        ]
        np.testing.assert_array_equal(
            solo_engine.final_populations[0], batch.final_populations[i]
        )
        assert int(solo_engine.rng_states[0]) == int(batch.rng_states[i])


def test_turbo_chunked_stepping_matches_one_shot():
    plist = [_params(seed, gens=25) for seed in (0x1234, 0x4321, 0x0BAD)]
    whole = BatchBehavioralGA(plist, FN, mode="turbo")
    results = whole.run()

    chunked = BatchBehavioralGA(plist, FN, mode="turbo")
    chunked.begin()
    while chunked.step(7):
        pass
    stepped = chunked.finalize()

    for a, b in zip(results, stepped):
        assert a.best_individual == b.best_individual
        assert a.best_fitness == b.best_fitness
        assert a.evaluations == b.evaluations
        assert [g.best_fitness for g in a.history] == [
            g.best_fitness for g in b.history
        ]
    np.testing.assert_array_equal(
        whole.final_populations, chunked.final_populations
    )
    np.testing.assert_array_equal(whole.rng_states, chunked.rng_states)


def test_turbo_rerun_is_bit_identical():
    plist = [_params(0x5A5A), _params(0x0F0F)]
    a = BatchBehavioralGA(plist, FN, mode="turbo")
    b = BatchBehavioralGA(plist, FN, mode="turbo")
    ra, rb = a.run(), b.run()
    for x, y in zip(ra, rb):
        assert x.best_individual == y.best_individual
        assert [g.fitness_sum for g in x.history] == [
            g.fitness_sum for g in y.history
        ]
    np.testing.assert_array_equal(a.final_populations, b.final_populations)


# -- anchoring to exact mode ------------------------------------------


def test_turbo_generation_zero_identical_to_exact():
    """Both modes draw the initial population the same way, so their
    generation-0 records must agree byte for byte."""
    plist = [_params(seed) for seed in (0x061F, 0x2961, 0x2468)]
    exact = BatchBehavioralGA(plist, FN, mode="exact").run()
    turbo = BatchBehavioralGA(plist, FN, mode="turbo").run()
    for e, t in zip(exact, turbo):
        ge, gt = e.history[0], t.history[0]
        assert (ge.best_fitness, ge.best_individual, ge.fitness_sum) == (
            gt.best_fitness, gt.best_individual, gt.fitness_sum
        )


def test_turbo_word_budget_per_generation():
    """Turbo consumes ``3 * n_slots + 1`` words per replica per
    generation plus one word per mutation event — never a function of
    slab composition."""
    params = _params(0x061F, pop=32, gens=10, mt=0)  # mt=0: no events
    engine = BatchBehavioralGA([params], FN, mode="turbo")
    engine.run()
    n_slots = (params.population_size - 1 + 1) // 2
    expected = params.population_size + 10 * (3 * n_slots + 1)
    assert int(engine.bank.draws[0]) == expected


# -- serial facade ----------------------------------------------------


def test_serial_turbo_matches_one_replica_batch():
    params = _params(0x1D05, gens=20)
    serial = BehavioralGA(params, FN, mode="turbo")
    result = serial.run()
    batch = BatchBehavioralGA([params], FN, mode="turbo")
    (expected,) = batch.run()
    assert result.best_individual == expected.best_individual
    assert result.best_fitness == expected.best_fitness
    assert result.evaluations == expected.evaluations
    np.testing.assert_array_equal(
        serial.final_population, batch.final_populations[0]
    )
    # the facade keeps the caller's stream live for carried-state reuse
    assert serial.rng.state == int(batch.rng_states[0])
    assert serial.rng.draws == int(batch.bank.draws[0])


def test_serial_turbo_carries_stream_state_across_runs():
    params = _params(0x7EED, gens=12)
    rng = CellularAutomatonPRNG(params.rng_seed)
    ga = BehavioralGA(params, FN, rng=rng, mode="turbo")
    first = ga.run()
    second = ga.run(initial=ga.final_population)
    # the stream advanced, so the continuation explores new populations
    assert second.evaluations == first.evaluations - params.population_size
    assert rng.draws > 0


# -- statistical conformance (Tables VII-IX functions) ----------------

_CONF_SEEDS = [
    0x061F, 0x2961, 0x7B41, 0x1D05, 0x5A5A, 0x0F0F,
    0x1234, 0x4321, 0x2468, 0x1357, 0x0BAD, 0x7EED,
    0x1111, 0x2222, 0x3333, 0x4444, 0x5555, 0x6666,
    0x0A0A, 0x0B0B, 0x0C0C, 0x0D0D, 0x0E0E, 0x0FED,
]


@pytest.mark.parametrize("fname", ["mBF6_2", "mBF7_2", "mShubert2D"])
def test_turbo_statistics_conform_to_exact(fname):
    """Seeded 24-replica sweep per table function: the two modes must
    agree on mean best fitness (<= 6% relative), 98%-of-optimum success
    count (<= 6 of 24 apart) and mean convergence generation (<= 16
    generations apart).  Measured gaps are about half these bounds; the
    runs are fully seeded so the comparison is reproducible.
    """
    fn = by_name(fname)
    optimum = int(fn.table().max())
    stats = {}
    for mode in ("exact", "turbo"):
        plist = [_params(s, gens=64) for s in _CONF_SEEDS]
        results = BatchBehavioralGA(plist, fn, mode=mode).run()
        bests = [r.best_fitness for r in results]
        stats[mode] = (
            float(np.mean(bests)),
            sum(b >= 0.98 * optimum for b in bests),
            float(np.mean([convergence_generation(r.history) for r in results])),
        )
    exact, turbo = stats["exact"], stats["turbo"]
    assert abs(turbo[0] - exact[0]) / exact[0] <= 0.06
    assert abs(turbo[1] - exact[1]) <= 6
    assert abs(turbo[2] - exact[2]) <= 16


# -- observability ----------------------------------------------------


def test_turbo_trace_parses_with_analyze_helpers():
    plist = [_params(0x061F, gens=16), _params(0x2961, gens=16)]
    tracer = Tracer()
    engine = BatchBehavioralGA(plist, FN, tracer=tracer, mode="turbo")
    results = engine.run()
    records = tracer.records
    for replica, result in enumerate(results):
        assert best_series(records, replica=replica) == [
            g.best_fitness for g in result.history
        ]
        assert sum_series(records, replica=replica) == [
            g.fitness_sum for g in result.history
        ]
    phases = phase_breakdown(records)
    # the fused kernel reports under "selection"; the peer keys stay
    # present (zero-valued) so downstream consumers see a stable schema
    for key in ("selection", "crossover", "mutation", "eval", "elitism"):
        assert key in phases
    assert phases["selection"] > 0.0


def test_turbo_tracing_does_not_perturb_results():
    plist = [_params(0x4321, gens=16)]
    silent = BatchBehavioralGA(plist, FN, mode="turbo")
    traced = BatchBehavioralGA(plist, FN, tracer=Tracer(), mode="turbo")
    (a,), (b,) = silent.run(), traced.run()
    assert a.best_individual == b.best_individual
    assert [g.fitness_sum for g in a.history] == [
        g.fitness_sum for g in b.history
    ]


# -- mode validation --------------------------------------------------


def test_unknown_mode_rejected():
    with pytest.raises(ValueError, match="exact.*turbo|turbo.*exact"):
        BatchBehavioralGA([_params(1)], FN, mode="fast")
    with pytest.raises(ValueError, match="exact.*turbo|turbo.*exact"):
        BehavioralGA(_params(1), FN, mode="fast")


def test_turbo_rejects_resilience_harness():
    class FakeHarness:
        pass

    with pytest.raises(ValueError, match="resilience"):
        BatchBehavioralGA(
            [_params(1)], FN, mode="turbo", resilience=FakeHarness()
        )


def test_turbo_requires_default_ca_stream():
    rng = CellularAutomatonPRNG(0x061F, spacing=3)
    ga = BehavioralGA(_params(0x061F), FN, rng=rng, mode="turbo")
    with pytest.raises(ValueError, match="spacing"):
        ga.run()
