"""Fitness function interface shared by all FEM styles.

Chromosomes are 16-bit unsigned words (the synthesized core supports
"chromosome encodings of length up to 16-bits", Sec. III-D).  Fitness values
are 16-bit unsigned words, matching the ``fit_value`` port width.

Two-variable functions follow the paper's convention of "equal ranges
(0 to 255)" per variable: ``x`` occupies the high byte, ``y`` the low byte.
"""

from __future__ import annotations

import numpy as np

#: process-wide count of full 65,536-entry LUT builds, by fitness name —
#: the memoization regression guard (``tests/fitness/test_memo.py``
#: asserts shared instances build each registry table exactly once)
TABLE_BUILDS: dict[str, int] = {}


def decode_two_vars(chromosome: int | np.ndarray) -> tuple:
    """Split a 16-bit chromosome into ``(x, y)`` with x = bits[15:8]."""
    return (chromosome >> 8) & 0xFF, chromosome & 0xFF


def encode_two_vars(x: int, y: int) -> int:
    """Inverse of :func:`decode_two_vars`."""
    if not (0 <= x <= 255 and 0 <= y <= 255):
        raise ValueError(f"variables must be bytes, got ({x}, {y})")
    return (x << 8) | y


class FitnessFunction:
    """A maximization objective over 16-bit chromosomes.

    Subclasses implement :meth:`evaluate_array` (vectorised over a numpy
    array of chromosome words); everything else — scalar calls, the full
    65,536-entry lookup table, the optimum — derives from it.
    """

    #: Human-readable identifier (used by the experiment harness).
    name: str = "fitness"
    #: Number of decision variables encoded in the chromosome (1 or 2).
    n_vars: int = 1

    _table: np.ndarray | None = None

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        """Vectorised fitness of an array of 16-bit chromosome words."""
        raise NotImplementedError

    def __call__(self, chromosome: int) -> int:
        """Scalar fitness of one chromosome."""
        value = self.evaluate_array(np.asarray([chromosome], dtype=np.uint32))
        return int(value[0])

    # ------------------------------------------------------------------
    def table(self) -> np.ndarray:
        """Fitness of every chromosome (uint16, length 65,536).

        This is exactly the block-ROM image of the paper's lookup-based FEM;
        cached because several FEMs/benches share it.
        """
        if self._table is None:
            TABLE_BUILDS[self.name] = TABLE_BUILDS.get(self.name, 0) + 1
            chroms = np.arange(65536, dtype=np.uint32)
            values = self.evaluate_array(chroms)
            if values.min() < 0 or values.max() > 0xFFFF:
                raise ValueError(
                    f"{self.name}: fitness range [{values.min()}, {values.max()}] "
                    "does not fit the 16-bit fit_value port"
                )
            self._table = values.astype(np.uint16)
        return self._table

    def optimum(self) -> tuple[int, int]:
        """(chromosome, fitness) of the global maximum (first argmax)."""
        table = self.table()
        best = int(table.argmax())
        return best, int(table[best])

    def optima(self) -> list[int]:
        """All chromosomes achieving the global maximum."""
        table = self.table()
        return np.flatnonzero(table == table.max()).tolist()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
