"""Request/result types: validation, wire round trips, handle semantics."""

import pytest

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.service.jobs import GARequest, JobHandle, JobResult, RetryPolicy


def params(**overrides) -> GAParameters:
    base = dict(
        n_generations=8,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestGARequest:
    def test_unknown_fitness_slot_rejected(self):
        with pytest.raises(ValueError, match="unknown fitness slot"):
            GARequest(params=params(), fitness_name="nope")

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            GARequest(params=params(), deadline_s=0)

    def test_unknown_protection_rejected(self):
        with pytest.raises(ValueError, match="protection preset"):
            GARequest(params=params(), protection="tinfoil")

    def test_negative_upset_rate_rejected(self):
        with pytest.raises(ValueError, match="upset_rate"):
            GARequest(params=params(), upset_rate=-1e-4)

    def test_wire_round_trip(self):
        request = GARequest(
            params=params(rng_seed=0x2961),
            fitness_name="mShubert2D",
            priority=-2,
            deadline_s=1.5,
            record_trace=False,
            protection="hardened",
            upset_rate=5e-4,
            campaign_seed=7,
            retry=RetryPolicy(max_attempts=5, backoff_s=0.01, jitter=0.5),
            deadline_mode="enforce",
        )
        assert GARequest.from_dict(request.to_dict()) == request

    def test_deadline_mode_validation(self):
        with pytest.raises(ValueError, match="deadline_mode"):
            GARequest(params=params(), deadline_mode="hope")
        with pytest.raises(ValueError, match="requires deadline_s"):
            GARequest(params=params(), deadline_mode="enforce")
        GARequest(params=params(), deadline_mode="enforce", deadline_s=1.0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="max_backoff_s"):
            RetryPolicy(backoff_s=1.0, max_backoff_s=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_backoff_is_exponential_capped_and_deterministic(self):
        policy = RetryPolicy(
            backoff_s=0.1, multiplier=2.0, max_backoff_s=0.3, jitter=0.0
        )
        delays = [policy.delay_s(a, seed=45890) for a in (1, 2, 3, 4)]
        assert delays == [
            pytest.approx(0.1), pytest.approx(0.2),
            pytest.approx(0.3), pytest.approx(0.3),  # capped
        ]

    def test_jitter_is_seed_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.1, jitter=0.25)
        assert policy.delay_s(1, seed=7) == policy.delay_s(1, seed=7)
        assert policy.delay_s(1, seed=7) != policy.delay_s(1, seed=8)
        for seed in range(20):
            delay = policy.delay_s(1, seed=seed)
            assert 0.1 <= delay <= 0.1 * 1.25

    def test_wire_round_trip(self):
        policy = RetryPolicy(
            max_attempts=7, backoff_s=0.2, multiplier=3.0,
            max_backoff_s=5.0, jitter=0.1,
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy


class TestJobResult:
    def test_wire_round_trip_rebuilds_history(self):
        result = JobResult(
            job_id=3,
            best_individual=65521,
            best_fitness=8183,
            evaluations=136,
            fitness_name="mBF6_2",
            params=params(),
            history=[
                GenerationStats(
                    generation=g, best_fitness=100 + g, best_individual=g,
                    fitness_sum=1000 + g, population_size=16,
                )
                for g in range(3)
            ],
            latency_s=0.25,
            wait_s=0.01,
            n_chunks=2,
            deadline_missed=True,
        )
        back = JobResult.from_dict(result.to_dict())
        assert back == result
        assert back.best_series() == [100, 101, 102]

    def test_cache_provenance_round_trips(self):
        result = JobResult(
            job_id=9, best_individual=1, best_fitness=2, evaluations=3,
            fitness_name="mBF6_2", params=params(),
            cache_hit=True, store_key="ab" * 32,
        )
        back = JobResult.from_dict(result.to_dict())
        assert back.cache_hit is True
        assert back.store_key == "ab" * 32
        assert back == result

    def test_pre_cache_wire_payload_defaults_cold(self):
        # frames from servers predating the run store carry no cache
        # provenance; they must still parse, defaulting to a cold result
        result = JobResult(
            job_id=9, best_individual=1, best_fitness=2, evaluations=3,
            fitness_name="mBF6_2", params=params(),
        )
        legacy = result.to_dict()
        del legacy["cache_hit"]
        del legacy["store_key"]
        back = JobResult.from_dict(legacy)
        assert back.cache_hit is False
        assert back.store_key is None

    def test_use_cache_is_wire_compatible(self):
        request = GARequest(params=params(), use_cache=False)
        assert GARequest.from_dict(request.to_dict()).use_cache is False
        # pre-cache request frames default to cache-enabled
        legacy = request.to_dict()
        del legacy["use_cache"]
        assert GARequest.from_dict(legacy).use_cache is True


class TestJobHandle:
    def test_result_times_out_until_fulfilled(self):
        handle = JobHandle(0, GARequest(params=params()), 0.0)
        assert not handle.done()
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)
        handle._fail(RuntimeError("boom"))
        assert handle.done()
        with pytest.raises(RuntimeError, match="boom"):
            handle.result(timeout=0.01)

    def test_cancel_without_scheduler_is_a_noop(self):
        handle = JobHandle(0, GARequest(params=params()), 0.0)
        assert handle.cancel() is False  # never registered

    def test_cancel_routes_through_the_canceller_until_done(self):
        handle = JobHandle(3, GARequest(params=params()), 0.0)
        seen = []
        handle._canceller = lambda job_id: seen.append(job_id) or True
        assert handle.cancel() is True
        assert seen == [3]
        handle._fail(RuntimeError("done"))
        assert handle.cancel() is False  # completed handles cannot cancel

    def test_settlement_is_idempotent_first_wins(self):
        handle = JobHandle(0, GARequest(params=params()), 0.0)
        handle._fail(RuntimeError("first"))
        handle._fail(RuntimeError("second"))
        with pytest.raises(RuntimeError, match="first"):
            handle.result(timeout=0.01)
