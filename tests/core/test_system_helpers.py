"""Tests for GAResult helpers and the system-level conveniences."""

import pytest

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.core.system import (
    FAST_CLOCK_HZ,
    GA_CLOCK_HZ,
    GAResult,
    GASystem,
    run_behavioral,
)
from repro.fitness import F3


def make_result(cycles=None):
    history = [
        GenerationStats(0, 10, 1, 40, 4),
        GenerationStats(1, 20, 2, 60, 4),
    ]
    return GAResult(
        best_individual=2,
        best_fitness=20,
        history=history,
        evaluations=7,
        params=GAParameters(1, 4, 10, 1, 1),
        fitness_name="F3",
        cycles=cycles,
    )


class TestGAResult:
    def test_series_helpers(self):
        result = make_result()
        assert result.best_series() == [10, 20]
        assert result.average_series() == [10.0, 15.0]

    def test_runtime_none_without_cycles(self):
        assert make_result(cycles=None).runtime_seconds is None

    def test_runtime_at_ga_clock(self):
        result = make_result(cycles=50_000)
        assert result.runtime_seconds == pytest.approx(50_000 / GA_CLOCK_HZ)

    def test_clock_constants_match_paper(self):
        assert GA_CLOCK_HZ == 50_000_000
        assert FAST_CLOCK_HZ == 200_000_000


class TestRunBehavioral:
    def test_matches_direct_engine(self):
        from repro.core.behavioral import BehavioralGA

        params = GAParameters(4, 8, 10, 1, 45890)
        via_helper = run_behavioral(params, F3())
        direct = BehavioralGA(params, F3()).run()
        assert via_helper.best_individual == direct.best_individual

    def test_record_members_toggle(self):
        params = GAParameters(2, 4, 10, 1, 45890)
        lean = run_behavioral(params, F3(), record_members=False)
        assert all(g.fitnesses == [] for g in lean.history)


class TestGASystemConveniences:
    def test_fitness_name_in_result(self):
        params = GAParameters(2, 4, 10, 1, 45890)
        result = GASystem(params, F3()).run()
        assert result.fitness_name == "F3"

    def test_params_echoed_in_result(self):
        params = GAParameters(2, 4, 10, 1, 45890)
        result = GASystem(params, F3()).run()
        assert result.params == params

    def test_initialize_is_idempotent_for_presets(self):
        from repro.core.params import PresetMode

        system = GASystem(None, F3(), preset=PresetMode.SMALL)
        system.initialize()  # no init module: must be a no-op
        assert system.init_module is None
