#!/usr/bin/env python3
"""Evolutionary fault recovery on a virtual reconfigurable fabric.

The space-applications scenario of Sec. II-D / Stoica et al. [27]:
radiation breaks a resource inside the evolved circuit; the on-board GA
core re-evolves the configuration *around* the damage.

1. evolve a 4-input majority voter on the healthy fabric;
2. inject a stuck-at fault into one logic cell — the deployed
   configuration degrades immediately;
3. rerun the same GA core against the damaged fabric (a different seed —
   the programmable-seed feature — to escape the now-poisoned basin);
4. the recovered configuration routes around the dead cell.
"""

from repro import BehavioralGA, GAParameters
from repro.ehw import FabricFitness, VirtualFabric


def rows(fitness_value: int) -> str:
    return f"{fitness_value // 4095}/16 truth-table rows"


def main() -> None:
    fabric = VirtualFabric()
    fitness = FabricFitness("majority", fabric)
    params = GAParameters(
        n_generations=128,
        population_size=64,
        crossover_threshold=10,
        mutation_threshold=4,
        rng_seed=45890,
    )

    print("== phase 1: evolve the majority voter on healthy hardware ==")
    healthy = BehavioralGA(params, fitness).run()
    print(f"evolved config {healthy.best_individual:04X}: "
          f"{rows(healthy.best_fitness)} "
          f"(fabric optimum is 14/16 for this cell library)")

    print("\n== phase 2: radiation strike — cell 0 output stuck high ==")
    fabric.inject_fault(0, 1)
    fitness.invalidate()
    degraded = fitness(healthy.best_individual)
    print(f"deployed config now scores {rows(degraded)}")

    print("\n== phase 3: re-evolve in place (new RNG seed) ==")
    recovered = BehavioralGA(
        params.with_(rng_seed=10593), fitness
    ).run()
    print(f"recovered config {recovered.best_individual:04X}: "
          f"{rows(recovered.best_fitness)} "
          f"(13/16 is the damaged fabric's optimum)")

    regained = recovered.best_fitness - degraded
    print(f"\nrecovery regained {regained // 4095} rows; the GA found a "
          "configuration that avoids the dead cell,")
    print("exactly the adaptive-healing role the IP core plays in the "
          "self-reconfigurable analog array [34,35].")


if __name__ == "__main__":
    main()
