"""Ablation: the mini-HLS flow's area/latency trade-off (Sec. III-A).

Synthesizes one behavioural description under a sweep of functional-unit
budgets and reports the schedule length, FU/register allocation, gate
count, and estimated Fmax — the design-space exploration an HLS user does,
and the quantified version of the paper's "easy addition of new features /
resynthesis in minutes" argument (contrast with the Chen et al. Smart-GA
approach, where every parameter change is a new ASIC).
"""

import pytest

from conftest import print_table
from repro.analysis.resources import estimate_netlist
from repro.hls import DFG, ResourceConstraints, synthesize


def fitness_accumulator_dfg() -> DFG:
    """A GA-core-flavoured behavioural block: scaled fitness threshold.

    threshold = (sum1 + sum2 + bias) with a compare/select stage — the
    proportionate-selection arithmetic of Sec. III-B.2 as a DFG.
    """
    d = DFG("fitness_acc")
    s1, s2 = d.input("sum1"), d.input("sum2")
    r = d.input("rand")
    bias = d.const(16)
    total = d.add(d.add(s1, s2), bias)
    half = d.add(total, total)  # 2*total (overflow-wrapped, fine for demo)
    thr = d.sub(half, r)
    over = d.lt(total, thr)
    d.output("threshold", d.mux(over, thr, total))
    d.output("total", total)
    return d


@pytest.mark.benchmark(group="hls")
def test_hls_area_latency_tradeoff(benchmark):
    def sweep():
        rows = []
        for label, rc in [
            ("unlimited", None),
            ("alu=2", ResourceConstraints(alu=2)),
            ("alu=1", ResourceConstraints(alu=1)),
        ]:
            result = synthesize(fitness_accumulator_dfg(), resources=rc)
            est = estimate_netlist(result.netlist)
            rows.append(
                {
                    "budget": label,
                    "states": result.schedule.length,
                    "latency": result.latency,
                    "alus": result.allocation.units.get("alu", 0),
                    "shared_regs": result.allocation.shared_registers,
                    "gates": result.netlist.stats()["gates"],
                    "LUTs": est.luts,
                    "Fmax(MHz)": round(est.max_frequency_mhz, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("HLS area/latency trade-off (fitness accumulator block)", rows)

    by = {r["budget"]: r for r in rows}
    # fewer ALUs -> longer schedule, smaller datapath
    assert by["alu=1"]["states"] >= by["unlimited"]["states"]
    assert by["alu=1"]["alus"] == 1
    assert by["alu=1"]["gates"] <= by["unlimited"]["gates"]
