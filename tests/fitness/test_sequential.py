"""Tests for the sequential-logic workload class (``repro.fitness.sequential``).

Covers: the genotype encoding round-trip, truth-table-over-time
correctness against a reference simulator, determinism, the 16-bit
``fit_value`` contract, the FEM-mux multi-objective composition, registry
integration, and a cycle-accurate smoke run of a sequential target.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import GAParameters
from repro.core.system import GASystem
from repro.fitness.functions import REGISTRY, by_name
from repro.fitness.sequential import (
    ACCEPT_STATE,
    COUNTER4_TABLE,
    DETECT101_TABLE,
    FEMMuxComposite,
    MATCH_SCORE,
    MOSeqBlend,
    N_CYCLES,
    SeqCounter4,
    SeqDetect101,
    encode_table,
    next_state,
    output_trace,
    stimulus_bits,
)

chromosomes_st = st.integers(0, 0xFFFF)


class TestEncoding:
    def test_encode_table_round_trips_every_entry(self):
        table = {
            (s, e): (3 * s + e + 1) % 4 for s in range(4) for e in (0, 1)
        }
        word = encode_table(table)
        for (state, inp), nxt in table.items():
            assert next_state(word, state, inp) == nxt

    def test_encode_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            encode_table({(4, 0): 0})
        with pytest.raises(ValueError):
            encode_table({(0, 0): 5})

    def test_stimulus_is_fixed_and_full_length(self):
        bits = stimulus_bits()
        assert len(bits) == N_CYCLES
        assert set(bits) <= {0, 1}
        assert stimulus_bits() == bits  # pure

    def test_counter_table_counts_when_enabled(self):
        for s in range(4):
            assert next_state(COUNTER4_TABLE, s, 1) == (s + 1) % 4
            assert next_state(COUNTER4_TABLE, s, 0) == s

    def test_detector_accepts_101(self):
        # drive 1,0,1 from reset: must land in the accept state
        state = 0
        for bit in (1, 0, 1):
            state = next_state(DETECT101_TABLE, state, bit)
        assert state == ACCEPT_STATE
        # overlapping: ...0,1 again re-accepts via S3 -> S2 -> S3
        state = next_state(DETECT101_TABLE, state, 0)
        state = next_state(DETECT101_TABLE, state, 1)
        assert state == ACCEPT_STATE


def _reference_fitness(chromosome: int, target_table: int) -> int:
    """Scalar truth-table-over-time agreement, written the slow clear way."""
    target = output_trace(target_table)
    candidate = output_trace(chromosome)
    return sum(1 for a, b in zip(candidate, target) if a == b) * MATCH_SCORE


class TestSequentialFitness:
    @settings(max_examples=60, deadline=None)
    @given(chromosomes_st)
    def test_matches_reference_simulator(self, chromosome):
        fn = SeqCounter4()
        assert fn(chromosome) == _reference_fitness(chromosome, COUNTER4_TABLE)
        fn2 = SeqDetect101()
        assert fn2(chromosome) == _reference_fitness(chromosome, DETECT101_TABLE)

    def test_targets_score_perfect_on_themselves(self):
        assert SeqCounter4()(COUNTER4_TABLE) == N_CYCLES * MATCH_SCORE
        assert SeqDetect101()(DETECT101_TABLE) == N_CYCLES * MATCH_SCORE

    def test_vectorised_agrees_with_scalar(self):
        fn = SeqDetect101()
        chroms = np.arange(0, 65536, 197, dtype=np.uint32)
        vec = fn.evaluate_array(chroms)
        assert [int(v) for v in vec[:50]] == [fn(int(c)) for c in chroms[:50]]

    def test_determinism_and_16bit_range(self):
        for name in ("seq_counter4", "seq_detect101", "mo_seq_blend"):
            fn = by_name(name)
            table = fn.table()
            assert table.dtype == np.uint16
            again = type(fn)().evaluate_array(np.arange(65536, dtype=np.uint32))
            assert np.array_equal(table, again.astype(np.uint16))

    def test_registered_in_fitness_registry(self):
        for name in ("seq_counter4", "seq_detect101", "mo_seq_blend"):
            assert name in REGISTRY


class TestFEMMuxComposite:
    def test_weighted_blend_formula(self):
        counter, detector = SeqCounter4(), SeqDetect101()
        composite = FEMMuxComposite(
            components=[(detector, 3), (counter, 1)], shift=2
        )
        chroms = np.arange(0, 65536, 911, dtype=np.uint32)
        expected = (
            3 * detector.evaluate_array(chroms).astype(np.int64)
            + counter.evaluate_array(chroms).astype(np.int64)
        ) >> 2
        assert np.array_equal(composite.evaluate_array(chroms), expected)

    def test_constraint_gating_quarters_infeasible(self):
        counter = SeqCounter4()
        floor = counter.perfect_score // 2
        gated = FEMMuxComposite(
            components=[(SeqDetect101(), 3), (counter, 1)],
            shift=2,
            constraint=counter,
            constraint_floor=floor,
        )
        ungated = FEMMuxComposite(
            components=[(SeqDetect101(), 3), (counter, 1)], shift=2
        )
        chroms = np.arange(65536, dtype=np.uint32)
        feasible = counter.evaluate_array(chroms) >= floor
        g, u = gated.evaluate_array(chroms), ungated.evaluate_array(chroms)
        assert np.array_equal(g[feasible], u[feasible])
        assert np.array_equal(g[~feasible], u[~feasible] >> 2)
        assert (~feasible).any() and feasible.any()

    def test_slot_and_weight_validation(self):
        counter = SeqCounter4()
        with pytest.raises(ValueError, match="mux slots"):
            FEMMuxComposite(components=[], shift=0)
        with pytest.raises(ValueError, match="mux slots"):
            FEMMuxComposite(components=[(counter, 1)] * 9, shift=4)
        with pytest.raises(ValueError, match="weights"):
            FEMMuxComposite(components=[(counter, 0)], shift=0)

    def test_mo_seq_blend_is_a_genuine_tradeoff(self):
        blend = MOSeqBlend()
        table = blend.table()
        best = int(table.argmax())
        # no chromosome is perfect on both conflicting targets
        counter, detector = SeqCounter4(), SeqDetect101()
        assert not (
            counter(best) == counter.perfect_score
            and detector(best) == detector.perfect_score
        )
        assert int(table.max()) < (3 * detector.perfect_score + counter.perfect_score) >> 2


class TestCycleAccurateSmoke:
    def test_sequential_target_runs_on_the_fig4_testbench(self):
        params = GAParameters(
            n_generations=6,
            population_size=16,
            crossover_threshold=10,
            mutation_threshold=2,
            rng_seed=0x2961,
        )
        result = GASystem(params, by_name("seq_counter4")).run()
        assert result.cycles and result.cycles > 0
        assert 0 <= result.best_fitness <= N_CYCLES * MATCH_SCORE
        assert len(result.history) == params.n_generations + 1
        # bit-identical to the behavioural engine on the same request
        from repro.core.behavioral import BehavioralGA

        soft = BehavioralGA(params, by_name("seq_counter4")).run()
        assert soft.best_fitness == result.best_fitness
        assert soft.best_individual == result.best_individual
