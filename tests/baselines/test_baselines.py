"""Tests for the Table I baseline engines."""

import pytest

from repro.baselines import (
    BASELINES,
    CROSSOVER_OPERATORS,
    CompactGA,
    ScottHGA,
    ShacklefordGA,
    TangYipGA,
    TommiskaGA,
    YoshidaGA,
)
from repro.fitness import BF6, F3

ENGINES = [ScottHGA, TommiskaGA, ShacklefordGA, YoshidaGA, TangYipGA, CompactGA]


class TestCommonBehaviour:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_runs_within_budget(self, engine_cls):
        result = engine_cls().run(F3(), evaluation_budget=512)
        assert result.evaluations <= 512 + engine_cls.population_size
        assert 0 <= result.best_individual <= 0xFFFF

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_best_matches_fitness(self, engine_cls):
        fn = F3()
        result = engine_cls().run(fn, evaluation_budget=512)
        assert result.best_fitness == fn(result.best_individual)

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_deterministic_fixed_seed(self, engine_cls):
        # Table I: every prior implementation has a *fixed* RNG seed, so
        # runs are exactly repeatable (and cannot be reseeded by the user —
        # the limitation the proposed core removes).
        a = engine_cls().run(F3(), evaluation_budget=512)
        b = engine_cls().run(F3(), evaluation_budget=512)
        assert a.best_individual == b.best_individual
        assert a.best_series == b.best_series

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_series_monotone_best_so_far(self, engine_cls):
        result = engine_cls().run(BF6(), evaluation_budget=1024)
        series = result.best_series
        assert all(b >= a for a, b in zip(series, series[1:]))

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_improves_on_easy_function(self, engine_cls):
        result = engine_cls().run(F3(), evaluation_budget=2048)
        assert result.best_fitness > result.best_series[0] or (
            result.best_series[0] >= 3000
        )


class TestArchitecturalFeatures:
    def test_scott_population_fixed_16(self):
        assert ScottHGA.population_size == 16

    def test_tommiska_population_fixed_32_lfsr(self):
        from repro.rng.lfsr import GaloisLFSR

        engine = TommiskaGA()
        assert engine.population_size == 32
        assert isinstance(engine.rng, GaloisLFSR)

    def test_shackleford_survival_rule(self):
        # Offspring only displace less-fit victims: population min fitness
        # never decreases across a run.
        import numpy as np

        engine = ShacklefordGA()
        fn = F3()
        table = fn.table()
        inds = engine.rng.block(engine.population_size).astype("int64")
        initial_min = int(table[inds].min())
        result = engine.run(fn, evaluation_budget=2000)
        assert result.best_fitness >= initial_min

    def test_yoshida_tournament_prefers_fitter(self):
        import numpy as np

        engine = YoshidaGA()
        fits = np.array([5, 100] * 16)
        wins = [engine._tournament(fits) for _ in range(100)]
        fitter_rate = sum(1 for w in wins if fits[w] == 100) / len(wins)
        assert fitter_rate > 0.6

    def test_compact_ga_has_no_population(self):
        engine = CompactGA()
        result = engine.run(F3(), evaluation_budget=4096)
        # progress is driven purely by the probability vector
        assert result.best_fitness > 2000

    def test_compact_ga_converged_predicate(self):
        engine = CompactGA()
        assert engine.converged([0] * 8 + [256] * 8)
        assert not engine.converged([128] * 16)

    def test_registry_contains_all_runnable_rows(self):
        assert set(BASELINES) == {
            "scott",
            "tommiska",
            "shackleford",
            "yoshida",
            "tang_yip",
            "compact",
        }


class TestTangYip:
    def test_programmable_parameters(self):
        engine = TangYipGA(population_size=16, crossover_threshold=12,
                           mutation_threshold=2)
        assert engine.population_size == 16
        result = engine.run(F3(), evaluation_budget=256)
        assert result.best_fitness > 0

    def test_three_crossover_operators(self):
        assert CROSSOVER_OPERATORS == ("1-point", "4-point", "uniform")
        for op in CROSSOVER_OPERATORS:
            result = TangYipGA(operator=op).run(F3(), evaluation_budget=512)
            assert result.name.endswith(f"({op})")
            assert result.best_fitness > 0

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            TangYipGA(operator="2-point")

    def test_uniform_crossover_preserves_bit_multiset(self):
        engine = TangYipGA(operator="uniform")
        o1, o2 = engine._crossover(0xAAAA, 0x5555)
        for i in range(16):
            assert {(o1 >> i) & 1, (o2 >> i) & 1} == {
                (0xAAAA >> i) & 1, (0x5555 >> i) & 1,
            }

    def test_four_point_crossover_preserves_bit_multiset(self):
        engine = TangYipGA(operator="4-point")
        p1, p2 = 0xF0F0, 0x3C3C
        o1, o2 = engine._crossover(p1, p2)
        for i in range(16):
            assert {(o1 >> i) & 1, (o2 >> i) & 1} == {
                (p1 >> i) & 1, (p2 >> i) & 1,
            }

    def test_operators_diverge(self):
        results = {
            op: TangYipGA(operator=op).run(BF6(), 1024).best_fitness
            for op in CROSSOVER_OPERATORS
        }
        assert len(set(results.values())) > 1  # the operator matters
