"""Data series for every figure, plus an ASCII renderer for the harness.

* Fig. 7      — :func:`function_series` (the zoomed BF6 plot);
* Figs. 8-12  — :func:`scatter_series` ("each point P(i, j) is a population
  member in generation i with fitness j ... only one of multiple members
  with the same fitness" is kept per generation);
* Figs. 13-16 — :func:`best_avg_series` (best + average fitness per
  generation, as recorded from hardware by Chipscope in the paper).
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import GenerationStats
from repro.fitness.base import FitnessFunction


def scatter_series(history: list[GenerationStats]) -> list[tuple[int, int]]:
    """(generation, fitness) scatter points, de-duplicated per generation
    exactly as the paper plots them."""
    points: list[tuple[int, int]] = []
    for gen in history:
        for fit in sorted(set(gen.fitnesses)):
            points.append((gen.generation, fit))
    return points


def best_avg_series(
    history: list[GenerationStats],
) -> tuple[list[int], list[int], list[float]]:
    """(generations, best, average) series for the Figs. 13-16 plots."""
    gens = [g.generation for g in history]
    best = [g.best_fitness for g in history]
    avg = [g.average for g in history]
    return gens, best, avg


def function_series(
    fn: FitnessFunction, lo: int = 0, hi: int = 300
) -> tuple[np.ndarray, np.ndarray]:
    """(x, f(x)) over a chromosome range (Fig. 7 is BF6 on [0, 300])."""
    xs = np.arange(lo, hi + 1, dtype=np.uint32)
    return xs, fn.evaluate_array(xs)


def ascii_plot(
    xs,
    ys,
    width: int = 72,
    height: int = 16,
    label: str = "",
) -> str:
    """Tiny ASCII scatter/line plot for benchmark harness output."""
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if len(xs) == 0:
        return "(no data)"
    x0, x1 = float(xs.min()), float(xs.max())
    y0, y1 = float(ys.min()), float(ys.max())
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int((x - x0) / xspan * (width - 1))
        row = height - 1 - int((y - y0) / yspan * (height - 1))
        grid[row][col] = "*"
    lines = [f"{label} [y: {y0:.0f}..{y1:.0f}, x: {x0:.0f}..{x1:.0f}]"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    return "\n".join(lines)


def render_convergence(history: list[GenerationStats], label: str = "") -> str:
    """Render a Figs. 13-16 style best/avg plot as ASCII (best = '*',
    average = '.')."""
    gens, best, avg = best_avg_series(history)
    xs = np.asarray(gens + gens, dtype=np.float64)
    ys = np.asarray(best + [int(a) for a in avg], dtype=np.float64)
    plot = ascii_plot(xs, ys, label=label)
    return plot
