"""Service metrics: queue depth, batch occupancy, latency, throughput.

One :class:`ServiceMetrics` instance rides along the whole service stack;
every touchpoint (submit, dispatch, chunk completion, job completion)
records into it, and :meth:`snapshot` renders the JSON-ready view that
``bench_service_throughput.py`` dumps into ``BENCH_results.json`` and
``repro serve`` exposes over the wire.

Since the observability layer landed, the counters/gauges/histograms live
in a private :class:`~repro.obs.metrics.MetricsRegistry` (private so that
independent service instances — and tests asserting exact totals — never
share state with the process-wide engine registry).  The public surface is
unchanged: the same recording hooks, the same readable attributes
(``submitted`` … ``generations_executed``, ``latencies_s``/``waits_s``),
and a :meth:`snapshot` with the same key structure.
"""

from __future__ import annotations

import json
import time

from repro.obs.metrics import MetricsRegistry, percentile

__all__ = ["ServiceMetrics", "percentile"]


class ServiceMetrics:
    """Thread-safe counters and gauges for one service lifetime."""

    #: cap on per-job latency samples kept for the percentile estimates
    MAX_SAMPLES = 100_000

    def __init__(self, max_batch: int = 1):
        self.max_batch = max(1, max_batch)
        reg = self._registry = MetricsRegistry()
        self._submitted = reg.counter("service.jobs.submitted")
        self._completed = reg.counter("service.jobs.completed")
        self._failed = reg.counter("service.jobs.failed")
        self._rejected = reg.counter("service.jobs.rejected")
        self._chunks = reg.counter("service.chunks")
        self._occupancy_sum = reg.counter("service.chunk_occupancy_sum")
        self._generations = reg.counter("service.generations_executed")
        self._queue = reg.gauge("service.queue_depth")
        self._occupancy = reg.gauge("service.chunk_occupancy")
        self._latency = reg.histogram(
            "service.job_latency_s", max_samples=self.MAX_SAMPLES
        )
        self._wait = reg.histogram(
            "service.job_wait_s", max_samples=self.MAX_SAMPLES
        )
        # fault-tolerance instruments (retry / watchdog / shedding /
        # checkpoint-resume; see docs/architecture.md "Fault tolerance")
        self._shed = reg.counter("service.jobs.shed")
        self._cancelled = reg.counter("service.jobs.cancelled")
        self._deadline_enforced = reg.counter("service.jobs.deadline_enforced")
        self._retries = reg.counter("service.chunks.retried")
        self._timeouts = reg.counter("service.chunks.timed_out")
        self._respawns = reg.counter("service.pool.respawns")
        self._checkpoints = reg.counter("service.slabs.checkpointed")
        self._resumed = reg.counter("service.jobs.resumed")
        self._dropped_connections = reg.counter(
            "service.connections.dropped"
        )
        self._recovery = reg.histogram(
            "service.recovery_latency_s", max_samples=self.MAX_SAMPLES
        )
        # run-store cache instruments (admission lookups, in-flight
        # coalescing, completion write-backs; see docs/architecture.md
        # "Content-addressed run store")
        self._cache_hits = reg.counter("service.cache.hits")
        self._cache_misses = reg.counter("service.cache.misses")
        self._coalesced = reg.counter("service.cache.coalesced")
        self._cache_writes = reg.counter("service.cache.writes")

    # -- recording hooks ------------------------------------------------
    def job_submitted(self, depth: int) -> None:
        self._submitted.inc()
        self._queue.set(depth)

    def job_rejected(self) -> None:
        self._rejected.inc()

    def queue_drained_to(self, depth: int) -> None:
        self._queue.set(depth)

    def chunk_dispatched(self, n_entries: int, chunk_gens: int) -> None:
        self._chunks.inc()
        self._occupancy_sum.inc(n_entries / self.max_batch)
        self._occupancy.set(n_entries)
        self._generations.inc(n_entries * chunk_gens)

    def job_completed(self, latency_s: float, wait_s: float) -> None:
        self._completed.inc()
        self._latency.observe(latency_s)
        self._wait.observe(wait_s)

    def job_failed(self) -> None:
        self._failed.inc()

    def job_shed(self) -> None:
        self._shed.inc()

    def job_cancelled(self) -> None:
        self._cancelled.inc()

    def job_deadline_enforced(self) -> None:
        self._deadline_enforced.inc()

    def chunk_retried(self, n_jobs: int) -> None:
        self._retries.inc()

    def chunk_timed_out(self) -> None:
        self._timeouts.inc()

    def pool_respawned(self) -> None:
        self._respawns.inc()

    def slab_checkpointed(self) -> None:
        self._checkpoints.inc()

    def jobs_resumed(self, n_jobs: int) -> None:
        self._resumed.inc(n_jobs)

    def connection_dropped(self) -> None:
        self._dropped_connections.inc()

    def cache_hit(self) -> None:
        """A submission was served straight from the run store."""
        self._cache_hits.inc()

    def cache_miss(self) -> None:
        """A store lookup found nothing; the job runs cold."""
        self._cache_misses.inc()

    def job_coalesced(self) -> None:
        """A duplicate submission rode an identical in-flight job."""
        self._coalesced.inc()

    def cache_written(self) -> None:
        """A completed result was written back to the run store."""
        self._cache_writes.inc()

    def chunk_recovered(self, recovery_latency_s: float) -> None:
        """A previously failed slab completed a chunk again; the latency
        runs from the first unrecovered failure to this success."""
        self._recovery.observe(recovery_latency_s)

    # -- readable attributes (the pre-registry public surface) ----------
    @property
    def started_at(self) -> float:
        return self._registry.started_at

    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def completed(self) -> int:
        return self._completed.value

    @property
    def failed(self) -> int:
        return self._failed.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def queue_depth(self) -> int:
        return int(self._queue.value)

    @property
    def max_queue_depth(self) -> int:
        return int(self._queue.max)

    @property
    def chunks(self) -> int:
        return self._chunks.value

    @property
    def chunk_occupancy_sum(self) -> float:
        return float(self._occupancy_sum.value)

    @property
    def max_occupancy(self) -> int:
        return int(self._occupancy.max)

    @property
    def generations_executed(self) -> int:
        return self._generations.value

    @property
    def shed(self) -> int:
        return self._shed.value

    @property
    def cancelled(self) -> int:
        return self._cancelled.value

    @property
    def deadline_enforced(self) -> int:
        return self._deadline_enforced.value

    @property
    def retries(self) -> int:
        return self._retries.value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @property
    def respawns(self) -> int:
        return self._respawns.value

    @property
    def checkpoints(self) -> int:
        return self._checkpoints.value

    @property
    def resumed(self) -> int:
        return self._resumed.value

    @property
    def dropped_connections(self) -> int:
        return self._dropped_connections.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def cache_misses(self) -> int:
        return self._cache_misses.value

    @property
    def coalesced(self) -> int:
        return self._coalesced.value

    @property
    def cache_writes(self) -> int:
        return self._cache_writes.value

    def generations_rate(self) -> float:
        """Observed generations/second over the service lifetime (0.0
        before any chunk completes) — the backlog-time estimator's
        denominator."""
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        return self.generations_executed / uptime

    @property
    def latencies_s(self) -> list[float]:
        return self._latency.samples

    @property
    def waits_s(self) -> list[float]:
        return self._wait.samples

    @property
    def registry(self) -> MetricsRegistry:
        """The backing (private) registry, for raw-instrument access."""
        return self._registry

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> dict:
        """The full service state as a plain JSON-serializable dict."""
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        lat = self._latency.summary()
        rec = self._recovery.summary()
        chunks = self.chunks
        return {
            "uptime_s": round(uptime, 3),
            "jobs": {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "pending": self.queue_depth,
            },
            "queue": {
                "depth": self.queue_depth,
                "max_depth": self.max_queue_depth,
            },
            "batching": {
                "chunks": chunks,
                "max_batch": self.max_batch,
                "mean_occupancy": round(self.chunk_occupancy_sum / chunks, 4)
                if chunks
                else 0.0,
                "max_occupancy": self.max_occupancy,
            },
            "latency": {
                "p50_ms": round(lat["p50"] * 1e3, 3),
                "p95_ms": round(lat["p95"] * 1e3, 3),
                "max_ms": round(lat["max"] * 1e3, 3),
                "mean_wait_ms": round(self._wait.mean * 1e3, 3),
            },
            "throughput": {
                "jobs_per_s": round(self.completed / uptime, 3),
                "generations_per_s": round(
                    self.generations_executed / uptime, 1
                ),
            },
            "faults": {
                "chunk_retries": self.retries,
                "chunk_timeouts": self.timeouts,
                "pool_respawns": self.respawns,
                "jobs_shed": self.shed,
                "jobs_cancelled": self.cancelled,
                "deadlines_enforced": self.deadline_enforced,
                "slabs_checkpointed": self.checkpoints,
                "jobs_resumed": self.resumed,
                "connections_dropped": self.dropped_connections,
                "recovery_p50_ms": round(rec["p50"] * 1e3, 3),
                "recovery_p95_ms": round(rec["p95"] * 1e3, 3),
            },
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "coalesced": self.coalesced,
                "writes": self.cache_writes,
            },
        }

    def to_json(self, path: str | None = None) -> str:
        """Render the snapshot as JSON; optionally also write it to a file."""
        text = json.dumps(self.snapshot(), indent=2, sort_keys=True)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text
