"""Shared infrastructure for the baseline GA engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fitness.base import FitnessFunction
from repro.rng.base import RandomSource


@dataclass
class BaselineResult:
    """Outcome of a baseline run, comparable with
    :class:`repro.core.system.GAResult` on the fields the benches use."""

    name: str
    best_individual: int
    best_fitness: int
    evaluations: int
    best_series: list[int] = field(default_factory=list)

    @property
    def final_best(self) -> int:
        return self.best_fitness


class PopulationBaseline:
    """Base class for population-based baseline engines.

    Subclasses define the *fixed* architecture of the cited implementation
    (population size, selection, replacement); the evaluation budget is the
    only knob, so all engines can be compared at equal evaluation counts.
    """

    name = "baseline"
    #: Fixed population size of the cited implementation (None = knob).
    population_size: int = 16
    #: Whether the engine preserves the best individual across steps.
    elitist: bool = False

    def __init__(self, rng: RandomSource):
        self.rng = rng

    # ------------------------------------------------------------------
    def _rand4(self) -> int:
        return self.rng.next_word() & 0xF

    def _crossover_point(self, p1: int, p2: int) -> tuple[int, int]:
        """Single-point crossover (all Table I entries use 1-point)."""
        cut = self.rng.next_word() & 0xF
        mask = (1 << cut) - 1
        inv = ~mask & 0xFFFF
        return (p1 & mask) | (p2 & inv), (p2 & mask) | (p1 & inv)

    def _mutate_bit(self, ind: int) -> int:
        return ind ^ (1 << (self.rng.next_word() & 0xF))

    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        raise NotImplementedError
