"""Chaos-driven differential suite: faults must never change results.

The fault-tolerance acceptance property: under any seed-deterministic
fault plan — worker kills (thread and process mode), chunk delays long
enough to trip the hung-chunk watchdog, dropped TCP connections, even a
mid-slab scheduler restart from a spilled checkpoint — every job that
completes returns a :class:`~repro.service.jobs.JobResult` bit-identical
to a fault-free run.  Lost chunks re-execute from carried state that only
moves at chunk boundaries, so recovery is invisible in the numbers and
only visible in the fault counters (``snapshot()["faults"]``).
"""

import shutil
import threading
import time
from dataclasses import replace

import pytest

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.service import (
    BatchPolicy,
    ChaosMonkey,
    ChaosPlan,
    GARequest,
    GAService,
    JobFailedError,
    RetryPolicy,
    ServiceError,
    ServiceTCPServer,
)
from repro.service.server import call

#: fast retries so the chaos suite spends its time evolving, not backing off
FAST_RETRY = RetryPolicy(max_attempts=5, backoff_s=0.005, max_backoff_s=0.05)

JOBS = [
    GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=xt, mutation_threshold=mt, rng_seed=seed,
        ),
        fitness_name=fn,
        retry=FAST_RETRY,
    )
    for seed, gens, pop, xt, mt, fn in [
        (45890, 33, 16, 10, 1, "mBF6_2"),
        (10593, 12, 16, 13, 2, "mBF6_2"),
        (1567, 20, 16, 10, 1, "mShubert2D"),
        (777, 25, 16, 15, 0, "F3"),
        (31337, 33, 24, 10, 1, "mShubert2D"),
        (8081, 18, 16, 0, 15, "F2"),
    ]
]


def solo_outcome(request: GARequest):
    result = BehavioralGA(
        request.params, by_name(request.fitness_name), record_members=False
    ).run()
    return (
        result.best_individual,
        result.best_fitness,
        result.evaluations,
        [
            (g.generation, g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ],
    )


BASELINE = {request.params.rng_seed: solo_outcome(request) for request in JOBS}


def outcome(result):
    return (
        result.best_individual,
        result.best_fitness,
        result.evaluations,
        [
            (g.generation, g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ],
    )


def chaotic_outcomes(jobs, chaos, workers=2, mode="thread", **policy_kw):
    policy_kw.setdefault("max_wait_s", 0.01)
    policy_kw.setdefault("admit_interval", 4)
    with GAService(
        workers=workers, mode=mode, policy=BatchPolicy(**policy_kw),
        chaos=chaos,
    ) as service:
        results = service.run_all(list(jobs), timeout=120)
        snap = service.snapshot()
    return (
        {r.params.rng_seed: outcome(r) for r in results},
        snap["faults"],
    )


class TestChaosPlan:
    def test_from_seed_is_deterministic(self):
        a = ChaosPlan.from_seed(99, kill_rate=0.2, delay_rate=0.2, drop_rate=0.3)
        b = ChaosPlan.from_seed(99, kill_rate=0.2, delay_rate=0.2, drop_rate=0.3)
        assert a == b
        c = ChaosPlan.from_seed(100, kill_rate=0.2, delay_rate=0.2, drop_rate=0.3)
        assert a != c  # overwhelmingly likely for these rates

    def test_kill_and_delay_sets_are_disjoint(self):
        plan = ChaosPlan.from_seed(7, kill_rate=0.5, delay_rate=0.5)
        assert not set(plan.kill_chunks) & set(plan.delay_chunks)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosPlan(delay_s=-1.0)
        with pytest.raises(ValueError):
            ChaosPlan(kill_chunks=(-1,))

    def test_monkey_counts_injected_faults(self):
        monkey = ChaosMonkey(ChaosPlan(kill_chunks=(0,), delay_chunks=(2,)))
        faults = [monkey.chunk_fault() for _ in range(4)]
        assert faults[0]["action"] == "kill"
        assert faults[1] is None
        assert faults[2]["action"] == "delay"
        assert (monkey.kills, monkey.delays) == (1, 1)


class TestWorkerKills:
    def test_thread_mode_kills_recover_bit_identically(self):
        chaos = ChaosMonkey(ChaosPlan(kill_chunks=(0, 3, 7)))
        outcomes, faults = chaotic_outcomes(JOBS, chaos, workers=2)
        assert outcomes == BASELINE
        assert chaos.kills == 3
        assert faults["chunk_retries"] >= 1
        assert faults["recovery_p95_ms"] >= 0

    def test_seeded_kill_plan_recovers_bit_identically(self):
        chaos = ChaosMonkey(ChaosPlan.from_seed(1234, kill_rate=0.25))
        outcomes, faults = chaotic_outcomes(JOBS, chaos, workers=2)
        assert outcomes == BASELINE
        assert faults["chunk_retries"] >= 1

    def test_process_mode_kill_respawns_pool(self):
        chaos = ChaosMonkey(ChaosPlan(kill_chunks=(1,)))
        outcomes, faults = chaotic_outcomes(
            JOBS[:3], chaos, workers=2, mode="process", admit_interval=8
        )
        expected = {
            request.params.rng_seed: BASELINE[request.params.rng_seed]
            for request in JOBS[:3]
        }
        assert outcomes == expected
        assert chaos.kills == 1
        assert faults["pool_respawns"] >= 1
        assert faults["chunk_retries"] >= 1

    def test_retry_budget_exhaustion_fails_the_job(self):
        # every dispatch dies; one total attempt means no retries
        chaos = ChaosMonkey(ChaosPlan(kill_chunks=tuple(range(64))))
        request = GARequest(
            params=JOBS[0].params, retry=RetryPolicy(max_attempts=1)
        )
        with GAService(
            workers=1, mode="thread",
            policy=BatchPolicy(max_wait_s=0.005), chaos=chaos,
        ) as service:
            handle = service.submit(request)
            with pytest.raises(JobFailedError, match="after 1 attempts"):
                handle.result(timeout=30)


class TestHungChunkWatchdog:
    def test_delayed_chunk_times_out_and_retries_bit_identically(self):
        # the injected delay far exceeds the watchdog, so the first
        # dispatch is declared lost and re-executed
        chaos = ChaosMonkey(ChaosPlan(delay_chunks=(0,), delay_s=1.0))
        outcomes, faults = chaotic_outcomes(
            JOBS[:3], chaos, workers=2, chunk_timeout_s=0.2,
        )
        expected = {
            request.params.rng_seed: BASELINE[request.params.rng_seed]
            for request in JOBS[:3]
        }
        assert outcomes == expected
        assert faults["chunk_timeouts"] >= 1
        assert faults["chunk_retries"] >= 1


class TestMidSlabRestart:
    def test_resume_from_copied_checkpoint_is_bit_identical(self, tmp_path):
        # service 1 checkpoints every chunk into its spill dir; snapshot
        # the dir mid-flight (a crashed process leaves exactly this), then
        # have service 2 resume the copy and finish the interrupted jobs
        spill1, spill2 = tmp_path / "live", tmp_path / "crashed"
        policy = BatchPolicy(
            max_wait_s=0.005, admit_interval=4, checkpoint_every_chunks=1
        )
        with GAService(
            workers=1, mode="thread", policy=policy, spill_dir=spill1
        ) as service:
            handles = [service.submit(request) for request in JOBS]
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                files = list(spill1.glob("slab-*.json"))
                if files and service.metrics.chunks >= 2:
                    break
                time.sleep(0.002)
            assert files, "no checkpoint was spilled"
            shutil.copytree(spill1, spill2)
            for handle in handles:
                handle.result(timeout=120)
            assert service.metrics.checkpoints >= 1

        with GAService(
            workers=2, mode="thread", policy=policy,
            spill_dir=spill2, resume=True,
        ) as resumed:
            assert resumed.resumed_handles, "nothing was resumed"
            assert resumed.metrics.resumed == len(resumed.resumed_handles)
            for handle in resumed.resumed_handles:
                result = handle.result(timeout=120)
                assert outcome(result) == BASELINE[result.params.rng_seed]
        # resumed slabs that retired drop their spill files
        assert not list(spill2.glob("slab-*.json"))

    def test_spill_dir_empties_after_clean_drain(self, tmp_path):
        with GAService(
            workers=1, mode="thread",
            policy=BatchPolicy(max_wait_s=0.005, admit_interval=4),
            spill_dir=tmp_path,
        ) as service:
            service.run_all(JOBS[:2], timeout=60)
        assert not list(tmp_path.glob("slab-*.json"))


class TestEngineAndTopologyModes:
    def test_turbo_jobs_survive_kills_identically(self):
        # turbo is not bit-identical to serial, so the reference is a
        # fault-free *service* run of the same jobs
        turbo_jobs = [
            GARequest(
                params=request.params, fitness_name=request.fitness_name,
                engine_mode="turbo", retry=FAST_RETRY,
            )
            for request in JOBS[:4]
        ]
        clean, _ = chaotic_outcomes(turbo_jobs, chaos=None, workers=2)
        chaos = ChaosMonkey(ChaosPlan(kill_chunks=(0, 2)))
        faulted, faults = chaotic_outcomes(turbo_jobs, chaos, workers=2)
        assert faulted == clean
        assert faults["chunk_retries"] >= 1

    def test_island_job_survives_kill_identically(self):
        island_job = GARequest(
            params=GAParameters(
                n_generations=24, population_size=16,
                crossover_threshold=10, mutation_threshold=1, rng_seed=4242,
            ),
            n_islands=4, migration_interval=8, retry=FAST_RETRY,
        )
        clean, _ = chaotic_outcomes([island_job], chaos=None, workers=1)
        chaos = ChaosMonkey(ChaosPlan(kill_chunks=(0,)))
        faulted, faults = chaotic_outcomes([island_job], chaos, workers=1)
        assert faulted == clean
        assert faults["chunk_retries"] >= 1


class TestConnectionDrops:
    def test_dropped_connection_then_healthy_service(self):
        chaos = ChaosMonkey(ChaosPlan(drop_connections=(0,)))
        service = GAService(workers=1, mode="thread", chaos=chaos).start()
        server = ServiceTCPServer(service, "127.0.0.1", 0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.endpoint
            with pytest.raises(ServiceError, match="closed the connection"):
                call(host, port, {"op": "ping"}, timeout=10)
            assert chaos.drops == 1
            assert service.metrics.dropped_connections == 1
            # connection 1 is not in the plan: service stays healthy
            assert call(host, port, {"op": "ping"}, timeout=10)["ok"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            service.shutdown()


@pytest.mark.slow
class TestChaosSoak:
    def test_every_fault_schedule_yields_identical_results(self):
        # the full differential soak: sweep seed-derived fault plans with
        # kills and watchdog-tripping delays; every schedule must
        # reproduce the fault-free numbers exactly.  The retry budget is
        # deeper than FAST_RETRY's because which dispatch index a chunk
        # lands on is timing-dependent: at a 30% combined fault rate a
        # 5-attempt budget legitimately exhausts (~0.3^4 per first fault,
        # near-certain across 8 plans), which is correct behaviour but
        # not what this test measures
        deep = replace(FAST_RETRY, max_attempts=12)
        jobs = [replace(request, retry=deep) for request in JOBS]
        for plan_seed in range(8):
            chaos = ChaosMonkey(
                ChaosPlan.from_seed(
                    plan_seed, kill_rate=0.2, delay_rate=0.1, delay_s=0.5
                )
            )
            outcomes, _ = chaotic_outcomes(
                jobs, chaos, workers=2, chunk_timeout_s=0.25
            )
            assert outcomes == BASELINE, f"fault plan {plan_seed} changed results"
