"""Tang & Yip's PCI-based hardware GA [9].

The one prior implementation with programmable parameters: roulette
selection, programmable population/generations/rates, and — uniquely —
*multiple crossover operators* (1-point, 4-point, uniform) with
programmable thresholds.  Its architectural limitation in Table I is the
fixed-seed RNG and the PCI-card system organisation, not the GA itself.

This engine also serves as the repo's multi-operator crossover reference:
the ablation bench compares the three operators on the paper's test
functions at identical budgets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineResult, PopulationBaseline
from repro.fitness.base import FitnessFunction
from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import CellularAutomatonPRNG

CROSSOVER_OPERATORS = ("1-point", "4-point", "uniform")


class TangYipGA(PopulationBaseline):
    """Generational roulette GA with selectable crossover operator."""

    name = "Tang & Yip [9]"
    elitist = False
    FIXED_SEED = 0x517C  # Table I: "RNG/seed: Fixed"

    def __init__(
        self,
        rng: RandomSource | None = None,
        population_size: int = 32,
        crossover_threshold: int = 10,
        mutation_threshold: int = 1,
        operator: str = "1-point",
    ):
        super().__init__(rng or CellularAutomatonPRNG(self.FIXED_SEED))
        if operator not in CROSSOVER_OPERATORS:
            raise ValueError(
                f"operator must be one of {CROSSOVER_OPERATORS}, got {operator!r}"
            )
        self.population_size = population_size
        self.crossover_threshold = crossover_threshold
        self.mutation_threshold = mutation_threshold
        self.operator = operator

    # ------------------------------------------------------------------
    def _crossover(self, p1: int, p2: int) -> tuple[int, int]:
        if self.operator == "1-point":
            return self._crossover_point(p1, p2)
        if self.operator == "4-point":
            # four random cut points define an alternating mask
            cuts = sorted(self.rng.next_word() & 0xF for _ in range(4))
            mask = 0
            take = True
            prev = 0
            for cut in cuts + [16]:
                if take:
                    mask |= ((1 << cut) - 1) ^ ((1 << prev) - 1)
                take = not take
                prev = cut
            inv = ~mask & 0xFFFF
            return (p1 & mask) | (p2 & inv), (p2 & mask) | (p1 & inv)
        # uniform: each bit independently from either parent
        mask = self.rng.next_word()
        inv = ~mask & 0xFFFF
        return (p1 & mask) | (p2 & inv), (p2 & mask) | (p1 & inv)

    def _roulette(self, cum: np.ndarray, total: int) -> int:
        threshold = (self.rng.next_word() * total) >> 16
        return min(int(np.searchsorted(cum, threshold, side="right")), len(cum) - 1)

    # ------------------------------------------------------------------
    def run(self, fitness: FitnessFunction, evaluation_budget: int) -> BaselineResult:
        table = fitness.table()
        pop = self.population_size
        inds = self.rng.block(pop).astype(np.int64)
        fits = table[inds].astype(np.int64)
        evals = pop
        best_idx = int(fits.argmax())
        best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
        series = [best_fit]

        while evals < evaluation_budget:
            cum = np.cumsum(fits)
            total = int(cum[-1])
            new_inds = np.empty(pop, dtype=np.int64)
            count = 0
            while count < pop:
                p1 = int(inds[self._roulette(cum, total)])
                p2 = int(inds[self._roulette(cum, total)])
                if self._rand4() < self.crossover_threshold:
                    o1, o2 = self._crossover(p1, p2)
                else:
                    o1, o2 = p1, p2
                for off in (o1, o2):
                    if count >= pop:
                        break
                    if self._rand4() < self.mutation_threshold:
                        off = self._mutate_bit(off)
                    new_inds[count] = off
                    count += 1
            inds = new_inds
            fits = table[inds].astype(np.int64)
            evals += pop
            gen_best = int(fits.max())
            if gen_best > best_fit:
                best_fit = gen_best
                best_ind = int(inds[int(fits.argmax())])
            series.append(best_fit)

        return BaselineResult(
            f"{self.name} ({self.operator})", best_ind, best_fit, evals, series
        )
