"""Block-RAM/ROM models matching the Virtex-II Pro primitives the paper uses.

The GA memory of the paper is a single-port RAM storing ``{candidate,
fitness}`` pairs (32 bits per word, 8-bit address).  Reads are synchronous:
the GA core "places the memory address on the address bus and reads the
memory contents in the next clock cycle" (Sec. III-B.7), which is exactly the
behaviour of a block-RAM primitive and of :class:`SinglePortRAM` below.

:class:`BlockROM` models the lookup-table fitness modules: block ROMs
"populated with the fitness values corresponding to each solution encoding"
(Sec. IV-B).

Both report their storage footprint in bits so the resource estimator can
reproduce the block-memory utilisation rows of Table VI.
"""

from __future__ import annotations

from typing import Sequence

from repro.hdl.component import Component
from repro.hdl.signal import Signal

#: Capacity of one Virtex-II Pro block-RAM primitive in bits (18 Kb).
BRAM_BITS = 18 * 1024


class SinglePortRAM(Component):
    """Single-port synchronous RAM.

    Ports (all :class:`~repro.hdl.signal.Signal`):

    * ``addr``   - read/write address;
    * ``din``    - write data (sampled when ``wr`` is high);
    * ``dout``   - registered read data (valid the cycle after ``addr``);
    * ``wr``     - write enable.

    Write-first behaviour: a write updates the array and ``dout`` reflects
    the freshly written word on the next cycle, matching the WRITE_FIRST
    block-RAM mode.
    """

    def __init__(
        self,
        name: str,
        addr: Signal,
        din: Signal,
        dout: Signal,
        wr: Signal,
        depth: int | None = None,
    ):
        super().__init__(name)
        self.addr = addr
        self.din = din
        self.dout = dout
        self.wr = wr
        self.depth = depth if depth is not None else (1 << addr.width)
        if self.depth > (1 << addr.width):
            raise ValueError(f"RAM {name!r}: depth {self.depth} exceeds address space")
        self.data = [0] * self.depth

    @property
    def width(self) -> int:
        """Word width in bits."""
        return self.din.width

    def storage_bits(self) -> int:
        """Total storage footprint in bits (for resource accounting)."""
        return self.depth * self.width

    def bram_count(self) -> int:
        """Number of 18 Kb block-RAM primitives needed."""
        return -(-self.storage_bits() // BRAM_BITS)

    def clock(self) -> None:
        addr = self.addr.value % self.depth
        if self.wr.value:
            word = self.din.value
            # The array write is staged and applied in commit so that other
            # components clocking this same cycle still see the old contents.
            self._pending_write = (addr, word)
            self.drive(self.dout, word)
        else:
            self._pending_write = None
            self.drive(self.dout, self.data[addr])

    def commit(self) -> None:
        pending = getattr(self, "_pending_write", None)
        if pending is not None:
            addr, word = pending
            self.data[addr] = word
            self._pending_write = None
        super().commit()

    def reset(self) -> None:
        super().reset()
        self.data = [0] * self.depth
        self._pending_write = None
        self.dout.reset()


class BlockROM(Component):
    """Synchronous read-only memory initialised with a contents table."""

    def __init__(self, name: str, addr: Signal, dout: Signal, contents: Sequence[int]):
        super().__init__(name)
        if len(contents) > (1 << addr.width):
            raise ValueError(f"ROM {name!r}: contents exceed address space")
        self.addr = addr
        self.dout = dout
        self.data = list(contents)

    @property
    def depth(self) -> int:
        return len(self.data)

    @property
    def width(self) -> int:
        return self.dout.width

    def storage_bits(self) -> int:
        """Total storage footprint in bits (for resource accounting)."""
        return self.depth * self.width

    def bram_count(self) -> int:
        """Number of 18 Kb block-RAM primitives needed."""
        return -(-self.storage_bits() // BRAM_BITS)

    def clock(self) -> None:
        self.drive(self.dout, self.data[self.addr.value % max(1, self.depth)])

    def reset(self) -> None:
        super().reset()
        self.dout.reset()
