"""Property suite for the canonical job key (``repro.store.keys``).

The contract under test: the key is a pure function of the request's
determinism surface — equal surfaces collide, any perturbation of a
determinism field produces a fresh key, and scheduling-only fields
(priority, deadlines, retry policy, cache policy) never move it.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import GAParameters
from repro.fitness.functions import REGISTRY
from repro.service.jobs import GARequest, RetryPolicy
from repro.store.keys import (
    KEY_SCHEMA_VERSION,
    SCHEDULING_ONLY_FIELDS,
    canonical_json,
    canonical_request_dict,
    job_key,
)

params_st = st.builds(
    GAParameters,
    n_generations=st.integers(1, 1 << 20),
    population_size=st.sampled_from([2, 4, 8, 16, 24, 32, 64, 128, 256]),
    crossover_threshold=st.integers(0, 15),
    mutation_threshold=st.integers(0, 15),
    rng_seed=st.integers(1, 0xFFFF),
)

#: solo exact requests (protection/turbo/island constraints stay legal);
#: the scheduling fields vary freely so their irrelevance is exercised on
#: every example
requests_st = st.builds(
    GARequest,
    params=params_st,
    fitness_name=st.sampled_from(sorted(REGISTRY)),
    priority=st.integers(-5, 5),
    deadline_s=st.none() | st.floats(0.01, 100.0),
    record_trace=st.booleans(),
    engine_mode=st.sampled_from(["exact", "turbo"]),
    use_cache=st.booleans(),
)


@settings(max_examples=60, deadline=None)
@given(requests_st)
def test_equal_requests_equal_keys(request):
    clone = GARequest.from_dict(request.to_dict())
    assert job_key(request) == job_key(clone)
    assert canonical_json(canonical_request_dict(request)) == canonical_json(
        canonical_request_dict(clone)
    )


@settings(max_examples=60, deadline=None)
@given(requests_st, st.data())
def test_determinism_field_perturbation_changes_key(request, data):
    field = data.draw(
        st.sampled_from(
            [
                "n_generations",
                "population_size",
                "crossover_threshold",
                "mutation_threshold",
                "rng_seed",
                "fitness_name",
                "engine_mode",
                "record_trace",
                "n_islands",
                "topology",
                "migration_interval",
                "campaign_seed",
            ]
        )
    )
    p = request.params
    if field == "n_generations":
        perturbed = replace(request, params=p.with_(n_generations=p.n_generations + 1))
    elif field == "population_size":
        pop = 16 if p.population_size != 16 else 32
        perturbed = replace(request, params=p.with_(population_size=pop))
    elif field == "crossover_threshold":
        perturbed = replace(
            request,
            params=p.with_(crossover_threshold=(p.crossover_threshold + 1) % 16),
        )
    elif field == "mutation_threshold":
        perturbed = replace(
            request,
            params=p.with_(mutation_threshold=(p.mutation_threshold + 1) % 16),
        )
    elif field == "rng_seed":
        perturbed = replace(
            request, params=p.with_(rng_seed=p.rng_seed % 0xFFFF + 1)
        )
    elif field == "fitness_name":
        other = data.draw(
            st.sampled_from(sorted(set(REGISTRY) - {request.fitness_name}))
        )
        perturbed = replace(request, fitness_name=other)
    elif field == "engine_mode":
        mode = "turbo" if request.engine_mode == "exact" else "exact"
        perturbed = replace(request, engine_mode=mode)
    elif field == "record_trace":
        perturbed = replace(request, record_trace=not request.record_trace)
    elif field == "n_islands":
        perturbed = replace(request, n_islands=4)
    elif field == "topology":
        perturbed = replace(request, topology="torus", n_islands=4)
        request = replace(request, n_islands=4)
    elif field == "migration_interval":
        perturbed = replace(request, migration_interval=request.migration_interval + 1)
    else:  # campaign_seed
        perturbed = replace(request, campaign_seed=request.campaign_seed + 1)
    assert job_key(perturbed) != job_key(request)


@settings(max_examples=60, deadline=None)
@given(requests_st, st.data())
def test_scheduling_fields_do_not_change_key(request, data):
    baseline = job_key(request)
    rescheduled = replace(
        request,
        priority=data.draw(st.integers(-10, 10)),
        deadline_s=data.draw(st.none() | st.floats(0.01, 500.0)),
        use_cache=data.draw(st.booleans()),
        retry=RetryPolicy(
            max_attempts=data.draw(st.integers(1, 8)),
            backoff_s=data.draw(st.floats(0.0, 1.0)),
        ),
    )
    assert job_key(rescheduled) == baseline
    # enforce-mode needs a deadline; still scheduling-only
    enforced = replace(request, deadline_s=5.0, deadline_mode="enforce")
    assert job_key(enforced) == baseline


@settings(max_examples=30, deadline=None)
@given(requests_st)
def test_canonical_surface_shape(request):
    surface = canonical_request_dict(request)
    assert surface["key_schema"] == KEY_SCHEMA_VERSION
    assert not SCHEDULING_ONLY_FIELDS & set(surface)
    assert "params" not in surface  # re-keyed as Table III words
    # six handshake words, [index, value] pairs in Table III order
    assert [row[0] for row in surface["table3"]] == [0, 1, 2, 3, 4, 5]


def test_protection_fields_join_the_key():
    base = GARequest(
        params=GAParameters(64, 32, 10, 1, 0x061F), fitness_name="mBF6_2"
    )
    hardened = replace(base, protection="hardened", upset_rate=1e-4)
    assert job_key(hardened) != job_key(base)
    assert job_key(replace(hardened, upset_rate=5e-4)) != job_key(hardened)
    assert job_key(replace(hardened, campaign_seed=1)) != job_key(hardened)


def test_key_is_pinned_across_versions():
    # golden key: any drift in the canonical rendering is a schema change
    # and must bump KEY_SCHEMA_VERSION (which re-pins this hash)
    request = GARequest(
        params=GAParameters(64, 32, 10, 1, 0x061F), fitness_name="mBF6_2"
    )
    assert job_key(request) == (
        "9754badf48e5d01ae19a50aef3699bcebf2dc63d9a861ef86b2d64607e98be8e"
    )
    assert job_key(request) == job_key(GARequest.from_dict(request.to_dict()))


def test_substrate_joins_the_key():
    base = GARequest(
        params=GAParameters(64, 32, 10, 1, 0x061F), fitness_name="seq_counter4"
    )
    cycle = replace(base, substrate="cycle")
    assert job_key(cycle) != job_key(base)
    dual = GARequest(
        params=GAParameters(64, 32, 10, 1, 0x061F),
        fitness_name="fabric32_mux6",
        substrate="dual32",
    )
    assert len({job_key(base), job_key(cycle), job_key(dual)}) == 3
