"""Soak: a sustained 200-job burst through a process-backed pool.

Deselected from tier-1 (``slow``); run with ``-m slow``.  Exercises the
scheduler under real contention — hundreds of jobs with mixed sizes and
priorities arriving faster than the pool drains them — and checks that
every result is still bit-identical to a solo serial run and that the
metrics ledger balances.
"""

import random

import pytest

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.service import BatchPolicy, GARequest, GAService

pytestmark = pytest.mark.slow

N_JOBS = 200


def make_jobs() -> list[GARequest]:
    rng = random.Random(2026)
    fitness_names = ["mBF6_2", "mBF7_2", "mShubert2D", "F2", "F3"]
    jobs = []
    for i in range(N_JOBS):
        jobs.append(
            GARequest(
                params=GAParameters(
                    n_generations=rng.randrange(4, 28),
                    population_size=rng.choice([16, 16, 16, 24, 32]),
                    crossover_threshold=rng.randrange(8, 14),
                    mutation_threshold=rng.randrange(0, 3),
                    rng_seed=rng.randrange(1, 2**16),
                ),
                fitness_name=rng.choice(fitness_names),
                priority=rng.choice([-1, 0, 0, 0, 1]),
            )
        )
    return jobs


def outcome(result):
    return (
        result.best_individual,
        result.best_fitness,
        result.evaluations,
        [
            (g.generation, g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ],
    )


def test_soak_200_jobs_process_pool_stays_deterministic():
    jobs = make_jobs()
    expected = []
    for request in jobs:
        solo = BehavioralGA(
            request.params, by_name(request.fitness_name), record_members=False
        ).run()
        expected.append(
            (
                solo.best_individual,
                solo.best_fitness,
                solo.evaluations,
                [
                    (g.generation, g.best_fitness, g.best_individual,
                     g.fitness_sum)
                    for g in solo.history
                ],
            )
        )

    policy = BatchPolicy(
        max_batch=16, max_wait_s=0.005, admit_interval=8, max_pending=N_JOBS
    )
    with GAService(workers=3, mode="process", policy=policy) as service:
        results = service.run_all(jobs, timeout=600)
        snap = service.snapshot()

    assert [outcome(r) for r in results] == expected
    assert snap["jobs"]["submitted"] == N_JOBS
    assert snap["jobs"]["completed"] == N_JOBS
    assert snap["jobs"]["failed"] == snap["jobs"]["rejected"] == 0
    assert snap["queue"]["depth"] == 0
    # with 200 jobs racing 3 workers the batcher must actually batch
    assert snap["batching"]["mean_occupancy"] > 1.0 / policy.max_batch
    assert snap["latency"]["p95_ms"] >= snap["latency"]["p50_ms"] > 0
