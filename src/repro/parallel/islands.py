"""Island-model parallel GA over multiple engine instances.

Models a fabric carrying several GA IP cores (the multi-core direction of
Sec. II-B / the hybrid system of Fig. 5): ``n_islands`` behavioural engines
evolve independent populations in epochs of ``migration_interval``
generations; at each epoch boundary champions migrate over a programmable
:class:`~repro.parallel.archipelago.MigrationTopology` (ring by default),
each migrant replacing a worst member of its destination.  Populations are
carried across epochs (no restarts).  When ``n_generations`` is not a
multiple of ``migration_interval`` a final partial epoch runs the
remainder, so exactly ``n_generations`` generations execute per island;
no migration happens after the final epoch (there is nothing left to
evolve the migrants).

Two execution modes:

* ``processes=1`` — the run delegates to
  :class:`~repro.parallel.archipelago.VectorIslandGA`: the whole
  archipelago is one resumable :class:`BatchBehavioralGA` slab (replica
  axis = island) stepped ``migration_interval`` generations at a time,
  with migration as a pure array operation;
* ``processes>1`` — epochs fan out over a persistent ``multiprocessing``
  pool (created once per :class:`IslandGA`, reused across epochs *and*
  runs; workers cache fitness tables by name so an epoch boundary ships
  only populations and RNG states).  Results are identical to the
  vectorized mode because each island owns an independently seeded RNG
  and migration happens at synchronised epoch barriers (property-tested
  in ``tests/parallel/test_archipelago.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.core.validate import validate_island_params
from repro.fitness.base import FitnessFunction
from repro.fitness.functions import by_name
from repro.parallel.archipelago import (
    VectorIslandGA,
    build_topology,
    island_seeds,
)
from repro.rng.cellular_automaton import CellularAutomatonPRNG


@dataclass
class IslandResult:
    """Outcome of an island-model run.

    ``epoch_champions[e][i]`` is island ``i``'s ``(individual, fitness)``
    champion at the end of epoch ``e`` — the full migration-candidate
    history, not just the final survivor — which is what migration-policy
    analysis needs; it is O(epochs x islands) and sits behind the
    ``record_champions`` flag so thousand-island runs can drop it.
    ``epoch_summary[e]`` is the O(epochs) digest that always stays on:
    ``(best_fitness, best_individual, champion_fitness_sum)`` at the end
    of epoch ``e`` (the rows a service job's history is built from).
    """

    best_individual: int
    best_fitness: int
    island_bests: list[int]
    migrations: int
    evaluations: int
    best_per_epoch: list[int]
    epoch_champions: list[list[tuple[int, int]]] = field(default_factory=list)
    epoch_summary: list[tuple[int, int, int]] = field(default_factory=list)


def _epoch_worker(args: tuple) -> tuple[int, list[int], int, int, int, int]:
    """Run one island for one epoch.  Module-level so it pickles.

    args: (fitness_name, island_index, params_dict, epoch_gens, rng_state,
    rng_seed, population_or_None, engine_mode)
    returns: (island, final_population, best_ind, best_fit, rng_state,
    evaluations)
    """
    (
        fn_name,
        island,
        params_dict,
        epoch_gens,
        rng_state,
        rng_seed,
        population,
        engine_mode,
    ) = args
    # the registry shares instances process-wide, so each worker builds a
    # fitness LUT once per name for the life of the pool (the cache used
    # to live here; it now serves every consumer, not just islands)
    fn = by_name(fn_name)
    params = GAParameters(**params_dict).with_(n_generations=epoch_gens)
    rng = CellularAutomatonPRNG(rng_seed)
    rng.state = rng_state
    ga = BehavioralGA(params, fn, rng=rng, record_members=False, mode=engine_mode)
    initial = np.asarray(population, dtype=np.int64) if population is not None else None
    result = ga.run(initial=initial)
    return (
        island,
        ga.final_population.tolist(),
        result.best_individual,
        result.best_fitness,
        rng.state,
        result.evaluations,
    )


class IslandGA:
    """Programmable-topology island model over behavioural GA engines."""

    def __init__(
        self,
        params: GAParameters,
        fitness: FitnessFunction,
        n_islands: int = 4,
        migration_interval: int = 8,
        processes: int = 1,
        tracer=None,
        engine_mode: str = "exact",
        topology: str = "ring",
        record_champions: bool = True,
    ):
        validate_island_params(n_islands, migration_interval, topology)
        if engine_mode not in ("exact", "turbo"):
            raise ValueError(
                f"engine_mode must be 'exact' or 'turbo': {engine_mode!r}"
            )
        #: ``"exact"`` or ``"turbo"``; turbo islands stay deterministic in
        #: both execution modes because the turbo engine's word consumption
        #: is composition-independent (solo == batch row, per stream)
        self.engine_mode = engine_mode
        self.params = params
        self.fitness = fitness
        self.n_islands = n_islands
        self.migration_interval = migration_interval
        self.processes = processes
        #: archipelago wiring, seed-deterministic for ``"random[:k]"``
        self.topology = build_topology(topology, n_islands, params.rng_seed)
        if self.topology.max_fan_in >= params.population_size:
            raise ValueError(
                f"topology fan-in {self.topology.max_fan_in} would replace "
                f"a whole population of {params.population_size}"
            )
        self.record_champions = record_champions
        #: optional :class:`~repro.obs.tracer.Tracer`: one ``ga.run`` span,
        #: an ``island.epoch`` span per epoch (nesting the batched engine's
        #: per-generation events on the in-process path) and an
        #: ``island.migration`` event per boundary.  Results are identical
        #: with tracing on or off, in both execution modes; the
        #: ``processes>1`` pool traces at epoch granularity only (the
        #: tracer does not cross process boundaries).
        self.tracer = tracer
        # Island seeds: decorrelated offsets of the programmed seed
        # (the programmable-seed feature, once per core).
        self.seeds = island_seeds(params, n_islands)
        self._pool = None

    # ------------------------------------------------------------------
    def epoch_schedule(self) -> list[int]:
        """Generations per epoch: full ``migration_interval`` epochs plus a
        final partial epoch for the remainder, summing to exactly
        ``n_generations``."""
        full, remainder = divmod(self.params.n_generations, self.migration_interval)
        schedule = [self.migration_interval] * full
        if remainder:
            schedule.append(remainder)
        return schedule

    def close(self) -> None:
        """Shut down the persistent worker pool (no-op if never started)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "IslandGA":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass

    def _ensure_pool(self):
        """The persistent pool: spawned once, reused across epochs and
        across :meth:`run` calls (the workers' fitness-table caches are
        the state worth keeping warm)."""
        if self._pool is None:
            import multiprocessing as mp

            self._pool = mp.Pool(self.processes)
        return self._pool

    def _epoch_jobs(self, epoch_gens, states, populations):
        params_dict = dict(
            n_generations=self.params.n_generations,
            population_size=self.params.population_size,
            crossover_threshold=self.params.crossover_threshold,
            mutation_threshold=self.params.mutation_threshold,
            rng_seed=self.params.rng_seed,
        )
        return [
            (
                self.fitness.name,
                i,
                params_dict,
                epoch_gens,
                states[i],
                self.seeds[i],
                populations[i],
                self.engine_mode,
            )
            for i in range(self.n_islands)
        ]

    def _batched_epoch(self, epoch_gens, states, populations):
        """The in-process reference path: evolve every island in one
        :class:`BatchBehavioralGA` call (bit-identical to the per-island
        workers — same per-stream draw sequence, same operators)."""
        params_list = [
            self.params.with_(n_generations=epoch_gens, rng_seed=self.seeds[i])
            for i in range(self.n_islands)
        ]
        batch = BatchBehavioralGA(
            params_list, self.fitness, record_members=False, rng_states=states,
            tracer=self.tracer, mode=self.engine_mode,
        )
        initial = (
            np.asarray(populations, dtype=np.int64)
            if populations[0] is not None
            else None
        )
        results = batch.run(initial=initial)
        return [
            (
                i,
                batch.final_populations[i].tolist(),
                results[i].best_individual,
                results[i].best_fitness,
                int(batch.rng_states[i]),
                results[i].evaluations,
            )
            for i in range(self.n_islands)
        ]

    def _migrate(self, populations, champions):
        """Topology migration: edge ``e`` sends island ``sources[e]``'s
        champion into destination ``dests[e]``, replacing its
        ``rank[e]``-th worst member.  Member ranks are computed from the
        pre-migration populations (one stable argsort per destination) so
        this reference loop is operation-for-operation the vectorized
        slab's scatter."""
        topo = self.topology
        if topo.n_edges == 0:
            return
        table = self.fitness.table()
        pops = {
            d: np.asarray(populations[d], dtype=np.int64)
            for d in set(topo.dests.tolist())
        }
        orders = {
            d: np.argsort(table[pop], kind="stable") for d, pop in pops.items()
        }
        for e in range(topo.n_edges):
            src = int(topo.sources[e])
            dst = int(topo.dests[e])
            migrant, _fit = champions[src]
            pops[dst][orders[dst][int(topo.rank[e])]] = migrant
        for d, pop in pops.items():
            populations[d] = pop.tolist()

    def run(self) -> IslandResult:
        """Run all epochs; vectorized in-process or pooled per
        ``processes``."""
        if self.processes == 1:
            return VectorIslandGA(
                self.params,
                self.fitness,
                n_islands=self.n_islands,
                migration_interval=self.migration_interval,
                topology=self.topology,
                record_champions=self.record_champions,
                tracer=self.tracer,
                engine_mode=self.engine_mode,
            ).run()
        return self.run_epoch_loop()

    def run_epoch_loop(self) -> IslandResult:
        """The legacy epoch loop: one engine pass per island per epoch.

        With ``processes>1`` epochs fan out over the persistent pool;
        with ``processes=1`` each epoch is one fresh batched engine call
        — kept as the reference implementation the vectorized archipelago
        is property-tested against (and the baseline its benchmark
        measures the speedup over).
        """
        from contextlib import nullcontext

        schedule = self.epoch_schedule()
        states = list(self.seeds)
        populations: list[list[int] | None] = [None] * self.n_islands
        island_best: list[tuple[int, int]] = [(0, -1)] * self.n_islands
        evaluations = 0
        migrations = 0
        best_per_epoch: list[int] = []
        epoch_champions: list[list[tuple[int, int]]] = []
        epoch_summary: list[tuple[int, int, int]] = []
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled

        pool = self._ensure_pool() if self.processes > 1 else None
        run_scope = (
            tracer.span(
                "ga.run",
                engine="island",
                fitness=self.fitness.name,
                islands=self.n_islands,
                migration_interval=self.migration_interval,
                topology=self.topology.name,
                generations=self.params.n_generations,
            )
            if tracing
            else nullcontext()
        )
        with run_scope:
            for epoch, epoch_gens in enumerate(schedule):
                epoch_scope = (
                    tracer.span("island.epoch", epoch=epoch, gens=epoch_gens)
                    if tracing
                    else nullcontext()
                )
                with epoch_scope:
                    if pool is not None:
                        jobs = self._epoch_jobs(epoch_gens, states, populations)
                        results = pool.map(_epoch_worker, jobs)
                    else:
                        results = self._batched_epoch(
                            epoch_gens, states, populations
                        )
                    champions: list[tuple[int, int]] = [
                        (0, -1)
                    ] * self.n_islands
                    for island, final_pop, cand, fit, state, evals in results:
                        states[island] = state
                        populations[island] = final_pop
                        evaluations += evals
                        champions[island] = (cand, fit)
                        if fit > island_best[island][1]:
                            island_best[island] = (cand, fit)
                    if epoch < len(schedule) - 1 and self.topology.n_edges:
                        # no migration after the final epoch: the
                        # migrants would never evolve and would inflate
                        # the migration count
                        self._migrate(populations, champions)
                        migrations += self.topology.n_edges
                        if tracing:
                            tracer.event(
                                "island.migration",
                                epoch=epoch,
                                migrants=self.topology.n_edges,
                                champions=(
                                    [[int(c), int(f)] for c, f in champions]
                                    if self.record_champions
                                    else None
                                ),
                            )
                    overall_now = max(island_best, key=lambda cf: cf[1])
                    best_per_epoch.append(overall_now[1])
                    epoch_summary.append(
                        (
                            overall_now[1],
                            overall_now[0],
                            sum(f for _c, f in champions),
                        )
                    )
                    if self.record_champions:
                        epoch_champions.append([(c, f) for c, f in champions])

        overall = max(island_best, key=lambda cf: cf[1])
        return IslandResult(
            best_individual=overall[0],
            best_fitness=overall[1],
            island_bests=[f for _c, f in island_best],
            migrations=migrations,
            evaluations=evaluations,
            best_per_epoch=best_per_epoch,
            epoch_champions=epoch_champions,
            epoch_summary=epoch_summary,
        )
