"""Tests for netlist export/import and lint (the soft-IP deliverable)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl import rtlib
from repro.hdl.export import lint, read_netlist, write_netlist
from repro.hdl.flatten import flatten_ga_datapath, merge
from repro.hdl.gates import Gate, GateType
from repro.hdl.netlist import Netlist, NetlistError
from repro.hdl.scan import insert_scan_chain


def roundtrip(nl: Netlist) -> Netlist:
    return read_netlist(write_netlist(nl))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: rtlib.build_adder(16),
            lambda: rtlib.build_comparator(8),
            lambda: rtlib.build_crossover_unit(16),
            lambda: rtlib.build_ca_rng(16),
            lambda: rtlib.build_counter(8),
        ],
    )
    def test_structure_preserved(self, builder):
        original = builder()
        restored = roundtrip(original)
        assert restored.name == original.name
        assert restored.stats() == original.stats()
        assert set(restored.inputs) == set(original.inputs)
        assert set(restored.outputs) == set(original.outputs)

    @settings(max_examples=20)
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_function_preserved_combinational(self, a, b):
        restored = roundtrip(rtlib.build_adder(16))
        out = restored.evaluate({"a": a, "b": b})
        assert out["sum"] == (a + b) & 0xFFFF

    def test_function_preserved_sequential(self):
        from repro.hdl.scan import Stepper
        from repro.rng.cellular_automaton import CellularAutomatonPRNG

        restored = roundtrip(rtlib.build_ca_rng(16))
        stepper = Stepper(restored)
        stepper.step(seed=0x2961, load=1, en=0)
        rng = CellularAutomatonPRNG(0x2961)
        for _ in range(20):
            assert stepper.step(load=0, en=1)["rn"] == rng.next_word()

    def test_scan_chain_survives_roundtrip(self):
        nl = Netlist("dut")
        merge(nl, rtlib.build_counter(8), "cnt")
        insert_scan_chain(nl)
        restored = roundtrip(nl)
        assert restored.scan_ports == nl.scan_ports
        assert [d.scan_index for d in restored.dffs] == [
            d.scan_index for d in nl.dffs
        ]

    def test_full_ga_datapath_roundtrip(self):
        original = flatten_ga_datapath()
        restored = roundtrip(original)
        assert restored.stats() == original.stats()

    def test_scan_register_cell_name_in_text(self):
        nl = Netlist("dut")
        merge(nl, rtlib.build_counter(4), "cnt")
        insert_scan_chain(nl)
        text = write_netlist(nl)
        assert "SCAN_REGISTER" in text

    def test_bad_text_rejected(self):
        with pytest.raises(NetlistError):
            read_netlist("garbage\n")
        with pytest.raises(NetlistError):
            read_netlist("module m;\n  WEIRD g0 (n1 n2);\nendmodule\n")
        with pytest.raises(NetlistError):
            read_netlist("module m;\nendmodule\n")  # missing nets decl


class TestLint:
    def test_clean_block(self):
        assert lint(rtlib.build_adder(16)) == []

    def test_clean_full_datapath(self):
        assert lint(flatten_ga_datapath()) == []

    def test_detects_multiple_drivers(self):
        nl = Netlist("bad")
        a = nl.add_input("a", 1)
        out = nl.add_gate(GateType.NOT, a[0])
        # second driver onto the same net, installed behind the API's back
        nl.gates.append(Gate(GateType.BUF, (a[0],), out))
        assert any("drivers" in p for p in lint(nl))

    def test_detects_floating_net(self):
        nl = Netlist("bad")
        floating = nl.net("floating")
        a = nl.add_input("a", 1)
        out = nl.add_gate(GateType.AND, a[0], floating)
        nl.add_output("y", [out])
        assert any("never driven" in p for p in lint(nl))

    def test_detects_combinational_cycle(self):
        nl = Netlist("bad")
        n1, n2 = nl.net(), nl.net()
        nl.gates.append(Gate(GateType.BUF, (n2,), n1))
        nl.gates.append(Gate(GateType.BUF, (n1,), n2))
        assert any("cycle" in p for p in lint(nl))
