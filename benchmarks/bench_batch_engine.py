"""Batched vs looped sweep throughput — the replica-axis vectorisation win.

Runs the 24-cell Table VII grid (6 seeds x {pop 32, 64} x {XR 10, 12},
64 generations, mBF6_2) two ways: the old per-cell loop over
:class:`BehavioralGA`, and one :func:`repro.core.batch.run_batched` sweep
(two ``BatchBehavioralGA`` calls, one per population size).  The results
are asserted bit-identical cell by cell; the report is the throughput
(runs/sec) of each engine and the speedup.
"""

import time

import pytest

from conftest import print_table
from repro.core.batch import run_batched
from repro.core.behavioral import BehavioralGA
from repro.experiments.config import fpga_sweep_params
from repro.fitness import MBF6_2


@pytest.mark.benchmark(group="batch-engine")
def test_batch_vs_loop_throughput(benchmark):
    fn = MBF6_2()
    fn.table()  # warm the fitness table cache for both engines
    jobs = [(params, fn) for params in fpga_sweep_params()]
    run_batched(jobs)  # warm the orbit and slot-outcome tables

    def looped_sweep():
        return [
            BehavioralGA(params, f, record_members=False).run()
            for params, f in jobs
        ]

    t0 = time.perf_counter()
    looped = looped_sweep()
    t_loop = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = run_batched(jobs)
    t_batch = time.perf_counter() - t0
    benchmark.pedantic(run_batched, args=(jobs,), rounds=1, iterations=1)

    # the batched engine is a drop-in replacement: bit-identical results
    assert [r.best_fitness for r in looped] == [r.best_fitness for r in batched]
    assert [r.best_individual for r in looped] == [r.best_individual for r in batched]
    assert [r.evaluations for r in looped] == [r.evaluations for r in batched]

    speedup = t_loop / t_batch
    rows = [
        {"engine": "looped BehavioralGA", "time_s": round(t_loop, 3),
         "runs/sec": round(len(jobs) / t_loop, 1)},
        {"engine": "BatchBehavioralGA", "time_s": round(t_batch, 3),
         "runs/sec": round(len(jobs) / t_batch, 1)},
    ]
    print_table("Batched vs looped Table VII sweep (24 runs)", rows)
    print(f"speedup: {speedup:.1f}x")

    # the replica axis buys at least 5x on the 24-replica Table VII grid
    assert speedup >= 5.0
