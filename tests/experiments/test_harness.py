"""Property and integration tests for the experiment harness.

The two harness contracts the ISSUE pins down:

* derived per-repeat seeds are a pure function of the scenario itself —
  reordering (or adding/removing) sibling scenarios never moves a seed;
* ``nb_repeats = k`` expands every scenario to exactly ``k`` distinct
  content-addressed store keys (seeds must not alias).
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import GAParameters
from repro.experiments.harness import (
    Experiment,
    RESULTS_SCHEMA_VERSION,
    Scenario,
    derive_seeds,
    load_summary,
)
from repro.experiments.zoo import ZOO, experiment
from repro.service.jobs import GARequest
from repro.store.keys import job_key

names_st = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=24
)


class TestSeedDerivation:
    @settings(max_examples=100, deadline=None)
    @given(names_st, st.integers(1, 0xFFFF), st.integers(1, 16))
    def test_seeds_are_valid_distinct_and_pin_repeat_zero(
        self, name, base_seed, nb_repeats
    ):
        seeds = derive_seeds(name, base_seed, nb_repeats)
        assert len(seeds) == nb_repeats
        assert seeds[0] == base_seed
        assert len(set(seeds)) == nb_repeats
        assert all(1 <= seed <= 0xFFFF for seed in seeds)

    @settings(max_examples=50, deadline=None)
    @given(names_st, st.integers(1, 0xFFFF), st.integers(1, 8))
    def test_derivation_is_deterministic(self, name, base_seed, nb_repeats):
        assert derive_seeds(name, base_seed, nb_repeats) == derive_seeds(
            name, base_seed, nb_repeats
        )

    @settings(max_examples=50, deadline=None)
    @given(names_st, st.integers(1, 0xFFFF), st.integers(2, 8))
    def test_prefix_stability_under_more_repeats(
        self, name, base_seed, nb_repeats
    ):
        # asking for more repeats only appends: earlier rows keep their seeds
        shorter = derive_seeds(name, base_seed, nb_repeats - 1)
        longer = derive_seeds(name, base_seed, nb_repeats)
        assert longer[: len(shorter)] == shorter

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            derive_seeds("x", 0x2961, 0)
        with pytest.raises(ValueError):
            derive_seeds("x", 0, 3)
        with pytest.raises(ValueError):
            derive_seeds("x", 0x1_0000, 3)


def _scenario(name: str, seed: int, fitness: str = "seq_counter4") -> Scenario:
    return Scenario(
        name=name,
        request=GARequest(
            params=GAParameters(8, 16, 10, 2, seed), fitness_name=fitness
        ),
    )


scenario_pool_st = st.lists(
    st.tuples(names_st, st.integers(1, 0xFFFF)),
    min_size=2,
    max_size=6,
    unique_by=lambda pair: pair[0],
)


class TestExperimentSeedStability:
    @settings(max_examples=40, deadline=None)
    @given(scenario_pool_st, st.integers(1, 5), st.randoms())
    def test_seeds_stable_under_scenario_reordering(
        self, pool, nb_repeats, rnd
    ):
        scenarios = [_scenario(name, seed) for name, seed in pool]
        shuffled = list(scenarios)
        rnd.shuffle(shuffled)
        original = Experiment(
            name="orig", scenarios=tuple(scenarios), nb_repeats=nb_repeats
        )
        reordered = Experiment(
            name="reordered", scenarios=tuple(shuffled), nb_repeats=nb_repeats
        )

        def seeds_by_scenario(exp):
            seeds = {}
            for scenario, repeat, request in exp.jobs():
                seeds.setdefault(scenario.name, []).append(
                    request.params.rng_seed
                )
            return seeds

        assert seeds_by_scenario(original) == seeds_by_scenario(reordered)

    @settings(max_examples=25, deadline=None)
    @given(scenario_pool_st, st.integers(1, 5))
    def test_k_repeats_make_k_distinct_store_keys_per_scenario(
        self, pool, nb_repeats
    ):
        scenarios = tuple(_scenario(name, seed) for name, seed in pool)
        exp = Experiment(name="keys", scenarios=scenarios, nb_repeats=nb_repeats)
        keys: dict[str, set[str]] = {}
        for scenario, _repeat, request in exp.jobs():
            keys.setdefault(scenario.name, set()).add(job_key(request))
        assert all(len(ks) == nb_repeats for ks in keys.values())


class TestExperimentValidation:
    def test_duplicate_scenario_names_rejected(self):
        s = _scenario("dup", 0x2961)
        with pytest.raises(ValueError, match="duplicate"):
            Experiment(name="bad", scenarios=(s, s), nb_repeats=1)

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError, match="no scenarios"):
            Experiment(name="bad", scenarios=(), nb_repeats=1)

    def test_zoo_lookup(self):
        assert experiment("zoo-smoke").name == "zoo-smoke"
        assert experiment("sequential", nb_repeats=5).nb_repeats == 5
        with pytest.raises(KeyError):
            experiment("no-such-experiment")

    def test_zoo_is_well_formed(self):
        for exp in ZOO.values():
            assert exp.scenarios
            for scenario in exp.scenarios:
                assert 1 <= scenario.base_seed <= 0xFFFF


class TestExperimentRun:
    def test_run_writes_outputs_and_second_run_hits_cache(self, tmp_path):
        exp = Experiment(
            name="mini",
            scenarios=(
                _scenario("a", 0x2961),
                _scenario("b", 0x061F, fitness="seq_detect101"),
            ),
            nb_repeats=2,
        )
        cold = exp.run(tmp_path)
        assert len(cold.rows) == 4
        assert not any(row["cache_hit"] for row in cold.rows)
        out = tmp_path / "mini"
        assert (out / "results.jsonl").exists()
        assert (out / "summary.json").exists()
        assert (out / "summary.md").exists()

        rows = [
            json.loads(line)
            for line in (out / "results.jsonl").read_text().splitlines()
        ]
        assert all(row["schema"] == RESULTS_SCHEMA_VERSION for row in rows)
        assert all(row["store_key"] for row in rows)

        summary = load_summary(tmp_path, "mini")
        assert set(summary["scenarios"]) == {"a", "b"}
        assert summary["scenarios"]["a"]["repeats"] == 2

        warm = exp.run(tmp_path)
        assert all(row["cache_hit"] for row in warm.rows)
        # bit-identical outcomes either way
        cold_best = [(r["scenario"], r["repeat"], r["best_fitness"]) for r in cold.rows]
        warm_best = [(r["scenario"], r["repeat"], r["best_fitness"]) for r in warm.rows]
        assert cold_best == warm_best
