"""Replay bit-identity and the differential cache-hit == cold property.

Across every engine path the service offers (exact, turbo, island,
hardened), a result served from the store must be bit-identical to a
cold recomputation, and ``repro replay`` must confirm it.
"""

import pytest

from repro.core.params import GAParameters
from repro.service.jobs import GARequest
from repro.service.server import GAService
from repro.store import RunStore, job_key, replay, results_identical, run_cached
from repro.store.replay import execute_request

PARAMS = GAParameters(
    n_generations=12, population_size=16,
    crossover_threshold=10, mutation_threshold=1, rng_seed=0x2961,
)

REQUESTS = {
    "exact": GARequest(params=PARAMS, fitness_name="mBF6_2"),
    "turbo": GARequest(params=PARAMS, fitness_name="mBF6_2", engine_mode="turbo"),
    "island": GARequest(
        params=PARAMS, fitness_name="mShubert2D",
        n_islands=4, migration_interval=4, topology="ring",
    ),
    "hardened": GARequest(
        params=PARAMS, fitness_name="mBF7_2",
        protection="hardened", upset_rate=1e-4,
    ),
}


@pytest.mark.parametrize("label", sorted(REQUESTS))
def test_replay_confirms_bit_identity(tmp_path, label):
    request = REQUESTS[label]
    store = RunStore(tmp_path)
    result = execute_request(request)
    key = store.put(request, result)
    report = replay(store, key)
    assert report.identical, report.mismatched_fields
    assert report.verdict == "bit-identical"
    assert report.stored_best == report.replayed_best == result.best_fitness


def test_replay_detects_tampering(tmp_path):
    request = REQUESTS["exact"]
    store = RunStore(tmp_path)
    result = execute_request(request)
    result.best_fitness += 1  # forge the stored payload
    key = store.put(request, result)
    report = replay(store, key)
    assert not report.identical
    assert "best_fitness" in report.mismatched_fields


def test_replay_missing_key_raises(tmp_path):
    with pytest.raises(KeyError):
        replay(RunStore(tmp_path), "0" * 64)


@pytest.mark.parametrize("label", sorted(REQUESTS))
def test_cache_hit_equals_cold_recompute(tmp_path, label):
    """Differential: the service's cached result == a cold local run."""
    request = REQUESTS[label]
    cold = execute_request(request)
    with GAService(workers=2, mode="thread", store_dir=tmp_path) as service:
        first = service.submit(request).result(60)
        second = service.submit(request).result(60)
    assert not first.cache_hit and second.cache_hit
    assert results_identical(first, cold)
    assert results_identical(second, cold)
    assert second.store_key == job_key(request)


def test_run_cached_round_trip(tmp_path):
    request = REQUESTS["turbo"]
    store = RunStore(tmp_path)
    r1, hit1, key1 = run_cached(store, request)
    r2, hit2, key2 = run_cached(store, request)
    assert (hit1, hit2) == (False, True)
    assert key1 == key2 == job_key(request)
    assert results_identical(r1, r2)
    # use_cache=False recomputes but still writes back
    r3, hit3, _ = run_cached(store, request, use_cache=False)
    assert not hit3 and results_identical(r1, r3)
