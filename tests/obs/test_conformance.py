"""Differential conformance + the acceptance-criteria reconstruction.

One seeded problem goes through every execution surface — the serial
engine, the batched engine, and the full service path (thread-mode
workers, chunked continuous batching) — each with tracing armed.  The
per-generation best-fitness streams *extracted from the traces* must be
identical across all three, proving the trace stream carries the engine's
exact semantics through every layer.

The acceptance test then replays the issue's criterion end to end: a
``repro trace`` invocation on a seeded BF6 run must emit a JSON-lines
trace from which the Fig. 8 convergence data and a phase breakdown are
reconstructed automatically.
"""

import json

from repro.cli import main
from repro.core.batch import BatchBehavioralGA
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.obs import (
    Tracer,
    best_series,
    phase_breakdown,
    read_trace,
    service_best_streams,
    spans,
    sum_series,
    use_tracer,
)
from repro.service import BatchPolicy, GARequest, GAService

PARAMS = GAParameters(
    n_generations=40, population_size=32,
    crossover_threshold=10, mutation_threshold=1, rng_seed=0x061F,
)
FN = by_name("mBF6_2")


def test_differential_conformance_across_engines_and_service():
    # surface 1: serial engine, traced
    serial_tracer = Tracer()
    serial_result = BehavioralGA(
        PARAMS, FN, record_members=False, tracer=serial_tracer
    ).run()
    serial_stream = best_series(serial_tracer.records)

    # surface 2: batched engine (the job rides replica 1 of 3), traced
    batch_tracer = Tracer()
    params_list = [PARAMS.with_(rng_seed=s) for s in (0x2961, 0x061F, 45890)]
    BatchBehavioralGA(
        params_list, FN, record_members=False, tracer=batch_tracer
    ).run()
    batch_stream = best_series(batch_tracer.records, replica=1)

    # surface 3: the service path — thread-mode workers share the process
    # tracer, a small admit interval forces multiple chunks per job
    service_tracer = Tracer()
    request = GARequest(params=PARAMS, fitness_name=FN.name)
    decoys = [
        GARequest(params=PARAMS.with_(rng_seed=s), fitness_name=FN.name)
        for s in (0x2961, 45890)
    ]
    policy = BatchPolicy(max_batch=4, max_wait_s=0.005, admit_interval=8)
    with use_tracer(service_tracer):
        with GAService(workers=2, mode="thread", policy=policy) as service:
            results = service.run_all([request] + decoys, timeout=60)
    job_id = results[0].job_id
    assert results[0].n_chunks > 1  # chunking really happened
    streams = service_best_streams(service_tracer.records)
    service_stream = streams[job_id]

    expected = serial_result.best_series()
    assert len(expected) == PARAMS.n_generations + 1
    assert serial_stream == expected
    assert batch_stream == expected
    assert service_stream == expected

    # the decoy jobs' spliced streams match their own solo runs too
    for decoy, result in zip(decoys, results[1:]):
        solo = BehavioralGA(decoy.params, FN, record_members=False).run()
        assert streams[result.job_id] == solo.best_series()


def test_service_chunk_spans_name_their_jobs():
    tracer = Tracer()
    request = GARequest(params=PARAMS.with_(n_generations=12), fitness_name=FN.name)
    policy = BatchPolicy(max_batch=2, max_wait_s=0.005, admit_interval=6)
    with use_tracer(tracer):
        with GAService(workers=1, mode="thread", policy=policy) as service:
            (result,) = service.run_all([request], timeout=60)
    chunks = spans(tracer.records, "service.chunk")
    assert len(chunks) == result.n_chunks
    for chunk in chunks:
        assert result.job_id in chunk["job_ids"]
        assert chunk["dur"] > 0


def test_acceptance_repro_trace_reconstructs_fig8_and_phases(tmp_path, capsys):
    """The issue's acceptance criterion, end to end through the CLI."""
    out = tmp_path / "bf6.jsonl"
    rc = main([
        "trace", "--fitness", "mBF6_2", "--pop", "64", "--gens", "64",
        "--seed", "0x061F", "--out", str(out),
    ])
    assert rc == 0
    records = read_trace(str(out))
    for record in records:
        json.dumps(record)  # every line is a JSON object

    # Fig. 8 data: per-generation best and sum-of-fitness curves
    best = best_series(records)
    sums = sum_series(records)
    assert len(best) == len(sums) == 65
    assert all(b2 >= b1 for b1, b2 in zip(best, best[1:]))  # elitist: monotone
    # cross-check against a direct engine run of the same seed
    direct = BehavioralGA(
        GAParameters(
            n_generations=64, population_size=64,
            crossover_threshold=10, mutation_threshold=1, rng_seed=0x061F,
        ),
        FN, record_members=False,
    ).run()
    assert best == direct.best_series()
    assert sums == [g.fitness_sum for g in direct.history]

    # phase breakdown: every behavioural phase present with positive time
    breakdown = phase_breakdown(records)
    for phase in ("selection", "crossover", "mutation", "eval", "elitism", "record"):
        assert breakdown[phase] > 0
    err = capsys.readouterr().err
    assert "best-fitness series" in err and "selection" in err


def test_cli_stats_local_demo_reports_engine_rates(capsys):
    rc = main(["stats", "--pop", "16", "--gens", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    snapshot = json.loads(out)
    assert snapshot["counters"]["engine.runs"] >= 1
    assert snapshot["engine_rates"]["generations_per_s"] >= 0
    assert "engine.run_seconds" in snapshot["histograms"]


def test_cli_run_trace_out_flag(tmp_path, capsys):
    out = tmp_path / "run.jsonl"
    rc = main([
        "run", "--fitness", "F3", "--pop", "16", "--gens", "8",
        "--seed", "45890", "--trace-out", str(out),
    ])
    assert rc == 0
    records = read_trace(str(out))
    assert len(best_series(records)) == 9
    assert "F3: best" in capsys.readouterr().out
