"""Scan-chain insertion and test access (Sec. III-C.2 of the paper).

"The proposed GA core has a scan chain connecting all the registers in the
design.  A scan chain test can be run on the core by asserting the test
signal and feeding the user test pattern in the scanin port."

:func:`insert_scan_chain` converts every DFF of a netlist into a
SCAN_REGISTER threaded into one chain with ``test``/``scanin``/``scanout``
ports.  :class:`Stepper` provides stateful clocked simulation, and
:func:`scan_load` / :func:`scan_dump` shift full register states in and out
exactly as an ATE would.  :func:`scan_load_many` / :func:`scan_dump_many`
do the same for a whole rack of virtual testers at once on the
bit-parallel engine (:class:`repro.hdl.bitsim.PackedStepper`): machine
``m`` lives in packed bit position ``m`` and shifts its own image.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.hdl.netlist import Netlist, NetlistError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdl import bitsim


class Stepper:
    """Stateful clocked simulator over a netlist (one instance per run)."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.state = netlist._initial_values()

    def step(self, **inputs: int) -> dict[str, int]:
        """Apply inputs, settle combinational logic, sample outputs, clock."""
        nl = self.netlist
        nl._apply_inputs(self.state, inputs)
        nl._propagate(self.state)
        outputs = nl._read_outputs(self.state)
        nl._clock_flops(self.state, inputs)
        return outputs

    def peek_flops(self) -> list[int]:
        """Current flop values in scan-chain order (oracle access, used by
        tests to validate what scan_dump shifts out)."""
        chain = sorted(
            (f for f in self.netlist.dffs if f.scan_index >= 0),
            key=lambda f: f.scan_index,
        )
        return [self.state[f.q] for f in chain]


def insert_scan_chain(netlist: Netlist) -> int:
    """Thread all flops of ``netlist`` into a scan chain.

    Adds 1-bit ``test`` and ``scanin`` inputs and a ``scanout`` output (ports
    18-20 of Table II).  Returns the chain length.  The chain order is the
    flop declaration order: ``scanin -> dff0 -> dff1 -> ... -> scanout``.
    """
    if netlist.scan_ports is not None:
        raise NetlistError(f"netlist {netlist.name!r} already has a scan chain")
    if not netlist.dffs:
        raise NetlistError(f"netlist {netlist.name!r} has no registers to chain")
    test = netlist.add_input("test", 1)[0]
    scanin = netlist.add_input("scanin", 1)[0]
    for index, dff in enumerate(netlist.dffs):
        dff.scan_index = index
    scanout = netlist.dffs[-1].q
    netlist.add_output("scanout", [scanout])
    netlist.scan_ports = (test, scanin, scanout)
    return len(netlist.dffs)


def scan_load(stepper: Stepper, bits: list[int], **held_inputs: int) -> None:
    """Shift a full register image into the chain (bit for the *last* flop
    first, so after ``len(bits)`` cycles flop ``i`` holds ``bits[i]``)."""
    nl = stepper.netlist
    if nl.scan_ports is None:
        raise NetlistError("no scan chain inserted")
    if len(bits) != len(nl.dffs):
        raise NetlistError(f"expected {len(nl.dffs)} bits, got {len(bits)}")
    for bit in reversed(bits):
        stepper.step(test=1, scanin=bit, **held_inputs)


def scan_dump(stepper: Stepper, **held_inputs: int) -> list[int]:
    """Shift the full register state out of the chain (destructive: zeros
    are shifted in behind).  Returns ``bits[i]`` = value of flop ``i``."""
    nl = stepper.netlist
    if nl.scan_ports is None:
        raise NetlistError("no scan chain inserted")
    n = len(nl.dffs)
    out: list[int] = []
    for _ in range(n):
        result = stepper.step(test=1, scanin=0, **held_inputs)
        out.append(result["scanout"])
    out.reverse()
    return out


# ----------------------------------------------------------------------
# word-parallel scan access (bit-parallel engine)
# ----------------------------------------------------------------------
def scan_load_many(
    stepper: "bitsim.PackedStepper",
    images: list[list[int]],
    held_inputs: list[dict] | None = None,
) -> None:
    """Shift one full register image per machine into the chain, all
    machines in parallel (machine ``m`` rides packed bit ``m``)."""
    nl = stepper.comp.netlist
    if nl.scan_ports is None:
        raise NetlistError("no scan chain inserted")
    if len(images) != stepper.machines:
        raise NetlistError(f"expected {stepper.machines} images, got {len(images)}")
    if any(len(image) != len(nl.dffs) for image in images):
        raise NetlistError(f"images must each hold {len(nl.dffs)} bits")
    held_inputs = held_inputs or [{} for _ in range(stepper.machines)]
    for pos in reversed(range(len(nl.dffs))):
        stepper.step(
            [
                dict(held, test=1, scanin=image[pos])
                for held, image in zip(held_inputs, images)
            ]
        )


def scan_dump_many(
    stepper: "bitsim.PackedStepper", held_inputs: list[dict] | None = None
) -> list[list[int]]:
    """Shift every machine's register state out of the chain in parallel
    (destructive: zeros shift in behind).  Returns one image per machine."""
    nl = stepper.comp.netlist
    if nl.scan_ports is None:
        raise NetlistError("no scan chain inserted")
    held_inputs = held_inputs or [{} for _ in range(stepper.machines)]
    images: list[list[int]] = [[] for _ in range(stepper.machines)]
    for _ in range(len(nl.dffs)):
        results = stepper.step(
            [dict(held, test=1, scanin=0) for held in held_inputs]
        )
        for machine, result in enumerate(results):
            images[machine].append(result["scanout"])
    for image in images:
        image.reverse()
    return images
