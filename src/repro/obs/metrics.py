"""Counters, gauges, and histograms behind one thread-safe registry.

The serving layer's :class:`~repro.service.metrics.ServiceMetrics` and the
engine-level instrumentation both record into :class:`MetricsRegistry`
instruments: a :class:`Counter` is a monotonic total, a :class:`Gauge` a
last-written value, a :class:`Histogram` a bounded sample reservoir with
nearest-rank percentiles (the p50/p95 the service snapshot reports).

Two registries matter in practice:

* the process-wide default (:func:`get_registry`) absorbs engine-level
  aggregates — runs, generations, evaluations, SEU recovery actions,
  slab-chunk profile timings — recorded once per run or per rare event,
  so the cost is unmeasurable against the work being counted;
* each :class:`~repro.service.metrics.ServiceMetrics` owns a private
  registry so independent service instances (and tests) never share
  totals.

Engine counter names (the ``repro stats`` vocabulary)::

    engine.runs             completed engine runs (serial + batch replicas)
    engine.generations      generations evolved across all runs
    engine.evaluations      FEM evaluations across all runs
    engine.run_seconds      histogram of per-run wall time
    resilience.seu_corrected    SECDED single-bit corrections
    resilience.seu_double       detected-uncorrectable words
    resilience.fem_failovers    watchdog mux failovers
    resilience.rollbacks        checkpoint rollbacks
    profile.service.slab_chunk  histogram of slab-chunk wall time

The serving layer adds a fault-tolerance vocabulary on its private
registry (surfaced as the ``faults`` section of the service snapshot)::

    service.chunks.retried      chunk dispatches re-executed after a fault
    service.chunks.timed_out    chunks failed by the hung-chunk watchdog
    service.pool.respawns       process-pool respawns after worker death
    service.jobs.shed           jobs rejected by overload shedding
    service.jobs.cancelled      jobs cancelled (handle or disconnect)
    service.jobs.deadline_enforced  jobs failed by an enforced deadline
    service.jobs.resumed        jobs reclaimed from spilled checkpoints
    service.slabs.checkpointed  slab checkpoints written to the spill dir
    service.connections.dropped TCP connections dropped by chaos/fault
    service.recovery_latency_s  histogram of fault-to-recovery wall time
"""

from __future__ import annotations

import threading
import time


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values``.

    Edge cases are defined, not accidental: an empty list yields 0.0 and a
    single sample is every percentile of itself (rank arithmetic cannot
    index out of range — locked down in ``tests/obs/test_metrics.py``).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


class Counter:
    """A monotonic total.  ``inc`` is atomic under the owning lock."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A last-written value with a remembered maximum."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0
        self._max = 0.0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value

    @property
    def max(self) -> int | float:
        with self._lock:
            return self._max


class Histogram:
    """A bounded reservoir of samples with count/sum kept exactly.

    The reservoir holds the first ``max_samples`` observations (the
    service's historical behaviour); count, sum, and max stay exact
    beyond the cap, so means and totals never degrade — only the
    percentile estimate freezes its sample base.
    """

    def __init__(self, name: str, lock: threading.Lock, max_samples: int = 100_000):
        self.name = name
        self._lock = lock
        self.max_samples = max_samples
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def samples(self) -> list[float]:
        """A copy of the reservoir (at most ``max_samples`` values)."""
        with self._lock:
            return list(self._samples)

    def quantile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (0.0 when empty)."""
        with self._lock:
            samples = list(self._samples)
        return percentile(samples, q)

    def summary(self) -> dict:
        """count/mean/p50/p95/max — the standard reporting tuple."""
        with self._lock:
            samples = list(self._samples)
            count, total, peak = self._count, self._sum, self._max
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "p50": percentile(samples, 50),
            "p95": percentile(samples, 95),
            "max": peak,
        }


class MetricsRegistry:
    """A named family of instruments sharing one lock.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent by
    name), so independent call sites converge on the same instrument.
    One lock for the whole registry keeps the recording hot path to a
    single acquisition and makes multi-instrument snapshots coherent.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, self._lock)
            return instrument

    def histogram(self, name: str, max_samples: int = 100_000) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, self._lock, max_samples
                )
            return instrument

    @property
    def uptime_s(self) -> float:
        return max(time.monotonic() - self.started_at, 1e-9)

    def rate(self, counter_name: str) -> float:
        """A counter's average per-second rate over the registry lifetime."""
        with self._lock:
            instrument = self._counters.get(counter_name)
            value = instrument._value if instrument is not None else 0
        return value / self.uptime_s

    def snapshot(self) -> dict:
        """Every instrument's state as one JSON-serializable dict."""
        with self._lock:
            counters = {n: c._value for n, c in self._counters.items()}
            gauges = {
                n: {"value": g._value, "max": g._max}
                for n, g in self._gauges.items()
            }
            histograms = list(self._histograms.values())
        return {
            "uptime_s": round(self.uptime_s, 3),
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                h.name: h.summary() for h in sorted(histograms, key=lambda h: h.name)
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests isolating the process registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.started_at = time.monotonic()


#: The process-wide registry absorbing engine-level aggregates.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (engine metrics, profiles)."""
    return REGISTRY


def record_engine_run(generations: int, evaluations: int, seconds: float,
                      registry: MetricsRegistry | None = None) -> None:
    """Fold one finished engine run (or batch replica set) into the
    registry — a handful of lock acquisitions per *run*, which is why the
    engines call it unconditionally."""
    reg = registry or REGISTRY
    reg.counter("engine.runs").inc()
    reg.counter("engine.generations").inc(generations)
    reg.counter("engine.evaluations").inc(evaluations)
    reg.histogram("engine.run_seconds").observe(seconds)


def engine_rates(registry: MetricsRegistry | None = None) -> dict:
    """The derived throughput view: generations/sec and evals/sec."""
    reg = registry or REGISTRY
    return {
        "generations_per_s": round(reg.rate("engine.generations"), 1),
        "evaluations_per_s": round(reg.rate("engine.evaluations"), 1),
        "runs": reg.counter("engine.runs").value,
    }


def record_archipelago_run(islands: int, generations: int, epochs: int,
                           migrations: int, seconds: float,
                           registry: MetricsRegistry | None = None) -> None:
    """Fold one finished archipelago run into the registry.

    ``island.island_generations`` counts island-generations (islands x
    generations) — the unit the vectorized slab actually advances — so
    :func:`archipelago_rates` can report islands-per-second throughput at
    any generation budget.  Called once per run, like
    :func:`record_engine_run` (which the underlying slab also reports to).
    """
    reg = registry or REGISTRY
    reg.counter("island.runs").inc()
    reg.counter("island.islands").inc(islands)
    reg.counter("island.island_generations").inc(islands * generations)
    reg.counter("island.epochs").inc(epochs)
    reg.counter("island.migrations").inc(migrations)
    reg.histogram("island.run_seconds").observe(seconds)


def archipelago_rates(registry: MetricsRegistry | None = None) -> dict:
    """Derived archipelago throughput: island-generations/sec plus the
    raw migration and run counters."""
    reg = registry or REGISTRY
    return {
        "island_generations_per_s": round(
            reg.rate("island.island_generations"), 1
        ),
        "islands": reg.counter("island.islands").value,
        "migrations": reg.counter("island.migrations").value,
        "runs": reg.counter("island.runs").value,
    }
