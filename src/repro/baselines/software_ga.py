"""The software GA of the speedup experiment (Sec. IV-C).

"A software implementation of a GA optimizer, similar to the GA optimization
algorithm in the IP core, was developed in the C programming language" and
run on the Virtex-II Pro's PowerPC with the lookup-table FEM on the fabric.
:class:`SoftwareGA` is that program's Python analogue: algorithmically
identical to the IP core (so it produces bit-identical results given the
same RNG), deliberately *scalar* (the C program is a sequential loop nest,
not a vector engine), and instrumented with operation counters —

* ``rng_calls`` — PRNG invocations,
* ``selection_scans`` — cumulative-sum loop iterations,
* ``fitness_calls`` — bus round-trips to the FEM (the dominant cost the
  paper highlights for EHW-style applications),
* ``memory_ops`` — population reads/writes,
* ``arith_ops`` — adds/compares in the GA inner loops —

which :mod:`repro.analysis.timing` prices with a PowerPC-style cost model to
regenerate the paper's ~5.16x hardware/software comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.fitness.base import FitnessFunction
from repro.rng.base import RandomSource
from repro.rng.cellular_automaton import CellularAutomatonPRNG


@dataclass
class OpCounters:
    """Instruction-level operation counts of one software GA run."""

    rng_calls: int = 0
    selection_scans: int = 0
    fitness_calls: int = 0
    memory_ops: int = 0
    arith_ops: int = 0

    def total(self) -> int:
        return (
            self.rng_calls
            + self.selection_scans
            + self.fitness_calls
            + self.memory_ops
            + self.arith_ops
        )


class SoftwareGA:
    """Scalar software GA, algorithm-identical to the IP core."""

    def __init__(
        self,
        params: GAParameters,
        fitness: FitnessFunction,
        rng: RandomSource | None = None,
    ):
        self.params = params
        self.fitness = fitness
        self.rng = rng if rng is not None else CellularAutomatonPRNG(params.rng_seed)
        self.ops = OpCounters()
        self.history: list[GenerationStats] = []

    # ------------------------------------------------------------------
    def _draw(self) -> int:
        self.ops.rng_calls += 1
        return self.rng.next_word()

    def _evaluate(self, table, ind: int) -> int:
        self.ops.fitness_calls += 1
        return int(table[ind])

    def _select(self, inds: list[int], fits: list[int], total: int) -> int:
        threshold = (self._draw() * total) >> 16
        self.ops.arith_ops += 2
        cum = 0
        for j in range(len(inds)):
            cum += fits[j]
            self.ops.selection_scans += 1
            self.ops.memory_ops += 1
            if cum > threshold:
                return inds[j]
        return inds[-1]

    def _record(self, generation: int, inds: list[int], fits: list[int]) -> None:
        best = max(range(len(fits)), key=lambda i: fits[i])
        self.history.append(
            GenerationStats(
                generation=generation,
                best_fitness=fits[best],
                best_individual=inds[best],
                fitness_sum=sum(fits),
                population_size=len(inds),
                fitnesses=list(fits),
            )
        )

    # ------------------------------------------------------------------
    def run(self):
        """Execute the optimization; returns a
        :class:`repro.core.system.GAResult` (cycles left None — the timing
        model prices the run from the counters instead)."""
        from repro.core.system import GAResult

        p = self.params
        table = self.fitness.table()
        pop = p.population_size
        self.ops = OpCounters()
        self.history = []

        inds = [self._draw() for _ in range(pop)]
        fits = [self._evaluate(table, ind) for ind in inds]
        self.ops.memory_ops += 2 * pop
        best_ind, best_fit = inds[0], fits[0]
        for ind, fit in zip(inds, fits):
            self.ops.arith_ops += 1
            if fit > best_fit:
                best_ind, best_fit = ind, fit
        self._record(0, inds, fits)

        for gen in range(1, p.n_generations + 1):
            total = sum(fits)
            self.ops.arith_ops += pop
            new_inds, new_fits = [best_ind], [best_fit]
            self.ops.memory_ops += 2
            while len(new_inds) < pop:
                p1 = self._select(inds, fits, total)
                p2 = self._select(inds, fits, total)
                if (self._draw() & 0xF) < p.crossover_threshold:
                    cut = self._draw() & 0xF
                    mask = (1 << cut) - 1
                    o1 = (p1 & mask) | (p2 & ~mask & 0xFFFF)
                    o2 = (p2 & mask) | (p1 & ~mask & 0xFFFF)
                    self.ops.arith_ops += 6
                else:
                    o1, o2 = p1, p2
                if (self._draw() & 0xF) < p.mutation_threshold:
                    o1 ^= 1 << (self._draw() & 0xF)
                    self.ops.arith_ops += 2
                f1 = self._evaluate(table, o1)
                new_inds.append(o1)
                new_fits.append(f1)
                self.ops.memory_ops += 2
                self.ops.arith_ops += 1
                if f1 > best_fit:
                    best_ind, best_fit = o1, f1
                if len(new_inds) < pop:
                    if (self._draw() & 0xF) < p.mutation_threshold:
                        o2 ^= 1 << (self._draw() & 0xF)
                        self.ops.arith_ops += 2
                    f2 = self._evaluate(table, o2)
                    new_inds.append(o2)
                    new_fits.append(f2)
                    self.ops.memory_ops += 2
                    self.ops.arith_ops += 1
                    if f2 > best_fit:
                        best_ind, best_fit = o2, f2
            inds, fits = new_inds, new_fits
            self._record(gen, inds, fits)

        return GAResult(
            best_individual=best_ind,
            best_fitness=best_fit,
            history=self.history,
            evaluations=self.ops.fitness_calls,
            params=p,
            fitness_name=self.fitness.name,
            cycles=None,
        )
