"""A miniature high-level synthesis flow — the AUDI methodology (Sec. III-A).

"High-level synthesis (HLS) is the process of automatically synthesizing an
RT-level description of a system from its behavioral description.  This
process consists of extracting the dataflow graph (DFG) of the system from
its behavioral description, scheduling all the operations in the DFG,
allocating functional unit resources ..., binding each operation ..., and
generating control signals to enable correct operation of the synthesized
datapath."

This package implements exactly that pipeline over the repo's gate-level
substrate:

* :mod:`repro.hls.dfg`      — dataflow-graph construction (a small builder
  API standing in for the behavioral-VHDL front end);
* :mod:`repro.hls.schedule` — ASAP/ALAP and resource-constrained list
  scheduling with mobility;
* :mod:`repro.hls.allocate` — functional-unit allocation and binding, plus
  register-lifetime analysis;
* :mod:`repro.hls.generate` — datapath + one-hot controller emission as a
  flat sequential gate netlist (verified against direct DFG evaluation).

The output netlists feed the same downstream tooling as the hand-built GA
datapath: scan insertion, resource estimation, fault simulation, export.
"""

from repro.hls.dfg import DFG, Op, OpType
from repro.hls.schedule import ResourceConstraints, Schedule, asap, alap, list_schedule
from repro.hls.allocate import Allocation, allocate
from repro.hls.generate import synthesize

__all__ = [
    "DFG",
    "Op",
    "OpType",
    "ResourceConstraints",
    "Schedule",
    "asap",
    "alap",
    "list_schedule",
    "Allocation",
    "allocate",
    "synthesize",
]
