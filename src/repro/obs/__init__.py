"""Unified observability: tracing, metrics, and profiling hooks.

One package gives every layer of the stack the same three probe kinds:

* :mod:`repro.obs.tracer` — structured span/event tracing (JSON lines,
  monotonic timestamps, nested spans) wired into the behavioural, batch,
  cycle-accurate, island, resilience, and service layers;
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  (the engine aggregates behind ``repro stats`` and the substrate the
  service metrics are built on);
* :mod:`repro.obs.profile` — :class:`ProfileScope` timed sections and a
  :class:`SamplingProfiler` wall-clock stack sampler;
* :mod:`repro.obs.analyze` — reconstruction helpers turning a trace
  stream back into paper artefacts (Fig. 8 convergence series, phase
  breakdowns, per-job service streams).

The whole layer is zero-cost when disabled: the default tracer is the
no-op :data:`NULL_TRACER`, engines hoist a single ``enabled`` check out
of their hot loops, and a run without tracing is bit-identical to (and
within measurement noise of) an uninstrumented one.
"""

from repro.obs.analyze import (
    best_series,
    cycle_best_series,
    cycle_phase_breakdown,
    events,
    phase_breakdown,
    service_best_streams,
    spans,
    sum_series,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    archipelago_rates,
    engine_rates,
    get_registry,
    percentile,
    record_archipelago_run,
    record_engine_run,
)
from repro.obs.profile import ProfileScope, SamplingProfiler
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    read_trace,
    set_tracer,
    use_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "read_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "percentile",
    "record_engine_run",
    "engine_rates",
    "record_archipelago_run",
    "archipelago_rates",
    "ProfileScope",
    "SamplingProfiler",
    "events",
    "spans",
    "best_series",
    "sum_series",
    "phase_breakdown",
    "cycle_best_series",
    "cycle_phase_breakdown",
    "service_best_streams",
]
