"""Service-level run-store caching: admission hits, coalescing, write-back.

The acceptance property of the cache layer: a job submitted twice is
computed once — the second submission returns a bit-identical result with
``cache_hit=True`` without dispatching anything to the worker pool.
"""

import pytest

from repro.core.params import GAParameters
from repro.service import BatchPolicy, GARequest, GAService
from repro.store import RunStore, job_key, results_identical


def make_request(seed=0x061F, gens=16, pop=16, **kwargs):
    return GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
        ),
        fitness_name=kwargs.pop("fitness_name", "mBF6_2"),
        **kwargs,
    )


def test_second_submission_is_cache_hit_without_dispatch(tmp_path):
    request = make_request()
    with GAService(workers=2, mode="thread", store_dir=tmp_path) as service:
        first = service.submit(request).result(30)
        chunks_after_first = service.metrics.chunks
        second = service.submit(request).result(30)
        assert service.metrics.chunks == chunks_after_first  # no dispatch
    assert not first.cache_hit and second.cache_hit
    assert results_identical(first, second)
    assert first.store_key == second.store_key == job_key(request)
    assert second.n_chunks == 0 and second.wait_s == 0.0
    assert service.metrics.cache_hits == 1
    assert service.metrics.cache_misses == 1
    assert service.metrics.cache_writes == 1
    assert service.metrics.completed == 2
    snapshot = service.snapshot()
    assert snapshot["cache"] == {
        "hits": 1, "misses": 1, "coalesced": 0, "writes": 1,
    }


def test_duplicate_burst_coalesces_to_one_computation(tmp_path):
    request = make_request(gens=400, pop=16)
    policy = BatchPolicy(max_batch=4, admit_interval=16)
    with GAService(
        workers=1, mode="thread", policy=policy, store_dir=tmp_path
    ) as service:
        handles = [service.submit(request) for _ in range(5)]
        results = [handle.result(60) for handle in handles]
    assert service.metrics.coalesced == 4
    assert service.metrics.cache_writes == 1
    primary = [r for r in results if not r.cache_hit]
    followers = [r for r in results if r.cache_hit]
    assert len(primary) == 1 and len(followers) == 4
    for follower in followers:
        assert results_identical(follower, primary[0])
    assert len({r.job_id for r in results}) == 5  # everyone keeps their id


def test_follower_cancel_leaves_primary_running(tmp_path):
    request = make_request(gens=400, pop=16)
    with GAService(
        workers=1, mode="thread",
        policy=BatchPolicy(max_batch=4, admit_interval=16),
        store_dir=tmp_path,
    ) as service:
        primary = service.submit(request)
        follower = service.submit(request)
        assert follower.cancel()
        with pytest.raises(Exception):
            follower.result(5)
        result = primary.result(60)
    assert not result.cache_hit
    assert service.metrics.cancelled == 1


def test_use_cache_false_recomputes_but_writes_back(tmp_path):
    cached = make_request()
    opted_out = make_request(use_cache=False)
    assert job_key(cached) == job_key(opted_out)  # scheduling-only field
    with GAService(workers=2, mode="thread", store_dir=tmp_path) as service:
        service.submit(cached).result(30)
        again = service.submit(opted_out).result(30)
        assert not again.cache_hit  # opted out of the read path
        assert service.metrics.cache_writes == 2
        third = service.submit(cached).result(30)
        assert third.cache_hit


def test_service_level_no_cache_is_recorder_mode(tmp_path):
    request = make_request()
    with GAService(
        workers=2, mode="thread", store_dir=tmp_path, cache=False
    ) as service:
        first = service.submit(request).result(30)
        second = service.submit(request).result(30)
        assert not first.cache_hit and not second.cache_hit
        assert service.metrics.cache_hits == 0
        assert service.metrics.cache_writes == 2
    # the store was still populated for future (caching) services
    assert RunStore(tmp_path).has(job_key(request))


def test_cache_persists_across_service_restart(tmp_path):
    request = make_request(seed=0x7777)
    with GAService(workers=2, mode="thread", store_dir=tmp_path) as service:
        cold = service.submit(request).result(30)
    with GAService(workers=2, mode="thread", store_dir=tmp_path) as service:
        warm = service.submit(request).result(30)
        assert service.metrics.chunks == 0  # nothing dispatched at all
    assert warm.cache_hit
    assert results_identical(cold, warm)


def test_store_dir_arms_spill_checkpoints_under_store_root(tmp_path):
    request = make_request(gens=64)
    with GAService(
        workers=1, mode="thread",
        policy=BatchPolicy(max_batch=2, admit_interval=8),
        store_dir=tmp_path,
    ) as service:
        service.submit(request).result(30)
        assert service.metrics.checkpoints > 0
    # retired slabs discard their spills; the directory itself is the
    # store's spill/ subtree
    assert (tmp_path / "spill").is_dir()
    assert not list((tmp_path / "spill").glob("slab-*.json"))
