#!/usr/bin/env python3
"""Multi-fitness switching and preset modes — no re-synthesis required.

Demonstrates the two headline flexibility features:

1. **Eight FEM slots** (Sec. III-B.5): several fitness functions are
   "synthesized" next to the core; ``fitfunc_select`` switches between them
   between runs.  Prior implementations (Table I) would need a full
   re-synthesis for each function.

2. **Preset modes** (Table IV): runs launched with preset 01/10/11 use the
   in-built parameter sets and seeds — the fault-tolerance path when the
   initialization logic is unavailable, and a quick-start for user
   experimentation.
"""

import os

from repro import GAParameters, GASystem, PresetMode
from repro.core.params import PRESET_MODES
from repro.fitness import BF6, F2, F3, MBF6_2, MShubert2D

FAST = os.environ.get("REPRO_EXAMPLES_FAST") == "1"


def main() -> None:
    # --- one system, many fitness functions -------------------------------
    functions = {0: BF6(), 1: F2(), 2: F3(), 3: MBF6_2(), 4: MShubert2D()}
    params = GAParameters(
        n_generations=8 if FAST else 32,
        population_size=32,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=10593,
    )

    print("== switching between FEM slots (same core, same bitstream) ==")
    for slot, fn in functions.items():
        result = GASystem(params, functions, select=slot).run()
        optimum = int(fn.table().max())
        print(
            f"slot {slot}: {fn.name:<11} best {result.best_fitness:>6} "
            f"/ optimum {optimum:>6} "
            f"({100 * result.best_fitness / optimum:5.1f}%)"
        )

    # --- preset modes ------------------------------------------------------
    print("\n== preset modes (Table IV) ==")
    # Preset generation counts (512-4096) are sized for real deployments;
    # scale the demo by running the presets' parameters through the
    # behavioural twin, and one true preset launch in hardware.
    from repro import BehavioralGA

    for mode in (PresetMode.SMALL, PresetMode.MEDIUM, PresetMode.LARGE):
        preset = PRESET_MODES[mode]
        demo = preset.with_(n_generations=64)
        result = BehavioralGA(demo, MBF6_2()).run()
        print(
            f"preset {mode.value:02b}: pop {preset.population_size:>3}, "
            f"gens {preset.n_generations:>4} (demo 64), "
            f"xover {preset.crossover_rate:.4f}, mut {preset.mutation_rate:.4f}, "
            f"seed {preset.rng_seed} -> best {result.best_fitness}"
        )

    print("\nhardware launch with preset 01 (no initialization handshake):")
    system = GASystem(None, MBF6_2(), preset=PresetMode.SMALL)
    # Trim the 512-generation preset run for the demo by observing the
    # per-generation best on the candidate bus and stopping early.
    observe = 5 if FAST else 20
    system.start()
    system.sim.run_until(lambda: len(system.core.history) >= observe, 50_000_000)
    best_so_far = system.core.best_fit
    print(f"  after {observe} of 512 generations: best fitness so far {best_so_far}")
    print("  (the best candidate of every generation is always output ")
    print("   to the application for emergency use, Sec. III-C.3c)")


if __name__ == "__main__":
    main()
