"""Table I — baseline architectures, as features + a live shoot-out.

The paper's Table I is a static feature matrix; here each runnable row also
gets a measured column: best BF6 fitness after a fixed evaluation budget, so
the architectural differences (selection scheme, elitism, rigidity) show up
as numbers.  The proposed core runs with the same budget via its behavioural
twin.
"""

from __future__ import annotations

from repro.baselines import BASELINES
from repro.baselines.registry import feature_table
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness.base import FitnessFunction
from repro.fitness.functions import BF6


def run_table1(
    fitness: FitnessFunction | None = None,
    evaluation_budget: int = 2048,
    seed: int = 45890,
) -> dict:
    """Regenerate Table I with a measured best-fitness column."""
    fn = fitness or BF6()
    rows = feature_table()
    measured: dict[str, int] = {}

    for key, engine_cls in BASELINES.items():
        result = engine_cls().run(fn, evaluation_budget)
        measured[engine_cls.name] = result.best_fitness

    # The proposed core at the same budget: pop 32, gens sized to budget.
    pop = 32
    gens = max(1, (evaluation_budget - pop) // (pop - 1))
    params = GAParameters(
        n_generations=gens,
        population_size=pop,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=seed,
    )
    proposed = BehavioralGA(params, fn).run()
    measured["Proposed"] = proposed.best_fitness

    def _tag(label: str) -> str | None:
        """Citation tag like '[5]' shared by registry rows and engines."""
        if "[" in label and "]" in label:
            return label[label.index("[") : label.index("]") + 1]
        return "Proposed" if "Proposed" in label else None

    measured_by_tag = {_tag(name): value for name, value in measured.items()}
    for row in rows:
        row["best_fitness@budget"] = measured_by_tag.get(
            _tag(row["work"]), "n/a (not runnable)"
        )
    return {
        "id": "Table I",
        "fitness": fn.name,
        "budget": evaluation_budget,
        "rows": rows,
        "measured": measured,
    }
