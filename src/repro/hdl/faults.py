"""Stuck-at fault simulation and scan-based test generation.

The scan chain of Sec. III-C.2 exists to make the flattened core testable:
with every register controllable/observable through the chain, testing the
chip reduces to testing the *combinational* logic between flops.  This
module provides that manufacturing-test substrate:

* the single stuck-at-0/1 fault model over all driven nets;
* serial fault simulation under the scan-test model (flop outputs are
  pseudo-inputs, flop inputs are pseudo-outputs);
* random-pattern test generation with plateau detection — the standard way
  scan vectors for a datapath like this are produced;
* coverage reporting for the full flattened GA core (exercised by the
  example and the test suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.hdl.netlist import Netlist


@dataclass(frozen=True)
class Fault:
    """A single stuck-at fault on one net."""

    net: int
    stuck_at: int  # 0 or 1

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"n{self.net}/SA{self.stuck_at}"


@dataclass
class TestVector:
    """One scan-test pattern: values for primary inputs and flop states."""

    #: Keep pytest from trying to collect this as a test class.
    __test__ = False

    inputs: dict[str, int]
    flops: list[int]


def enumerate_faults(netlist: Netlist) -> list[Fault]:
    """All single stuck-at faults on driven nets (gate outputs, flop
    outputs, primary inputs).

    Trivially untestable faults are excluded: a tie cell's output stuck at
    its own constant value is undetectable by construction (constant-rich
    structures like the thermometer decoders still contain *logically*
    redundant faults beyond this filter — reported as undetected).
    """
    from repro.hdl.gates import GateType

    const_value: dict[int, int] = {}
    for gate in netlist.gates:
        if gate.type == GateType.CONST0:
            const_value[gate.output] = 0
        elif gate.type == GateType.CONST1:
            const_value[gate.output] = 1

    nets: set[int] = set()
    for gate in netlist.gates:
        nets.add(gate.output)
        nets.update(gate.inputs)
    for dff in netlist.dffs:
        nets.add(dff.q)
        nets.add(dff.d)
    for port_nets in netlist.inputs.values():
        nets.update(port_nets)
    return [
        Fault(net, sa)
        for net in sorted(nets)
        for sa in (0, 1)
        if const_value.get(net) != sa
    ]


def _observe(netlist: Netlist, vector: TestVector, fault: Fault | None) -> tuple:
    """Combinational response under the scan-test model.

    Returns (primary output values..., flop D values...) with the optional
    fault injected.  Flop Q nets take the scanned-in state.
    """
    values = [0] * netlist.net_count
    netlist._apply_inputs(values, vector.inputs)
    for dff, state in zip(netlist.dffs, vector.flops):
        values[dff.q] = state
    if fault is not None:
        values[fault.net] = fault.stuck_at
    for gate in netlist.topo_order():
        out = gate.evaluate(values)
        if fault is not None and gate.output == fault.net:
            out = fault.stuck_at
        values[gate.output] = out
    pos = tuple(
        tuple(values[n] for n in nets) for nets in netlist.outputs.values()
    )
    pseudo = tuple(values[dff.d] for dff in netlist.dffs)
    return pos + (pseudo,)


def sample_faults(netlist: Netlist, n: int, seed: int = 1) -> list[Fault]:
    """A uniform random sample of the fault universe.

    Fault *sampling* is the standard industry technique for estimating
    coverage on designs too large for full serial fault simulation: the
    sampled coverage is an unbiased estimate of the true coverage.
    """
    universe = enumerate_faults(netlist)
    if n >= len(universe):
        return universe
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(universe), size=n, replace=False)
    return [universe[i] for i in sorted(picks)]


def detects(netlist: Netlist, vector: TestVector, fault: Fault) -> bool:
    """True when the vector's observed response differs from the fault-free
    machine's — the fault is detected."""
    return _observe(netlist, vector, None) != _observe(netlist, vector, fault)


@dataclass
class CoverageReport:
    """Outcome of fault simulation over a vector set."""

    total_faults: int
    detected: int
    vectors_used: int
    undetected: list[Fault]

    @property
    def coverage(self) -> float:
        return self.detected / self.total_faults if self.total_faults else 1.0


def fault_simulate(
    netlist: Netlist,
    vectors: Iterable[TestVector],
    faults: list[Fault] | None = None,
) -> CoverageReport:
    """Serial fault simulation with fault dropping."""
    faults = faults if faults is not None else enumerate_faults(netlist)
    remaining = set(faults)
    used = 0
    for vector in vectors:
        used += 1
        good = _observe(netlist, vector, None)
        dropped = [
            f for f in remaining if _observe(netlist, vector, f) != good
        ]
        remaining.difference_update(dropped)
        if not remaining:
            break
    return CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        vectors_used=used,
        undetected=sorted(remaining, key=lambda f: (f.net, f.stuck_at)),
    )


def random_vectors(
    netlist: Netlist, count: int, seed: int = 1
) -> list[TestVector]:
    """Random scan patterns (what an LFSR-based BIST would feed)."""
    rng = np.random.default_rng(seed)
    vectors = []
    for _ in range(count):
        inputs = {
            port: int(rng.integers(0, 1 << len(nets)))
            for port, nets in netlist.inputs.items()
        }
        flops = [int(b) for b in rng.integers(0, 2, size=len(netlist.dffs))]
        vectors.append(TestVector(inputs=inputs, flops=flops))
    return vectors


def generate_tests(
    netlist: Netlist,
    target_coverage: float = 0.95,
    batch: int = 32,
    max_vectors: int = 2048,
    seed: int = 1,
    faults: list[Fault] | None = None,
) -> tuple[list[TestVector], CoverageReport]:
    """Random-pattern ATPG: grow the vector set until the coverage target
    or the budget is reached.  Returns (kept vectors, final report).

    Only vectors that detect at least one new fault are kept (test
    compaction), mirroring production scan-vector generation.  Pass a
    ``faults`` subset (e.g. from :func:`sample_faults`) to run in
    fault-sampling mode on large designs.
    """
    faults = faults if faults is not None else enumerate_faults(netlist)
    remaining = set(faults)
    kept: list[TestVector] = []
    produced = 0
    batch_seed = seed
    while remaining and produced < max_vectors:
        coverage = 1 - len(remaining) / len(faults)
        if coverage >= target_coverage:
            break
        for vector in random_vectors(netlist, batch, seed=batch_seed):
            produced += 1
            good = _observe(netlist, vector, None)
            dropped = [
                f for f in remaining if _observe(netlist, vector, f) != good
            ]
            if dropped:
                remaining.difference_update(dropped)
                kept.append(vector)
            if not remaining or produced >= max_vectors:
                break
        batch_seed += 1
    report = CoverageReport(
        total_faults=len(faults),
        detected=len(faults) - len(remaining),
        vectors_used=len(kept),
        undetected=sorted(remaining, key=lambda f: (f.net, f.stuck_at)),
    )
    return kept, report
