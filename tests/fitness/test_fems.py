"""Tests for the FEM components: lookup, combinational, mux, gate-level."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fitness import F2, F3, MBF6_2
from repro.fitness.combinational import (
    CombinationalFEM,
    build_f2_netlist,
    build_f3_netlist,
)
from repro.fitness.lookup import FitnessLookupROM, LookupFEM
from repro.fitness.mux import MAX_SLOTS, ExternalFEMPort, FEMInterface, FitnessMux
from repro.hdl.signal import Signal
from repro.hdl.simulator import Simulator


def run_handshake(sim, iface, candidate, max_ticks=100):
    """Drive one fitness request like the GA core does; return the value."""
    iface.candidate.poke(candidate)
    iface.fit_request.poke(1)
    sim.wait_high(iface.fit_valid, max_ticks)
    value = iface.fit_value.value
    iface.fit_request.poke(0)
    sim.wait_low(iface.fit_valid, max_ticks)
    return value


class TestLookupROM:
    def test_contents_match_function(self):
        rom = FitnessLookupROM(F3())
        assert rom[0x0000] == 0
        assert rom[0xFFFF] == 3060

    def test_bram_count_for_16bit_lut(self):
        rom = FitnessLookupROM(MBF6_2())
        assert rom.storage_bits() == 1 << 20
        assert rom.bram_count() == 57  # ceil(1Mb / 18Kb)


class TestLookupFEM:
    def make(self, fn):
        iface = FEMInterface.create("fem")
        fem = LookupFEM("fem", iface, fn)
        sim = Simulator()
        sim.add(fem)
        return sim, iface, fem

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 0xFFFF))
    def test_returns_table_value(self, cand):
        fn = F3()
        sim, iface, fem = self.make(fn)
        assert run_handshake(sim, iface, cand) == fn(cand)

    def test_multiple_sequential_requests(self):
        fn = F2()
        sim, iface, fem = self.make(fn)
        for cand in (0, 0xFF00, 0x00FF, 0x1234):
            assert run_handshake(sim, iface, cand) == fn(cand)
        assert fem.evaluations == 4

    def test_no_response_without_request(self):
        sim, iface, fem = self.make(F3())
        sim.step(10)
        assert iface.fit_valid.value == 0

    def test_reset_returns_to_idle(self):
        sim, iface, fem = self.make(F3())
        iface.fit_request.poke(1)
        sim.step(1)
        sim.reset()
        assert fem.state == "IDLE" and fem.evaluations == 0


class TestCombinationalFEM:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 0xFFFF))
    def test_matches_function(self, cand):
        fn = F2()
        iface = FEMInterface.create("fem")
        fem = CombinationalFEM("fem", iface, fn)
        sim = Simulator()
        sim.add(fem)
        assert run_handshake(sim, iface, cand) == fn(cand)

    def test_faster_than_lookup(self):
        fn = F3()
        iface_c = FEMInterface.create("c")
        iface_l = FEMInterface.create("l")
        sim_c, sim_l = Simulator(), Simulator()
        sim_c.add(CombinationalFEM("c", iface_c, fn))
        sim_l.add(LookupFEM("l", iface_l, fn))
        iface_c.candidate.poke(1)
        iface_c.fit_request.poke(1)
        t_c = sim_c.wait_high(iface_c.fit_valid)
        iface_l.candidate.poke(1)
        iface_l.fit_request.poke(1)
        t_l = sim_l.wait_high(iface_l.fit_valid)
        assert t_c < t_l


class TestGateLevelFEMs:
    @given(st.integers(0, 0xFFFF))
    def test_f3_netlist_equivalence(self, cand):
        nl = build_f3_netlist()
        assert nl.evaluate({"candidate": cand})["fitness"] == F3()(cand)

    @given(st.integers(0, 0xFFFF))
    def test_f2_netlist_equivalence(self, cand):
        nl = build_f2_netlist()
        assert nl.evaluate({"candidate": cand})["fitness"] == F2()(cand)

    def test_netlists_are_acyclic(self):
        build_f2_netlist().topo_order()
        build_f3_netlist().topo_order()


class TestFitnessMux:
    def build_system(self):
        ga = FEMInterface.create("ga")
        select = Signal("fitfunc_select", 3)
        slot0 = FEMInterface.create("s0")
        slot1 = FEMInterface.create("s1")
        ext = ExternalFEMPort.create()
        mux = FitnessMux(
            "mux", ga, select, slots={0: slot0, 1: slot1}, external={7: ext}
        )
        sim = Simulator()
        sim.add(mux)
        sim.add(LookupFEM("fem0", slot0, F3()))
        sim.add(CombinationalFEM("fem1", slot1, F2()))
        return sim, ga, select, ext

    def test_selects_between_internal_fems(self):
        sim, ga, select, _ = self.build_system()
        cand = 0xFF00
        select.poke(0)
        assert run_handshake(sim, ga, cand) == F3()(cand)
        select.poke(1)
        assert run_handshake(sim, ga, cand) == F2()(cand)

    def test_external_slot_routes_pins(self):
        sim, ga, select, ext = self.build_system()
        select.poke(7)
        ga.candidate.poke(0x1234)
        ga.fit_request.poke(1)
        sim.step(3)
        assert ga.fit_valid.value == 0  # external FEM hasn't answered yet
        ext.fit_value_ext.poke(4242)
        ext.fit_valid_ext.poke(1)
        sim.wait_high(ga.fit_valid)
        assert ga.fit_value.value == 4242

    def test_unused_slot_gives_no_valid(self):
        sim, ga, select, _ = self.build_system()
        select.poke(5)
        ga.fit_request.poke(1)
        sim.step(10)
        assert ga.fit_valid.value == 0

    def test_overlapping_slots_rejected(self):
        ga = FEMInterface.create("ga")
        sel = Signal("sel", 3)
        s = FEMInterface.create("s")
        e = ExternalFEMPort.create()
        with pytest.raises(ValueError):
            FitnessMux("m", ga, sel, slots={1: s}, external={1: e})

    def test_slot_range_enforced(self):
        ga = FEMInterface.create("ga")
        sel = Signal("sel", 3)
        s = FEMInterface.create("s")
        with pytest.raises(ValueError):
            FitnessMux("m", ga, sel, slots={MAX_SLOTS: s})

    def test_max_slots_is_eight(self):
        assert MAX_SLOTS == 8
