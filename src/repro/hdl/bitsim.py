"""Bit-parallel levelized gate-level simulation engine.

The scalar :class:`~repro.hdl.netlist.Netlist` simulator walks the topo
order one Boolean per net per pattern — the right oracle, but O(gates) of
Python interpreter work for every single test pattern.  This module is the
gate-level counterpart of the batched behavioural engine: a netlist is
*compiled once* into a flat, levelized op program over numpy ``uint64``
words, and 64 test patterns (or 64 fault machines — see
:mod:`repro.hdl.faults`) ride in the bit lanes of each word.  Wider batches
add word lanes, so a sweep over *P* patterns costs one vectorized
gather/op/scatter per (level, cell type) instead of ``gates * P`` Python
gate evaluations.

Layout conventions
------------------
* A *values* array has shape ``(net_count, lanes)`` and dtype ``uint64``;
  packed item ``p`` lives in bit ``p % 64`` of lane ``p // 64``.
* Levelization: gates whose inputs are all primary inputs / flop outputs
  are level 0; every other gate sits one level above its deepest driver.
  Within a level, gates are grouped by cell type so each group evaluates
  in a single numpy expression.
* Fault injection is an optional ``force(values)`` callback applied before
  level 0 and after every level, which reproduces exactly the scalar
  fault-simulation semantics (a forced net overrides its driver, and every
  consumer — always in a deeper level — sees the forced word).

The engine is bit-identical to the scalar simulator by construction and by
the property suite in ``tests/hdl/test_bitsim.py``; the scalar path remains
the oracle everywhere.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.hdl.gates import GateType
from repro.hdl.netlist import Netlist, NetlistError

WORD_BITS = 64
ALL_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
_SHIFTS = np.arange(WORD_BITS, dtype=np.uint64)
_ONE = np.uint64(1)


def lane_count(items: int) -> int:
    """Number of 64-bit word lanes needed to pack ``items`` bit positions."""
    return max(1, -(-items // WORD_BITS))


def tail_mask(items: int) -> np.ndarray:
    """Per-lane validity mask for ``items`` packed positions."""
    lanes = lane_count(items)
    mask = np.full(lanes, ALL_ONES, dtype=np.uint64)
    rem = items % WORD_BITS
    if items and rem:
        mask[-1] = np.uint64((1 << rem) - 1)
    return mask


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last axis into uint64 words, LSB first."""
    bits = np.asarray(bits, dtype=np.uint64)
    n = bits.shape[-1]
    lanes = lane_count(n)
    pad = lanes * WORD_BITS - n
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint64)], axis=-1
        )
    words = bits.reshape(bits.shape[:-1] + (lanes, WORD_BITS)) << _SHIFTS
    return np.bitwise_or.reduce(words, axis=-1)


def unpack_bits(words: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: last axis becomes ``n`` 0/1 values."""
    words = np.asarray(words, dtype=np.uint64)
    bits = (words[..., :, None] >> _SHIFTS) & _ONE
    return bits.reshape(words.shape[:-1] + (-1,))[..., :n]


Force = Callable[[np.ndarray], None]


class CompiledNetlist:
    """A netlist compiled into a levelized word-parallel op program."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.net_count = netlist.net_count
        order = netlist.topo_order()
        self._order_ref = order
        self._fingerprint = _fingerprint(netlist)

        for name, nets in netlist.inputs.items():
            if len(nets) > WORD_BITS:
                raise NetlistError(
                    f"input port {name!r} is {len(nets)} bits wide; the packed "
                    f"engine supports at most {WORD_BITS}-bit ports"
                )

        # --- levelize and group by (level, cell type) -----------------
        level_of: dict[int, int] = {}
        grouped: list[dict[GateType, list]] = []
        for gate in order:
            lv = 0
            for nid in gate.inputs:
                src = level_of.get(nid)
                if src is not None and src >= lv:
                    lv = src + 1
            level_of[gate.output] = lv
            if lv == len(grouped):
                grouped.append({})
            grouped[lv].setdefault(gate.type, []).append(gate)

        self.program: list[list[tuple]] = []
        for groups in grouped:
            ops = []
            for gtype, gates in groups.items():
                out = np.array([g.output for g in gates], dtype=np.intp)
                if gtype in (GateType.CONST0, GateType.CONST1):
                    ops.append((gtype, out, None, None))
                elif gtype in (GateType.NOT, GateType.BUF):
                    a = np.array([g.inputs[0] for g in gates], dtype=np.intp)
                    ops.append((gtype, out, a, None))
                else:
                    a = np.array([g.inputs[0] for g in gates], dtype=np.intp)
                    b = np.array([g.inputs[1] for g in gates], dtype=np.intp)
                    ops.append((gtype, out, a, b))
            self.program.append(ops)

        # --- port / flop index tables ---------------------------------
        self.in_port_nets = {
            name: np.array(nets, dtype=np.intp) for name, nets in netlist.inputs.items()
        }
        self.out_port_nets = {
            name: np.array(nets, dtype=np.intp) for name, nets in netlist.outputs.items()
        }
        dffs = netlist.dffs
        self.dff_d = np.array([f.d for f in dffs], dtype=np.intp)
        self.dff_q = np.array([f.q for f in dffs], dtype=np.intp)
        init_bits = np.array([f.init for f in dffs], dtype=bool)
        self.dff_init = np.where(init_bits, ALL_ONES, np.uint64(0))
        chain = sorted(
            ((f.scan_index, i) for i, f in enumerate(dffs) if f.scan_index >= 0)
        )
        self.chain_dff_pos = np.array([i for _s, i in chain], dtype=np.intp)
        self.chain_q = self.dff_q[self.chain_dff_pos]

        # Observables under the scan-test model: primary outputs in port
        # declaration order, then every flop D net (pseudo-outputs) —
        # exactly the response tuple of the scalar ``faults._observe``.
        obs = [n for nets in netlist.outputs.values() for n in nets]
        obs.extend(f.d for f in dffs)
        self.observables = np.array(obs, dtype=np.intp)

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------
    def blank(self, lanes: int) -> np.ndarray:
        """Fresh values array with flops at their init values."""
        values = np.zeros((self.net_count, lanes), dtype=np.uint64)
        if self.dff_q.size:
            values[self.dff_q] = self.dff_init[:, None]
        return values

    def load_inputs(self, values: np.ndarray, vectors: Sequence[dict[str, int]]) -> None:
        """Pack per-pattern input-bus words into the input nets (pattern
        ``p`` -> bit ``p``).  Unknown port names raise NetlistError."""
        self._check_input_names(vectors)
        count = len(vectors)
        for name, nets in self.in_port_nets.items():
            words = np.fromiter(
                (int(v.get(name, 0)) for v in vectors), dtype=np.uint64, count=count
            )
            bits = (words[None, :] >> _SHIFTS[: nets.size, None]) & _ONE
            values[nets] = pack_bits(bits)

    def load_inputs_broadcast(self, values: np.ndarray, input_values: dict[str, int]) -> None:
        """Apply ONE input vector to every packed position (all-lanes 0 or
        all-lanes 1 per net) — the fault-parallel layout."""
        self._check_input_names((input_values,))
        for name, nets in self.in_port_nets.items():
            word = int(input_values.get(name, 0))
            bits = (np.uint64(word) >> _SHIFTS[: nets.size]) & _ONE
            values[nets] = np.where(bits.astype(bool), ALL_ONES, np.uint64(0))[:, None]

    def load_flops(self, values: np.ndarray, flop_states: Sequence[Sequence[int]]) -> None:
        """Pack per-pattern flop states onto the flop Q nets."""
        if not self.dff_q.size:
            return
        arr = np.asarray(flop_states, dtype=np.uint64)
        values[self.dff_q] = pack_bits(arr.T)

    def load_flops_broadcast(self, values: np.ndarray, flops: Sequence[int]) -> None:
        """Apply ONE flop-state image to every packed position."""
        if not self.dff_q.size:
            return
        arr = np.asarray(flops, dtype=bool)
        values[self.dff_q] = np.where(arr, ALL_ONES, np.uint64(0))[:, None]

    def _check_input_names(self, vectors: Sequence[dict[str, int]]) -> None:
        declared = self.netlist.inputs
        unknown = {k for vec in vectors for k in vec if k not in declared}
        if unknown:
            raise NetlistError(
                f"netlist {self.netlist.name!r} has no input port(s) "
                f"{sorted(unknown)}; declared inputs: {sorted(declared)}"
            )

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def sweep(self, values: np.ndarray, force: Force | None = None) -> np.ndarray:
        """One combinational settle: evaluate every level in order.

        ``force`` (fault injection) runs before level 0 and after every
        level, so a forced net always overrides its driver.
        """
        if force is not None:
            force(values)
        for ops in self.program:
            for gtype, out, a, b in ops:
                if gtype is GateType.AND:
                    values[out] = values[a] & values[b]
                elif gtype is GateType.OR:
                    values[out] = values[a] | values[b]
                elif gtype is GateType.NAND:
                    values[out] = ~(values[a] & values[b])
                elif gtype is GateType.NOR:
                    values[out] = ~(values[a] | values[b])
                elif gtype is GateType.XOR:
                    values[out] = values[a] ^ values[b]
                elif gtype is GateType.XNOR:
                    values[out] = ~(values[a] ^ values[b])
                elif gtype is GateType.NOT:
                    values[out] = ~values[a]
                elif gtype is GateType.BUF:
                    values[out] = values[a]
                elif gtype is GateType.CONST0:
                    values[out] = 0
                else:  # CONST1
                    values[out] = ALL_ONES
            if force is not None:
                force(values)
        return values

    def read_outputs(self, values: np.ndarray, count: int) -> list[dict[str, int]]:
        """Unpack the output ports back into one value dict per pattern."""
        result: list[dict[str, int]] = [{} for _ in range(count)]
        for name, nets in self.out_port_nets.items():
            bits = unpack_bits(values[nets], count)  # (width, count)
            words = np.bitwise_or.reduce(bits << _SHIFTS[: nets.size, None], axis=0)
            for i, out in enumerate(result):
                out[name] = int(words[i])
        return result

    def observe_packed(
        self,
        input_vectors: Sequence[dict[str, int]],
        flop_states: Sequence[Sequence[int]],
        force: Force | None = None,
    ) -> np.ndarray:
        """Packed scan-test-model responses: ``(n_observables, lanes)``.

        Matches the scalar ``faults._observe`` bit for bit: nets start at 0
        (NOT flop init), flop Q nets take the scanned-in state, and the
        response rows are primary outputs then flop D nets.
        """
        values = np.zeros((self.net_count, lane_count(len(input_vectors))), dtype=np.uint64)
        self.load_inputs(values, input_vectors)
        self.load_flops(values, flop_states)
        self.sweep(values, force=force)
        return values[self.observables]

    # ------------------------------------------------------------------
    # clocking
    # ------------------------------------------------------------------
    def clock(self, values: np.ndarray) -> None:
        """Packed flop clocking with per-bit scan blending.

        Each packed position is an independent machine; its ``test`` bit
        selects, per machine, between a normal D-input capture and a scan
        shift (chain flops) / hold (unchained flops) — the word-parallel
        version of ``Netlist._clock_flops``.
        """
        if not self.dff_q.size:
            return
        normal = values[self.dff_d]  # gather -> copy (pre-clock snapshot)
        scan_ports = self.netlist.scan_ports
        if scan_ports is None:
            values[self.dff_q] = normal
            return
        test = values[scan_ports[0]]
        test_side = values[self.dff_q]  # hold for unchained flops
        if self.chain_dff_pos.size:
            shifted = np.concatenate(
                [values[scan_ports[1]][None, :], values[self.chain_q[:-1]]], axis=0
            )
            test_side[self.chain_dff_pos] = shifted
        values[self.dff_q] = (test[None, :] & test_side) | (~test[None, :] & normal)


def _fingerprint(netlist: Netlist) -> tuple:
    return (
        netlist.net_count,
        len(netlist.gates),
        len(netlist.dffs),
        len(netlist.inputs),
        len(netlist.outputs),
        netlist.scan_ports,
    )


def compiled(netlist: Netlist) -> CompiledNetlist:
    """Compile ``netlist`` (cached on the netlist, invalidated on edits)."""
    order = netlist.topo_order()
    cached = getattr(netlist, "_compiled", None)
    if (
        cached is not None
        and cached._order_ref is order
        and cached._fingerprint == _fingerprint(netlist)
    ):
        return cached
    comp = CompiledNetlist(netlist)
    netlist._compiled = comp
    return comp


# ----------------------------------------------------------------------
# pattern-parallel front ends
# ----------------------------------------------------------------------
def packed_evaluate(
    netlist: Netlist,
    vectors: Sequence[dict[str, int]],
    states: Sequence[Sequence[int]] | None = None,
) -> list[dict[str, int]]:
    """Word-parallel ``Netlist.evaluate`` over many independent patterns.

    ``states``, when given, holds one full net-value snapshot per pattern
    (the scalar ``state`` argument); otherwise flops start at their init
    values, exactly like the scalar path.
    """
    if not vectors:
        return []
    comp = compiled(netlist)
    if states is None:
        values = comp.blank(lane_count(len(vectors)))
    else:
        arr = np.asarray(states, dtype=np.uint64)  # (patterns, net_count)
        values = pack_bits(arr.T)
    comp.load_inputs(values, vectors)
    comp.sweep(values)
    return comp.read_outputs(values, len(vectors))


class PackedStepper:
    """Word-parallel :class:`~repro.hdl.scan.Stepper`: machine ``m`` lives
    in packed bit position ``m``; scan shifting, normal capture, and hold
    are blended per bit on every clock."""

    def __init__(self, netlist: Netlist, machines: int):
        self.comp = compiled(netlist)
        self.machines = machines
        self.values = self.comp.blank(lane_count(machines))

    def step(self, inputs: Sequence[dict[str, int]]) -> list[dict[str, int]]:
        """One clock for every machine: apply per-machine inputs, settle,
        sample outputs, clock flops.  Returns one output dict per machine."""
        if len(inputs) != self.machines:
            raise NetlistError(
                f"expected {self.machines} input dicts, got {len(inputs)}"
            )
        comp = self.comp
        comp.load_inputs(self.values, inputs)
        comp.sweep(self.values)
        outputs = comp.read_outputs(self.values, self.machines)
        comp.clock(self.values)
        return outputs

    def peek_flops(self) -> list[list[int]]:
        """Per-machine flop values in scan-chain order (oracle access)."""
        bits = unpack_bits(self.values[self.comp.chain_q], self.machines)
        return [list(map(int, bits[:, m])) for m in range(self.machines)]


def simulate_many(
    netlist: Netlist, runs: Sequence[Sequence[dict[str, int]]]
) -> list[list[dict[str, int]]]:
    """Clocked simulation of many machines in lock-step — the word-parallel
    ``Netlist.simulate``.  All runs must have the same cycle count."""
    if not runs:
        return []
    cycles = len(runs[0])
    if any(len(r) != cycles for r in runs):
        raise NetlistError("simulate_many requires equal-length input streams")
    stepper = PackedStepper(netlist, len(runs))
    results: list[list[dict[str, int]]] = [[] for _ in runs]
    for c in range(cycles):
        for m, out in enumerate(stepper.step([run[c] for run in runs])):
            results[m].append(out)
    return results
