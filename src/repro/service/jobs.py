"""Job types for the GA serving layer: requests, handles, results.

A :class:`GARequest` is one client run of the GA core — the five Table III
parameters plus a fitness *slot* (the Sec. III-B.5 8-way FEM mux, here the
paper test-function registry), scheduling hints (priority, deadline), and
an optional resilience preset for hardened execution.  Submitting one to a
:class:`~repro.service.server.GAService` returns a :class:`JobHandle`
immediately; the scheduler later fulfils it with a :class:`JobResult`
whose best individual / fitness / evaluations / per-generation trace are
bit-identical to a solo serial :class:`~repro.core.behavioral.BehavioralGA`
run of the same seed and parameters (the parity property locked down in
``tests/service/test_determinism.py``).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.core.validate import validate_island_params
from repro.fitness.functions import REGISTRY


def params_to_dict(params: GAParameters) -> dict:
    """The five Table III parameters as a plain JSON-ready dict."""
    return {
        "n_generations": params.n_generations,
        "population_size": params.population_size,
        "crossover_threshold": params.crossover_threshold,
        "mutation_threshold": params.mutation_threshold,
        "rng_seed": params.rng_seed,
    }


class ServiceError(RuntimeError):
    """Base class for serving-layer failures."""


class QueueFullError(ServiceError):
    """Admission control rejected the job: the pending queue is at bound."""


class ServiceClosedError(ServiceError):
    """The service is shutting down and no longer accepts submissions."""


class JobFailedError(ServiceError):
    """The worker executing this job's slab raised; carries the cause."""


class JobCancelledError(ServiceError):
    """The job was cancelled: by a non-draining shutdown, by
    :meth:`JobHandle.cancel`, or because its TCP client disconnected."""


class OverloadedError(ServiceError):
    """Admission control shed this job: the service is overloaded (queue
    depth or estimated backlog time beyond the shedding limits)."""


class DeadlineExceededError(ServiceError):
    """An ``deadline_mode="enforce"`` job blew its deadline and was
    cancelled at the next chunk boundary."""


class WorkerCrashError(ServiceError):
    """A worker died mid-chunk (or chaos killed it).  Retryable: the lost
    chunk is stateless and re-executes bit-identically."""


class ChunkTimeoutError(ServiceError):
    """A chunk exceeded the per-chunk wall-clock watchdog
    (``BatchPolicy.chunk_timeout_s``).  Retryable, like a crash."""


class ShutdownTimeoutError(ServiceError):
    """``Scheduler.shutdown(timeout=...)`` expired with the scheduler
    thread still alive; jobs still in flight fail with this error."""


@dataclass(frozen=True)
class RetryPolicy:
    """Per-job chunk-retry behaviour for infrastructure failures.

    A chunk lost to a worker crash, a broken process pool, or the hung-chunk
    watchdog is re-executed up to ``max_attempts`` times (total attempts,
    so ``1`` disables retries); the attempt counter resets on every chunk
    that completes, so the bound is on *consecutive* failures, not failures
    across a long job's lifetime.  Application exceptions raised by the job
    itself are never retried — re-execution is bit-identical, so they would
    simply recur.

    Backoff is exponential with *deterministic* jitter: the jitter fraction
    is derived from ``(rng_seed, attempt)`` by a stable hash, so a retried
    schedule is reproducible run to run — the same discipline as the
    engine's seed-addressed fault streams.
    """

    max_attempts: int = 3
    backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0: {self.backoff_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if self.max_backoff_s < self.backoff_s:
            raise ValueError(
                f"max_backoff_s ({self.max_backoff_s}) must be >= "
                f"backoff_s ({self.backoff_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def delay_s(self, attempt: int, seed: int) -> float:
        """Backoff before re-executing after the ``attempt``-th failure
        (1-based), with seed-derived deterministic jitter."""
        base = min(
            self.backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        frac = zlib.crc32(f"{seed}:{attempt}".encode()) % 1000 / 999.0
        return base * (1.0 + self.jitter * frac)

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "backoff_s": self.backoff_s,
            "multiplier": self.multiplier,
            "max_backoff_s": self.max_backoff_s,
            "jitter": self.jitter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(
            max_attempts=int(data.get("max_attempts", 3)),
            backoff_s=float(data.get("backoff_s", 0.05)),
            multiplier=float(data.get("multiplier", 2.0)),
            max_backoff_s=float(data.get("max_backoff_s", 2.0)),
            jitter=float(data.get("jitter", 0.25)),
        )


@dataclass(frozen=True)
class GARequest:
    """One client job: Table III parameters + fitness slot + scheduling.

    ``priority`` orders the pending queue (lower runs earlier); within a
    priority class jobs run earliest-deadline-first, then FIFO.
    ``deadline_s`` is relative to submission and advisory — the scheduler
    reports misses (``JobResult.deadline_missed``) rather than killing
    late jobs.  ``protection``/``upset_rate``/``campaign_seed`` request
    hardened execution through the resilience layer; hardened jobs run in
    dedicated single-job slabs so their fault injection stays bit-exact
    against a solo hardened run.
    """

    params: GAParameters
    fitness_name: str = "mBF6_2"
    priority: int = 0
    deadline_s: float | None = None
    record_trace: bool = True
    protection: str | None = None
    upset_rate: float = 0.0
    campaign_seed: int = 2026
    #: ``"exact"`` (bit-identical to serial, the default) or ``"turbo"``
    #: (vectorised engine — same operator distributions, different RNG
    #: word allocation; see ``docs/architecture.md``)
    engine_mode: str = "exact"
    #: ``n_islands > 1`` requests an archipelago run: the job executes as
    #: one :class:`~repro.parallel.archipelago.VectorIslandGA` slab
    #: (replica axis = island), routed solo to a worker like hardened
    #: jobs.  ``n_islands == 1`` is an ordinary job and batches normally.
    n_islands: int = 1
    migration_interval: int = 8
    topology: str = "ring"
    #: chunk-retry behaviour for infrastructure failures (crashes, hung
    #: chunks); application errors are never retried
    retry: RetryPolicy = RetryPolicy()
    #: ``"observe"`` reports misses via ``JobResult.deadline_missed``
    #: (the historical behaviour); ``"enforce"`` cancels the job with
    #: :class:`DeadlineExceededError` at the next chunk boundary
    deadline_mode: str = "observe"
    #: ``False`` opts this job out of the run-store read path (no cache
    #: hit, no riding another job's in-flight computation); completed
    #: results are still written back.  Scheduling-only: excluded from
    #: the canonical job key.
    use_cache: bool = True
    #: Which engine substrate executes the job.  ``"behavioral"`` (the
    #: default) runs the behavioural/turbo engines and batches normally;
    #: ``"cycle"`` runs the full cycle-accurate Fig. 4 testbench
    #: (:class:`~repro.core.system.GASystem`); ``"dual32"`` runs the
    #: Fig. 6 dual-core 32-bit composition
    #: (:class:`~repro.core.scaling.DualCoreGA32`), whose
    #: ``fitness_name`` must name a 32-bit objective from
    #: ``repro.fitness.ehw_targets.FITNESS32_REGISTRY``.  Non-behavioral
    #: substrates run exact-mode only, solo (no islands, no protection),
    #: in dedicated single-job slabs.
    substrate: str = "behavioral"

    def __post_init__(self) -> None:
        if self.substrate not in ("behavioral", "cycle", "dual32"):
            raise ValueError(
                f"substrate must be 'behavioral', 'cycle' or 'dual32': "
                f"{self.substrate!r}"
            )
        if self.substrate != "behavioral":
            if self.engine_mode != "exact":
                raise ValueError(
                    f"substrate {self.substrate!r} jobs run the exact "
                    f"engine only, got engine_mode={self.engine_mode!r}"
                )
            if self.n_islands > 1:
                raise ValueError(
                    f"substrate {self.substrate!r} jobs cannot be islands"
                )
            if self.protection is not None:
                raise ValueError(
                    f"substrate {self.substrate!r} jobs cannot request a "
                    "protection preset"
                )
        if self.engine_mode not in ("exact", "turbo"):
            raise ValueError(
                f"engine_mode must be 'exact' or 'turbo': {self.engine_mode!r}"
            )
        if self.engine_mode == "turbo" and self.protection is not None:
            raise ValueError(
                "turbo jobs cannot request a protection preset; hardened "
                "execution requires the exact engine"
            )
        validate_island_params(
            self.n_islands, self.migration_interval, self.topology
        )
        if self.n_islands > 1 and self.protection is not None:
            raise ValueError(
                "island jobs cannot request a protection preset; the "
                "resilience harness addresses solo engine runs"
            )
        if self.substrate == "dual32":
            from repro.fitness.ehw_targets import FITNESS32_REGISTRY

            if self.fitness_name not in FITNESS32_REGISTRY:
                raise ValueError(
                    f"unknown 32-bit fitness {self.fitness_name!r}; "
                    f"available: {sorted(FITNESS32_REGISTRY)}"
                )
        elif self.fitness_name not in REGISTRY:
            raise ValueError(
                f"unknown fitness slot {self.fitness_name!r}; "
                f"available: {sorted(REGISTRY)}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive: {self.deadline_s}")
        if self.deadline_mode not in ("observe", "enforce"):
            raise ValueError(
                f"deadline_mode must be 'observe' or 'enforce': "
                f"{self.deadline_mode!r}"
            )
        if self.deadline_mode == "enforce" and self.deadline_s is None:
            raise ValueError("deadline_mode='enforce' requires deadline_s")
        if self.protection is not None:
            from repro.resilience import PROTECTION_PRESETS

            if self.protection not in PROTECTION_PRESETS:
                raise ValueError(
                    f"unknown protection preset {self.protection!r}; "
                    f"available: {sorted(PROTECTION_PRESETS)}"
                )
        if self.upset_rate < 0:
            raise ValueError(f"upset_rate must be >= 0: {self.upset_rate}")

    # -- wire format (the ``repro submit`` TCP client) ------------------
    def to_dict(self) -> dict:
        return {
            "params": params_to_dict(self.params),
            "fitness_name": self.fitness_name,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "record_trace": self.record_trace,
            "protection": self.protection,
            "upset_rate": self.upset_rate,
            "campaign_seed": self.campaign_seed,
            "engine_mode": self.engine_mode,
            "n_islands": self.n_islands,
            "migration_interval": self.migration_interval,
            "topology": self.topology,
            "retry": self.retry.to_dict(),
            "deadline_mode": self.deadline_mode,
            "use_cache": self.use_cache,
            "substrate": self.substrate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GARequest":
        return cls(
            params=GAParameters(**data["params"]),
            fitness_name=data.get("fitness_name", "mBF6_2"),
            priority=int(data.get("priority", 0)),
            deadline_s=data.get("deadline_s"),
            record_trace=bool(data.get("record_trace", True)),
            protection=data.get("protection"),
            upset_rate=float(data.get("upset_rate", 0.0)),
            campaign_seed=int(data.get("campaign_seed", 2026)),
            engine_mode=data.get("engine_mode", "exact"),
            n_islands=int(data.get("n_islands", 1)),
            migration_interval=int(data.get("migration_interval", 8)),
            topology=data.get("topology", "ring"),
            retry=RetryPolicy.from_dict(data.get("retry", {})),
            deadline_mode=data.get("deadline_mode", "observe"),
            use_cache=bool(data.get("use_cache", True)),
            substrate=data.get("substrate", "behavioral"),
        )


@dataclass
class JobResult:
    """What a completed job streams back to its client."""

    job_id: int
    best_individual: int
    best_fitness: int
    evaluations: int
    fitness_name: str
    params: GAParameters
    history: list[GenerationStats] = field(default_factory=list)
    #: seconds from submission to completion / from submission to first
    #: chunk dispatch
    latency_s: float = 0.0
    wait_s: float = 0.0
    #: slab chunks this job rode in (1 = never suspended)
    n_chunks: int = 0
    deadline_missed: bool = False
    #: harness counters for hardened jobs (rollbacks, corrected words, ...)
    protection_stats: dict = field(default_factory=dict)
    #: archipelago counters for island jobs (islands, migrations,
    #: island_bests, topology); empty for ordinary jobs.  An island job's
    #: ``history`` rows are per *epoch*, not per generation.
    island_stats: dict = field(default_factory=dict)
    #: substrate counters for non-behavioral jobs (``substrate``, plus
    #: ``cycles`` for cycle-accurate runs); empty for ordinary jobs
    substrate_stats: dict = field(default_factory=dict)
    #: cache provenance: ``True`` when this result was served from the
    #: content-addressed run store (or rode another job's in-flight
    #: computation) instead of dispatching to the worker pool
    cache_hit: bool = False
    #: the canonical job key this result is stored under (``None`` when
    #: no run store was attached)
    store_key: str | None = None

    def best_series(self) -> list[int]:
        """Best fitness per generation (matches ``GAResult.best_series``)."""
        return [g.best_fitness for g in self.history]

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "best_individual": self.best_individual,
            "best_fitness": self.best_fitness,
            "evaluations": self.evaluations,
            "fitness_name": self.fitness_name,
            "params": params_to_dict(self.params),
            "history": [
                [g.generation, g.best_fitness, g.best_individual, g.fitness_sum]
                for g in self.history
            ],
            "population_size": self.params.population_size,
            "latency_s": self.latency_s,
            "wait_s": self.wait_s,
            "n_chunks": self.n_chunks,
            "deadline_missed": self.deadline_missed,
            "protection_stats": self.protection_stats,
            "island_stats": self.island_stats,
            "substrate_stats": self.substrate_stats,
            "cache_hit": self.cache_hit,
            "store_key": self.store_key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobResult":
        pop = int(data["population_size"])
        return cls(
            job_id=int(data["job_id"]),
            best_individual=int(data["best_individual"]),
            best_fitness=int(data["best_fitness"]),
            evaluations=int(data["evaluations"]),
            fitness_name=data["fitness_name"],
            params=GAParameters(**data["params"]),
            history=[
                GenerationStats(
                    generation=g, best_fitness=bf, best_individual=bi,
                    fitness_sum=fs, population_size=pop,
                )
                for g, bf, bi, fs in data.get("history", [])
            ],
            latency_s=float(data.get("latency_s", 0.0)),
            wait_s=float(data.get("wait_s", 0.0)),
            n_chunks=int(data.get("n_chunks", 0)),
            deadline_missed=bool(data.get("deadline_missed", False)),
            protection_stats=dict(data.get("protection_stats", {})),
            island_stats=dict(data.get("island_stats", {})),
            substrate_stats=dict(data.get("substrate_stats", {})),
            # pre-PR-9 frames carry no cache provenance: default cold
            cache_hit=bool(data.get("cache_hit", False)),
            store_key=data.get("store_key"),
        )


class JobHandle:
    """Client-side future for one submitted job."""

    def __init__(self, job_id: int, request: GARequest, submitted_at: float):
        self.job_id = job_id
        self.request = request
        self.submitted_at = submitted_at
        self._event = threading.Event()
        self._result: JobResult | None = None
        self._error: BaseException | None = None
        #: set by the scheduler at submission; called by :meth:`cancel`
        self._canceller = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> JobResult:
        """Block until the job completes; raises on failure/cancellation.

        A timed-out wait leaves the job running — call :meth:`cancel` if
        the result is no longer wanted.
        """
        if not self._event.wait(timeout):
            raise TimeoutError(f"job {self.job_id} not done after {timeout}s")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Request cancellation: a pending job is dropped immediately, an
        in-flight one is cancelled cooperatively at its next chunk
        boundary (either way the handle fails with
        :class:`JobCancelledError`).  Returns ``True`` if the request was
        accepted, ``False`` if the job already completed (or the handle
        was never registered with a scheduler)."""
        if self._event.is_set() or self._canceller is None:
            return False
        return bool(self._canceller(self.job_id))

    # -- scheduler side -------------------------------------------------
    def _fulfil(self, result: JobResult) -> None:
        if not self._event.is_set():
            self._result = result
            self._event.set()

    def _fail(self, error: BaseException) -> None:
        if not self._event.is_set():
            self._error = error
            self._event.set()
