"""Algorithmic invariants of the behavioural GA engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import BF6, F2, F3, MBF6_2


def params(**overrides):
    base = dict(
        n_generations=16,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(1, 0xFFFF))
    def test_elitism_makes_best_monotone(self, seed):
        result = BehavioralGA(params(rng_seed=seed), BF6()).run()
        series = result.best_series()
        assert all(b >= a for a, b in zip(series, series[1:]))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(1, 0xFFFF))
    def test_population_size_constant(self, seed):
        result = BehavioralGA(params(rng_seed=seed), F3()).run()
        for gen in result.history:
            assert gen.population_size == 16
            assert len(gen.fitnesses) == 16

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(1, 0xFFFF))
    def test_best_is_max_of_final_population(self, seed):
        result = BehavioralGA(params(rng_seed=seed), F2()).run()
        assert result.best_fitness == max(result.history[-1].fitnesses)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(1, 0xFFFF))
    def test_elite_present_in_every_generation(self, seed):
        result = BehavioralGA(params(rng_seed=seed), BF6()).run()
        for prev, cur in zip(result.history, result.history[1:]):
            assert prev.best_fitness in cur.fitnesses

    def test_deterministic_given_seed(self):
        a = BehavioralGA(params(), BF6()).run()
        b = BehavioralGA(params(), BF6()).run()
        assert a.best_individual == b.best_individual
        assert [g.as_tuple() for g in a.history] == [g.as_tuple() for g in b.history]

    def test_different_seeds_diverge(self):
        a = BehavioralGA(params(rng_seed=45890), BF6()).run()
        b = BehavioralGA(params(rng_seed=10593), BF6()).run()
        assert [g.as_tuple() for g in a.history] != [g.as_tuple() for g in b.history]


class TestSelectionPressure:
    def test_average_fitness_rises_on_easy_function(self):
        result = BehavioralGA(
            params(n_generations=20, population_size=32), F3()
        ).run()
        avgs = result.average_series()
        assert avgs[-1] > avgs[0] * 1.2

    def test_converges_on_linear_functions(self):
        # Figs. 11-12: "small population sizes and fewer generations are
        # sufficient to solve simple problems".  F2 reaches the exact
        # optimum 3060 with seed 10593; F3 lands within 1% (the last few
        # low-order bits are worth almost nothing to the roulette wheel,
        # mirroring the paper's "within 3.7% of the optimum" bound).
        r2 = BehavioralGA(
            params(n_generations=32, population_size=32,
                   mutation_threshold=1, rng_seed=10593), F2()
        ).run()
        assert r2.best_fitness == 3060
        r3 = BehavioralGA(
            params(n_generations=32, population_size=32,
                   mutation_threshold=2, rng_seed=45890), F3()
        ).run()
        assert r3.best_fitness >= 3030  # within 1% of 3060

    def test_finds_mbf6_optimum_with_good_settings(self):
        # The configuration that finds 8183 in our Table VII reproduction.
        p = GAParameters(64, 64, 10, 1, 0x061F)
        result = BehavioralGA(p, MBF6_2()).run()
        assert result.best_fitness >= 8100

    def test_zero_mutation_bounded_by_initial_gene_pool(self):
        # Without mutation, crossover can only recombine bits present in the
        # initial population, so for the monotone function F3 the best
        # reachable fitness is that of the bitwise-OR of the initial members.
        from repro.rng.cellular_automaton import CellularAutomatonPRNG

        p = params(mutation_threshold=0, n_generations=10, population_size=8)
        result = BehavioralGA(p, F3()).run()
        words = CellularAutomatonPRNG(p.rng_seed).block(8)
        per_bit_or = int(np.bitwise_or.reduce(words))
        assert result.best_fitness <= F3()(per_bit_or & 0xFFFF)


class TestEvaluationAccounting:
    def test_fresh_run_counts_initial_population(self):
        p = params(n_generations=8, population_size=16)
        result = BehavioralGA(p, F3()).run()
        assert result.evaluations == 16 + 8 * 15  # pop + G*(pop-1)

    def test_seeded_run_does_not_recount_initial_population(self):
        # regression: run(initial=...) used to add pop to the count even
        # though a seeded population is already evaluated (double-counting
        # every island epoch after the first)
        from repro.rng.cellular_automaton import CellularAutomatonPRNG

        p = params(n_generations=8, population_size=16)
        initial = CellularAutomatonPRNG(999).block(16)
        result = BehavioralGA(p, F3()).run(initial=initial)
        assert result.evaluations == 8 * 15  # only genuinely new offspring


class TestSelectionArithmetic:
    def test_threshold_formula(self):
        # select() must follow threshold = (rn * sum) >> 16 with first
        # cumulative exceedance; check against a hand computation.
        from repro.rng.cellular_automaton import CellularAutomatonPRNG

        p = params(population_size=4)
        ga = BehavioralGA(p, F3(), rng=CellularAutomatonPRNG(0x2961))
        cum = np.array([10, 30, 60, 100])
        rng_word = ga.rng.state
        expected_thr = (rng_word * 100) >> 16
        idx = ga._select(cum, 100)
        assert idx == int(np.searchsorted(cum, expected_thr, side="right"))

    def test_zero_sum_selects_last(self):
        p = params(population_size=4)
        ga = BehavioralGA(p, F3())
        cum = np.array([0, 0, 0, 0])
        assert ga._select(cum, 0) == 3

    def test_record_members_off_saves_memory(self):
        result = BehavioralGA(params(), F3(), record_members=False).run()
        assert all(g.fitnesses == [] for g in result.history)
        assert result.best_fitness > 0
