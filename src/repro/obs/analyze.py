"""Trace reconstruction: from JSON-lines records back to paper artefacts.

These helpers close the loop the acceptance test demands: a traced run
must yield the Fig. 8 data (per-generation best / sum-of-fitness) and a
selection/crossover/mutation/evaluation time breakdown *from the trace
stream alone*, with no access to the engine objects.

The span taxonomy they understand (see ``docs/architecture.md``):

* ``ga.generation`` events — one per generation boundary, from every
  engine (serial scalars; batch/island runs carry per-replica lists);
* ``ga.phases`` events — per-generation phase wall-time dicts from the
  behavioural engines;
* ``cycle.generation`` / ``cycle.phase_cycles`` — the cycle-accurate
  twin's equivalents (clock cycles instead of seconds);
* ``service.chunk`` spans — one per slab chunk, carrying the replica-row
  to job-id mapping that lets a chunked service trace be spliced back
  into per-job streams (the same splice the scheduler applies to
  results: a resumed chunk's local generation 0 restates the previous
  chunk's last generation and is dropped).
"""

from __future__ import annotations


def events(records: list[dict], name: str) -> list[dict]:
    """All event records called ``name``, in emission order."""
    return [r for r in records if r.get("type") == "event" and r.get("name") == name]


def spans(records: list[dict], name: str) -> list[dict]:
    """All span records called ``name``, ordered by start time."""
    found = [r for r in records if r.get("type") == "span" and r.get("name") == name]
    return sorted(found, key=lambda r: r["t0"])


def _series(records: list[dict], key: str, replica: int) -> list[int]:
    out = []
    for ev in sorted(events(records, "ga.generation"), key=lambda e: e["generation"]):
        value = ev[key]
        out.append(int(value[replica]) if isinstance(value, list) else int(value))
    return out


def best_series(records: list[dict], replica: int = 0) -> list[int]:
    """Per-generation best fitness (Fig. 8 upper envelope) from a trace."""
    return _series(records, "best_fitness", replica)


def sum_series(records: list[dict], replica: int = 0) -> list[int]:
    """Per-generation sum of fitness (Fig. 8 population curve)."""
    return _series(records, "fitness_sum", replica)


def phase_breakdown(records: list[dict]) -> dict[str, float]:
    """Total wall time per GA phase, summed over every ``ga.phases`` event.

    Keys are the phase names the behavioural engines emit: ``selection``,
    ``crossover``, ``mutation``, ``eval``, ``elitism``, ``record`` (plus
    ``scrub`` when a resilience harness rides the run).
    """
    totals: dict[str, float] = {}
    for ev in events(records, "ga.phases"):
        for phase, seconds in ev["phases"].items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return totals


def cycle_phase_breakdown(records: list[dict]) -> dict[str, int]:
    """Clock cycles per FSM phase from ``cycle.phase_cycles`` events."""
    totals: dict[str, int] = {}
    for ev in events(records, "cycle.phase_cycles"):
        for phase, cycles in ev["cycles"].items():
            totals[phase] = totals.get(phase, 0) + int(cycles)
    return totals


def cycle_best_series(records: list[dict]) -> list[int]:
    """Per-generation best fitness from a cycle-accurate trace."""
    evs = sorted(events(records, "cycle.generation"), key=lambda e: e["generation"])
    return [int(ev["best_fitness"]) for ev in evs]


def service_best_streams(records: list[dict]) -> dict[int, list[int]]:
    """Per-job best-fitness streams spliced out of a service trace.

    Each ``service.chunk`` span names its replica rows' job ids; the
    ``ga.generation`` events parented inside it carry per-replica best
    lists.  Chunks are spliced in start-time order with each resumed
    chunk's restated local generation 0 dropped, reproducing exactly the
    stream an unchunked run would have traced.
    """
    chunk_spans = spans(records, "service.chunk")
    chunk_ids = {chunk["id"] for chunk in chunk_spans}
    span_parent = {
        r["id"]: r.get("parent") for r in records if r.get("type") == "span"
    }

    def chunk_ancestor(parent):
        # events may be nested under intermediate spans (e.g. the engine's
        # own ``ga.run``); walk up to the nearest service.chunk span
        while parent is not None and parent not in chunk_ids:
            parent = span_parent.get(parent)
        return parent

    by_chunk: dict[int, list[dict]] = {}
    for ev in events(records, "ga.generation"):
        anchor = chunk_ancestor(ev.get("parent"))
        if anchor is not None:
            by_chunk.setdefault(anchor, []).append(ev)

    streams: dict[int, list[int]] = {}
    for chunk in chunk_spans:
        job_ids = chunk["job_ids"]
        evs = sorted(by_chunk.get(chunk["id"], []), key=lambda e: e["generation"])
        for row, job_id in enumerate(job_ids):
            rows = [
                int(ev["best_fitness"][row])
                if isinstance(ev["best_fitness"], list)
                else int(ev["best_fitness"])
                for ev in evs
            ]
            if job_id in streams:
                rows = rows[1:]  # resumed chunk restates the boundary
                streams[job_id].extend(rows)
            else:
                streams[job_id] = rows
    return streams
