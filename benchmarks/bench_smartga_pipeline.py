"""Ablations: the programmability trade (Smart GA) and the pipelining
future-work estimate.

Two design-choice studies DESIGN.md calls out:

1. **Registers vs. constants** (Sec. II-B, Chen et al.): how much area the
   fixed-parameter "Smart GA" saves on the parameter/decision datapath, and
   what a parameter change costs in each world.
2. **Sequential vs. pipelined** (Sec. III-A future work): the cycle model
   calibrated on the real core, showing roulette's memory scan caps the
   pipeline and tournament selection unlocks it — the quantitative story
   behind the architecture choices in Table I.
"""

import pytest

from conftest import print_table
from repro.core.params import GAParameters
from repro.core.pipelined import PipelineTimingModel
from repro.hls.smartga import comparison


@pytest.mark.benchmark(group="smartga")
def test_smartga_programmability_trade(benchmark):
    report = benchmark.pedantic(comparison, rounds=1, iterations=1)
    print_table("Smart GA vs. programmable core (parameter/decision datapath)",
                report.rows())
    print(f"fixing parameters saves {report.gate_saving_pct:.1f}% of the "
          f"gates and {report.ff_saving} flip-flops — at the price of a new "
          "netlist (and in silicon, a new chip) per parameter change.")
    assert report.gate_saving_pct > 30
    assert report.reprogram_cycles < 200


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_estimate(benchmark):
    p = GAParameters(
        n_generations=64,
        population_size=64,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=0x061F,
    )

    def estimate():
        model = PipelineTimingModel()
        return [
            {
                "organisation": e.organisation,
                "cycles": e.cycles,
                "cycles/offspring": round(e.cycles_per_offspring, 1),
                "runtime_ms@50MHz": round(e.cycles / 50e3, 2),
            }
            for e in model.estimate(p)
        ]

    rows = benchmark.pedantic(estimate, rounds=1, iterations=1)
    print_table("Pipelining estimate (pop 64, 64 generations)", rows)
    model = PipelineTimingModel()
    print(f"speedup: roulette pipeline {model.speedup(p, 'roulette'):.2f}x, "
          f"tournament pipeline {model.speedup(p, 'tournament'):.2f}x")
    assert rows[0]["cycles"] > rows[2]["cycles"]
