"""Property test: randomly generated DFGs synthesize to equivalent netlists.

The strongest statement about the mini-HLS flow: for *arbitrary* dataflow
graphs (not hand-picked examples), under arbitrary resource budgets, the
synthesized sequential netlist computes exactly what the reference
evaluator computes.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.scan import Stepper
from repro.hls.dfg import DFG
from repro.hls.generate import synthesize
from repro.hls.schedule import ResourceConstraints


def random_dfg(seed: int, n_ops: int = 10) -> DFG:
    """Generate a random connected DFG with 2 inputs and 2 outputs."""
    rng = random.Random(seed)
    d = DFG(f"rand{seed}")
    values = [d.input("x"), d.input("y"), d.const(rng.randrange(0, 65536))]
    one_bit: list[int] = []
    for _ in range(n_ops):
        kind = rng.choice(
            ["add", "sub", "and", "or", "xor", "not", "lt", "eq", "mux"]
        )
        a = rng.choice(values)
        b = rng.choice(values)
        if kind == "add":
            values.append(d.add(a, b))
        elif kind == "sub":
            values.append(d.sub(a, b))
        elif kind == "and":
            values.append(d.and_(a, b))
        elif kind == "or":
            values.append(d.or_(a, b))
        elif kind == "xor":
            values.append(d.xor(a, b))
        elif kind == "not":
            values.append(d.not_(a))
        elif kind in ("lt", "eq"):
            res = d.lt(a, b) if kind == "lt" else d.eq(a, b)
            one_bit.append(res)
            values.append(res)
        elif kind == "mux":
            sel = rng.choice(one_bit) if one_bit else d.lt(a, b)
            values.append(d.mux(sel, a, b))
    d.output("out0", values[-1])
    d.output("out1", rng.choice(values[3:]) if len(values) > 3 else values[-1])
    return d


def run_netlist(result, x: int, y: int) -> dict:
    stepper = Stepper(result.netlist)
    out = {}
    for _ in range(2 * result.latency + 2):
        out = stepper.step(x=x, y=y)
    return out


class TestRandomDFGEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        x=st.integers(0, 0xFFFF),
        y=st.integers(0, 0xFFFF),
    )
    def test_unconstrained(self, seed, x, y):
        dfg = random_dfg(seed)
        result = synthesize(dfg)
        out = run_netlist(result, x, y)
        ref = dfg.evaluate({"x": x, "y": y})
        assert out["out0"] == ref["out0"]
        assert out["out1"] == ref["out1"]

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        x=st.integers(0, 0xFFFF),
        y=st.integers(0, 0xFFFF),
        alus=st.integers(1, 2),
    )
    def test_resource_constrained(self, seed, x, y, alus):
        dfg = random_dfg(seed)
        result = synthesize(dfg, resources=ResourceConstraints(alu=alus, cmp=1))
        out = run_netlist(result, x, y)
        ref = dfg.evaluate({"x": x, "y": y})
        assert out["out0"] == ref["out0"]
        assert out["out1"] == ref["out1"]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_netlists_are_clean(self, seed):
        from repro.hdl.export import lint

        result = synthesize(random_dfg(seed))
        assert lint(result.netlist) == []
