"""The async job scheduler: bounded queue, slab formation, dispatch.

One scheduler thread owns the pending queue and the set of in-flight
slabs.  Its loop is event-driven: it sleeps on a condition variable and
wakes on submission, chunk completion, shutdown, or the expiry of the
oldest pending job's ``max_wait_s`` batching window, then seals every
*ready* group of compatible jobs into a :class:`~repro.service.batcher.Slab`
and dispatches its first chunk to the worker pool.  A group is ready when
it is full (``max_batch``), aged (``max_wait_s``), hardened (nothing to
wait for — it cannot batch), or the service is draining.

Chunk completions are folded back in from the pool's callback thread:
finished jobs retire and fulfil their handles, compatible pending jobs are
admitted into the freed replica rows, and a non-empty slab re-dispatches
immediately so workers never idle while work exists.  Because each job's
evolution depends only on its own seed, parameters, and carried state,
*no scheduling decision can change a job's numbers* — arrival order,
batch width, chunk boundaries, and worker count only move wall-clock time
(property-tested in ``tests/service/test_determinism.py``).

Backpressure is explicit: ``submit`` raises
:class:`~repro.service.jobs.QueueFullError` once ``max_pending`` jobs
wait, and :class:`~repro.service.jobs.ServiceClosedError` after shutdown
begins.  Shutdown drains by default (every accepted job completes);
``drain=False`` cancels pending jobs and fails in-flight ones at their
next chunk boundary.
"""

from __future__ import annotations

import itertools
import threading
import time

from repro.service.batcher import BatchPolicy, JobRecord, Slab, compat_key
from repro.service.jobs import (
    GARequest,
    JobCancelledError,
    JobFailedError,
    JobHandle,
    QueueFullError,
    ServiceClosedError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.workers import WorkerPool


class Scheduler:
    """Continuous-batching job scheduler over a worker pool."""

    def __init__(
        self,
        pool: WorkerPool,
        policy: BatchPolicy | None = None,
        metrics: ServiceMetrics | None = None,
    ):
        self.pool = pool
        self.policy = policy or BatchPolicy()
        self.metrics = metrics or ServiceMetrics(max_batch=self.policy.max_batch)
        self._cond = threading.Condition()
        self._pending: dict[tuple, list[JobRecord]] = {}
        self._pending_count = 0
        self._inflight: dict[int, Slab] = {}
        self._chunk_gens: dict[int, int] = {}
        self._slots_free = pool.n_workers
        self._seq = itertools.count()
        self._closing = False
        self._draining = True
        self._started = False
        self._thread = threading.Thread(
            target=self._loop, name="ga-scheduler", daemon=True
        )

    # -- client API -----------------------------------------------------
    def start(self) -> "Scheduler":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def submit(self, request: GARequest) -> JobHandle:
        """Enqueue one job; returns its handle immediately.

        Raises :class:`QueueFullError` (admission control) or
        :class:`ServiceClosedError` (shutdown in progress).
        """
        with self._cond:
            if self._closing:
                raise ServiceClosedError("service is shutting down")
            if self._pending_count >= self.policy.max_pending:
                self.metrics.job_rejected()
                raise QueueFullError(
                    f"pending queue at bound ({self.policy.max_pending})"
                )
            seq = next(self._seq)
            now = time.monotonic()
            handle = JobHandle(seq, request, now)
            record = JobRecord(
                job_id=seq, request=request, handle=handle,
                submitted_at=now, seq=seq,
            )
            self._pending.setdefault(compat_key(record), []).append(record)
            self._pending_count += 1
            self.metrics.job_submitted(self._pending_count)
            self._cond.notify_all()
            return handle

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs; drain (default) or cancel the backlog."""
        with self._cond:
            self._closing = True
            self._draining = drain
            if not drain:
                for records in self._pending.values():
                    for record in records:
                        record.handle._fail(
                            JobCancelledError(
                                f"job {record.job_id} cancelled by shutdown"
                            )
                        )
                        self.metrics.job_failed()
                self._pending.clear()
                self._pending_count = 0
                self.metrics.queue_drained_to(0)
            self._cond.notify_all()
        if self._started:
            self._thread.join(timeout)

    # -- scheduler loop -------------------------------------------------
    def _loop(self) -> None:
        with self._cond:
            while True:
                now = time.monotonic()
                self._dispatch_ready(now)
                if (
                    self._closing
                    and self._pending_count == 0
                    and not self._inflight
                ):
                    break
                self._cond.wait(self._wait_timeout(now))

    def _wait_timeout(self, now: float) -> float | None:
        """Sleep until the oldest group's batching window expires."""
        if not self._pending or self._slots_free == 0:
            return None
        expiry = min(
            min(r.submitted_at for r in records) + self.policy.max_wait_s
            for records in self._pending.values()
            if records
        )
        return max(expiry - now, 1e-4)

    def _group_ready(self, key: tuple, records: list[JobRecord], now: float) -> bool:
        if self._closing:
            return True
        if key[0] in ("hardened", "island"):
            return True  # solo by construction; waiting buys nothing
        if len(records) >= self.policy.max_batch:
            return True
        oldest = min(r.submitted_at for r in records)
        return now - oldest >= self.policy.max_wait_s

    def _dispatch_ready(self, now: float) -> None:
        """Seal and dispatch ready groups while worker slots are free."""
        while self._slots_free > 0:
            ready = [
                key
                for key, records in self._pending.items()
                if records and self._group_ready(key, records, now)
            ]
            if not ready:
                return
            # most urgent group first: the one owning the best-ordered job
            key = min(
                ready, key=lambda k: min(r.order_key() for r in self._pending[k])
            )
            records = sorted(self._pending[key], key=JobRecord.order_key)
            taken = records[: self.policy.max_batch]
            self._pending[key] = records[len(taken):]
            if not self._pending[key]:
                del self._pending[key]
            self._pending_count -= len(taken)
            self.metrics.queue_drained_to(self._pending_count)
            self._dispatch(Slab(taken, self.policy))

    def _dispatch(self, slab: Slab) -> None:
        """Send the slab's next chunk to the pool (lock held)."""
        chunk = slab.next_chunk_gens()
        now = time.monotonic()
        for record in slab.entries:
            if record.started_at is None:
                record.started_at = now
        self._inflight[slab.slab_id] = slab
        self._chunk_gens[slab.slab_id] = chunk
        self._slots_free -= 1
        self.metrics.chunk_dispatched(len(slab), chunk)
        spec = slab.make_spec(chunk)
        self.pool.submit_chunk(
            spec, lambda out, sid=slab.slab_id: self._on_chunk(sid, out)
        )

    # -- pool callback --------------------------------------------------
    def _on_chunk(self, slab_id: int, out: dict | BaseException) -> None:
        with self._cond:
            slab = self._inflight.pop(slab_id)
            chunk = self._chunk_gens.pop(slab_id)
            self._slots_free += 1
            if isinstance(out, BaseException):
                for record in slab.entries:
                    record.handle._fail(
                        JobFailedError(f"job {record.job_id} failed: {out!r}")
                    )
                    self.metrics.job_failed()
                self._cond.notify_all()
                return
            now = time.monotonic()
            for record in slab.apply_chunk(out, chunk):
                record.handle._fulfil(record.to_result(now))
                self.metrics.job_completed(
                    now - record.submitted_at,
                    (record.started_at or now) - record.submitted_at,
                )
            if self._closing and not self._draining:
                for record in slab.entries:
                    record.handle._fail(
                        JobCancelledError(
                            f"job {record.job_id} cancelled by shutdown"
                        )
                    )
                    self.metrics.job_failed()
                slab.entries = []
            else:
                self._admit_into(slab)
            if slab.entries:
                self._dispatch(slab)
            self._cond.notify_all()

    def _admit_into(self, slab: Slab) -> None:
        """Continuous batching: pull compatible pending jobs into freed
        replica rows at the chunk boundary (lock held)."""
        capacity = slab.capacity_left
        if capacity <= 0 or slab.hardened or slab.island:
            return
        # key must mirror compat_key exactly — it silently stopped
        # matching when the engine mode joined the key, killing late
        # admission into running slabs
        key = ("batch", slab.pop, slab.engine_mode)
        records = self._pending.get(key)
        if not records:
            return
        records.sort(key=JobRecord.order_key)
        taken = records[:capacity]
        self._pending[key] = records[len(taken):]
        if not self._pending[key]:
            del self._pending[key]
        self._pending_count -= len(taken)
        self.metrics.queue_drained_to(self._pending_count)
        slab.admit(taken)
