"""Netlist optimization: constant propagation and dead-logic removal.

This is the logic-synthesis step that makes the Chen et al. "Smart GA"
approach (Sec. II-B) concrete: when GA parameters are baked in as constants
instead of registers, constant propagation collapses the comparators and
muxes that consumed them — the area a fixed-parameter ASIC saves, and the
flexibility it gives up.

Two passes, iterated to a fixed point by :func:`optimize`:

* :func:`propagate_constants` — folds gates with constant inputs
  (``AND(x,0) -> 0``, ``AND(x,1) -> x``, ``XOR(x,0) -> x``, ...), collapses
  buffers, and rewrites all consumers;
* :func:`strip_dead` — removes gates not reachable from any primary output,
  flop input, or scan port.

Both passes preserve I/O behaviour exactly (property-tested against random
stimulus on every rtlib block).
"""

from __future__ import annotations

from repro.hdl.gates import DFF, Gate, GateType
from repro.hdl.netlist import Netlist, NetlistError

#: Folding rules for a gate with one constant input: (gate, const_value) ->
#: "const0" / "const1" / "pass" (the other input) / "invert" (the other).
_FOLD_ONE = {
    (GateType.AND, 0): "const0",
    (GateType.AND, 1): "pass",
    (GateType.OR, 0): "pass",
    (GateType.OR, 1): "const1",
    (GateType.NAND, 0): "const1",
    (GateType.NAND, 1): "invert",
    (GateType.NOR, 0): "invert",
    (GateType.NOR, 1): "const0",
    (GateType.XOR, 0): "pass",
    (GateType.XOR, 1): "invert",
    (GateType.XNOR, 0): "invert",
    (GateType.XNOR, 1): "pass",
}


def propagate_constants(netlist: Netlist) -> Netlist:
    """Rebuild the netlist with constants folded and buffers collapsed."""
    out = Netlist(netlist.name)
    out.net_count = netlist.net_count
    out.net_names = dict(netlist.net_names)
    out.inputs = {k: list(v) for k, v in netlist.inputs.items()}
    for nets in out.inputs.values():
        out._driven.update(nets)

    # alias[old_net] = ("net", id) | ("const", 0/1)
    alias: dict[int, tuple[str, int]] = {}
    const_nets: dict[int, int] = {}

    def const_net(value: int) -> int:
        if value not in const_nets:
            const_nets[value] = out.add_gate(
                GateType.CONST1 if value else GateType.CONST0
            )
        return const_nets[value]

    def resolve(net: int) -> tuple[str, int]:
        seen = alias.get(net)
        return seen if seen is not None else ("net", net)

    def resolve_net(net: int) -> int:
        kind, value = resolve(net)
        return const_net(value) if kind == "const" else value

    for gate in netlist.topo_order():
        resolved = [resolve(n) for n in gate.inputs]
        consts = [v for kind, v in resolved if kind == "const"]

        if gate.type == GateType.CONST0:
            alias[gate.output] = ("const", 0)
            continue
        if gate.type == GateType.CONST1:
            alias[gate.output] = ("const", 1)
            continue
        if gate.type in (GateType.BUF, GateType.NOT):
            kind, value = resolved[0]
            if kind == "const":
                folded = value if gate.type == GateType.BUF else 1 - value
                alias[gate.output] = ("const", folded)
            elif gate.type == GateType.BUF:
                alias[gate.output] = (kind, value)
            else:
                out.gates.append(Gate(GateType.NOT, (value,), gate.output))
                out._driven.add(gate.output)
            continue

        if len(consts) == 2:  # both inputs constant: evaluate outright
            result = Gate(gate.type, (0, 1), 2).evaluate([consts[0], consts[1], 0])
            alias[gate.output] = ("const", result)
            continue
        if len(consts) == 1:
            const_val = consts[0]
            other = next(v for kind, v in resolved if kind == "net")
            action = _FOLD_ONE[(gate.type, const_val)]
            if action == "const0":
                alias[gate.output] = ("const", 0)
            elif action == "const1":
                alias[gate.output] = ("const", 1)
            elif action == "pass":
                alias[gate.output] = ("net", other)
            else:  # invert
                out.gates.append(Gate(GateType.NOT, (other,), gate.output))
                out._driven.add(gate.output)
            continue

        # no constant inputs: keep, with resolved operands
        ins = tuple(v for _k, v in resolved)
        out.gates.append(Gate(gate.type, ins, gate.output))
        out._driven.add(gate.output)

    for dff in netlist.dffs:
        out.dffs.append(
            DFF(
                d=resolve_net(dff.d),
                q=dff.q,
                init=dff.init,
                name=dff.name,
                scan_index=dff.scan_index,
            )
        )
        out._driven.add(dff.q)

    out.outputs = {
        port: [resolve_net(n) for n in nets]
        for port, nets in netlist.outputs.items()
    }
    if netlist.scan_ports is not None:
        t, si, so = netlist.scan_ports
        out.scan_ports = (resolve_net(t), resolve_net(si), resolve_net(so))
    return out


def strip_dead(netlist: Netlist) -> Netlist:
    """Remove gates whose outputs reach no primary output, flop, or scan
    port."""
    producers: dict[int, Gate] = {g.output: g for g in netlist.gates}
    live: set[int] = set()
    stack: list[int] = []
    for nets in netlist.outputs.values():
        stack.extend(nets)
    for dff in netlist.dffs:
        stack.append(dff.d)
    if netlist.scan_ports is not None:
        stack.extend(netlist.scan_ports)
    while stack:
        net = stack.pop()
        if net in live:
            continue
        live.add(net)
        gate = producers.get(net)
        if gate is not None:
            stack.extend(gate.inputs)

    out = Netlist(netlist.name)
    out.net_count = netlist.net_count
    out.net_names = dict(netlist.net_names)
    out.inputs = {k: list(v) for k, v in netlist.inputs.items()}
    for nets in out.inputs.values():
        out._driven.update(nets)
    out.gates = [g for g in netlist.gates if g.output in live]
    out._driven.update(g.output for g in out.gates)
    out.dffs = [
        DFF(d=d.d, q=d.q, init=d.init, name=d.name, scan_index=d.scan_index)
        for d in netlist.dffs
    ]
    out._driven.update(d.q for d in out.dffs)
    out.outputs = {k: list(v) for k, v in netlist.outputs.items()}
    out.scan_ports = netlist.scan_ports
    return out


def optimize(netlist: Netlist, max_rounds: int = 8) -> Netlist:
    """Iterate constant propagation + dead-code removal to a fixed point."""
    current = netlist
    for _ in range(max_rounds):
        folded = strip_dead(propagate_constants(current))
        if folded.stats() == current.stats():
            return folded
        current = folded
    return current


def equivalent(
    a: Netlist, b: Netlist, patterns: int = 256, seed: int = 0
) -> bool:
    """Random-stimulus equivalence check between two netlists.

    Compares the scan-test-model responses (primary outputs + flop D
    inputs, with flop states treated as free pseudo-inputs) of both
    netlists over ``patterns`` random vectors, all evaluated in one pass
    on the bit-parallel engine.  This is the check every optimization pass
    here must survive; it requires matching port/flop interfaces.
    """
    from repro.hdl import bitsim
    from repro.hdl.faults import random_vectors

    if (
        {k: len(v) for k, v in a.inputs.items()} != {k: len(v) for k, v in b.inputs.items()}
        or {k: len(v) for k, v in a.outputs.items()} != {k: len(v) for k, v in b.outputs.items()}
        or len(a.dffs) != len(b.dffs)
    ):
        raise NetlistError(
            f"cannot compare {a.name!r} and {b.name!r}: port/flop interfaces differ"
        )
    vectors = random_vectors(a, patterns, seed=seed)
    inputs = [v.inputs for v in vectors]
    flops = [v.flops for v in vectors]
    obs_a = bitsim.compiled(a).observe_packed(inputs, flops)
    obs_b = bitsim.compiled(b).observe_packed(inputs, flops)
    mask = bitsim.tail_mask(patterns)
    return bool(((obs_a ^ obs_b) & mask).max(initial=0) == 0)
