"""GA-as-a-service: async scheduling, dynamic batching, worker pool.

The serving layer around the GA engines — the ROADMAP's
"heavy traffic" direction made concrete.  Clients submit
:class:`GARequest` jobs (Table III parameters + a fitness slot + priority
/ deadline); the :class:`Scheduler` coalesces compatible jobs into
dynamically sized :class:`~repro.core.batch.BatchBehavioralGA` slabs,
executes them in chunks on a :class:`WorkerPool`, admits late arrivals at
generation boundaries (continuous batching), and streams each job's
result back bit-identical to a solo serial run of the same seed.

The layer is fault tolerant (see ``docs/architecture.md``): chunks lost
to worker crashes or the hung-chunk watchdog are retried under a per-job
:class:`RetryPolicy` (bit-identically — chunk re-execution is stateless),
broken process pools respawn, in-flight slabs checkpoint to a
:class:`CheckpointStore` for ``--resume`` after a crash, overload sheds
the worst-ordered jobs with :class:`OverloadedError`, and the whole stack
is soak-tested under seed-deterministic fault plans
(:class:`ChaosPlan` / :class:`ChaosMonkey`).

Quickstart::

    from repro import GAParameters
    from repro.service import BatchPolicy, GARequest, GAService

    with GAService(workers=2) as service:
        handle = service.submit(GARequest(
            params=GAParameters(n_generations=64, population_size=32,
                                crossover_threshold=10, mutation_threshold=1,
                                rng_seed=0x061F),
            fitness_name="mBF6_2",
        ))
        print(handle.result().best_fitness)
        print(service.snapshot()["latency"])
"""

from repro.service.batcher import BatchPolicy, Slab, compat_key
from repro.service.chaos import ChaosMonkey, ChaosPlan
from repro.service.checkpoint import CheckpointStore
from repro.service.jobs import (
    ChunkTimeoutError,
    DeadlineExceededError,
    GARequest,
    JobCancelledError,
    JobFailedError,
    JobHandle,
    JobResult,
    OverloadedError,
    QueueFullError,
    RetryPolicy,
    ServiceClosedError,
    ServiceError,
    ShutdownTimeoutError,
    WorkerCrashError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import Scheduler
from repro.service.server import (
    GAService,
    ServiceTCPServer,
    serve,
    submit_remote,
)
from repro.service.workers import WorkerPool, run_slab_chunk

__all__ = [
    "BatchPolicy",
    "ChaosMonkey",
    "ChaosPlan",
    "CheckpointStore",
    "ChunkTimeoutError",
    "DeadlineExceededError",
    "GARequest",
    "GAService",
    "JobCancelledError",
    "JobFailedError",
    "JobHandle",
    "JobResult",
    "OverloadedError",
    "QueueFullError",
    "RetryPolicy",
    "Scheduler",
    "ServiceClosedError",
    "ServiceError",
    "ServiceMetrics",
    "ServiceTCPServer",
    "ShutdownTimeoutError",
    "Slab",
    "WorkerCrashError",
    "WorkerPool",
    "compat_key",
    "run_slab_chunk",
    "serve",
    "submit_remote",
]
