"""The persistent run store: round trips, atomicity, verify, gc."""

import json
import os
import subprocess

import pytest

from repro.core.params import GAParameters
from repro.service.jobs import GARequest
from repro.store import RunStore, job_key
from repro.store.replay import execute_request


def make_request(seed=0x061F, gens=16, pop=8):
    return GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
        ),
        fitness_name="mBF6_2",
    )


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store")


def test_put_get_round_trip(store):
    request = make_request()
    result = execute_request(request)
    key = store.put(request, result, compute_s=0.5, source="test")
    assert key == job_key(request)
    assert store.has(key) and len(store) == 1

    entry = store.get(key)
    assert entry is not None
    assert entry.key == key
    assert entry.request == request
    assert entry.result.to_dict() == result.to_dict()
    assert entry.provenance["source"] == "test"
    assert entry.provenance["compute_s"] == 0.5
    assert entry.provenance["engine_mode"] == "exact"
    assert "repro_version" in entry.provenance
    assert store.get_result(key).best_fitness == result.best_fitness


def test_miss_and_unreadable_return_none(store):
    assert store.get("0" * 64) is None
    request = make_request()
    key = store.put(request, execute_request(request))
    store.path_for(key).write_text("{ not json")
    assert store.get(key) is None  # unreadable, not an exception


def test_put_is_atomic_no_tmp_left_behind(store):
    request = make_request()
    store.put(request, execute_request(request))
    assert not list(store.objects.glob("*.tmp"))


def test_wrong_store_version_rejected(store):
    request = make_request()
    key = store.put(request, execute_request(request))
    payload = json.loads(store.path_for(key).read_text())
    payload["store_version"] = 999
    store.path_for(key).write_text(json.dumps(payload))
    assert store.get(key) is None


def test_verify_flags_corrupt_and_miskeyed(store):
    good = make_request(seed=0x1111)
    store.put(good, execute_request(good))
    other = make_request(seed=0x2222)
    okey = store.put(other, execute_request(other))
    # re-file the second entry under a wrong name: content no longer
    # hashes to its address
    bad_key = "f" * 64
    os.rename(store.path_for(okey), store.path_for(bad_key))
    payloads = {row["key"]: row for row in store.verify()}
    assert payloads[job_key(good)]["ok"]
    assert not payloads[bad_key]["ok"]


def test_gc_removes_tmp_corrupt_and_orphaned_spills(store):
    good = make_request(seed=0x3333)
    store.put(good, execute_request(good))
    (store.objects / "leftover.tmp").write_text("partial")
    store.path_for("a" * 64).write_text("garbage")

    spill = store.root / "spill"
    spill.mkdir()
    # a spill from a process that certainly exited
    proc = subprocess.Popen(["true"])
    proc.wait()
    (spill / f"slab-{proc.pid}-7.json").write_text("{}")
    # and one from this (alive) process: must survive
    (spill / f"slab-{os.getpid()}-8.json").write_text("{}")

    removed = store.gc()
    assert removed["tmp"] == 1
    assert removed["corrupt"] == 1
    assert removed["spills"] == 1
    assert store.keys() == [job_key(good)]
    assert (spill / f"slab-{os.getpid()}-8.json").exists()

    removed = store.gc(all_spills=True)
    assert removed["spills"] == 1
    assert not list(spill.glob("slab-*.json"))


def test_checkpoint_store_lives_under_store_root(store):
    ckpt = store.checkpoint_store()
    ckpt.save(3, {"version": 1, "entries": []})
    assert list((store.root / "spill").glob("slab-*.json"))
