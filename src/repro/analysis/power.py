"""Dynamic-power estimation from gate-level switching activity.

The AUDI HLS tool this paper's flow is built on was developed for "leakage
power estimation and optimization in VLSI ASICs" (ref. [39]); this module
supplies the matching power substrate for the reproduced netlists:

* toggle counting over clocked gate-level simulation;
* dynamic power = 0.5 * C_eff * Vdd^2 * f * activity, with per-cell
  effective-capacitance figures for a 0.18 um-class standard-cell library
  (the Chen et al. GA-chip node) — documented constants, order-of-magnitude
  accuracy by construction;
* static (leakage) power from per-cell leakage figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hdl.netlist import Netlist

#: Effective switching capacitance per cell type, femtofarads (0.18 um-ish).
CELL_CAPACITANCE_FF: dict[str, float] = {
    "and": 6.0,
    "or": 6.0,
    "nand": 4.0,
    "nor": 4.5,
    "xor": 9.0,
    "xnor": 9.0,
    "not": 2.5,
    "buf": 3.0,
    "const0": 0.0,
    "const1": 0.0,
    "dff": 14.0,
}

#: Leakage per cell, nanowatts (same node).
CELL_LEAKAGE_NW: dict[str, float] = {
    "and": 1.2,
    "or": 1.2,
    "nand": 0.8,
    "nor": 0.9,
    "xor": 1.8,
    "xnor": 1.8,
    "not": 0.5,
    "buf": 0.6,
    "const0": 0.0,
    "const1": 0.0,
    "dff": 3.5,
}


@dataclass
class PowerReport:
    """Estimated power for one netlist under one stimulus."""

    name: str
    cycles: int
    toggles: int
    activity: float  # mean toggles per net per cycle
    dynamic_mw: float
    leakage_mw: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.leakage_mw


def _toggle_count(netlist: Netlist, vectors: Sequence[dict[str, int]]) -> tuple[int, int]:
    """(total net toggles, cycles) over a clocked simulation."""
    state = netlist._initial_values()
    prev = state[:]
    toggles = 0
    for vec in vectors:
        netlist._apply_inputs(state, vec)
        netlist._propagate(state)
        toggles += sum(1 for a, b in zip(prev, state) if a != b)
        prev = state[:]
        netlist._clock_flops(state, vec)
    return toggles, len(vectors)


def estimate_power(
    netlist: Netlist,
    vectors: Sequence[dict[str, int]],
    clock_hz: float = 50e6,
    vdd: float = 1.8,
) -> PowerReport:
    """Estimate dynamic + leakage power under the given stimulus.

    Dynamic power uses the measured per-net toggle rate with a single mean
    effective capacitance derived from the netlist's cell mix; leakage sums
    the per-cell figures.  The Table VI clock (50 MHz) and a 1.8 V core
    supply are the defaults.
    """
    toggles, cycles = _toggle_count(netlist, vectors)
    if cycles == 0:
        raise ValueError("need at least one stimulus vector")
    stats = netlist.stats()
    # mean effective capacitance per driven net, weighted by cell mix
    cap_total_ff = sum(
        CELL_CAPACITANCE_FF.get(cell, 0.0) * count
        for cell, count in stats.items()
        if cell in CELL_CAPACITANCE_FF
    )
    driven = max(1, stats["gates"] + stats["dff"])
    mean_cap_f = (cap_total_ff / driven) * 1e-15
    toggles_per_cycle = toggles / cycles
    # P_dyn = 0.5 * C * Vdd^2 * f, applied per average toggling net
    dynamic_w = 0.5 * mean_cap_f * vdd * vdd * clock_hz * toggles_per_cycle
    leakage_w = (
        sum(
            CELL_LEAKAGE_NW.get(cell, 0.0) * count
            for cell, count in stats.items()
            if cell in CELL_LEAKAGE_NW
        )
        * 1e-9
    )
    activity = toggles_per_cycle / max(1, netlist.net_count)
    return PowerReport(
        name=netlist.name,
        cycles=cycles,
        toggles=toggles,
        activity=activity,
        dynamic_mw=dynamic_w * 1e3,
        leakage_mw=leakage_w * 1e3,
    )
