"""Tables VII, VIII, IX — the FPGA hardware experiment grids.

24 runs per table: 6 RNG seeds x {pop 32, 64} x {crossover threshold 10,
12}, 64 generations, mutation rate 0.0625, on mBF6_2 / mBF7_2 / mShubert2D.
The grid runs on the batched behavioural engine
(:class:`repro.core.batch.BatchBehavioralGA`) — all cells sharing a
population size evolve simultaneously as one ``(replica, member)`` array,
bit-identical to looping the behavioural twin cell by cell (and therefore
to the cycle-accurate core, via the equivalence suite) — so the full 72-run
sweep finishes in a fraction of a second;
`benchmarks/bench_figs13_16_hwconv.py` re-runs selected cells on the
cycle-accurate model.
"""

from __future__ import annotations

from repro.core.batch import run_batched
from repro.experiments.config import (
    FPGA_GRID,
    FPGA_SEEDS,
    PAPER_TABLES,
    fpga_sweep_cells,
    fpga_sweep_params,
)
from repro.fitness.functions import by_name


def run_fpga_table(function_name: str, record_members: bool = False) -> dict:
    """Regenerate one of Tables VII/VIII/IX for the named function."""
    fn = by_name(function_name)
    paper = PAPER_TABLES.get(function_name, {})
    optimum = int(fn.table().max())

    cells = fpga_sweep_cells()
    results = run_batched(
        [(params, fn) for params in fpga_sweep_params()],
        record_members=record_members,
    )
    by_cell = dict(zip(cells, results))

    rows = []
    best_overall = (0, -1, None)  # (individual, fitness, cell)
    optima_found = []
    for seed in FPGA_SEEDS:
        row: dict = {"seed": f"{seed:04X}"}
        for col, (pop, xt) in enumerate(FPGA_GRID):
            result = by_cell[(seed, pop, xt)]
            cell = f"pop{pop}/XR{xt}"
            row[cell] = result.best_fitness
            paper_row = paper.get(seed)
            if paper_row is not None:
                row[f"paper_{cell}"] = paper_row[col]
            if result.best_fitness > best_overall[1]:
                best_overall = (result.best_individual, result.best_fitness, (seed, cell))
            if result.best_fitness == optimum:
                optima_found.append((f"{seed:04X}", cell, result.best_individual))
        rows.append(row)

    table_id = {"mBF6_2": "Table VII", "mBF7_2": "Table VIII", "mShubert2D": "Table IX"}
    return {
        "id": table_id.get(function_name, function_name),
        "function": function_name,
        "optimum": optimum,
        "rows": rows,
        "best_overall": best_overall,
        "gap_pct": round(100 * (optimum - best_overall[1]) / optimum, 2),
        "optimum_hits": optima_found,
    }
