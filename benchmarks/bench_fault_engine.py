"""Fault-engine shoot-out: packed PPSFP/fault-parallel vs the serial oracle.

PR 1 vectorized the behavioural sweeps; this bench quantifies the same move
applied to the gate-level sign-off substrate (`repro.hdl.bitsim` +
`repro.hdl.faults`):

* random-pattern ATPG (`generate_tests`) on every 16-bit rtlib datapath
  block, serial vs packed, asserting a >= 10x speedup AND bit-identical
  kept vectors + coverage reports;
* full-universe (unsampled) fault simulation of the flattened GA core —
  ~10k stuck-at faults, which the serial engine could only estimate by
  fault sampling.
"""

import time

import pytest

from conftest import print_table
from repro.hdl import rtlib
from repro.hdl.faults import fault_simulate, generate_tests, random_vectors
from repro.hdl.flatten import flatten_ga_datapath
from repro.hdl.scan import insert_scan_chain


BLOCKS = [
    ("adder16", lambda: rtlib.build_adder(16)),
    ("comparator16", lambda: rtlib.build_comparator(16)),
    ("crossover", lambda: rtlib.build_crossover_unit(16)),
    ("mutation", lambda: rtlib.build_mutation_unit(16)),
    ("ca_rng", lambda: rtlib.build_ca_rng(16)),
]

#: One ATPG configuration for both engines (trimmed budget keeps the serial
#: oracle's leg of the shoot-out to a few seconds).
ATPG = dict(target_coverage=0.95, batch=32, max_vectors=48, seed=9)


def _report_tuple(report):
    return (report.total_faults, report.detected, report.vectors_used,
            report.undetected)


@pytest.mark.benchmark(group="fault-engine")
def test_ppsfp_atpg_speedup_and_parity(benchmark):
    def shootout():
        rows = []
        serial_total = packed_total = 0.0
        for name, build in BLOCKS:
            netlist = build()
            t0 = time.perf_counter()
            kept_s, rep_s = generate_tests(netlist, engine="serial", **ATPG)
            serial_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            kept_p, rep_p = generate_tests(netlist, engine="packed", **ATPG)
            packed_s = time.perf_counter() - t0
            # identical vectors and identical coverage reports, always
            assert kept_s == kept_p, f"{name}: engines kept different vectors"
            assert _report_tuple(rep_s) == _report_tuple(rep_p), (
                f"{name}: engines disagree on the coverage report"
            )
            serial_total += serial_s
            packed_total += packed_s
            rows.append(
                {
                    "block": name,
                    "faults": rep_p.total_faults,
                    "coverage%": round(100 * rep_p.coverage, 1),
                    "vectors": rep_p.vectors_used,
                    "serial_ms": round(1e3 * serial_s, 1),
                    "packed_ms": round(1e3 * packed_s, 1),
                    "speedup": round(serial_s / packed_s, 1),
                }
            )
        rows.append(
            {
                "block": "TOTAL",
                "serial_ms": round(1e3 * serial_total, 1),
                "packed_ms": round(1e3 * packed_total, 1),
                "speedup": round(serial_total / packed_total, 1),
            }
        )
        return rows, serial_total / packed_total

    rows, speedup = benchmark.pedantic(shootout, rounds=1, iterations=1)
    print_table(
        "ATPG engine shoot-out: serial oracle vs packed fault-parallel", rows
    )
    assert speedup >= 10, f"packed ATPG only {speedup:.1f}x faster than serial"


@pytest.mark.benchmark(group="fault-engine")
def test_full_universe_flattened_core(benchmark):
    def full_universe():
        core = flatten_ga_datapath()
        insert_scan_chain(core)
        vectors = random_vectors(core, 256, seed=7)
        return fault_simulate(core, vectors)  # every fault, no sampling

    report = benchmark.pedantic(full_universe, rounds=1, iterations=1)
    print_table(
        "Full-universe PPSFP fault simulation of the flattened GA core",
        [
            {
                "faults": report.total_faults,
                "vectors": report.vectors_used,
                "coverage%": round(100 * report.coverage, 1),
                "undetected": len(report.undetected),
            }
        ],
    )
    # the whole ~10k-fault universe is simulated, not a sample
    assert report.total_faults > 9000
    assert report.vectors_used == 256
    assert 0.5 < report.coverage < 1.0
