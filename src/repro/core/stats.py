"""Per-generation statistics shared by the cycle-accurate and behavioural
models — the data behind the paper's convergence plots (Figs. 8-16)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class GenerationStats:
    """Snapshot of one population.

    ``generation`` 0 is the initial random population; 1..N are the evolved
    populations.  ``fitnesses`` holds every member's fitness (the scatter
    data of Figs. 8-12); ``best``/``average`` are the two series of
    Figs. 13-16.
    """

    generation: int
    best_fitness: int
    best_individual: int
    fitness_sum: int
    population_size: int
    fitnesses: list[int] = field(default_factory=list)

    @property
    def average(self) -> float:
        """Average fitness of the population."""
        return self.fitness_sum / self.population_size

    def as_tuple(self) -> tuple[int, int, int, int]:
        """(generation, best_fitness, best_individual, fitness_sum) — the
        compact form used by equivalence tests."""
        return (
            self.generation,
            self.best_fitness,
            self.best_individual,
            self.fitness_sum,
        )
