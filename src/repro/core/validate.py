"""Shared input validation for the behavioural GA engines.

The serial and batched engines accept caller-supplied initial populations
(the island model carrying populations across epochs, the service layer
resuming suspended slabs).  Both must enforce the same contract — 16-bit
non-negative integer chromosomes in the engine's expected layout — and,
critically, must *disagree on nothing*: a payload that raises from one
engine raises the same named error from the other (the parity property in
``tests/core/test_validate.py``).  Before this helper existed the serial
engine silently masked out-of-range members with ``& 0xFFFF`` while the
batch engine raised, so the same bad job produced different populations
depending on which engine the scheduler happened to route it through.
"""

from __future__ import annotations

import numpy as np

#: Topology names the archipelago layer implements
#: (:mod:`repro.parallel.archipelago` builds its wiring factory from this
#: tuple, so the wire layer can validate a request without importing it).
#: ``random`` optionally carries a fan-in: ``"random:3"`` wires three
#: incoming edges per island.
KNOWN_TOPOLOGIES: tuple[str, ...] = ("ring", "torus", "random")


def validate_island_params(
    n_islands: int, migration_interval: int, topology: str
) -> None:
    """Check island-model parameters with named errors.

    The same contract is enforced — via this one helper, so the messages
    cannot drift — by :class:`~repro.parallel.islands.IslandGA`,
    :class:`~repro.parallel.archipelago.VectorIslandGA`, the service wire
    layer (:class:`~repro.service.jobs.GARequest`), and the CLI.
    ``n_islands == 1`` is the degenerate single-population archipelago
    (no migration edges), which is how a non-island job is encoded on the
    wire.
    """
    if not isinstance(n_islands, int) or isinstance(n_islands, bool):
        raise ValueError(f"n_islands must be an integer: {n_islands!r}")
    if n_islands < 1:
        raise ValueError(f"n_islands must be >= 1: {n_islands}")
    if not isinstance(migration_interval, int) or isinstance(
        migration_interval, bool
    ):
        raise ValueError(
            f"migration_interval must be an integer: {migration_interval!r}"
        )
    if migration_interval < 1:
        raise ValueError(
            f"migration_interval must be >= 1: {migration_interval}"
        )
    parse_topology(topology)


def parse_topology(topology: str) -> tuple[str, int]:
    """Split a topology spec into ``(name, fan_in)`` with named errors.

    ``"ring"`` and ``"torus"`` have fixed wiring (fan-in reported as 0);
    ``"random"`` defaults to 2 incoming edges per island and accepts an
    explicit count as ``"random:<k>"``.
    """
    if not isinstance(topology, str):
        raise ValueError(f"topology must be a string: {topology!r}")
    name, _, arg = topology.partition(":")
    if name not in KNOWN_TOPOLOGIES:
        raise ValueError(
            f"unknown topology {topology!r}; "
            f"available: {sorted(KNOWN_TOPOLOGIES)}"
        )
    if name != "random":
        if arg:
            raise ValueError(
                f"topology {name!r} takes no argument: {topology!r}"
            )
        return name, 0
    if not arg:
        return name, 2
    try:
        k = int(arg)
    except ValueError:
        raise ValueError(
            f"random topology fan-in must be an integer: {topology!r}"
        ) from None
    if k < 1:
        raise ValueError(f"random topology fan-in must be >= 1: {topology!r}")
    return name, k


def validate_initial_population(
    initial, expected_shape: tuple[int, ...]
) -> np.ndarray:
    """Check an initial population and return it as a fresh int64 array.

    ``expected_shape`` is ``(population_size,)`` for the serial engine and
    ``(n_replicas, population_size)`` for the batched one.  Raises
    ``ValueError`` naming the defect (dtype, shape, or member range) —
    never silently coerces.
    """
    arr = np.asarray(initial)
    if arr.dtype == np.bool_ or not np.issubdtype(arr.dtype, np.integer):
        raise ValueError(
            "initial populations must be an integer array of 16-bit "
            f"chromosomes, got dtype {arr.dtype}"
        )
    if arr.shape != expected_shape:
        raise ValueError(
            f"initial populations have shape {arr.shape}, "
            f"expected {expected_shape}"
        )
    if arr.size and (int(arr.min()) < 0 or int(arr.max()) > 0xFFFF):
        raise ValueError(
            "initial population members must be 16-bit values in "
            f"[0, 65535]; got range [{int(arr.min())}, {int(arr.max())}]"
        )
    return arr.astype(np.int64, copy=True)
