"""Functional-unit allocation, binding, and register-lifetime analysis
(the third stage of the Sec. III-A flow).

Allocation counts how many units of each FU class the schedule needs (the
peak per-step usage); binding assigns each op to a concrete unit slot;
lifetime analysis determines which values must be registered across control
steps and reports the register count a left-edge allocator would share them
into.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.dfg import FU_CLASS, OpType
from repro.hls.schedule import Schedule


@dataclass
class Allocation:
    """FU binding + register-lifetime summary for one schedule."""

    schedule: Schedule
    #: FU class -> number of allocated units.
    units: dict[str, int]
    #: op index -> (FU class, unit slot).
    binding: dict[int, tuple[str, int]]
    #: value (op index) -> (birth step, last-use step).
    lifetimes: dict[int, tuple[int, int]]
    #: registers needed if values share registers by left-edge allocation.
    shared_registers: int

    def ops_on_unit(self, fu_class: str, slot: int) -> list[int]:
        return [
            i for i, (cls, s) in self.binding.items() if cls == fu_class and s == slot
        ]


def allocate(schedule: Schedule) -> Allocation:
    """Bind ops to FU slots and analyse register lifetimes."""
    dfg = schedule.dfg

    # --- FU allocation + binding (per-step round robin) ----------------
    units: dict[str, int] = {}
    binding: dict[int, tuple[str, int]] = {}
    for step in range(schedule.length):
        used: dict[str, int] = {}
        for op in sorted(schedule.ops_in_step(step), key=lambda o: o.index):
            fu_class = FU_CLASS[op.type]
            slot = used.get(fu_class, 0)
            used[fu_class] = slot + 1
            binding[op.index] = (fu_class, slot)
            units[fu_class] = max(units.get(fu_class, 0), slot + 1)

    # --- register lifetimes ---------------------------------------------
    # A computational value is born at its step and must live until its
    # last consuming step (outputs hold it to the end of the schedule).
    lifetimes: dict[int, tuple[int, int]] = {}
    for op in dfg.computational_ops:
        birth = schedule.steps[op.index]
        last = birth
        for consumer in dfg.consumers(op.index):
            if consumer.type == OpType.OUTPUT:
                last = schedule.length - 1
            else:
                last = max(last, schedule.steps[consumer.index])
        lifetimes[op.index] = (birth, last)

    # --- left-edge register sharing --------------------------------------
    # Sort by birth; assign each value to the first register whose current
    # occupant's lifetime has ended.
    registers: list[int] = []  # per register: step after which it frees
    for index in sorted(lifetimes, key=lambda i: lifetimes[i][0]):
        birth, last = lifetimes[index]
        for r, free_after in enumerate(registers):
            if free_after < birth:
                registers[r] = last
                break
        else:
            registers.append(last)

    return Allocation(
        schedule=schedule,
        units=units,
        binding=binding,
        lifetimes=lifetimes,
        shared_registers=len(registers),
    )
