"""Vectorized archipelago throughput — one slab vs the legacy epoch loop.

A 256-island run with fine-grained migration (every generation — the
worst case for per-epoch Python overhead, and the cadence the ROADMAP's
"thousands of islands" item targets) is timed three ways:

* the legacy epoch loop (``IslandGA.run_epoch_loop``, the pre-archipelago
  ``processes=1`` default): one fresh ``BatchBehavioralGA`` — parameter
  list, stream bank, slot tables — constructed per epoch, plus a
  per-island Python migration loop;
* the vectorized archipelago (``VectorIslandGA``, exact mode): one
  resumable slab carried across all epochs, migration as an array
  scatter;
* the same slab in turbo mode (the vectorised generation kernel).

The exact-mode results are asserted bit-identical to the legacy loop
(the conformance suite property, re-checked on the benchmarked shape and
on a 1000-island run), and the exact-mode speedup is asserted >= 5x —
the archipelago refactor's headline number.  Both ratios land in
``extra_info`` for the perf trajectory.
"""

import time

import pytest

from conftest import print_table
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.parallel.archipelago import VectorIslandGA
from repro.parallel.islands import IslandGA

N_ISLANDS = 256
POP = 16
GENS = 128
MIGRATION_INTERVAL = 1
FITNESS = "mBF6_2"

PARAMS = GAParameters(
    n_generations=GENS, population_size=POP,
    crossover_threshold=10, mutation_threshold=1, rng_seed=0x061F,
)
KWARGS = dict(n_islands=N_ISLANDS, migration_interval=MIGRATION_INTERVAL)


def legacy_run():
    return IslandGA(PARAMS, by_name(FITNESS), **KWARGS).run_epoch_loop()


def vector_run(mode: str):
    return VectorIslandGA(
        PARAMS, by_name(FITNESS), engine_mode=mode, **KWARGS
    ).run()


def _best_of(fn, rounds: int = 3):
    best, out = None, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best, out


@pytest.mark.benchmark(group="archipelago")
def test_vector_archipelago_speedup_over_epoch_loop(benchmark):
    # warm caches both paths share: fitness table, CA orbit, slot-outcome
    # tables, the turbo kernel's binomial CDFs
    warm = PARAMS.with_(n_generations=2)
    IslandGA(warm, by_name(FITNESS), **KWARGS).run_epoch_loop()
    for mode in ("exact", "turbo"):
        VectorIslandGA(
            warm, by_name(FITNESS), engine_mode=mode, **KWARGS
        ).run()

    t_legacy, legacy = _best_of(legacy_run)
    t_exact, exact = _best_of(lambda: vector_run("exact"))
    t_turbo, turbo = _best_of(lambda: vector_run("turbo"))
    benchmark.pedantic(lambda: vector_run("exact"), rounds=1, iterations=1)

    # the refactor moves work, never numbers: bit-identical on the
    # benchmarked shape...
    assert exact == legacy
    # ...and on the acceptance-criteria scale: 1000 islands, one slab
    big = PARAMS.with_(n_generations=6)
    big_kwargs = dict(n_islands=1000, migration_interval=3)
    assert (
        VectorIslandGA(big, by_name(FITNESS), **big_kwargs).run()
        == IslandGA(big, by_name(FITNESS), **big_kwargs).run_epoch_loop()
    )
    # turbo shares the accounting even where the draws differ
    assert turbo.evaluations == exact.evaluations
    assert turbo.migrations == exact.migrations

    exact_speedup = t_legacy / t_exact
    turbo_speedup = t_legacy / t_turbo
    island_gens = N_ISLANDS * GENS
    rows = [
        {"path": "legacy epoch loop (exact)", "time_s": round(t_legacy, 3),
         "island-gens/sec": round(island_gens / t_legacy, 0)},
        {"path": "VectorIslandGA (exact)", "time_s": round(t_exact, 3),
         "island-gens/sec": round(island_gens / t_exact, 0)},
        {"path": "VectorIslandGA (turbo)", "time_s": round(t_turbo, 3),
         "island-gens/sec": round(island_gens / t_turbo, 0)},
    ]
    print_table(
        f"{N_ISLANDS} islands, pop {POP} x {GENS} generations, "
        f"migration every generation (ring)",
        rows,
    )
    print(f"vector exact speedup: {exact_speedup:.1f}x; "
          f"turbo: {turbo_speedup:.1f}x; "
          f"best fitness {exact.best_fitness} at {exact.best_individual}, "
          f"{exact.migrations} migrations")

    benchmark.extra_info["islands"] = N_ISLANDS
    benchmark.extra_info["exact_speedup"] = round(exact_speedup, 2)
    benchmark.extra_info["turbo_speedup"] = round(turbo_speedup, 2)
    benchmark.extra_info["island_gens_per_s_exact"] = round(
        island_gens / t_exact, 0
    )

    # the tentpole claim: one carried slab beats per-epoch engine
    # reconstruction by at least 5x on a fine-grained 256-island run
    assert exact_speedup >= 5.0
