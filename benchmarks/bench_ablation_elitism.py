"""Ablation: elitism on/off (Sec. I: "an elitist GA model is used which has
been shown to have the ability to converge to the global optimum").

The non-elitist variant is ScottHGA's generational scheme with the proposed
core's operators; the elitist variant is the core itself.  Same budget, same
seeds — elitism should dominate on final best fitness and never regress
across generations.
"""

import statistics

import pytest

from conftest import print_table
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import BF6
from repro.rng.cellular_automaton import CellularAutomatonPRNG

SEEDS = [45890, 10593, 1567, 0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0]


class NonElitistGA(BehavioralGA):
    """The proposed core with elitism removed: slot 0 is a regular
    offspring pair product instead of the copied champion."""

    def run(self, initial=None):
        import numpy as np
        from repro.core.system import GAResult

        pop = self.params.population_size
        table = self.table
        self.history = []
        self.evaluations = 0
        inds = self.rng.block(pop).astype(np.int64)
        fits = table[inds].astype(np.int64)
        self.evaluations += pop
        best_idx = int(fits.argmax())
        best_ind, best_fit = int(inds[best_idx]), int(fits[best_idx])
        self._record(0, inds, fits)
        for gen in range(1, self.params.n_generations + 1):
            cum = np.cumsum(fits)
            total = int(cum[-1])
            new_inds = np.empty(pop, dtype=np.int64)
            count = 0
            while count < pop:
                p1 = int(inds[self._select(cum, total)])
                p2 = int(inds[self._select(cum, total)])
                o1, o2 = self._crossover(p1, p2)
                for off in (o1, o2):
                    if count >= pop:
                        break
                    off = self._mutate(off)
                    new_inds[count] = off
                    count += 1
                    self.evaluations += 1
                    f = int(table[off])
                    if f > best_fit:
                        best_ind, best_fit = off, f
            inds = new_inds
            fits = table[inds].astype(np.int64)
            self._record(gen, inds, fits)
        return GAResult(best_ind, best_fit, self.history, self.evaluations,
                        self.params, self.fitness.name, cycles=None)


def _compare():
    fn = BF6()
    rows = []
    for seed in SEEDS:
        params = GAParameters(32, 32, 10, 1, seed)
        elitist = BehavioralGA(params, fn, rng=CellularAutomatonPRNG(seed)).run()
        non = NonElitistGA(params, fn, rng=CellularAutomatonPRNG(seed)).run()
        rows.append(
            {
                "seed": seed,
                "elitist_best": elitist.best_fitness,
                "non_elitist_best": non.best_fitness,
                "elitist_final_pop_best": elitist.history[-1].best_fitness,
                "non_elitist_final_pop_best": non.history[-1].best_fitness,
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation-elitism")
def test_elitism_ablation(benchmark):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print_table("Elitism ablation (BF6, pop 32, 32 gens)", rows)

    # Elitism guarantees the final population retains the best-so-far; the
    # non-elitist GA can lose it (retention gap on at least some seeds).
    retained_e = [r["elitist_final_pop_best"] for r in rows]
    retained_n = [r["non_elitist_final_pop_best"] for r in rows]
    assert statistics.mean(retained_e) >= statistics.mean(retained_n)
    # And mean best-found should favour (or match) the elitist model.
    assert statistics.mean([r["elitist_best"] for r in rows]) >= 0.99 * statistics.mean(
        [r["non_elitist_best"] for r in rows]
    )
