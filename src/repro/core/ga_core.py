"""The GA core: cycle-accurate FSM implementing Fig. 2's optimization cycle.

This is the reproduction of the paper's synthesized controller + datapath at
clock-cycle granularity.  Every interaction happens over the Table II ports:

* parameters arrive through the ``index``/``value``/``data_valid``/
  ``data_ack`` handshake while ``ga_load`` is high (Sec. III-B.6);
* the population lives in the external single-port GA memory, double
  buffered in two 128-word banks (``mem_address``/``mem_data_out``/
  ``mem_wr``/``mem_data_in``), with the documented one-cycle read latency;
* fitness is obtained over the ``candidate``/``fit_request``/``fit_value``/
  ``fit_valid`` two-way handshake (Sec. III-B.5);
* random words come from the ``rn`` port, consumed via dedicated fetch
  states that pulse ``rn_taken`` so the RNG module advances exactly once per
  draw;
* ``start_GA`` launches a run; ``GA_done`` + the final best on ``candidate``
  end it; the best of every generation is also placed on ``candidate`` at
  each generation boundary ("the best candidate of every generation is
  always output to the application", Sec. III-C.3).

The algorithm (identical, draw for draw, to
:class:`repro.core.behavioral.BehavioralGA`):

1. Generate ``pop`` random individuals, evaluate each, accumulate the
   fitness sum, track the best (elitist model).
2. Per generation: copy the best into slot 0 of the new bank; then until
   the new bank is full, select two parents by proportionate selection
   (threshold = ``(rn * fitness_sum) >> 16`` against the running cumulative
   sum scanned out of memory), apply single-point crossover with
   probability ``crossover_threshold/16``, single-bit mutation per
   offspring with probability ``mutation_threshold/16``, evaluate and store
   each offspring.
3. After ``n_generations`` bank swaps, assert ``GA_done`` with the best
   individual found.
"""

from __future__ import annotations

from repro.core.ga_memory import BANK_SIZE, bank_address, pack_word, unpack_word
from repro.core.params import GAParameters, PRESET_MODES, PresetMode
from repro.core.ports import GAPorts
from repro.core.stats import GenerationStats
from repro.hdl.component import Component


#: FSM-state to GA-phase attribution for the traced cycle breakdown —
#: the software rendition of the paper's hardware convergence counters
#: (Tables VII-IX count generations; this counts where the cycles go).
_STATE_PHASE = {
    "FETCH_RN": "rng",
    "SEL1_BEGIN": "selection", "SEL1_THRESHOLD": "selection",
    "SEL1_READ": "selection", "SEL1_WAIT": "selection",
    "SEL1_SCAN": "selection",
    "SEL2_BEGIN": "selection", "SEL2_THRESHOLD": "selection",
    "SEL2_READ": "selection", "SEL2_WAIT": "selection",
    "SEL2_SCAN": "selection",
    "XOVER_DECIDE": "crossover", "XOVER_APPLY": "crossover",
    "MUT1_DECIDE": "mutation", "MUT1_APPLY": "mutation",
    "MUT2_PREP": "mutation", "MUT2_DECIDE": "mutation",
    "MUT2_APPLY": "mutation",
    "EVAL1": "eval", "EVAL2": "eval", "INITPOP_EVAL": "eval",
    "STORE1": "store", "STORE2": "store", "INITPOP_STORE": "store",
    "ELITE": "elitism",
}


class GACore(Component):
    """Cycle-accurate model of the GA IP core FSM.

    ``tracer`` (settable after construction, e.g. by
    :class:`~repro.core.system.GASystem`) arms the observability probes:
    one ``cycle.generation`` event per generation boundary and a
    ``cycle.phase_cycles`` event at ``GA_done`` attributing every clock
    cycle of the run to its GA phase.  With the default ``None`` the
    per-clock cost is a single attribute check.
    """

    #: Cycle-accurate population limit: two banks in the 256-word memory.
    MAX_POPULATION = BANK_SIZE

    def __init__(self, ports: GAPorts, rng_module=None, name: str = "ga_core"):
        super().__init__(name)
        self.ports = ports
        self.rng_module = rng_module
        self.tracer = None
        self._power_on()

    # ------------------------------------------------------------------
    def _power_on(self) -> None:
        self.state = "IDLE"
        self.after_fetch = "IDLE"
        self.rn_latch = 0
        # programmable parameter registers (Table III) + programmed flag
        self.param_words: dict[int, int] = {}
        self.programmed = False
        self.ack_high = False
        # resolved configuration for the current run
        self.cfg: GAParameters | None = None
        # architectural registers
        self.gen_index = 0
        self.pop_index = 0
        self.cur_bank = 0
        self.cur_sum = 0
        self.new_sum = 0
        self.new_count = 0
        self.best_ind = 0
        self.best_fit = 0
        self.cum_sum = 0
        self.scan_index = 0
        self.sel_threshold = 0
        self.parent1 = 0
        self.parent2 = 0
        self.off1 = 0
        self.off2 = 0
        self.fit_latch = 0
        self.req_active = False
        self.current_offspring = 0
        # instrumentation
        self.history: list[GenerationStats] = []
        self._gen_fitnesses: list[int] = []
        self.evaluations = 0
        self.start_cycle = 0
        self.done_cycle = 0
        self._phase_cycles: dict[str, int] = {}

    def reset(self) -> None:
        super().reset()
        self._power_on()
        p = self.ports
        for sig in (p.data_ack, p.fit_request, p.candidate, p.mem_address,
                    p.mem_data_out, p.mem_wr, p.GA_done, p.rn_taken, p.scanout):
            sig.reset()

    # ------------------------------------------------------------------
    # helpers (queue effects through the two-phase machinery)
    # ------------------------------------------------------------------
    def _goto(self, state: str) -> None:
        self.set_state(state=state)

    def _fetch_rn(self, then: str) -> None:
        """Enter the RNG fetch state; the word lands in ``rn_latch``."""
        self.set_state(state="FETCH_RN", after_fetch=then)

    def _resolve_parameters(self) -> GAParameters:
        preset = self.ports.preset.value
        if preset != PresetMode.USER:
            return PRESET_MODES[PresetMode(preset)]
        if not self.programmed:
            raise RuntimeError(
                "GA started in user mode (preset=00) without parameter "
                "initialization; program Table III parameters or select a preset"
            )
        cfg = GAParameters.from_index_values(self.param_words)
        if cfg.population_size > self.MAX_POPULATION:
            raise ValueError(
                f"cycle-accurate core supports populations up to {self.MAX_POPULATION} "
                f"(two banks in the 256-word GA memory); got {cfg.population_size}"
            )
        return cfg

    def _record_generation(self) -> None:
        self.history.append(
            GenerationStats(
                generation=self.gen_index,
                best_fitness=self.best_fit,
                best_individual=self.best_ind,
                fitness_sum=self.new_sum if self.gen_index > 0 else self.cur_sum,
                population_size=self.cfg.population_size,
                fitnesses=list(self._gen_fitnesses),
            )
        )
        self._gen_fitnesses = []
        if self.tracer is not None and self.tracer.enabled:
            g = self.history[-1]
            self.tracer.event(
                "cycle.generation",
                generation=g.generation,
                best_fitness=g.best_fitness,
                best_individual=g.best_individual,
                fitness_sum=g.fitness_sum,
                cycle=self.cycles,
            )

    # ------------------------------------------------------------------
    # the FSM
    # ------------------------------------------------------------------
    #: States that assert the memory write strobe.
    _WRITE_STATES = frozenset({"INITPOP_STORE", "ELITE", "STORE1", "STORE2"})

    def clock(self) -> None:
        p = self.ports
        state = self.state

        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            phase = _STATE_PHASE.get(state, "control")
            self._phase_cycles[phase] = self._phase_cycles.get(phase, 0) + 1

        if state != "FETCH_RN":
            self.drive(p.rn_taken, 0)
        if state not in self._WRITE_STATES:
            self.drive(p.mem_wr, 0)

        handler = getattr(self, f"_state_{state}", None)
        if handler is None:
            # A corrupted FSM state vector (SEU on the one-hot register)
            # decodes to no active state: the core freezes until reset —
            # run_until's timeout is the system-level symptom.
            return
        handler()

    # -- idle / parameter initialization --------------------------------
    def _state_IDLE(self) -> None:
        p = self.ports
        if p.ga_load.value:
            self._handle_param_handshake()
            return
        if p.start_GA.value:
            self._begin_run()

    def _handle_param_handshake(self) -> None:
        """Table III handshake: latch value into the indexed register."""
        p = self.ports
        if p.data_valid.value and not self.ack_high:
            words = dict(self.param_words)
            words[p.index.value] = p.value.value
            self.set_state(param_words=words, programmed=True, ack_high=True)
            self.drive(p.data_ack, 1)
        elif not p.data_valid.value and self.ack_high:
            self.drive(p.data_ack, 0)
            self.set_state(ack_high=False)

    def _begin_run(self) -> None:
        p = self.ports
        cfg = self._resolve_parameters()
        self.set_state(
            cfg=cfg,
            gen_index=0,
            pop_index=0,
            cur_bank=0,
            cur_sum=0,
            new_sum=0,
            new_count=0,
            best_ind=0,
            best_fit=0,
            evaluations=0,
            start_cycle=self.cycles,
            # clear the previous run's latch so _state_DONE re-latches and
            # GAResult.cycles stays correct on a back-to-back restart
            done_cycle=0,
        )
        self.history = []
        self._gen_fitnesses = []
        self._phase_cycles = {}
        if self.rng_module is not None:
            seed = cfg.rng_seed
            self.rng_module.load_seed(seed)
        self.drive(p.GA_done, 0)
        self._fetch_rn("INITPOP_EVAL")

    # -- RNG fetch -------------------------------------------------------
    def _state_FETCH_RN(self) -> None:
        p = self.ports
        self.set_state(rn_latch=p.rn.value, state=self.after_fetch)
        self.drive(p.rn_taken, 1)

    # -- initial population ----------------------------------------------
    def _state_INITPOP_EVAL(self) -> None:
        done, fit = self._fitness_handshake(self.rn_latch)
        if done:
            self.set_state(fit_latch=fit, current_offspring=self.rn_latch)
            self._goto("INITPOP_STORE")

    def _state_INITPOP_STORE(self) -> None:
        p = self.ports
        ind, fit = self.current_offspring, self.fit_latch
        self.drive(p.mem_address, bank_address(self.cur_bank, self.pop_index))
        self.drive(p.mem_data_out, pack_word(ind, fit))
        self.drive(p.mem_wr, 1)
        self._gen_fitnesses.append(fit)
        updates = {
            "cur_sum": self.cur_sum + fit,
            "pop_index": self.pop_index + 1,
        }
        if fit > self.best_fit or self.pop_index == 0:
            updates.update(best_ind=ind, best_fit=fit)
        self.set_state(**updates)
        self.evaluations += 1
        if self.pop_index + 1 == self.cfg.population_size:
            self._goto("INITPOP_DONE")
        else:
            self._fetch_rn("INITPOP_EVAL")

    def _state_INITPOP_DONE(self) -> None:
        p = self.ports
        self.drive(p.mem_wr, 0)
        self._record_generation()
        self.drive(p.candidate, self.best_ind)
        if self.cfg.n_generations == 0:
            self._goto("DONE")
        else:
            self._goto("ELITE")

    # -- generation loop ---------------------------------------------------
    def _state_ELITE(self) -> None:
        """Copy the best individual into slot 0 of the new bank."""
        p = self.ports
        new_bank = 1 - self.cur_bank
        self.drive(p.mem_address, bank_address(new_bank, 0))
        self.drive(p.mem_data_out, pack_word(self.best_ind, self.best_fit))
        self.drive(p.mem_wr, 1)
        self._gen_fitnesses.append(self.best_fit)
        self.set_state(new_count=1, new_sum=self.best_fit)
        self._goto("SEL1_BEGIN")

    def _begin_selection(self, then_threshold_state: str) -> None:
        self.drive(self.ports.mem_wr, 0)
        self._fetch_rn(then_threshold_state)

    def _state_SEL1_BEGIN(self) -> None:
        self._begin_selection("SEL1_THRESHOLD")

    def _state_SEL1_THRESHOLD(self) -> None:
        self.set_state(
            sel_threshold=(self.rn_latch * self.cur_sum) >> 16,
            cum_sum=0,
            scan_index=0,
        )
        self._goto("SEL1_READ")

    def _state_SEL1_READ(self) -> None:
        self._selection_read()
        self._goto("SEL1_WAIT")

    def _state_SEL1_WAIT(self) -> None:
        self._goto("SEL1_SCAN")

    def _state_SEL1_SCAN(self) -> None:
        selected, ind = self._selection_scan()
        if selected:
            self.set_state(parent1=ind)
            self._goto("SEL2_BEGIN")
        else:
            self._goto("SEL1_READ")

    def _state_SEL2_BEGIN(self) -> None:
        self._begin_selection("SEL2_THRESHOLD")

    def _state_SEL2_THRESHOLD(self) -> None:
        self.set_state(
            sel_threshold=(self.rn_latch * self.cur_sum) >> 16,
            cum_sum=0,
            scan_index=0,
        )
        self._goto("SEL2_READ")

    def _state_SEL2_READ(self) -> None:
        self._selection_read()
        self._goto("SEL2_WAIT")

    def _state_SEL2_WAIT(self) -> None:
        self._goto("SEL2_SCAN")

    def _state_SEL2_SCAN(self) -> None:
        selected, ind = self._selection_scan()
        if selected:
            self.set_state(parent2=ind)
            self._fetch_rn("XOVER_DECIDE")
        else:
            self._goto("SEL2_READ")

    def _selection_read(self) -> None:
        self.drive(
            self.ports.mem_address, bank_address(self.cur_bank, self.scan_index)
        )

    def _selection_scan(self) -> tuple[bool, int]:
        """Proportionate selection: accumulate fitness from memory until the
        cumulative sum exceeds the threshold (Sec. III-B.2)."""
        cand, fit = unpack_word(self.ports.mem_data_in.value)
        cum = self.cum_sum + fit
        last = self.scan_index == self.cfg.population_size - 1
        if cum > self.sel_threshold or last:
            return True, cand
        self.set_state(cum_sum=cum, scan_index=self.scan_index + 1)
        return False, 0

    # -- crossover ---------------------------------------------------------
    def _state_XOVER_DECIDE(self) -> None:
        if (self.rn_latch & 0xF) < self.cfg.crossover_threshold:
            self._fetch_rn("XOVER_APPLY")
        else:
            self.set_state(off1=self.parent1, off2=self.parent2)
            self._fetch_rn("MUT1_DECIDE")

    def _state_XOVER_APPLY(self) -> None:
        cut = self.rn_latch & 0xF
        mask = (1 << cut) - 1
        inv = ~mask & 0xFFFF
        self.set_state(
            off1=(self.parent1 & mask) | (self.parent2 & inv),
            off2=(self.parent2 & mask) | (self.parent1 & inv),
        )
        self._fetch_rn("MUT1_DECIDE")

    # -- mutation + evaluation + store, offspring 1 then 2 -----------------
    def _state_MUT1_DECIDE(self) -> None:
        if (self.rn_latch & 0xF) < self.cfg.mutation_threshold:
            self._fetch_rn("MUT1_APPLY")
        else:
            self.set_state(current_offspring=self.off1)
            self._goto("EVAL1")

    def _state_MUT1_APPLY(self) -> None:
        point = self.rn_latch & 0xF
        self.set_state(current_offspring=self.off1 ^ (1 << point))
        self._goto("EVAL1")

    def _state_EVAL1(self) -> None:
        done, fit = self._fitness_handshake(self.current_offspring)
        if done:
            self.set_state(fit_latch=fit)
            self._goto("STORE1")

    def _state_STORE1(self) -> None:
        self._store_offspring(next_pair_state="MUT2_PREP")

    def _state_MUT2_PREP(self) -> None:
        self.drive(self.ports.mem_wr, 0)
        self._fetch_rn("MUT2_DECIDE")

    def _state_MUT2_DECIDE(self) -> None:
        if (self.rn_latch & 0xF) < self.cfg.mutation_threshold:
            self._fetch_rn("MUT2_APPLY")
        else:
            self.set_state(current_offspring=self.off2)
            self._goto("EVAL2")

    def _state_MUT2_APPLY(self) -> None:
        point = self.rn_latch & 0xF
        self.set_state(current_offspring=self.off2 ^ (1 << point))
        self._goto("EVAL2")

    def _state_EVAL2(self) -> None:
        done, fit = self._fitness_handshake(self.current_offspring)
        if done:
            self.set_state(fit_latch=fit)
            self._goto("STORE2")

    def _state_STORE2(self) -> None:
        self._store_offspring(next_pair_state="SEL1_BEGIN")

    def _store_offspring(self, next_pair_state: str) -> None:
        p = self.ports
        ind, fit = self.current_offspring, self.fit_latch
        new_bank = 1 - self.cur_bank
        self.drive(p.mem_address, bank_address(new_bank, self.new_count))
        self.drive(p.mem_data_out, pack_word(ind, fit))
        self.drive(p.mem_wr, 1)
        self._gen_fitnesses.append(fit)
        updates = {"new_sum": self.new_sum + fit, "new_count": self.new_count + 1}
        if fit > self.best_fit:
            updates.update(best_ind=ind, best_fit=fit)
        self.set_state(**updates)
        self.evaluations += 1
        if self.new_count + 1 == self.cfg.population_size:
            self._goto("GEN_END")
        else:
            self._goto(next_pair_state)

    def _state_GEN_END(self) -> None:
        p = self.ports
        self.drive(p.mem_wr, 0)
        self.set_state(
            gen_index=self.gen_index + 1,
            cur_bank=1 - self.cur_bank,
            cur_sum=self.new_sum,
            new_sum=0,
            new_count=0,
        )
        # Output the generation's best for emergency use (Sec. III-C.3c).
        self.drive(p.candidate, self.best_ind)
        self._goto("GEN_RECORD")

    def _state_GEN_RECORD(self) -> None:
        # Committed state now reflects the finished generation.
        self.history.append(
            GenerationStats(
                generation=self.gen_index,
                best_fitness=self.best_fit,
                best_individual=self.best_ind,
                fitness_sum=self.cur_sum,
                population_size=self.cfg.population_size,
                fitnesses=list(self._gen_fitnesses),
            )
        )
        self._gen_fitnesses = []
        if self.tracer is not None and self.tracer.enabled:
            g = self.history[-1]
            self.tracer.event(
                "cycle.generation",
                generation=g.generation,
                best_fitness=g.best_fitness,
                best_individual=g.best_individual,
                fitness_sum=g.fitness_sum,
                cycle=self.cycles,
            )
        if self.gen_index >= self.cfg.n_generations:
            self._goto("DONE")
        else:
            self._goto("ELITE")

    def _state_DONE(self) -> None:
        p = self.ports
        if self.done_cycle == 0:
            self.set_state(done_cycle=self.cycles)
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.event(
                    "cycle.phase_cycles",
                    cycles=dict(self._phase_cycles),
                    total=self.cycles - self.start_cycle,
                )
        if p.start_GA.value:
            self._begin_run()  # drives GA_done low for the new run
            return
        self.drive(p.candidate, self.best_ind)
        self.drive(p.GA_done, 1)
        if p.ga_load.value:
            self._goto("IDLE")

    # -- fitness handshake -------------------------------------------------
    def _fitness_handshake(self, candidate: int) -> tuple[bool, int]:
        """Drive one 4-phase fitness request; returns (finished, fitness)."""
        p = self.ports
        self.drive(p.candidate, candidate)
        if not self.req_active:
            if p.fit_valid.value == 0:
                self.drive(p.fit_request, 1)
                self.set_state(req_active=True)
            return False, 0
        if p.fit_valid.value:
            self.drive(p.fit_request, 0)
            self.set_state(req_active=False)
            return True, p.fit_value.value
        return False, 0
