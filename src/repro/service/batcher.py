"""Dynamic batching: coalescing pending jobs into resumable slabs.

A *slab* is the serving-layer unit of execution: up to ``max_batch`` jobs
sharing a population size, evolved together as one
:class:`~repro.core.batch.BatchBehavioralGA` replica axis.  Jobs in a slab
may differ in everything else the batch engine permits — generations,
thresholds, seeds, fitness slots — because the slab advances in *chunks*
of at most ``admit_interval`` generations and re-forms at every chunk
boundary: finished jobs retire, and compatible late arrivals are admitted
(continuous batching, exactly the policy an inference server applies to
token generation).  The chunk length is clamped to the slab's shortest
remaining job so retirement always happens on a boundary.

The policy half answers *when* to seal a new slab: immediately once
``max_batch`` compatible jobs are pending, or when the oldest has waited
``max_wait_s`` (the classic batching latency/throughput knob), or
unconditionally while draining for shutdown.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.stats import GenerationStats
from repro.service.jobs import GARequest, JobHandle, JobResult, params_to_dict


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the scheduler's batching and admission behaviour."""

    #: slab width cap (the replica axis of one BatchBehavioralGA)
    max_batch: int = 32
    #: max seconds the oldest pending job waits before a partial slab seals
    max_wait_s: float = 0.02
    #: generations per chunk — the late-admission boundary spacing
    admit_interval: int = 16
    #: admission-control bound on the pending queue (backpressure)
    max_pending: int = 1024

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0: {self.max_wait_s}")
        if self.admit_interval < 1:
            raise ValueError(
                f"admit_interval must be >= 1: {self.admit_interval}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1: {self.max_pending}")


def compat_key(record: "JobRecord") -> tuple:
    """Jobs sharing this key may ride one slab.

    Population size is structural (it is the member axis of the 2-D
    population array), and the engine mode is too — a slab runs entirely
    exact or entirely turbo, never mixed; hardened jobs are never batched —
    their fault streams are addressed per solo run — so each gets a unique
    key.  Island jobs (``n_islands > 1``) are their *own* slab already
    (replica axis = island), so they too run solo under a unique key.
    """
    if record.request.protection is not None:
        return ("hardened", record.seq)
    if record.request.n_islands > 1:
        return ("island", record.seq)
    return (
        "batch",
        record.request.params.population_size,
        record.request.engine_mode,
    )


@dataclass
class JobRecord:
    """Scheduler-side state of one job across its slab chunks."""

    job_id: int
    request: GARequest
    handle: JobHandle
    submitted_at: float
    seq: int
    remaining: int = 0
    population: list[int] | None = None
    rng_state: int | None = None
    evaluations: int = 0
    chunks: int = 0
    started_at: float | None = None
    stats: list[tuple[int, int, int]] = field(default_factory=list)
    best_individual: int = 0
    best_fitness: int = -1
    protection_stats: dict = field(default_factory=dict)
    island_stats: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.remaining = self.request.params.n_generations

    @property
    def deadline_at(self) -> float:
        if self.request.deadline_s is None:
            return float("inf")
        return self.submitted_at + self.request.deadline_s

    def order_key(self) -> tuple:
        """Pending-queue order: priority, then EDF, then FIFO."""
        return (self.request.priority, self.deadline_at, self.seq)

    def to_result(self, completed_at: float) -> JobResult:
        pop = self.request.params.population_size
        return JobResult(
            job_id=self.job_id,
            best_individual=self.best_individual,
            best_fitness=self.best_fitness,
            evaluations=self.evaluations,
            fitness_name=self.request.fitness_name,
            params=self.request.params,
            history=[
                GenerationStats(
                    generation=g, best_fitness=bf, best_individual=bi,
                    fitness_sum=fs, population_size=pop,
                )
                for g, (bf, bi, fs) in enumerate(self.stats)
            ],
            latency_s=completed_at - self.submitted_at,
            wait_s=(self.started_at or completed_at) - self.submitted_at,
            n_chunks=self.chunks,
            deadline_missed=completed_at > self.deadline_at,
            protection_stats=self.protection_stats,
            island_stats=self.island_stats,
        )


class Slab:
    """A set of co-executing jobs plus the chunk bookkeeping around them."""

    _ids = itertools.count()

    def __init__(self, entries: list[JobRecord], policy: BatchPolicy):
        if not entries:
            raise ValueError("slab needs at least one job")
        self.slab_id = next(Slab._ids)
        self.entries = list(entries)
        self.policy = policy
        self.hardened = entries[0].request.protection is not None
        if self.hardened and len(entries) != 1:
            raise ValueError("hardened jobs run in single-job slabs")
        self.island = entries[0].request.n_islands > 1
        if self.island and len(entries) != 1:
            raise ValueError("island jobs run in single-job slabs")
        self.pop = entries[0].request.params.population_size
        self.engine_mode = entries[0].request.engine_mode

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def capacity_left(self) -> int:
        if self.hardened or self.island:
            return 0
        return self.policy.max_batch - len(self.entries)

    def admit(self, records: list[JobRecord]) -> None:
        """Merge late arrivals at a chunk boundary."""
        if (self.hardened or self.island) and records:
            raise ValueError("solo slabs do not admit")
        self.entries.extend(records)

    def next_chunk_gens(self) -> int:
        """Chunk length: the admission interval, clamped to the shortest
        remaining job so retirements land on chunk boundaries.  Hardened
        and island slabs run to completion in one chunk (fault injection
        and migration schedules are addressed against an uninterrupted
        run)."""
        shortest = min(r.remaining for r in self.entries)
        if self.hardened or self.island:
            return shortest
        return min(self.policy.admit_interval, shortest)

    def make_spec(self, chunk_gens: int) -> dict:
        """The picklable worker payload for the next chunk."""
        spec_entries = []
        for record in self.entries:
            spec_entries.append(
                {
                    "job_id": record.job_id,
                    "params": params_to_dict(record.request.params),
                    "fitness": record.request.fitness_name,
                    "population": record.population,
                    "rng_state": record.rng_state,
                    "record_stats": record.request.record_trace,
                }
            )
        protection = None
        if self.hardened:
            req = self.entries[0].request
            protection = {
                "preset": req.protection,
                "upset_rate": req.upset_rate,
                "campaign_seed": req.campaign_seed,
            }
        island = None
        if self.island:
            req = self.entries[0].request
            island = {
                "n_islands": req.n_islands,
                "migration_interval": req.migration_interval,
                "topology": req.topology,
            }
        return {
            "chunk_gens": chunk_gens,
            "entries": spec_entries,
            "protection": protection,
            "island": island,
            "mode": self.engine_mode,
        }

    def apply_chunk(self, out: dict, chunk_gens: int) -> list[JobRecord]:
        """Fold a worker's chunk result back into the records.

        Returns the records that finished with this chunk (and removes
        them from the slab).  Trace splicing: a resumed chunk's local
        generation 0 restates the previous chunk's final generation, so it
        is dropped before concatenation — the spliced trace is then
        bit-identical to one uninterrupted run's.
        """
        by_id = {r.job_id: r for r in self.entries}
        finished: list[JobRecord] = []
        for entry_out in out["entries"]:
            record = by_id[entry_out["job_id"]]
            rows = entry_out["stats"]
            if record.chunks > 0:
                rows = rows[1:]
            record.stats.extend(rows)
            record.population = entry_out["population"]
            record.rng_state = entry_out["rng_state"]
            record.evaluations += entry_out["evaluations"]
            record.best_individual = entry_out["best_individual"]
            record.best_fitness = entry_out["best_fitness"]
            record.protection_stats = entry_out["protection_stats"]
            record.island_stats = entry_out.get("island_stats", {})
            record.chunks += 1
            record.remaining -= chunk_gens
            if record.remaining <= 0:
                finished.append(record)
        self.entries = [r for r in self.entries if r.remaining > 0]
        return finished
