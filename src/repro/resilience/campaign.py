"""SEU campaign runner: upset rates x protection configs over replicas.

A campaign answers the Sec. II-D deployment question — *how does the GA
core degrade under soft errors, and what does each protection buy back?* —
the same way radiation test campaigns do: run many replicas of the same
workload, each with an independent random upset stream, under every
(upset rate, protection config) cell, and compare against the fault-free
run.  Replicas ride the batched engine
(:class:`~repro.core.batch.BatchBehavioralGA`), so a whole cell evolves as
one ``(replica, member)`` array pass per generation.

The report is a plain dict of ints/floats (JSON-serialisable), and the
whole campaign is deterministic: the same ``seed`` reproduces the report
verbatim, because every replica's upset stream is
``PCG64(SeedSequence([seed, replica]))`` and the GA itself is the
bit-exact CA-PRNG engine.  Cells share the campaign seed, so configs are
compared *paired* — the same upset times hit every config wherever the
cross-sections coincide.

Per-cell metrics:

* ``recovery_rate``  — fraction of replicas that completed AND delivered
  the fault-free best (fully recovered runs);
* ``sdc_rate``       — silent data corruption: completed but delivered a
  different answer than the fault-free run, with nothing flagged to the
  application;
* ``hang_rate``      — replicas that died mid-run (dropped handshake or
  dead FEM with no watchdog/fallback left);
* ``degradation_pct``— mean convergence degradation vs. fault-free,
  ``(baseline - final) / baseline`` clamped at 0, hung replicas scored at
  their hang-time best (Sec. III-C.3c: the best of every generation is
  always output, so that is what the application keeps);
* detection/correction/recovery counters summed over replicas, plus the
  injector's per-domain upset totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.batch import BatchBehavioralGA
from repro.core.params import GAParameters
from repro.fitness.base import FitnessFunction
from repro.resilience.harden import (
    PROTECTION_PRESETS,
    ProtectionConfig,
    ResilienceHarness,
)
from repro.resilience.seu import UpsetRates

#: Counter columns summed over a cell's replicas into the report.
_SUM_KEYS = (
    "corrected",
    "detected_double",
    "accepted_uncorrectable",
    "rollbacks",
    "generations_lost",
    "elite_repairs",
    "shadow_restores",
    "watchdog_retries",
    "failovers",
)


@dataclass
class ResilienceCampaign:
    """One campaign: a workload, a rate axis, a config axis, N replicas.

    ``configs`` accepts :class:`ProtectionConfig` instances or preset names
    from :data:`~repro.resilience.harden.PROTECTION_PRESETS`.
    """

    params: GAParameters
    fitness: FitnessFunction
    rates: Sequence[float] = (0.0, 1e-4)
    configs: Sequence[ProtectionConfig | str] = ("unprotected", "hardened")
    n_replicas: int = 4
    seed: int = 2026
    upset_profile: object | None = None  # optional ``rate -> UpsetRates`` override

    def _configs(self) -> list[ProtectionConfig]:
        resolved = []
        for c in self.configs:
            if isinstance(c, str):
                try:
                    resolved.append(PROTECTION_PRESETS[c])
                except KeyError:
                    raise ValueError(
                        f"unknown protection preset {c!r}; available: "
                        f"{', '.join(sorted(PROTECTION_PRESETS))}"
                    ) from None
            else:
                resolved.append(c)
        return resolved

    def _upsets(self, rate: float) -> UpsetRates:
        if self.upset_profile is not None:
            return self.upset_profile(rate)
        return UpsetRates.uniform(rate)

    # ------------------------------------------------------------------
    def run(self) -> dict:
        """Execute every (rate, config) cell; returns the report dict."""
        p = self.params
        baseline = BatchBehavioralGA([p], self.fitness).run()[0]
        baseline_best = int(baseline.best_fitness)

        cells = []
        for config in self._configs():
            for rate in self.rates:
                cells.append(self._run_cell(config, float(rate), baseline_best))

        return {
            "params": {
                "n_generations": p.n_generations,
                "population_size": p.population_size,
                "crossover_threshold": p.crossover_threshold,
                "mutation_threshold": p.mutation_threshold,
                "rng_seed": p.rng_seed,
            },
            "fitness": self.fitness.name,
            "seed": self.seed,
            "n_replicas": self.n_replicas,
            "baseline_best": baseline_best,
            "cells": cells,
        }

    def _run_cell(self, config: ProtectionConfig, rate: float, baseline_best: int) -> dict:
        n = self.n_replicas
        harness = ResilienceHarness(
            config, self._upsets(rate), seed=self.seed, n_replicas=n
        )
        batch = BatchBehavioralGA(
            [self.params] * n, self.fitness, resilience=harness
        )
        results = batch.run()
        outcomes = harness.outcomes(results)

        recovered = sum(
            1
            for o in outcomes
            if o["completed"] and o["final_best"] == baseline_best
        )
        sdc = sum(
            1
            for o in outcomes
            if o["completed"] and o["final_best"] != baseline_best
        )
        hung = sum(1 for o in outcomes if not o["completed"])
        degradation = sum(
            max(0, baseline_best - o["final_best"]) / baseline_best
            for o in outcomes
        ) / n
        cell = {
            "config": config.name,
            "rate": rate,
            "replicas": n,
            "recovered": recovered,
            "sdc": sdc,
            "hung": hung,
            "recovery_rate": round(recovered / n, 4),
            "sdc_rate": round(sdc / n, 4),
            "hang_rate": round(hung / n, 4),
            "degradation_pct": round(100.0 * degradation, 4),
            "mean_final_best": round(
                sum(o["final_best"] for o in outcomes) / n, 2
            ),
            "injected": dict(harness.injector.counts),
        }
        for key in _SUM_KEYS:
            cell[key] = sum(o[key] for o in outcomes)
        return cell


def run_campaign(
    params: GAParameters,
    fitness: FitnessFunction,
    rates: Sequence[float] = (0.0, 1e-4),
    configs: Sequence[ProtectionConfig | str] = ("unprotected", "hardened"),
    n_replicas: int = 4,
    seed: int = 2026,
) -> dict:
    """Functional façade over :class:`ResilienceCampaign`."""
    return ResilienceCampaign(
        params=params,
        fitness=fitness,
        rates=rates,
        configs=configs,
        n_replicas=n_replicas,
        seed=seed,
    ).run()


#: Columns of the human-readable campaign table, in print order.
REPORT_COLUMNS = (
    "config",
    "rate",
    "recovery_rate",
    "sdc_rate",
    "hang_rate",
    "degradation_pct",
    "mean_final_best",
    "corrected",
    "detected_double",
    "rollbacks",
    "watchdog_retries",
    "failovers",
)


def report_rows(report: dict) -> list[dict]:
    """Flatten a campaign report into printable rows (CLI / docs table)."""
    return [{k: cell.get(k, "") for k in REPORT_COLUMNS} for cell in report["cells"]]
