"""Tests for the EXPERIMENTS.md report generator's building blocks."""

from repro.experiments.report import _md_table


class TestMarkdownTable:
    def test_renders_rows(self):
        text = _md_table([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"
        assert lines[3] == "| 2 | y |"

    def test_key_selection_and_missing_values(self):
        text = _md_table([{"a": 1}], keys=["a", "missing"])
        assert "| 1 |  |" in text

    def test_empty(self):
        assert _md_table([]) == "(no rows)\n"


class TestGeneratedDocumentExists:
    def test_experiments_md_is_current_format(self):
        # The repository ships the generated report; sanity-check that it
        # contains each major section so a stale/truncated file is caught.
        with open("EXPERIMENTS.md") as fh:
            text = fh.read()
        for heading in (
            "# EXPERIMENTS",
            "## Table I",
            "## Table V",
            "## Table VI",
            "## Table VII",
            "## Table VIII",
            "## Table IX",
            "## Figs. 13-16",
            "## Sec. IV-C",
        ):
            assert heading in text, heading
