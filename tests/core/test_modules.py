"""Tests for GA memory packing/banking, the RNG module, and the
initialization module's Table III handshake."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ga_memory import BANK_SIZE, GAMemory, bank_address, pack_word, unpack_word
from repro.core.init_module import InitializationModule
from repro.core.params import GAParameters
from repro.core.ports import GAPorts
from repro.core.rng_module import RNGModule
from repro.hdl.simulator import Simulator
from repro.rng.cellular_automaton import CellularAutomatonPRNG


class TestPacking:
    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_pack_unpack_roundtrip(self, cand, fit):
        assert unpack_word(pack_word(cand, fit)) == (cand, fit)

    def test_layout_fitness_high(self):
        assert pack_word(0x1111, 0x2222) == 0x22221111

    def test_bank_addressing(self):
        assert bank_address(0, 0) == 0
        assert bank_address(0, BANK_SIZE - 1) == BANK_SIZE - 1
        assert bank_address(1, 0) == BANK_SIZE
        assert bank_address(1, 5) == BANK_SIZE + 5

    def test_bank_overflow_rejected(self):
        with pytest.raises(ValueError):
            bank_address(0, BANK_SIZE)

    @pytest.mark.parametrize("bank", [-1, 2, 3, 255])
    def test_invalid_bank_rejected(self, bank):
        with pytest.raises(ValueError, match="bank must be 0 or 1"):
            bank_address(bank, 0)


class TestGAMemory:
    def test_wired_to_ports(self):
        ports = GAPorts.create()
        mem = GAMemory(ports)
        sim = Simulator()
        sim.add(mem)
        ports.mem_address.poke(7)
        ports.mem_data_out.poke(pack_word(0xABCD, 0x1234))
        ports.mem_wr.poke(1)
        sim.step()
        ports.mem_wr.poke(0)
        sim.step()
        assert unpack_word(ports.mem_data_in.value) == (0xABCD, 0x1234)

    def test_population_view(self):
        ports = GAPorts.create()
        mem = GAMemory(ports)
        mem.data[BANK_SIZE + 0] = pack_word(5, 50)
        mem.data[BANK_SIZE + 1] = pack_word(6, 60)
        assert mem.population(bank=1, size=2) == [(5, 50), (6, 60)]

    def test_capacity_is_256_words(self):
        ports = GAPorts.create()
        assert GAMemory(ports).depth == 256

    @pytest.mark.parametrize("bank", [-1, 2])
    def test_population_rejects_invalid_bank(self, bank):
        ports = GAPorts.create()
        with pytest.raises(ValueError, match="bank must be 0 or 1"):
            GAMemory(ports).population(bank=bank, size=1)


class TestRNGModule:
    def build(self, seed=0x2961):
        ports = GAPorts.create()
        mod = RNGModule(ports, CellularAutomatonPRNG(seed))
        sim = Simulator()
        sim.add(mod)
        return sim, ports, mod

    def test_drives_rn_with_seed_after_load(self):
        sim, ports, mod = self.build()
        mod.load_seed(0x1567)
        assert ports.rn.value == 0x1567

    def test_holds_word_until_taken(self):
        sim, ports, mod = self.build()
        mod.load_seed(0x2961)
        sim.step(5)
        assert ports.rn.value == 0x2961

    def test_advances_once_per_take_pulse(self):
        sim, ports, mod = self.build()
        mod.load_seed(0x2961)
        reference = CellularAutomatonPRNG(0x2961)
        for _ in range(10):
            word = ports.rn.value
            assert word == reference.next_word()
            ports.rn_taken.poke(1)
            sim.step()
            ports.rn_taken.poke(0)
            sim.step()

    def test_stuck_take_advances_every_cycle(self):
        sim, ports, mod = self.build()
        mod.load_seed(0x2961)
        ports.rn_taken.poke(1)
        sim.step(3)
        reference = CellularAutomatonPRNG(0x2961)
        for _ in range(3):
            reference.next_word()
        assert ports.rn.value == reference.state


class TestInitializationModule:
    def build(self, params):
        ports = GAPorts.create()
        init = InitializationModule(ports, params)
        sim = Simulator()
        sim.add(init)
        return sim, ports, init

    def make_params(self):
        return GAParameters(
            n_generations=0x00020001,
            population_size=64,
            crossover_threshold=12,
            mutation_threshold=3,
            rng_seed=0xB342,
        )

    def run_responder(self, sim, ports, init, max_ticks=2000):
        """Emulate the GA core's side of the handshake, recording words."""
        received = {}
        ticks = 0
        while not init.done and ticks < max_ticks:
            if ports.data_valid.value and not ports.data_ack.value:
                received[ports.index.value] = ports.value.value
                ports.data_ack.poke(1)
            elif not ports.data_valid.value and ports.data_ack.value:
                ports.data_ack.poke(0)
            sim.step()
            ticks += 1
        return received

    def test_programs_all_six_words(self):
        params = self.make_params()
        sim, ports, init = self.build(params)
        received = self.run_responder(sim, ports, init)
        assert init.done
        assert received == {int(i): v for i, v in params.to_index_values()}

    def test_ga_load_asserted_during_and_dropped_after(self):
        params = self.make_params()
        sim, ports, init = self.build(params)
        sim.step(2)
        assert ports.ga_load.value == 1
        self.run_responder(sim, ports, init)
        sim.step(2)
        assert ports.ga_load.value == 0

    def test_reset_restarts_sequence(self):
        params = self.make_params()
        sim, ports, init = self.build(params)
        self.run_responder(sim, ports, init)
        sim.reset()
        assert not init.done and init.word_index == 0

    def test_against_real_core(self):
        # End-to-end: initialization module programs the actual GA core.
        from repro.core.ga_core import GACore

        params = self.make_params()
        ports = GAPorts.create()
        core = GACore(ports)
        init = InitializationModule(ports, params)
        sim = Simulator()
        sim.add(core)
        sim.add(init)
        sim.run_until(lambda: init.done, 2000)
        sim.step(2)
        assert core.programmed
        assert GAParameters.from_index_values(core.param_words) == params
