"""Stateless slab-chunk execution and the worker pool that runs it.

The scheduler owns all slab state; what it ships to a worker is a plain
picklable *chunk spec* — per-job parameters, carried population and RNG
state (or "fresh"), and a generation count — and what comes back is the
updated carried state plus per-generation statistics.  Keeping workers
stateless makes the pool trivially elastic (any worker can run any chunk)
and makes late admission a pure scheduler-side merge between chunks.

Bit-exactness contract: a fresh entry draws its initial population with
its own :class:`~repro.rng.cellular_automaton.CellularAutomatonPRNG`
exactly as a solo :class:`~repro.core.behavioral.BehavioralGA` would, and
every chunk then advances the carried stream through
:class:`~repro.core.batch.BatchBehavioralGA` (itself property-tested
bit-identical to serial).  Chunking is invisible: the resumed chunk's
generation-0 record duplicates the previous chunk's last generation and is
dropped by the scheduler when splicing traces.

Hardened jobs (``protection`` set) bypass batching entirely: the
resilience harness addresses its fault streams by replica and boundary
index, so the job runs solo and unchunked through
:class:`~repro.core.behavioral.BehavioralGA` with a fresh
:class:`~repro.resilience.harden.ResilienceHarness` — bit-identical to a
solo hardened run by construction.
"""

from __future__ import annotations

import concurrent.futures
import threading

import numpy as np

from repro.core.batch import BatchBehavioralGA
from repro.core.params import GAParameters
from repro.fitness.functions import by_name
from repro.obs.profile import ProfileScope
from repro.obs.tracer import get_tracer
from repro.rng.cellular_automaton import CellularAutomatonPRNG
from repro.service.chaos import apply_chunk_fault


def run_slab_chunk(spec: dict) -> dict:
    """Execute one slab chunk; module-level so process pools can pickle it.

    ``spec``::

        {"chunk_gens": int,
         "mode": "exact" | "turbo",   # engine mode, default "exact"
         "chaos": None | {"action": "kill" | "delay", ...},  # injected fault
         "protection": None | {"preset", "upset_rate", "campaign_seed"},
         "entries": [{"job_id", "params": {...}, "fitness",
                      "population": [..] | None,   # None -> fresh draw
                      "rng_state": int | None,
                      "record_stats": bool}, ...]}

    Returns ``{"entries": [{"job_id", "population", "rng_state",
    "evaluations", "stats", "best_individual", "best_fitness",
    "protection_stats"}, ...]}`` where ``stats`` rows are
    ``(best_fitness, best_individual, fitness_sum)`` for the chunk's local
    generations 0..chunk_gens (empty when ``record_stats`` is off).

    Observability: every chunk is timed into the process registry's
    ``profile.service.slab_chunk`` histogram, and when the process default
    tracer (:func:`~repro.obs.tracer.get_tracer`) is enabled — which a
    thread-mode :class:`WorkerPool` shares with the caller — the chunk
    runs inside a ``service.chunk`` span carrying its ``job_ids``, with
    the engine's per-generation events nested under it.  Process-mode
    workers run with the default null tracer unless their interpreter
    arms one.
    """
    from contextlib import nullcontext

    tracer = get_tracer()
    span = (
        tracer.span(
            "service.chunk",
            job_ids=[entry["job_id"] for entry in spec["entries"]],
            chunk_gens=spec.get("chunk_gens"),
            hardened=spec.get("protection") is not None,
            island=spec.get("island") is not None,
        )
        if tracer.enabled
        else nullcontext()
    )
    with ProfileScope("service.slab_chunk"), span:
        if spec.get("chaos") is not None:
            # injected fault (see repro.service.chaos): may sleep, raise
            # WorkerCrashError, or os._exit this worker outright
            apply_chunk_fault(spec["chaos"])
        if spec.get("protection") is not None:
            return _run_hardened(spec, tracer)
        if spec.get("island") is not None:
            return _run_island(spec, tracer)
        substrate = spec.get("substrate", "behavioral")
        if substrate == "cycle":
            return _run_cycle(spec)
        if substrate == "dual32":
            return _run_dual32(spec)
        return _run_batched(spec, tracer)


def _run_batched(spec: dict, tracer=None) -> dict:
    """The common path: one :class:`BatchBehavioralGA` call per chunk."""
    chunk = spec["chunk_gens"]
    entries = spec["entries"]
    params_list = []
    fns = []
    states = []
    populations = []
    base_evals = []
    for entry in entries:
        params = GAParameters(**entry["params"]).with_(n_generations=chunk)
        params_list.append(params)
        fns.append(by_name(entry["fitness"]))
        if entry["population"] is None:
            # fresh job joining the slab: draw its initial population from
            # its own seed exactly as a solo serial run would
            rng = CellularAutomatonPRNG(params.rng_seed)
            populations.append(rng.block(params.population_size).tolist())
            states.append(rng.state)
            base_evals.append(params.population_size)
        else:
            populations.append(entry["population"])
            states.append(entry["rng_state"])
            base_evals.append(0)

    batch = BatchBehavioralGA(
        params_list,
        fns,
        rng_states=states,
        tracer=tracer,
        mode=spec.get("mode", "exact"),
    )
    initial = np.asarray(populations, dtype=np.int64)
    results = batch.run(initial=initial)

    out = []
    for i, entry in enumerate(entries):
        stats = (
            [
                (g.best_fitness, g.best_individual, g.fitness_sum)
                for g in results[i].history
            ]
            if entry.get("record_stats", True)
            else []
        )
        out.append(
            {
                "job_id": entry["job_id"],
                "population": batch.final_populations[i].tolist(),
                "rng_state": int(batch.rng_states[i]),
                "evaluations": base_evals[i] + results[i].evaluations,
                "stats": stats,
                "best_individual": results[i].best_individual,
                "best_fitness": results[i].best_fitness,
                "protection_stats": {},
            }
        )
    return {"entries": out}


def _run_hardened(spec: dict, tracer=None) -> dict:
    """Solo, unchunked execution of one job under a resilience harness."""
    from repro.core.behavioral import BehavioralGA
    from repro.resilience import (
        PROTECTION_PRESETS,
        ResilienceHarness,
        UpsetRates,
    )

    (entry,) = spec["entries"]
    prot = spec["protection"]
    params = GAParameters(**entry["params"])
    harness = ResilienceHarness(
        PROTECTION_PRESETS[prot["preset"]],
        UpsetRates.uniform(prot["upset_rate"]),
        seed=prot["campaign_seed"],
        n_replicas=1,
        tracer=tracer,
    )
    ga = BehavioralGA(
        params, by_name(entry["fitness"]), record_members=False,
        resilience=harness, tracer=tracer,
    )
    result = ga.run()
    stats = (
        [
            (g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ]
        if entry.get("record_stats", True)
        else []
    )
    return {
        "entries": [
            {
                "job_id": entry["job_id"],
                "population": ga.final_population.tolist(),
                "rng_state": int(ga.rng.state),
                "evaluations": result.evaluations,
                "stats": stats,
                "best_individual": result.best_individual,
                "best_fitness": result.best_fitness,
                "protection_stats": {
                    "rollbacks": int(harness.rollbacks[0]),
                    "generations_lost": int(harness.generations_lost[0]),
                    "corrected": int(harness.corrected[0]),
                    "elite_repairs": int(harness.elite_repairs[0]),
                    "failovers": int(harness.failovers[0]),
                },
            }
        ]
    }


def _run_island(spec: dict, tracer=None) -> dict:
    """Solo, unchunked execution of one archipelago job.

    The whole archipelago *is* one
    :class:`~repro.parallel.archipelago.VectorIslandGA` slab (replica
    axis = island), so the job runs to completion in a single chunk; the
    returned ``stats`` rows are per *epoch* —
    ``(best_fitness, best_individual, champion_fitness_sum)`` — and
    ``island_stats`` carries the archipelago counters.  Results are
    bit-identical to a local ``IslandGA(processes=1).run()`` of the same
    request by construction (same engine, same seeds, same topology
    wiring from the job's ``rng_seed``).
    """
    from repro.parallel.archipelago import VectorIslandGA

    (entry,) = spec["entries"]
    isl = spec["island"]
    params = GAParameters(**entry["params"])
    ga = VectorIslandGA(
        params,
        by_name(entry["fitness"]),
        n_islands=isl["n_islands"],
        migration_interval=isl["migration_interval"],
        topology=isl["topology"],
        record_champions=False,
        tracer=tracer,
        engine_mode=spec.get("mode", "exact"),
    )
    result = ga.run()
    stats = (
        [tuple(row) for row in result.epoch_summary]
        if entry.get("record_stats", True)
        else []
    )
    return {
        "entries": [
            {
                "job_id": entry["job_id"],
                "population": None,
                "rng_state": None,
                "evaluations": result.evaluations,
                "stats": stats,
                "best_individual": result.best_individual,
                "best_fitness": result.best_fitness,
                "protection_stats": {},
                "island_stats": {
                    "islands": isl["n_islands"],
                    "migration_interval": isl["migration_interval"],
                    "topology": isl["topology"],
                    "migrations": result.migrations,
                    "island_bests": result.island_bests,
                },
            }
        ]
    }


def _result_entry(entry: dict, result, substrate_stats: dict) -> dict:
    """Shared worker→scheduler payload for the solo substrate paths.

    Like island jobs, substrate jobs run to completion in one chunk, so
    no population/RNG state is carried back for resumption.
    """
    stats = (
        [
            (g.best_fitness, g.best_individual, g.fitness_sum)
            for g in result.history
        ]
        if entry.get("record_stats", True)
        else []
    )
    return {
        "job_id": entry["job_id"],
        "population": None,
        "rng_state": None,
        "evaluations": result.evaluations,
        "stats": stats,
        "best_individual": result.best_individual,
        "best_fitness": result.best_fitness,
        "protection_stats": {},
        "substrate_stats": substrate_stats,
    }


def _run_cycle(spec: dict) -> dict:
    """Solo, unchunked execution on the cycle-accurate Fig. 4 testbench.

    The job runs the full HDL-modelled system (GA module + init +
    application + lookup FEM); ``substrate_stats`` reports the GA-domain
    clock cycles the run consumed — the number the paper's Table VI
    hardware-runtime claims are made from.
    """
    from repro.core.system import GASystem

    (entry,) = spec["entries"]
    params = GAParameters(**entry["params"])
    result = GASystem(params, by_name(entry["fitness"])).run()
    return {
        "entries": [
            _result_entry(
                entry,
                result,
                {"substrate": "cycle", "cycles": result.cycles},
            )
        ]
    }


def _run_dual32(spec: dict) -> dict:
    """Solo, unchunked execution on the dual-core 32-bit composition.

    ``best_individual`` (and the per-generation stats rows) carry 32-bit
    chromosomes; the fitness name resolves through the 32-bit registry
    (``repro.fitness.ehw_targets.FITNESS32_REGISTRY``), not the 16-bit
    FEM registry.
    """
    from repro.core.scaling import DualCoreGA32
    from repro.fitness.ehw_targets import FITNESS32_REGISTRY

    (entry,) = spec["entries"]
    params = GAParameters(**entry["params"])
    fitness32 = FITNESS32_REGISTRY[entry["fitness"]]
    result = DualCoreGA32(params, fitness32).run()
    return {
        "entries": [
            _result_entry(entry, result, {"substrate": "dual32", "width": 32})
        ]
    }


class WorkerPool:
    """A thin executor wrapper: ``mode`` picks threads or processes.

    ``process`` (the production mode) forks interpreter workers so slab
    chunks run truly in parallel; ``thread`` keeps everything in-process,
    which tests prefer (no fork cost, full tracebacks) and which still
    overlaps numpy work releasing the GIL.

    Fault tolerance: a crashed process worker poisons its whole
    ``ProcessPoolExecutor`` (every queued future fails with
    ``BrokenProcessPool``), so the pool supports :meth:`respawn` — tear
    the broken executor down and stand up a fresh one.  ``generation``
    counts respawns; the scheduler passes the generation it *observed* the
    failure under so that a cascade of broken futures from one crash
    triggers exactly one respawn.  An optional
    :class:`~repro.service.chaos.ChaosMonkey` injects per-dispatch faults
    into outgoing chunk specs.
    """

    def __init__(self, n_workers: int = 2, mode: str = "process", chaos=None):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1: {n_workers}")
        if mode not in ("process", "thread"):
            raise ValueError(f"mode must be 'process' or 'thread': {mode!r}")
        self.n_workers = n_workers
        self.mode = mode
        self.chaos = chaos
        self._generation = 0
        self._lock = threading.Lock()
        self._executor = self._make_executor()

    def _make_executor(self) -> concurrent.futures.Executor:
        if self.mode == "process":
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=self.n_workers
            )
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="ga-slab"
        )

    @property
    def generation(self) -> int:
        """How many times the executor has been respawned."""
        with self._lock:
            return self._generation

    @property
    def can_respawn(self) -> bool:
        """Thread pools never break wholesale; only processes respawn."""
        return self.mode == "process"

    def respawn(self, seen_generation: int | None = None) -> bool:
        """Replace a broken executor with a fresh one.

        ``seen_generation`` is the generation under which the caller
        observed the failure; if the pool has already moved past it the
        call is a no-op (one worker crash fails every queued future, and
        each failure callback asks for a respawn).  Returns True when a
        new executor was actually created.
        """
        if not self.can_respawn:
            return False
        with self._lock:
            if seen_generation is not None and self._generation > seen_generation:
                return False
            old = self._executor
            # a broken pool's shutdown() can hang on dead children; kill
            # any stragglers outright before abandoning it
            processes = list(getattr(old, "_processes", {}).values())
            for proc in processes:
                if proc.is_alive():
                    proc.terminate()
            old.shutdown(wait=False, cancel_futures=True)
            self._executor = self._make_executor()
            self._generation += 1
            return True

    def submit_chunk(self, spec: dict, callback) -> None:
        """Run ``run_slab_chunk(spec)``; invoke ``callback(result_or_exc)``
        from a pool thread when it lands.

        A broken process pool raises *synchronously* from ``submit``; the
        exception is then delivered through ``callback`` from a fresh
        thread instead of propagating, so the scheduler sees every
        failure on the same (callback) path and its lock is never held
        across the delivery.
        """
        if self.chaos is not None:
            fault = self.chaos.chunk_fault()
            if fault is not None:
                spec = {**spec, "chaos": fault}
        try:
            with self._lock:
                future = self._executor.submit(run_slab_chunk, spec)
        except (concurrent.futures.BrokenExecutor, RuntimeError) as exc:
            threading.Thread(
                target=callback, args=(exc,), daemon=True
            ).start()
            return

        def _done(fut: concurrent.futures.Future) -> None:
            exc = fut.exception()
            callback(exc if exc is not None else fut.result())

        future.add_done_callback(_done)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._executor.shutdown(wait=wait)
