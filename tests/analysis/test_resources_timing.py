"""Tests for the resource estimator (Table VI) and timing model (Sec. IV-C)."""

import pytest

from repro.analysis.resources import (
    XC2VP30,
    estimate_netlist,
    ga_core_report,
)
from repro.analysis.timing import (
    PAPER_SOFTWARE_RUNTIME_S,
    PAPER_SPEEDUP,
    PowerPCCostModel,
    hardware_runtime,
    software_runtime,
    speedup_experiment,
)
from repro.baselines.software_ga import OpCounters
from repro.core.params import GAParameters
from repro.fitness import MBF6_2
from repro.hdl import rtlib


class TestDeviceModel:
    def test_xc2vp30_capacity(self):
        assert XC2VP30.slices == 13696
        assert XC2VP30.brams == 136


class TestNetlistEstimation:
    def test_small_block_fits_easily(self):
        report = estimate_netlist(rtlib.build_adder(16))
        assert report.slices < 100
        assert report.slice_utilization < 0.01

    def test_deeper_logic_is_slower(self):
        fast = estimate_netlist(rtlib.build_adder(8))
        slow = estimate_netlist(rtlib.build_adder(32))
        assert slow.max_frequency_mhz < fast.max_frequency_mhz
        assert slow.critical_path_levels > fast.critical_path_levels

    def test_report_row_shape(self):
        row = estimate_netlist(rtlib.build_adder(16)).row()
        assert {"design", "LUTs", "FFs", "slices", "slice%", "Fmax(MHz)"} <= set(row)


class TestTableVI:
    def test_slice_utilization_matches_paper_band(self):
        report = ga_core_report()
        assert 0.10 <= report.slice_utilization <= 0.16  # paper: 13%

    def test_clock_near_50mhz(self):
        report = ga_core_report()
        assert 45 <= report.clock_mhz <= 60  # paper: 50 MHz

    def test_ga_memory_bram_about_1pct(self):
        report = ga_core_report()
        assert report.ga_memory_bram_pct <= 1.0  # paper: 1%

    def test_fitness_lut_bram_band(self):
        report = ga_core_report()
        assert 40 <= report.fitness_lut_bram_pct <= 50  # paper: 48%

    def test_rows_cover_all_four_attributes(self):
        rows = ga_core_report().rows()
        assert len(rows) == 4
        assert all({"attribute", "paper", "measured"} <= set(r) for r in rows)


class TestTimingModel:
    def test_price_is_linear_in_counts(self):
        model = PowerPCCostModel()
        one = OpCounters(1, 1, 1, 1, 1)
        two = OpCounters(2, 2, 2, 2, 2)
        assert software_runtime(two, model) == pytest.approx(
            2 * software_runtime(one, model)
        )

    def test_hardware_runtime_at_50mhz(self):
        assert hardware_runtime(50_000_000) == pytest.approx(1.0)
        assert hardware_runtime(65432) == pytest.approx(65432 / 50e6)

    def test_fitness_call_dominates(self):
        # The communication round-trip is the paper's motivating cost.
        model = PowerPCCostModel()
        assert model.fitness_call > 10 * model.rng_call

    def test_speedup_experiment_reproduces_paper_shape(self):
        params = GAParameters(32, 32, 10, 1, 45890)
        report = speedup_experiment(params, MBF6_2())
        # software model lands near the measured 37.6 ms
        assert report.software_seconds == pytest.approx(
            PAPER_SOFTWARE_RUNTIME_S, rel=0.15
        )
        # our leaner FSM beats the paper's hardware, so measured speedup
        # exceeds 5.16x; the paper-equivalent pricing reproduces ~5.16x.
        assert report.speedup_measured > PAPER_SPEEDUP
        assert report.speedup_paper_equivalent == pytest.approx(
            PAPER_SPEEDUP, rel=0.15
        )

    def test_report_rows(self):
        params = GAParameters(4, 8, 10, 1, 45890)
        report = speedup_experiment(params, MBF6_2())
        assert len(report.rows()) == 4
