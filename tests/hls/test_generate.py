"""Equivalence tests: synthesized netlists vs. DFG reference evaluation.

The mini-HLS analogue of the paper's "RT-level VHDL model was simulated
thoroughly to test the correctness of the synthesized netlist".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdl.scan import Stepper, insert_scan_chain
from repro.hls.dfg import DFG
from repro.hls.generate import synthesize
from repro.hls.schedule import ResourceConstraints

u16 = st.integers(0, 0xFFFF)


def run_synth(result, **inputs):
    stepper = Stepper(result.netlist)
    out = {}
    for _ in range(2 * result.latency + 2):
        out = stepper.step(**inputs)
    return out


def minmax_dfg():
    d = DFG("minmax")
    a, b = d.input("a"), d.input("b")
    sel = d.lt(a, b)
    d.output("min", d.mux(sel, b, a))
    d.output("max", d.mux(sel, a, b))
    d.output("diff", d.sub(d.mux(sel, a, b), d.mux(sel, b, a)))
    return d


def arith_dfg():
    d = DFG("arith")
    x, y = d.input("x"), d.input("y")
    s = d.add(d.add(x, x), d.const(1020))
    t = d.sub(s, d.add(y, y))
    d.output("f", t)
    d.output("flag", d.mux(d.eq(t, d.const(0)), t, d.const(0xAAAA)))
    return d


class TestSynthesizedEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(u16, u16)
    def test_minmax_asap(self, a, b):
        result = synthesize(minmax_dfg())
        assert run_synth(result, a=a, b=b) | {} == run_synth(result, a=a, b=b)
        out = run_synth(result, a=a, b=b)
        ref = minmax_dfg().evaluate({"a": a, "b": b})
        for key, val in ref.items():
            assert out[key] == val

    @settings(max_examples=10, deadline=None)
    @given(u16, u16)
    def test_arith_resource_constrained(self, x, y):
        result = synthesize(arith_dfg(), resources=ResourceConstraints(alu=1))
        out = run_synth(result, x=x, y=y)
        ref = arith_dfg().evaluate({"x": x, "y": y})
        for key, val in ref.items():
            assert out[key] == val

    def test_constraint_changes_schedule_not_function(self):
        fast = synthesize(arith_dfg())
        slow = synthesize(arith_dfg(), resources=ResourceConstraints(alu=1))
        assert slow.schedule.length > fast.schedule.length
        assert slow.allocation.units["alu"] == 1
        out_fast = run_synth(fast, x=1234, y=77)
        out_slow = run_synth(slow, x=1234, y=77)
        assert out_fast["f"] == out_slow["f"]

    def test_outputs_stable_across_period(self):
        result = synthesize(arith_dfg())
        stepper = Stepper(result.netlist)
        for _ in range(2 * result.latency + 2):
            stepper.step(x=100, y=3)
        first = stepper.step(x=100, y=3)["f"]
        for _ in range(result.latency):
            assert stepper.step(x=100, y=3)["f"] == first

    def test_fsm_is_one_hot(self):
        result = synthesize(arith_dfg())
        stepper = Stepper(result.netlist)
        for _ in range(3 * result.latency):
            state = stepper.step(x=0, y=0)["fsm_state"]
            assert bin(state).count("1") == 1


class TestDownstreamTooling:
    def test_synthesized_netlist_lints_clean(self):
        from repro.hdl.export import lint

        assert lint(synthesize(minmax_dfg()).netlist) == []

    def test_synthesized_netlist_exports(self):
        from repro.hdl.export import read_netlist, write_netlist

        nl = synthesize(arith_dfg()).netlist
        restored = read_netlist(write_netlist(nl))
        assert restored.stats() == nl.stats()

    def test_scan_chain_insertable(self):
        nl = synthesize(arith_dfg()).netlist
        length = insert_scan_chain(nl)
        assert length == len(nl.dffs)

    def test_resource_estimation(self):
        from repro.analysis.resources import estimate_netlist

        report = estimate_netlist(synthesize(minmax_dfg()).netlist)
        assert report.luts > 0 and report.flipflops > 0

    def test_resynthesis_is_cheap(self):
        # The Sec. III-D claim: "the entire process of resynthesis using the
        # AUDI HLS tool takes only a few minutes" — here, well under a second.
        import time

        t0 = time.perf_counter()
        synthesize(arith_dfg(), resources=ResourceConstraints(alu=1))
        assert time.perf_counter() - t0 < 2.0
