"""The GA memory module: population storage (Sec. III-B.7).

"The GA memory module is a single-port memory module that stores both the
individuals and their fitness values."  Each 32-bit word packs
``{fitness[31:16], candidate[15:0]}``; the 8-bit address space (256 words)
is split into two banks of 128 words for the current and next population —
the generational double-buffer behind the ``currPop <-> newPop`` swap of
Fig. 2.  The cycle-accurate core therefore supports populations up to 128
(the largest preset); the behavioural model, free of the single-chip memory
budget, accepts the architectural maximum of 256.
"""

from __future__ import annotations

from repro.core.ports import GAPorts
from repro.hdl.memory import SinglePortRAM

#: Words per population bank (half the 8-bit address space).
BANK_SIZE = 128


def pack_word(candidate: int, fitness: int) -> int:
    """Pack a population entry into one 32-bit memory word."""
    return ((fitness & 0xFFFF) << 16) | (candidate & 0xFFFF)


def unpack_word(word: int) -> tuple[int, int]:
    """Unpack a memory word into (candidate, fitness)."""
    return word & 0xFFFF, (word >> 16) & 0xFFFF


def bank_address(bank: int, offset: int) -> int:
    """Physical address of population slot ``offset`` in bank 0/1.

    ``bank`` must be exactly 0 or 1: the old ``bank & 1`` masking silently
    aliased a corrupted bank-select value onto a valid bank, hiding e.g. an
    SEU in the core's ``cur_bank`` register behind plausible-looking data.
    """
    if bank not in (0, 1):
        raise ValueError(f"bank must be 0 or 1, got {bank}")
    if not 0 <= offset < BANK_SIZE:
        raise ValueError(f"population offset {offset} exceeds bank size {BANK_SIZE}")
    return bank * BANK_SIZE + offset


class GAMemory(SinglePortRAM):
    """Single-port block-RAM population store wired to the GA core ports."""

    def __init__(self, ports: GAPorts, name: str = "ga_memory"):
        super().__init__(
            name,
            addr=ports.mem_address,
            din=ports.mem_data_out,  # core's data-out is the memory's data-in
            dout=ports.mem_data_in,
            wr=ports.mem_wr,
            depth=256,
        )

    def population(self, bank: int, size: int) -> list[tuple[int, int]]:
        """Debug/verification view: (candidate, fitness) pairs of a bank."""
        base = bank_address(bank, 0)
        return [unpack_word(self.data[base + i]) for i in range(size)]
