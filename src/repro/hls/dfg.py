"""Dataflow graphs: the behavioral front end of the mini-HLS flow.

A :class:`DFG` is a DAG of word-level operations over a 16-bit datapath
(comparisons produce 1-bit values).  The builder API plays the role of the
paper's behavioral-VHDL parsing: each call records an operation and returns
a value handle usable as a later operand.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

WORD = 16


class OpType(enum.Enum):
    """Operation alphabet of the datapath (maps 1:1 onto rtlib blocks)."""

    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    LT = "lt"  # unsigned less-than, 1-bit result
    EQ = "eq"  # equality, 1-bit result
    MUX = "mux"  # operands: (sel, a, b) -> sel ? b : a
    OUTPUT = "output"


#: Result width per op type (None = word width).
_RESULT_BITS = {OpType.LT: 1, OpType.EQ: 1}

#: Operand counts.
_ARITY = {
    OpType.INPUT: 0,
    OpType.CONST: 0,
    OpType.ADD: 2,
    OpType.SUB: 2,
    OpType.AND: 2,
    OpType.OR: 2,
    OpType.XOR: 2,
    OpType.NOT: 1,
    OpType.LT: 2,
    OpType.EQ: 2,
    OpType.MUX: 3,
    OpType.OUTPUT: 1,
}

#: Functional-unit class shared by op types (ADD/SUB share the adder).
FU_CLASS = {
    OpType.ADD: "alu",
    OpType.SUB: "alu",
    OpType.LT: "cmp",
    OpType.EQ: "cmp",
    OpType.AND: "logic",
    OpType.OR: "logic",
    OpType.XOR: "logic",
    OpType.NOT: "logic",
    OpType.MUX: "mux",
}


@dataclass
class Op:
    """One DFG node."""

    index: int
    type: OpType
    operands: tuple[int, ...]
    name: str = ""
    value: int = 0  # for CONST
    width: int = WORD

    @property
    def is_source(self) -> bool:
        return self.type in (OpType.INPUT, OpType.CONST)


class DFG:
    """A dataflow graph under construction (and its reference evaluator)."""

    def __init__(self, name: str):
        self.name = name
        self.ops: list[Op] = []
        self.input_names: list[str] = []
        self.output_names: list[str] = []

    # ------------------------------------------------------------------
    def _add(self, op_type: OpType, operands: tuple[int, ...], **kw) -> int:
        if len(operands) != _ARITY[op_type]:
            raise ValueError(
                f"{op_type.value} takes {_ARITY[op_type]} operands, got {len(operands)}"
            )
        for operand in operands:
            if not 0 <= operand < len(self.ops):
                raise ValueError(f"operand {operand} not yet defined")
        width = _RESULT_BITS.get(op_type, WORD)
        op = Op(len(self.ops), op_type, operands, width=width, **kw)
        self.ops.append(op)
        return op.index

    def input(self, name: str) -> int:
        """Declare a primary input word."""
        if name in self.input_names:
            raise ValueError(f"duplicate input {name!r}")
        self.input_names.append(name)
        return self._add(OpType.INPUT, (), name=name)

    def const(self, value: int) -> int:
        """A compile-time constant word."""
        return self._add(OpType.CONST, (), value=value & 0xFFFF)

    def add(self, a: int, b: int) -> int:
        return self._add(OpType.ADD, (a, b))

    def sub(self, a: int, b: int) -> int:
        return self._add(OpType.SUB, (a, b))

    def and_(self, a: int, b: int) -> int:
        return self._add(OpType.AND, (a, b))

    def or_(self, a: int, b: int) -> int:
        return self._add(OpType.OR, (a, b))

    def xor(self, a: int, b: int) -> int:
        return self._add(OpType.XOR, (a, b))

    def not_(self, a: int) -> int:
        return self._add(OpType.NOT, (a,))

    def lt(self, a: int, b: int) -> int:
        return self._add(OpType.LT, (a, b))

    def eq(self, a: int, b: int) -> int:
        return self._add(OpType.EQ, (a, b))

    def mux(self, sel: int, a: int, b: int) -> int:
        """``sel ? b : a`` — sel must be a 1-bit value."""
        return self._add(OpType.MUX, (sel, a, b))

    def output(self, name: str, value: int) -> int:
        """Declare a primary output fed by ``value``."""
        if name in self.output_names:
            raise ValueError(f"duplicate output {name!r}")
        self.output_names.append(name)
        return self._add(OpType.OUTPUT, (value,), name=name)

    # ------------------------------------------------------------------
    @property
    def computational_ops(self) -> list[Op]:
        """Ops that occupy a schedule slot (everything but sources/sinks)."""
        return [
            op
            for op in self.ops
            if op.type not in (OpType.INPUT, OpType.CONST, OpType.OUTPUT)
        ]

    def consumers(self, index: int) -> list[Op]:
        return [op for op in self.ops if index in op.operands]

    def evaluate(self, inputs: dict[str, int]) -> dict[str, int]:
        """Reference (un-scheduled) evaluation — the golden model the
        synthesized netlist is checked against."""
        values: dict[int, int] = {}
        mask = (1 << WORD) - 1
        for op in self.ops:
            if op.type == OpType.INPUT:
                values[op.index] = inputs.get(op.name, 0) & mask
            elif op.type == OpType.CONST:
                values[op.index] = op.value
            elif op.type == OpType.ADD:
                values[op.index] = (values[op.operands[0]] + values[op.operands[1]]) & mask
            elif op.type == OpType.SUB:
                values[op.index] = (values[op.operands[0]] - values[op.operands[1]]) & mask
            elif op.type == OpType.AND:
                values[op.index] = values[op.operands[0]] & values[op.operands[1]]
            elif op.type == OpType.OR:
                values[op.index] = values[op.operands[0]] | values[op.operands[1]]
            elif op.type == OpType.XOR:
                values[op.index] = values[op.operands[0]] ^ values[op.operands[1]]
            elif op.type == OpType.NOT:
                values[op.index] = ~values[op.operands[0]] & mask
            elif op.type == OpType.LT:
                values[op.index] = int(values[op.operands[0]] < values[op.operands[1]])
            elif op.type == OpType.EQ:
                values[op.index] = int(values[op.operands[0]] == values[op.operands[1]])
            elif op.type == OpType.MUX:
                sel, a, b = (values[i] for i in op.operands)
                values[op.index] = b if (sel & 1) else a
            elif op.type == OpType.OUTPUT:
                values[op.index] = values[op.operands[0]]
        return {
            op.name: values[op.index] for op in self.ops if op.type == OpType.OUTPUT
        }
