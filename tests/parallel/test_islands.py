"""Tests for the island-model parallel GA."""

import pytest

from repro.core.params import GAParameters
from repro.fitness import BF6, F3
from repro.parallel import IslandGA


def params(**overrides):
    base = dict(
        n_generations=16,
        population_size=16,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )
    base.update(overrides)
    return GAParameters(**base)


class TestConstruction:
    def test_needs_positive_islands(self):
        # n_islands=1 is the legal degenerate archipelago (no edges);
        # zero or negative is a named error
        with pytest.raises(ValueError):
            IslandGA(params(), F3(), n_islands=0)

    def test_single_island_runs(self):
        result = IslandGA(params(), F3(), n_islands=1).run()
        assert result.migrations == 0
        assert len(result.island_bests) == 1

    def test_migration_interval_positive(self):
        with pytest.raises(ValueError):
            IslandGA(params(), F3(), migration_interval=0)

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            IslandGA(params(), F3(), topology="star")

    def test_island_seeds_distinct_and_nonzero(self):
        ga = IslandGA(params(), F3(), n_islands=8)
        assert len(set(ga.seeds)) == 8
        assert all(s != 0 for s in ga.seeds)


class TestSequentialRun:
    def test_runs_all_epochs(self):
        ga = IslandGA(params(), F3(), n_islands=3, migration_interval=4)
        result = ga.run()
        assert len(result.best_per_epoch) == 4  # 16 gens / 4 per epoch
        # migrations happen at epoch *boundaries* only: none after the
        # final epoch (the migrants would never evolve)
        assert result.migrations == 3 * 3

    def test_remainder_generations_run(self):
        # 14 generations at interval 4 = three full epochs plus a final
        # partial epoch of 2; the remainder must not be silently dropped
        ga = IslandGA(
            params(n_generations=14, population_size=8),
            F3(),
            n_islands=2,
            migration_interval=4,
        )
        assert ga.epoch_schedule() == [4, 4, 4, 2]
        result = ga.run()
        assert len(result.best_per_epoch) == 4
        # exactly 14 generations per island: pop + 14*(pop-1) evaluations
        assert result.evaluations == (8 + 14 * 7) * 2

    def test_interval_longer_than_run_is_one_epoch(self):
        ga = IslandGA(
            params(n_generations=5, population_size=8),
            F3(),
            n_islands=2,
            migration_interval=8,
        )
        assert ga.epoch_schedule() == [5]
        result = ga.run()
        assert result.migrations == 0  # single epoch: no boundary to migrate at
        assert result.evaluations == (8 + 5 * 7) * 2

    def test_no_migration_after_final_epoch(self):
        ga = IslandGA(params(), F3(), n_islands=4, migration_interval=8)
        result = ga.run()  # 16 gens / 8 = 2 epochs, 1 boundary
        assert result.migrations == 4 * 1

    def test_best_is_max_over_islands(self):
        ga = IslandGA(params(), BF6(), n_islands=4, migration_interval=8)
        result = ga.run()
        assert result.best_fitness == max(result.island_bests)

    def test_epoch_bests_monotone(self):
        ga = IslandGA(params(n_generations=32), BF6(), n_islands=3)
        result = ga.run()
        series = result.best_per_epoch
        assert all(b >= a for a, b in zip(series, series[1:]))

    def test_deterministic(self):
        a = IslandGA(params(), BF6(), n_islands=3).run()
        b = IslandGA(params(), BF6(), n_islands=3).run()
        assert a.best_individual == b.best_individual
        assert a.best_per_epoch == b.best_per_epoch

    def test_beats_or_matches_single_island_budget(self):
        # With 4x the evaluations, the island model should do at least as
        # well as one engine (sanity of the parallel extension).
        from repro.core.behavioral import BehavioralGA

        single = BehavioralGA(params(n_generations=32), BF6()).run()
        islands = IslandGA(
            params(n_generations=32), BF6(), n_islands=4, migration_interval=8
        ).run()
        assert islands.best_fitness >= single.best_fitness * 0.98

    def test_epoch_champions_trace_shape_and_consistency(self):
        ga = IslandGA(params(), BF6(), n_islands=3, migration_interval=4)
        result = ga.run()
        assert len(result.epoch_champions) == 4  # one row per epoch
        assert all(len(row) == 3 for row in result.epoch_champions)
        # every champion is a valid (chromosome, fitness) pair
        for row in result.epoch_champions:
            for individual, fitness in row:
                assert 0 <= individual <= 0xFFFF
                assert fitness >= 0
        # the running best over the trace reproduces best_per_epoch and
        # each island's final best matches island_bests
        running = []
        best = -1
        for row in result.epoch_champions:
            best = max(best, max(f for _c, f in row))
            running.append(best)
        assert running == result.best_per_epoch
        assert [
            max(f for _c, f in island_row)
            for island_row in zip(*result.epoch_champions)
        ] == result.island_bests

    def test_evaluations_accumulate_across_islands(self):
        p = params(n_generations=8, population_size=8)
        ga = IslandGA(p, F3(), n_islands=2, migration_interval=4)
        result = ga.run()
        # the initial population is evaluated once per island; later epochs
        # resume an already-evaluated population, so each island costs
        # pop + n_generations*(pop-1) FEM requests in total
        assert result.evaluations == (8 + 8 * 7) * 2


class TestParallelMode:
    def test_pool_matches_sequential(self):
        # processes=1 runs all islands in one BatchBehavioralGA call per
        # epoch; the pooled per-island workers must match it bit for bit
        p = params(n_generations=8, population_size=8)
        seq = IslandGA(p, F3(), n_islands=2, migration_interval=4, processes=1).run()
        par = IslandGA(p, F3(), n_islands=2, migration_interval=4, processes=2).run()
        assert par.best_individual == seq.best_individual
        assert par.best_per_epoch == seq.best_per_epoch
        assert par.evaluations == seq.evaluations

    def test_pool_matches_sequential_with_remainder_epoch(self):
        p = params(n_generations=10, population_size=8)
        seq = IslandGA(p, F3(), n_islands=3, migration_interval=4, processes=1).run()
        par = IslandGA(p, F3(), n_islands=3, migration_interval=4, processes=2).run()
        assert par.best_individual == seq.best_individual
        assert par.island_bests == seq.island_bests
        assert par.best_per_epoch == seq.best_per_epoch
        assert par.evaluations == seq.evaluations
        assert par.migrations == seq.migrations == 3 * 2


class TestEngineMode:
    def test_unknown_engine_mode_rejected(self):
        with pytest.raises(ValueError, match="engine_mode"):
            IslandGA(params(), F3(), engine_mode="warp")

    def test_turbo_islands_deterministic(self):
        a = IslandGA(params(), F3(), n_islands=4, engine_mode="turbo").run()
        b = IslandGA(params(), F3(), n_islands=4, engine_mode="turbo").run()
        assert a.best_fitness == b.best_fitness
        assert a.best_individual == b.best_individual
        assert a.best_per_epoch == b.best_per_epoch
        assert a.evaluations == b.evaluations

    def test_turbo_runs_full_schedule(self):
        ga = IslandGA(
            params(n_generations=18), BF6(), n_islands=3,
            migration_interval=4, engine_mode="turbo",
        )
        result = ga.run()
        # 4 full epochs + remainder 2; migrations after all but the last
        assert result.migrations == 4 * 3
        assert result.evaluations > 0
        assert len(result.best_per_epoch) == 5

    def test_turbo_pooled_matches_batched(self):
        """Composition independence carries to the process pool: pooled
        turbo epochs equal the one-batch fast path."""
        batched = IslandGA(
            params(), F3(), n_islands=2, engine_mode="turbo", processes=1
        ).run()
        pooled = IslandGA(
            params(), F3(), n_islands=2, engine_mode="turbo", processes=2
        ).run()
        assert batched.best_fitness == pooled.best_fitness
        assert batched.best_per_epoch == pooled.best_per_epoch
        assert batched.evaluations == pooled.evaluations
