"""SEU injector determinism and draw semantics (both modelling levels)."""

import numpy as np

from repro.resilience.seu import (
    CORE_REGISTER_TARGETS,
    FSM_STATE_SPACE,
    CycleSEUEvent,
    CycleSEUInjector,
    SEUInjector,
    UpsetRates,
    _fsm_flip,
)

RATES = UpsetRates.uniform(1e-3)


def drain(injector, replica, gens=50, pop=32, word_bits=32):
    """Materialise ``gens`` boundaries of draws as comparable tuples."""
    out = []
    for gen in range(gens):
        u = injector.draw(replica, pop, word_bits, pop if gen == 0 else pop - 1)
        out.append(
            (
                u.mem_slots.tolist(),
                u.mem_bits.tolist(),
                u.rng_bits.tolist(),
                u.best_bits.tolist(),
                u.fem_faults,
                u.fem_stuck,
            )
        )
    return out


class TestUpsetRates:
    def test_uniform_scales_exposure(self):
        r = UpsetRates.uniform(1e-4)
        assert r.memory == r.rng == r.best_reg == 1e-4
        assert r.fem == 16 * 1e-4
        assert r.fem_stuck == 4 * 1e-4

    def test_total_zero(self):
        assert UpsetRates.uniform(0.0).total_zero()
        assert not RATES.total_zero()


class TestSEUInjector:
    def test_same_seed_same_stream(self):
        a = SEUInjector(RATES, seed=7, n_replicas=2)
        b = SEUInjector(RATES, seed=7, n_replicas=2)
        assert drain(a, 0) == drain(b, 0)
        assert drain(a, 1) == drain(b, 1)
        assert a.counts == b.counts

    def test_different_seed_different_stream(self):
        a = SEUInjector(RATES, seed=7)
        b = SEUInjector(RATES, seed=8)
        assert drain(a, 0) != drain(b, 0)

    def test_replica_offset_reproduces_batch_stream(self):
        # the property the serial-vs-batch parity rests on: batch replica r
        # and a serial injector with replica_offset=r draw identically
        batch = SEUInjector(RATES, seed=11, n_replicas=4)
        for r in range(4):
            solo = SEUInjector(RATES, seed=11, n_replicas=1, replica_offset=r)
            assert drain(batch, r) == drain(solo, 0)

    def test_zero_rates_draw_nothing_and_consume_nothing(self):
        inj = SEUInjector(UpsetRates.uniform(0.0), seed=3)
        before = inj._streams[0].bit_generator.state
        for gen in range(20):
            assert inj.draw(0, 32, 32, 32).empty
        assert inj._streams[0].bit_generator.state == before
        assert all(v == 0 for v in inj.counts.values())

    def test_counts_accumulate(self):
        inj = SEUInjector(UpsetRates.uniform(5e-3), seed=5)
        drain(inj, 0, gens=100)
        assert inj.counts["memory"] > 0
        assert inj.counts["rng"] > 0
        assert inj.counts["best"] > 0

    def test_secded_widens_cross_section(self):
        # same seed, wider word: more expected memory upsets on average
        narrow = SEUInjector(UpsetRates(memory=2e-3), seed=9)
        wide = SEUInjector(UpsetRates(memory=2e-3), seed=9)
        drain(narrow, 0, gens=300, word_bits=32)
        drain(wide, 0, gens=300, word_bits=39)
        assert wide.counts["memory"] > narrow.counts["memory"]
        # and the drawn bit positions actually reach the parity bits
        inj = SEUInjector(UpsetRates(memory=5e-3), seed=1)
        bits = np.concatenate(
            [inj.draw(0, 64, 39, 0).mem_bits for _ in range(200)]
        )
        assert bits.max() >= 32


class TestFSMFlip:
    def test_in_range_flip_lands_on_named_state(self):
        assert _fsm_flip(0, 1) == FSM_STATE_SPACE[2]

    def test_out_of_range_flip_is_lockup(self):
        # bit 5 flips index by 32, always past the 30 named states
        for index in range(len(FSM_STATE_SPACE)):
            assert _fsm_flip(index, 5).startswith("LOCKUP_")

    def test_register_targets_exist_on_core(self):
        from repro.core.ga_core import GACore
        from repro.core.ports import GAPorts
        from repro.core.rng_module import RNGModule
        from repro.rng.cellular_automaton import CellularAutomatonPRNG

        ports = GAPorts.create()
        core = GACore(ports, rng_module=RNGModule(ports, CellularAutomatonPRNG(1)))
        for name in CORE_REGISTER_TARGETS:
            assert hasattr(core, name), name


class TestCycleSEUInjector:
    def test_events_sorted_by_tick(self):
        inj = CycleSEUInjector(
            [
                CycleSEUEvent(50, "memory", addr=1),
                CycleSEUEvent(10, "rng", bit=2),
            ]
        )
        assert [e.tick for e in inj.events] == [10, 50]

    def test_poisson_schedule_deterministic(self):
        a = CycleSEUInjector.poisson_schedule(seed=4, duration_ticks=10_000, mean_upsets=20)
        b = CycleSEUInjector.poisson_schedule(seed=4, duration_ticks=10_000, mean_upsets=20)
        assert a.events == b.events
        assert all(e.tick < 10_000 for e in a.events)

    def test_poisson_schedule_respects_domains(self):
        inj = CycleSEUInjector.poisson_schedule(
            seed=4, duration_ticks=1_000, mean_upsets=30, domains=("memory",)
        )
        assert {e.domain for e in inj.events} == {"memory"}
