"""Batched behavioural GA engine — N independent replicas as 2-D arrays.

The paper's evaluation is sweep-shaped: Tables V and VII–IX are grids of
24–72 *independent* GA runs over seed × population × crossover settings.
:class:`BehavioralGA` vectorises the member axis of one run;
:class:`BatchBehavioralGA` vectorises the replica axis too, evolving N
populations simultaneously as ``(replica, member)`` arrays.  This is the
software rendition of the fine-grained-parallelism argument the paper makes
for hardware GAs (Sec. I) and the multi-core fabric of Sec. II-B: every
per-generation operator becomes one numpy pass over all replicas.

The engine is **bit-identical, draw for draw**, to running N separate
:class:`BehavioralGA` instances (property-tested in
``tests/core/test_batch.py``).  Each replica owns an independent CA-PRNG
stream addressed by orbit position (see
:class:`repro.rng.cellular_automaton.CAStreamBank`); the core trick is that
the *consumption pattern* of the stream — which words feed selection, which
feed the crossover/mutation decisions, and whether the data-dependent
crossover-point/mutation-point words are consumed at all — depends only on
the stream itself and the two threshold parameters, never on the population
or its fitness.  That lets the engine precompute, for every one of the
65,535 orbit positions, the complete outcome of one offspring-pair "slot":

* the two raw selection words,
* the effective crossover mask (0 when the crossover decision fails),
* the mutation XOR bits for both offspring (0 when mutation fails),
* the successor orbit position and the number of words consumed.

Evolving one slot across all replicas is then a single row gather from that
table plus a handful of elementwise ops, and proportionate selection is a
row-wise ``cumsum`` with one flattened ``searchsorted`` per slot.

Replicas in one batch must share ``n_generations`` and ``population_size``
(the array shape); seeds, thresholds, and even the fitness function may
differ per replica.  :func:`run_batched` is the sweep-facing convenience:
it groups arbitrary (params, fitness) jobs by shape, runs one batch per
group, and returns results in input order.
"""

from __future__ import annotations

from time import perf_counter
from typing import Sequence

import numpy as np

from repro.core.params import GAParameters
from repro.core.stats import GenerationStats
from repro.core.turbo import TurboKernel
from repro.core.validate import validate_initial_population
from repro.fitness.base import FitnessFunction
from repro.obs.metrics import record_engine_run
from repro.rng.cellular_automaton import (
    DEFAULT_RULE_VECTOR,
    CAStreamBank,
    orbit_tables,
)

#: Row offset separating replica segments in the flattened cumulative-sum
#: array used for batched selection; must exceed any per-replica fitness
#: total (max is 256 members * 0xFFFF < 2**24).
_ROW_STRIDE = np.int64(1) << 32

# Columns of the per-position slot-outcome table (see _slot_table).
_W1, _W2 = 0, 1  # raw selection words (offsets 0 and 1)
_XMASK = 2  # crossover combine mask: inv(cut) when crossing, else 0
_M1BIT, _M2BIT = 3, 4  # mutation XOR bit per offspring, 0 when not mutating
_NEXT, _CONSUMED = 5, 6  # successor position / words consumed (full pair)
_NEXT1, _CONSUMED1 = 7, 8  # same for a single-offspring tail slot
_COLS = 9

_SLOT_TABLE_CACHE: dict[tuple, np.ndarray] = {}
_SLOT_STACK_CACHE: dict[tuple, np.ndarray] = {}


def _slot_table(
    crossover_threshold: int,
    mutation_threshold: int,
    rule_vector: int = DEFAULT_RULE_VECTOR,
    width: int = 16,
    spacing: int = 1,
) -> np.ndarray:
    """Per-orbit-position outcome of one offspring slot, as a ``(size, 9)``
    int64 table.

    A slot starting with the stream at orbit position ``p`` consumes, in
    the serial engine's order: two selection words, the crossover-decision
    word, the crossover-point word (only when the decision fires), then per
    offspring a mutation-decision word and a mutation-point word (only when
    that decision fires).  All of it is a pure function of ``p`` and the two
    thresholds, so it is precomputed here for every position at once and
    cached per parameter combination.
    """
    key = (crossover_threshold, mutation_threshold, rule_vector, width, spacing)
    cached = _SLOT_TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    orbit, _position = orbit_tables(rule_vector, width)
    orbit = orbit.astype(np.int64)
    size = orbit.shape[0]
    dec = orbit & 0xF  # the 4-bit decision field of each word
    pos = np.arange(size, dtype=np.int64)
    s = spacing

    table = np.empty((size, _COLS), dtype=np.int64)
    table[:, _W1] = orbit
    table[:, _W2] = orbit[(pos + s) % size]

    do_x = dec[(pos + 2 * s) % size] < crossover_threshold
    cut = dec[(pos + 3 * s) % size]  # read speculatively, masked below
    inv = (0xFFFF << cut) & 0xFFFF  # ~((1 << cut) - 1) in 16 bits
    table[:, _XMASK] = np.where(do_x, inv, 0)

    m1 = (pos + (3 + do_x) * s) % size
    do_m1 = dec[m1] < mutation_threshold
    point1 = dec[(m1 + s) % size]
    table[:, _M1BIT] = np.where(do_m1, np.int64(1) << point1, 0)
    table[:, _NEXT1] = (m1 + (1 + do_m1) * s) % size
    table[:, _CONSUMED1] = 4 + do_x + do_m1

    m2 = (m1 + (1 + do_m1) * s) % size
    do_m2 = dec[m2] < mutation_threshold
    point2 = dec[(m2 + s) % size]
    table[:, _M2BIT] = np.where(do_m2, np.int64(1) << point2, 0)
    table[:, _NEXT] = (m2 + (1 + do_m2) * s) % size
    table[:, _CONSUMED] = 5 + do_x + do_m1 + do_m2

    if len(_SLOT_TABLE_CACHE) >= 32:  # bound the cache for long sweeps
        _SLOT_TABLE_CACHE.clear()
    _SLOT_TABLE_CACHE[key] = table
    return table


class BatchBehavioralGA:
    """N replicas of the behavioural GA evolved in lock-step numpy arrays.

    Parameters
    ----------
    params_list:
        One :class:`GAParameters` per replica.  All replicas must agree on
        ``n_generations`` and ``population_size``; seeds and thresholds are
        free per replica.
    fitness:
        A single :class:`FitnessFunction` shared by every replica, or one
        per replica (mixed-function batches, e.g. Table V).
    record_members:
        Keep every member's fitness per generation in the history (needed
        for the Figs. 8-12 scatter data); off by default for sweeps.
    rng_states:
        Optional per-replica CA states to resume the streams from (the
        island model carries streams across migration epochs); defaults to
        each replica's ``params.rng_seed``.
    resilience:
        Optional :class:`~repro.resilience.harden.ResilienceHarness` with
        ``n_replicas`` matching the batch width.  Its ``batch_boundary``
        hook runs after every generation is recorded, injecting that
        boundary's upsets per replica and applying the armed protections;
        replica ``r`` behaves bit-identically to a serial
        :class:`BehavioralGA` run carrying the same harness at
        ``replica_offset=r``.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`.  When enabled, every
        generation boundary emits one ``ga.generation`` event whose
        ``best_fitness``/``fitness_sum`` attrs are per-replica lists, and
        one ``ga.phases`` event with the slab-wide wall time per phase.
        The disabled path (the default) executes the exact uninstrumented
        slot loop — one flag check per generation is the whole cost, and
        results are bit-identical either way.
    mode:
        ``"exact"`` (default) walks offspring slots with the precomputed
        slot-outcome table, bit-identical to N serial runs.  ``"turbo"``
        runs the fully vectorised generation step of
        :class:`~repro.core.turbo.TurboKernel`: one pre-drawn word block,
        one flattened ``searchsorted`` for every selection, array-wide
        crossover masks, and binomial-sampled mutation.  Turbo keeps the
        operator distributions but not the exact word allocation (the
        contract in ``docs/architecture.md``); each replica's draw count
        stays a pure function of its own stream, so turbo results are
        deterministic per ``(params, seed)`` regardless of slab
        composition or chunking.  Turbo does not support a resilience
        harness.
    """

    def __init__(
        self,
        params_list: Sequence[GAParameters],
        fitness: FitnessFunction | Sequence[FitnessFunction],
        record_members: bool = False,
        rng_states: Sequence[int] | None = None,
        resilience=None,
        tracer=None,
        mode: str = "exact",
        record_history: bool = True,
    ):
        if mode not in ("exact", "turbo"):
            raise ValueError(f"mode must be 'exact' or 'turbo': {mode!r}")
        if mode == "turbo" and resilience is not None:
            raise ValueError(
                "turbo mode does not support a resilience harness; "
                "hardened runs must use exact mode"
            )
        self.mode = mode
        self.tracer = tracer
        self.params_list = list(params_list)
        n = len(self.params_list)
        if n == 0:
            raise ValueError("batch needs at least one replica")
        first = self.params_list[0]
        for p in self.params_list[1:]:
            if (
                p.n_generations != first.n_generations
                or p.population_size != first.population_size
            ):
                raise ValueError(
                    "all replicas in a batch must share n_generations and "
                    "population_size (group jobs with run_batched instead)"
                )
        self.n_replicas = n
        self.n_generations = first.n_generations
        self.pop = first.population_size
        self.record_members = record_members
        #: When off, per-generation :class:`GenerationStats` rows are not
        #: accumulated — the archipelago engine runs thousands of replicas
        #: and cannot afford O(replicas x generations) Python objects; the
        #: evolution itself (and any armed tracer's events) is unchanged.
        self.record_history = record_history
        self.resilience = resilience

        if isinstance(fitness, FitnessFunction):
            self.fitnesses: list[FitnessFunction] = [fitness] * n
        else:
            self.fitnesses = list(fitness)
            if len(self.fitnesses) != n:
                raise ValueError(
                    f"got {len(self.fitnesses)} fitness functions for {n} replicas"
                )
        if len({fn.name for fn in self.fitnesses}) == 1:
            self._table = self.fitnesses[0].table().astype(np.int64)
            self._tables_flat = None
        else:
            self._table = None
            # one row per replica, flattened so a lookup is a single gather
            stacked = np.stack(
                [fn.table().astype(np.int64) for fn in self.fitnesses]
            )
            self._table_width = stacked.shape[1]
            self._tables_flat = stacked.ravel()

        seeds = (
            list(rng_states)
            if rng_states is not None
            else [p.rng_seed for p in self.params_list]
        )
        self.bank = CAStreamBank(seeds)

        self._rows = np.arange(n, dtype=np.int64)
        self._row_offsets = (self._rows * _ROW_STRIDE)[:, None]
        # flat index of each replica's last member, for the hardware's
        # "last member as fallback" clamp (each selection target appears
        # twice: two parents per slot)
        self._sel_cap = np.repeat(self._rows * self.pop, 2) + (self.pop - 1)

        if mode == "turbo":
            self._turbo = TurboKernel(
                self.params_list, self._rows, self._row_offsets
            )
            self._slot_tables = None
            self._class_idx = None
        else:
            # one slot-outcome table per distinct threshold pair, stacked so
            # a replica's slot gather is TT[class, position]
            pairs = [
                (p.crossover_threshold, p.mutation_threshold)
                for p in self.params_list
            ]
            classes = sorted(set(pairs))
            stack_key = (
                tuple(classes),
                self.bank.rule_vector,
                self.bank.width,
                self.bank.spacing,
            )
            stacked = _SLOT_STACK_CACHE.get(stack_key)
            if stacked is None:
                stacked = np.stack(
                    [
                        _slot_table(
                            xt, mt, self.bank.rule_vector, self.bank.width,
                            self.bank.spacing,
                        )
                        for xt, mt in classes
                    ]
                )
                if len(_SLOT_STACK_CACHE) >= 32:
                    _SLOT_STACK_CACHE.clear()
                _SLOT_STACK_CACHE[stack_key] = stacked
            self._slot_tables = stacked
            self._class_idx = np.array(
                [classes.index(pair) for pair in pairs], dtype=np.int64
            )

        self.histories: list[list[GenerationStats]] = [[] for _ in range(n)]
        self.evaluations = np.zeros(n, dtype=np.int64)

    # ------------------------------------------------------------------
    def _eval(self, inds: np.ndarray) -> np.ndarray:
        """Fitness lookup — shared table or per-replica flattened tables."""
        if self._table is not None:
            return self._table[inds]
        if inds.ndim == 1:
            return self._tables_flat[self._rows * self._table_width + inds]
        return self._tables_flat[
            (self._rows * self._table_width)[:, None] + inds
        ]

    def _record(
        self,
        generation: int,
        fits: np.ndarray,
        best_fit: np.ndarray,
        best_ind: np.ndarray,
        sums: np.ndarray,
    ) -> None:
        tracing = self.tracer is not None and self.tracer.enabled
        if not self.record_history and not tracing:
            return
        # tolist() batches the numpy-scalar -> int conversions; the loop
        # below is on the per-generation path of both engine modes
        bf, bi = best_fit.tolist(), best_ind.tolist()
        sm = sums.tolist()
        if self.record_history:
            members = fits.tolist() if self.record_members else None
            pop = self.pop
            for r in range(self.n_replicas):
                self.histories[r].append(
                    GenerationStats(
                        generation=generation,
                        best_fitness=bf[r],
                        best_individual=bi[r],
                        fitness_sum=sm[r],
                        population_size=pop,
                        fitnesses=members[r] if members is not None else [],
                    )
                )
        if tracing:
            self.tracer.event(
                "ga.generation",
                generation=generation,
                best_fitness=bf,
                best_individual=bi,
                fitness_sum=sm,
            )

    def _validate_initial(self, initial: np.ndarray) -> np.ndarray:
        """Check a caller-supplied initial population up front.

        The generation loop assumes 16-bit non-negative integers in an
        ``(n_replicas, population_size)`` layout; anything else used to
        surface as a baffling failure (or silent masking) deep inside the
        loop, so the contract is enforced up front with named errors —
        the same errors, via the same shared helper, that the serial
        engine raises (``tests/core/test_validate.py``).
        """
        return validate_initial_population(initial, (self.n_replicas, self.pop))

    # ------------------------------------------------------------------
    # resumable stepping API: begin / step / finalize.  run() is the
    # one-shot composition; the serving layer steps slabs one admission
    # interval at a time so late-arriving jobs can join at generation
    # boundaries (continuous batching).
    # ------------------------------------------------------------------
    def begin(self, initial: np.ndarray | None = None) -> "BatchBehavioralGA":
        """Initialise (or re-initialise) a run without evolving it.

        Draws or adopts the initial populations, records generation 0, and
        leaves the engine paused at generation 0.  ``initial`` optionally
        seeds every replica's population with an
        ``(n_replicas, population_size)`` array of already-evaluated
        individuals (the island model carrying populations across epochs,
        or a service slab resuming suspended jobs); seeded members are
        *not* counted as new FEM evaluations.
        """
        n, pop = self.n_replicas, self.pop
        rows = self._rows
        self.histories = [[] for _ in range(n)]
        self.evaluations = np.zeros(n, dtype=np.int64)
        self._t_begin = perf_counter()

        if initial is not None:
            inds = self._validate_initial(initial)
        else:
            inds = self.bank.block2d(pop).astype(np.int64)
            self.evaluations += pop
        fits = self._eval(inds)
        # take over the streams from the bank; positions are handed back
        # (with the consumed-word count) when the run is finalized
        cur = self.bank.pos.copy()

        # hardware tie-breaking: first occurrence of the max wins
        best_idx = fits.argmax(axis=1)
        best_fit = fits[rows, best_idx]
        best_ind = inds[rows, best_idx]
        self._record(0, fits, best_fit, best_ind, fits.sum(axis=1))
        if self.resilience is not None:
            inds, fits, best_ind, best_fit, cur = self.resilience.batch_boundary(
                self, 0, inds, fits, best_ind, best_fit, cur
            )

        self._gen = 0
        self._inds = inds
        self._fits = fits
        self._best_ind = best_ind
        self._best_fit = best_fit
        self._cur = cur
        self._consumed = np.zeros(n, dtype=np.int64)
        self._finalized = False
        return self

    @property
    def generation(self) -> int:
        """Generations evolved since :meth:`begin` (0 right after it)."""
        if not hasattr(self, "_gen"):
            raise RuntimeError("call begin() before inspecting the run")
        return self._gen

    @property
    def done(self) -> bool:
        """True once every programmed generation has executed."""
        return self.generation >= self.n_generations

    # ------------------------------------------------------------------
    # slab inspection / surgery helpers: the archipelago layer treats the
    # replica axis as an island axis, so it needs to read each replica's
    # champion, find worst members, splice migrants in, and re-anchor the
    # best-tracking registers — all as array operations between step()s.
    # ------------------------------------------------------------------
    def _require_live(self, what: str) -> None:
        if not hasattr(self, "_gen"):
            raise RuntimeError(f"call begin() before {what}")
        if self._finalized:
            raise RuntimeError(f"run already finalized; cannot {what}")

    def champions(self) -> tuple[np.ndarray, np.ndarray]:
        """Current best ``(individuals, fitnesses)`` per replica — the
        running strict-improvement best since :meth:`begin` (or the last
        :meth:`reanchor_best`).  Returns copies; mutating them does not
        touch the run."""
        self._require_live("champions()")
        return self._best_ind.copy(), self._best_fit.copy()

    def worst_member_order(self) -> np.ndarray:
        """Member indices per replica sorted worst-fitness-first.

        Column 0 is each replica's first-occurrence ``argmin`` (the member
        the hardware-style migration replaces); stable sort, so ties
        resolve to the lowest index exactly like repeated ``argmin`` picks.
        """
        self._require_live("worst_member_order()")
        return np.argsort(self._fits, axis=1, kind="stable")

    def replace_members(
        self, rows: np.ndarray, cols: np.ndarray, individuals: np.ndarray
    ) -> None:
        """Overwrite members ``(rows, cols)`` with ``individuals`` and
        re-evaluate their fitness in place (the migration scatter).

        Consumes no RNG words and touches no other state: stepping after a
        replacement behaves exactly as if the new population had been
        passed to a fresh :meth:`begin` with the same streams (modulo best
        tracking — see :meth:`reanchor_best`).
        """
        self._require_live("replace_members()")
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        inds = np.asarray(individuals, dtype=np.int64)
        self._inds[rows, cols] = inds
        if self._table is not None:
            self._fits[rows, cols] = self._table[inds]
        else:
            self._fits[rows, cols] = self._tables_flat[
                rows * self._table_width + inds
            ]

    def reanchor_best(self) -> None:
        """Reset best tracking to the *current* populations — the
        first-occurrence row argmax, exactly what a fresh :meth:`begin`
        over these populations would compute.

        The archipelago calls this at every migration boundary so each
        epoch's champion race restarts from the migrated populations (a
        freshly arrived migrant can be an island's champion), keeping the
        carried slab bit-identical to the legacy one-engine-per-epoch
        loop.
        """
        self._require_live("reanchor_best()")
        best_idx = self._fits.argmax(axis=1)
        self._best_fit = self._fits[self._rows, best_idx]
        self._best_ind = self._inds[self._rows, best_idx]

    def step(self, n_generations: int | None = None) -> int:
        """Advance up to ``n_generations`` generations (all remaining when
        ``None``); returns the number actually executed.

        Stepping a run in any sequence of chunk sizes is draw-for-draw
        identical to one uninterrupted :meth:`run` — the loop below *is*
        the run loop, merely bounded — which is what lets a serving slab
        pause at a generation boundary, admit new jobs, and resume.
        """
        if not hasattr(self, "_gen"):
            raise RuntimeError("call begin() before step()")
        if self._finalized:
            raise RuntimeError("run already finalized; call begin() to restart")
        if self.mode == "turbo":
            return self._step_turbo(n_generations)
        n, pop = self.n_replicas, self.pop
        rows = self._rows
        single_class = self._slot_tables.shape[0] == 1
        slot_tt = self._slot_tables[0] if single_class else self._slot_tables
        class_idx = self._class_idx
        remaining = self.n_generations - self._gen
        todo = remaining if n_generations is None else min(n_generations, remaining)
        if todo <= 0:
            return 0

        inds, fits = self._inds, self._fits
        best_ind, best_fit = self._best_ind, self._best_fit
        cur, consumed = self._cur, self._consumed
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled

        n_pairs = (pop - 1) // 2
        has_tail = (pop - 1) % 2 == 1

        for gen in range(self._gen + 1, self._gen + todo + 1):
            if tracing:
                ph = {"selection": 0.0, "crossover": 0.0, "mutation": 0.0,
                      "eval": 0.0, "elitism": 0.0, "record": 0.0}
                t = perf_counter()
            cum = fits.cumsum(axis=1)
            total = cum[:, -1:]  # (n, 1) for broadcasting over both parents
            flat = (cum + self._row_offsets).ravel()
            inds_flat = inds.ravel()
            new_inds = np.empty((n, pop), dtype=np.int64)
            if tracing:
                now = perf_counter()
                ph["selection"] += now - t
                t = now
            new_inds[:, 0] = best_ind  # elitism
            if tracing:
                now = perf_counter()
                ph["elitism"] += now - t
                t = now
            col = 1
            if not tracing:
                # the uninstrumented hot loop, byte-identical to the PR 1
                # engine: no per-slot branches on the disabled path
                for _ in range(n_pairs + has_tail):
                    tail = col == pop - 1
                    R = slot_tt[cur] if single_class else slot_tt[class_idx, cur]
                    # proportionate selection, both parents in one
                    # searchsorted: threshold = (rn * sum) >> 16, first
                    # member whose cumulative fitness exceeds it, last
                    # member as the hardware fallback
                    thresholds = (R[:, :2] * total) >> 16
                    picks = np.minimum(
                        flat.searchsorted(
                            (thresholds + self._row_offsets).ravel(), side="right"
                        ),
                        self._sel_cap,
                    )
                    parents = inds_flat[picks]
                    p1, p2 = parents[0::2], parents[1::2]
                    # single-point crossover as an XOR update; XMASK is zero
                    # when this slot's crossover decision failed
                    diff = (p1 ^ p2) & R[:, _XMASK]
                    new_inds[:, col] = (p1 ^ diff) ^ R[:, _M1BIT]
                    col += 1
                    if tail:
                        consumed += R[:, _CONSUMED1]
                        cur = R[:, _NEXT1]
                    else:
                        new_inds[:, col] = (p2 ^ diff) ^ R[:, _M2BIT]
                        col += 1
                        consumed += R[:, _CONSUMED]
                        cur = R[:, _NEXT]
            else:
                # the same slot loop with per-phase walls; every operation
                # and its order is identical, only timestamps are added
                for _ in range(n_pairs + has_tail):
                    tail = col == pop - 1
                    R = slot_tt[cur] if single_class else slot_tt[class_idx, cur]
                    thresholds = (R[:, :2] * total) >> 16
                    picks = np.minimum(
                        flat.searchsorted(
                            (thresholds + self._row_offsets).ravel(), side="right"
                        ),
                        self._sel_cap,
                    )
                    parents = inds_flat[picks]
                    p1, p2 = parents[0::2], parents[1::2]
                    now = perf_counter()
                    ph["selection"] += now - t
                    t = now
                    diff = (p1 ^ p2) & R[:, _XMASK]
                    c1 = p1 ^ diff
                    c2 = p2 ^ diff
                    now = perf_counter()
                    ph["crossover"] += now - t
                    t = now
                    new_inds[:, col] = c1 ^ R[:, _M1BIT]
                    col += 1
                    if tail:
                        consumed += R[:, _CONSUMED1]
                        cur = R[:, _NEXT1]
                    else:
                        new_inds[:, col] = c2 ^ R[:, _M2BIT]
                        col += 1
                        consumed += R[:, _CONSUMED]
                        cur = R[:, _NEXT]
                    now = perf_counter()
                    ph["mutation"] += now - t
                    t = now
            inds = new_inds
            # selection only reads the previous generation's fitness, so the
            # whole offspring generation is evaluated in one table gather
            fits = self._eval(inds)
            if tracing:
                now = perf_counter()
                ph["eval"] += now - t
                t = now
            # column 0 stores the best *register* value, as the serial
            # engine's elitism copy does; identical to the table gather on
            # a healthy run, but a corrupted register must propagate the
            # register value, not a fresh re-evaluation
            fits[:, 0] = best_fit
            # the serial engine's running strict-improvement update equals
            # the first occurrence of the row max (the elite in column 0
            # carries the previous best, so ties keep the old champion)
            best_idx = fits.argmax(axis=1)
            gen_best = fits[rows, best_idx]
            improved = gen_best > best_fit
            best_fit = np.where(improved, gen_best, best_fit)
            best_ind = np.where(improved, inds[rows, best_idx], best_ind)
            if tracing:
                now = perf_counter()
                ph["elitism"] += now - t
                t = now
            self._record(
                gen, fits, gen_best, inds[rows, best_idx], fits.sum(axis=1)
            )
            if tracing:
                now = perf_counter()
                ph["record"] += now - t
                t = now
            if self.resilience is not None:
                inds, fits, best_ind, best_fit, cur = (
                    self.resilience.batch_boundary(
                        self, gen, inds, fits, best_ind, best_fit, cur
                    )
                )
                if tracing:
                    ph["scrub"] = perf_counter() - t
            if tracing:
                tracer.event("ga.phases", generation=gen, phases=ph)

        # each generation evaluates pop - 1 new offspring (the elite is
        # copied with its stored fitness), exactly as the serial engine
        self.evaluations += todo * (pop - 1)
        self._gen += todo
        self._inds, self._fits = inds, fits
        self._best_ind, self._best_fit = best_ind, best_fit
        self._cur, self._consumed = cur, consumed
        return todo

    def _step_turbo(self, n_generations: int | None) -> int:
        """The turbo generation loop: a handful of array passes per
        generation, no per-slot Python iteration.

        Elitism, best tracking, recording, and tracing follow the exact
        engine's semantics verbatim (column 0 carries the elite register,
        strict-improvement best updates, the same ``ga.generation`` /
        ``ga.phases`` events) — only the offspring construction inside
        :meth:`TurboKernel.generation` differs.  The stream bank advances
        live (``block2d`` draws), so ``_consumed`` stays zero and
        :meth:`finalize`'s hand-back is a no-op position sync.
        """
        remaining = self.n_generations - self._gen
        todo = remaining if n_generations is None else min(n_generations, remaining)
        if todo <= 0:
            return 0
        rows = self._rows
        kernel = self._turbo
        inds, fits = self._inds, self._fits
        best_ind, best_fit = self._best_ind, self._best_fit
        self.bank.pos = self._cur % self.bank._size
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled

        for gen in range(self._gen + 1, self._gen + todo + 1):
            if tracing:
                ph = {"selection": 0.0, "crossover": 0.0, "mutation": 0.0,
                      "eval": 0.0, "elitism": 0.0, "record": 0.0}
                t = perf_counter()
            inds = kernel.generation(self.bank, inds, fits, best_ind)
            if tracing:
                now = perf_counter()
                # the fused kernel does selection+crossover+mutation in one
                # pass; report it under "selection" with zero-filled peers
                # so phase_breakdown keys stay stable across modes
                ph["selection"] += now - t
                t = now
            fits = self._eval(inds)
            if tracing:
                now = perf_counter()
                ph["eval"] += now - t
                t = now
            fits[:, 0] = best_fit
            best_idx = fits.argmax(axis=1)
            gen_best = fits[rows, best_idx]
            improved = gen_best > best_fit
            best_fit = np.where(improved, gen_best, best_fit)
            best_ind = np.where(improved, inds[rows, best_idx], best_ind)
            if tracing:
                now = perf_counter()
                ph["elitism"] += now - t
                t = now
            self._record(
                gen, fits, gen_best, inds[rows, best_idx], fits.sum(axis=1)
            )
            if tracing:
                ph["record"] += perf_counter() - t
                tracer.event("ga.phases", generation=gen, phases=ph)

        self.evaluations += todo * (self.pop - 1)
        self._gen += todo
        self._inds, self._fits = inds, fits
        self._best_ind, self._best_fit = best_ind, best_fit
        self._cur = self.bank.pos.copy()
        return todo

    def finalize(self) -> list:
        """Hand the RNG streams back to the bank and build the results.

        Legal at any generation boundary: a partial run's results cover
        the generations executed so far (the serving layer suspends slabs
        this way, carrying ``final_populations``/``rng_states`` into a
        successor batch).  Final populations land in
        ``self.final_populations`` and the per-replica RNG end states in
        ``self.rng_states``.
        """
        from repro.core.system import GAResult  # deferred: avoids cycle

        if not hasattr(self, "_gen"):
            raise RuntimeError("call begin() before finalize()")
        if self._finalized:
            raise RuntimeError("run already finalized")
        self._finalized = True
        self.bank.pos = self._cur % self.bank._size
        self.bank.draws += self._consumed
        self.final_populations = self._inds.copy()
        self.rng_states = self.bank.states
        record_engine_run(
            self._gen * self.n_replicas,
            int(self.evaluations.sum()),
            perf_counter() - self._t_begin,
        )
        return [
            GAResult(
                best_individual=int(self._best_ind[r]),
                best_fitness=int(self._best_fit[r]),
                history=self.histories[r],
                evaluations=int(self.evaluations[r]),
                params=self.params_list[r],
                fitness_name=self.fitnesses[r].name,
                cycles=None,
            )
            for r in range(self.n_replicas)
        ]

    def run(self, initial: np.ndarray | None = None) -> list:
        """Evolve all replicas to completion; one ``GAResult`` per replica.

        Equivalent to ``begin(initial)``, ``step()``, ``finalize()`` — and
        bit-identical to any other chunking of the same generations.
        """
        self.begin(initial)
        self.step()
        return self.finalize()


def run_batched(
    jobs: Sequence[tuple[GAParameters, FitnessFunction]],
    record_members: bool = False,
    mode: str = "exact",
) -> list:
    """Run a heterogeneous sweep through the batch engine.

    ``jobs`` is any sequence of ``(params, fitness)`` cells; cells sharing
    ``(n_generations, population_size)`` are grouped into one
    :class:`BatchBehavioralGA` run each, and the results come back in input
    order — in the default exact mode, bit-identical to looping
    ``BehavioralGA(params, fitness).run()`` over the jobs one by one
    (``mode="turbo"`` trades that bit-identity for the vectorised hot
    path; see the engine docstring).
    """
    groups: dict[tuple[int, int], list[int]] = {}
    for i, (params, _fn) in enumerate(jobs):
        groups.setdefault(
            (params.n_generations, params.population_size), []
        ).append(i)
    results: list = [None] * len(jobs)
    for indices in groups.values():
        params_list = [jobs[i][0] for i in indices]
        fns = [jobs[i][1] for i in indices]
        batch = BatchBehavioralGA(
            params_list, fns, record_members=record_members, mode=mode
        )
        for i, result in zip(indices, batch.run()):
            results[i] = result
    return results
