"""Ablation: RNG quality and seed vs. GA convergence (Sec. II-C).

Reproduces the study shape the paper reviews (Meysenburg/Foster vs.
Cantu-Paz): run the same GA with the CA PRNG, the LFSR, a good LCG and a
deliberately poor LCG, across seeds, and show (a) seed choice swings results
substantially — the argument for the programmable seed — and (b) the poor
generator degrades the *initial population* quality that Cantu-Paz found
decisive.
"""

import statistics

import pytest

from conftest import print_table
from repro.core.behavioral import BehavioralGA
from repro.core.params import GAParameters
from repro.fitness import MBF6_2
from repro.rng import quality
from repro.rng.cellular_automaton import CellularAutomatonPRNG
from repro.rng.lcg import LCG16, PoorLCG
from repro.rng.lfsr import GaloisLFSR

SEEDS = [45890, 10593, 1567, 0x2961, 0x061F, 0xB342]
GENERATORS = {
    "CA (this core)": CellularAutomatonPRNG,
    "LFSR [6]": GaloisLFSR,
    "LCG-32 (good)": LCG16,
    "LCG-16 (poor)": PoorLCG,
}


def _run_matrix():
    fn = MBF6_2()
    params = GAParameters(32, 32, 10, 1, 1)
    rows = []
    for name, gen_cls in GENERATORS.items():
        bests, init_bests = [], []
        for seed in SEEDS:
            rng = gen_cls(seed)
            result = BehavioralGA(params.with_(rng_seed=seed), fn, rng=rng).run()
            bests.append(result.best_fitness)
            init_bests.append(result.history[0].best_fitness)
        report = quality.evaluate(gen_cls(SEEDS[0]), samples=4000)
        rows.append(
            {
                "generator": name,
                "period": report.period,
                "mean_best": round(statistics.mean(bests)),
                "min_best": min(bests),
                "max_best": max(bests),
                "seed_swing": max(bests) - min(bests),
                "mean_init_best": round(statistics.mean(init_bests)),
            }
        )
    return rows


@pytest.mark.benchmark(group="ablation-rng")
def test_rng_quality_vs_convergence(benchmark):
    rows = benchmark.pedantic(_run_matrix, rounds=1, iterations=1)
    print_table("RNG quality ablation (mBF6_2, pop 32, 32 gens, 6 seeds)", rows)

    by_name = {r["generator"]: r for r in rows}
    # (a) seed choice matters for every generator (Elsner-style swing) —
    # the programmable-seed feature's justification.
    assert by_name["CA (this core)"]["seed_swing"] > 100
    # (b) the poor LCG's short period hurts the sampled population quality.
    assert by_name["LCG-16 (poor)"]["period"] < by_name["CA (this core)"]["period"]
    assert (
        by_name["LCG-16 (poor)"]["mean_init_best"]
        <= by_name["CA (this core)"]["mean_init_best"] * 1.02
    )
    # (c) good generators end up in the same band (Meysenburg/Foster).
    goods = [by_name[k]["mean_best"] for k in
             ("CA (this core)", "LFSR [6]", "LCG-32 (good)")]
    assert max(goods) - min(goods) < 0.15 * max(goods)
