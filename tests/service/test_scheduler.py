"""Scheduler behaviour: backpressure, shutdown, failures, metrics."""

import time

import pytest

from repro.core.params import GAParameters
from repro.service import (
    BatchPolicy,
    DeadlineExceededError,
    GARequest,
    GAService,
    JobCancelledError,
    JobFailedError,
    OverloadedError,
    QueueFullError,
    Scheduler,
    ServiceClosedError,
    ShutdownTimeoutError,
    WorkerPool,
)
from repro.service.batcher import JobRecord
from repro.service.jobs import JobHandle


def request(seed=45890, gens=8, pop=16, **kw) -> GARequest:
    return GARequest(
        params=GAParameters(
            n_generations=gens, population_size=pop,
            crossover_threshold=10, mutation_threshold=1, rng_seed=seed,
        ),
        **kw,
    )


#: a policy that keeps jobs pending: huge batch target, long wait window
PARKED = BatchPolicy(max_batch=64, max_wait_s=60.0, max_pending=3)


class TestAdmissionControl:
    def test_queue_bound_rejects_with_queue_full(self):
        service = GAService(workers=1, mode="thread", policy=PARKED).start()
        try:
            handles = [service.submit(request(seed=s)) for s in (1, 2, 3)]
            with pytest.raises(QueueFullError):
                service.submit(request(seed=4))
            assert service.metrics.rejected == 1
        finally:
            service.shutdown(drain=True)
        # draining shutdown still completes every accepted job
        assert all(h.result(timeout=30).best_fitness >= 0 for h in handles)

    def test_submit_after_shutdown_raises_service_closed(self):
        service = GAService(workers=1, mode="thread").start()
        service.shutdown(drain=True)
        with pytest.raises(ServiceClosedError):
            service.submit(request())


class TestShutdown:
    def test_drain_false_cancels_pending_jobs(self):
        service = GAService(workers=1, mode="thread", policy=PARKED).start()
        handles = [service.submit(request(seed=s)) for s in (1, 2)]
        service.shutdown(drain=False)
        for handle in handles:
            with pytest.raises(JobCancelledError):
                handle.result(timeout=5)
        assert service.metrics.failed == 2

    def test_context_manager_drains_on_clean_exit(self):
        with GAService(workers=1, mode="thread") as service:
            handle = service.submit(request())
        assert handle.result(timeout=5).best_fitness >= 0


class TestFailures:
    def test_worker_exception_fails_every_job_in_the_slab(self, monkeypatch):
        import repro.service.workers as workers_mod

        def boom(spec):
            raise RuntimeError("synthetic worker crash")

        monkeypatch.setattr(workers_mod, "run_slab_chunk", boom)
        service = GAService(
            workers=1, mode="thread",
            policy=BatchPolicy(max_batch=2, max_wait_s=0.01),
        ).start()
        try:
            handles = [service.submit(request(seed=s)) for s in (1, 2)]
            for handle in handles:
                with pytest.raises(JobFailedError, match="synthetic"):
                    handle.result(timeout=10)
            assert service.metrics.failed == 2
        finally:
            service.shutdown(drain=False)


class TestLoadShedding:
    def test_depth_bound_sheds_the_incoming_job_on_equal_priority(self):
        policy = BatchPolicy(
            max_batch=64, max_wait_s=60.0, max_pending=10, shed_queue_depth=2
        )
        service = GAService(workers=1, mode="thread", policy=policy).start()
        try:
            kept = [service.submit(request(seed=s)) for s in (1, 2)]
            with pytest.raises(OverloadedError, match="queue depth"):
                service.submit(request(seed=3))
            assert service.metrics.shed == 1
            assert service.metrics.rejected == 1
        finally:
            service.shutdown(drain=True)
        assert all(h.result(timeout=30).best_fitness >= 0 for h in kept)

    def test_higher_priority_arrival_sheds_the_worst_pending_victim(self):
        policy = BatchPolicy(
            max_batch=64, max_wait_s=60.0, max_pending=10, shed_queue_depth=2
        )
        service = GAService(workers=1, mode="thread", policy=policy).start()
        try:
            keeper = service.submit(request(seed=1))
            victim = service.submit(request(seed=2))
            urgent = service.submit(request(seed=3, priority=-5))
            with pytest.raises(OverloadedError, match="shed"):
                victim.result(timeout=5)
            assert service.metrics.shed == 1
        finally:
            service.shutdown(drain=True)
        assert keeper.result(timeout=30).best_fitness >= 0
        assert urgent.result(timeout=30).best_fitness >= 0

    def test_backlog_shedding_waits_for_an_observed_rate(self):
        # no chunk has completed, so there is no generations/sec estimate
        # and the backlog limit must not fire
        policy = BatchPolicy(
            max_batch=64, max_wait_s=60.0, max_pending=10, max_backlog_s=1e-9
        )
        service = GAService(workers=1, mode="thread", policy=policy).start()
        try:
            handles = [service.submit(request(seed=s)) for s in (1, 2, 3)]
            assert service.metrics.shed == 0
        finally:
            service.shutdown(drain=True)
        assert all(h.result(timeout=30).best_fitness >= 0 for h in handles)


class TestDeadlineEnforcement:
    def test_enforced_deadline_expires_in_queue(self):
        service = GAService(workers=1, mode="thread", policy=PARKED).start()
        try:
            handle = service.submit(
                request(deadline_s=0.05, deadline_mode="enforce")
            )
            with pytest.raises(DeadlineExceededError, match="deadline"):
                handle.result(timeout=10)
            assert service.metrics.deadline_enforced == 1
        finally:
            service.shutdown(drain=False)

    def test_enforced_deadline_cancels_at_a_chunk_boundary(self):
        policy = BatchPolicy(max_wait_s=0.005, admit_interval=2)
        with GAService(workers=1, mode="thread", policy=policy) as service:
            handle = service.submit(
                request(gens=4096, deadline_s=0.02, deadline_mode="enforce")
            )
            with pytest.raises(DeadlineExceededError):
                handle.result(timeout=30)
            assert service.metrics.deadline_enforced == 1

    def test_observe_mode_still_only_reports(self):
        with GAService(workers=1, mode="thread") as service:
            result = service.submit(
                request(gens=32, deadline_s=1e-6)
            ).result(timeout=30)
        assert result.deadline_missed and result.best_fitness >= 0


class TestCancellation:
    def test_cancel_pending_job_fails_fast(self):
        service = GAService(workers=1, mode="thread", policy=PARKED).start()
        try:
            handle = service.submit(request(seed=1))
            assert handle.cancel() is True
            with pytest.raises(JobCancelledError):
                handle.result(timeout=5)
            assert service.metrics.cancelled == 1
            assert handle.cancel() is False  # already settled
        finally:
            service.shutdown(drain=False)

    def test_cancel_inflight_job_stops_at_next_chunk_boundary(self):
        policy = BatchPolicy(max_wait_s=0.005, admit_interval=2)
        with GAService(workers=1, mode="thread", policy=policy) as service:
            handle = service.submit(request(gens=4096))
            deadline = time.monotonic() + 10
            while service.metrics.chunks == 0 and time.monotonic() < deadline:
                time.sleep(0.002)
            assert handle.cancel() is True
            with pytest.raises(JobCancelledError):
                handle.result(timeout=30)
            assert service.metrics.cancelled == 1

    def test_cancelled_job_does_not_disturb_slab_mates(self):
        policy = BatchPolicy(max_batch=4, max_wait_s=0.01, admit_interval=2)
        with GAService(workers=1, mode="thread", policy=policy) as service:
            doomed = service.submit(request(seed=1, gens=4096))
            mate = service.submit(request(seed=2, gens=16))
            doomed.cancel()
            assert mate.result(timeout=30).best_fitness >= 0
            with pytest.raises(JobCancelledError):
                doomed.result(timeout=5)


class TestShutdownTimeout:
    def test_expired_timeout_abandons_with_named_error(self, monkeypatch):
        import repro.service.workers as workers_mod

        def stuck(spec):
            time.sleep(3.0)
            return {"entries": []}

        monkeypatch.setattr(workers_mod, "run_slab_chunk", stuck)
        pool = WorkerPool(1, "thread")
        scheduler = Scheduler(
            pool, BatchPolicy(max_wait_s=0.005, max_pending=4)
        ).start()
        inflight = scheduler.submit(request(seed=1))
        deadline = time.monotonic() + 5
        while not scheduler._inflight and time.monotonic() < deadline:
            time.sleep(0.002)
        queued = scheduler.submit(request(seed=2))
        scheduler.shutdown(drain=True, timeout=0.2)
        for handle in (inflight, queued):
            with pytest.raises(ShutdownTimeoutError, match="abandoned"):
                handle.result(timeout=1)
        pool.shutdown(wait=False)

    def test_timeout_that_completes_in_time_is_clean(self):
        service = GAService(workers=1, mode="thread").start()
        handle = service.submit(request(gens=4))
        service.shutdown(drain=True, timeout=30.0)
        assert handle.result(timeout=1).best_fitness >= 0


class TestSchedulingHints:
    def test_order_key_priority_then_deadline_then_fifo(self):
        def rec(seq, priority=0, deadline=None):
            req = request(priority=priority, deadline_s=deadline)
            return JobRecord(
                job_id=seq, request=req, handle=JobHandle(seq, req, 0.0),
                submitted_at=0.0, seq=seq,
            )

        urgent = rec(5, priority=-1)
        tight = rec(3, deadline=0.5)
        loose = rec(1, deadline=9.0)
        fifo_a, fifo_b = rec(0), rec(2)
        ordered = sorted(
            [fifo_b, loose, urgent, fifo_a, tight], key=JobRecord.order_key
        )
        assert [r.seq for r in ordered] == [5, 3, 1, 0, 2]

    def test_missed_deadline_is_reported_not_enforced(self):
        with GAService(workers=1, mode="thread") as service:
            result = service.submit(
                request(gens=32, deadline_s=1e-6)
            ).result(timeout=30)
        assert result.deadline_missed
        assert result.best_fitness >= 0  # the job still ran to completion

    def test_met_deadline_not_flagged(self):
        with GAService(workers=1, mode="thread") as service:
            result = service.submit(
                request(gens=4, deadline_s=60.0)
            ).result(timeout=30)
        assert not result.deadline_missed


class TestMetrics:
    def test_snapshot_accounts_for_every_job(self):
        policy = BatchPolicy(max_batch=4, max_wait_s=0.01, admit_interval=4)
        with GAService(workers=2, mode="thread", policy=policy) as service:
            results = service.run_all(
                [request(seed=s, gens=12) for s in range(1, 9)], timeout=30
            )
            snap = service.snapshot()
        assert len(results) == 8
        assert snap["jobs"]["submitted"] == 8
        assert snap["jobs"]["completed"] == 8
        assert snap["jobs"]["failed"] == 0
        assert snap["queue"]["depth"] == 0
        assert snap["batching"]["chunks"] >= 3  # 12 gens / admit_interval 4
        assert 0 < snap["batching"]["mean_occupancy"] <= 1.0
        assert snap["latency"]["p95_ms"] >= snap["latency"]["p50_ms"] > 0
        assert snap["throughput"]["generations_per_s"] > 0

    def test_hardened_job_reports_protection_stats(self):
        with GAService(workers=1, mode="thread") as service:
            result = service.submit(
                request(gens=16, protection="hardened", upset_rate=1e-3)
            ).result(timeout=30)
        assert result.n_chunks == 1  # hardened jobs never split or batch
        assert set(result.protection_stats) >= {"rollbacks", "corrected"}
