"""The experiment harness: named, repeatable scenario sweeps.

The paper's evaluation is a fixed grid; this module is the general form —
an :class:`Experiment` is a named list of :class:`Scenario`s, each any
:class:`~repro.service.jobs.GARequest`-expressible job (exact/turbo
engines, archipelagos, hardened runs, the cycle-accurate testbench, the
dual-core 32-bit composition), swept over ``nb_repeats`` derived seeds and
executed through the serving layer with a content-addressed
:class:`~repro.store.runstore.RunStore` attached — so re-running an
experiment is nearly free (every repeated scenario is a cache hit) and
every row is replayable by store key.

Seed derivation contract (property-tested in
``tests/experiments/test_harness.py``):

* repeat 0 runs the scenario's own pinned seed, untouched;
* repeat ``i > 0`` draws a seed from ``sha256(scenario-name, base seed,
  i)`` — a pure function of the scenario itself, so adding, removing, or
  reordering *other* scenarios in the experiment never moves any seed;
* collisions within a scenario's repeat list are resolved by a
  deterministic salt bump (seeds must be distinct or two repeats would
  alias to one store key).

An experiment run writes a per-experiment output directory::

    <out>/<experiment-name>/
        results.jsonl    one JSON object per (scenario, repeat)
        summary.json     per-scenario aggregates + run metadata
        summary.md       the same, as a readable table

"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.service.jobs import GARequest

#: results.jsonl / summary.json format version (schema evolution guard
#: for downstream tooling and the perf-trajectory consumers)
RESULTS_SCHEMA_VERSION = 1


def derive_seeds(scenario_name: str, base_seed: int, nb_repeats: int) -> list[int]:
    """The per-repeat RNG seeds of one scenario.

    Pure function of ``(scenario_name, base_seed, nb_repeats)`` — never of
    the surrounding experiment — with repeat 0 pinned to ``base_seed``.
    Derived seeds live in the core's 16-bit non-zero range and are
    pairwise distinct (deterministic salt-bump rejection on collision).
    """
    if nb_repeats < 1:
        raise ValueError(f"nb_repeats must be >= 1: {nb_repeats}")
    if not 1 <= base_seed <= 0xFFFF:
        raise ValueError(f"base_seed must be a non-zero 16-bit word: {base_seed}")
    seeds = [base_seed]
    for repeat in range(1, nb_repeats):
        salt = 0
        while True:
            digest = hashlib.sha256(
                f"{scenario_name}:{base_seed}:{repeat}:{salt}".encode()
            ).digest()
            seed = (int.from_bytes(digest[:2], "big") % 0xFFFF) + 1
            if seed not in seeds:
                break
            salt += 1
        seeds.append(seed)
    return seeds


@dataclass(frozen=True)
class Scenario:
    """One named, seed-pinned workload of an experiment.

    ``request`` carries everything, including the base seed
    (``request.params.rng_seed``); repeats re-seed via
    :func:`derive_seeds` and change nothing else.
    """

    name: str
    request: GARequest
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a non-empty name")

    @property
    def base_seed(self) -> int:
        return self.request.params.rng_seed

    def repeat_requests(self, nb_repeats: int) -> list[GARequest]:
        """The scenario's requests for repeats ``0..nb_repeats-1``."""
        return [
            replace(
                self.request, params=self.request.params.with_(rng_seed=seed)
            )
            for seed in derive_seeds(self.name, self.base_seed, nb_repeats)
        ]


@dataclass(frozen=True)
class Experiment:
    """A named list of scenarios swept over ``nb_repeats`` derived seeds."""

    name: str
    scenarios: tuple[Scenario, ...]
    nb_repeats: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment needs a non-empty name")
        if not self.scenarios:
            raise ValueError(f"experiment {self.name!r} has no scenarios")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(
                f"experiment {self.name!r} has duplicate scenario names"
            )
        if self.nb_repeats < 1:
            raise ValueError(f"nb_repeats must be >= 1: {self.nb_repeats}")

    def jobs(self) -> list[tuple[Scenario, int, GARequest]]:
        """Every (scenario, repeat, request) of the sweep, in order."""
        out = []
        for scenario in self.scenarios:
            for repeat, request in enumerate(
                scenario.repeat_requests(self.nb_repeats)
            ):
                out.append((scenario, repeat, request))
        return out

    # ------------------------------------------------------------------
    def run(
        self,
        out_dir: str | Path,
        workers: int = 2,
        mode: str = "thread",
        store_dir: str | Path | None = None,
        timeout: float | None = None,
    ) -> "ExperimentResult":
        """Execute the sweep through a :class:`GAService` with a run store.

        ``store_dir`` defaults to ``<out_dir>/<name>/store`` so repeated
        runs of the same experiment hit the content-addressed cache; point
        it at a shared store to reuse results across experiments.
        Writes ``results.jsonl``/``summary.json``/``summary.md`` into the
        per-experiment directory and returns the in-memory result.
        """
        from repro.service.server import GAService

        exp_dir = Path(out_dir) / self.name
        exp_dir.mkdir(parents=True, exist_ok=True)
        store_path = Path(store_dir) if store_dir is not None else exp_dir / "store"

        jobs = self.jobs()
        t0 = time.perf_counter()
        with GAService(
            workers=workers, mode=mode, store_dir=store_path
        ) as service:
            results = service.run_all(
                [request for _, _, request in jobs], timeout=timeout
            )
        wall_s = time.perf_counter() - t0

        rows = [
            scenario_row(scenario, repeat, request, result)
            for (scenario, repeat, request), result in zip(jobs, results)
        ]
        experiment_result = ExperimentResult(
            experiment=self, rows=rows, wall_s=wall_s, out_dir=exp_dir
        )
        experiment_result.write()
        return experiment_result


def convergence_generation(result) -> int | None:
    """First generation whose best equals the final best (None: no trace)."""
    series = result.best_series()
    if not series:
        return None
    final = series[-1]
    for generation, best in enumerate(series):
        if best == final:
            return generation
    return None  # pragma: no cover - series always contains its last value


def scenario_row(scenario: Scenario, repeat: int, request, result) -> dict:
    """One results.jsonl row: identity, seed, store key, outcome."""
    return {
        "schema": RESULTS_SCHEMA_VERSION,
        "scenario": scenario.name,
        "repeat": repeat,
        "rng_seed": request.params.rng_seed,
        "substrate": request.substrate,
        "engine_mode": request.engine_mode,
        "n_islands": request.n_islands,
        "fitness_name": request.fitness_name,
        "store_key": result.store_key,
        "cache_hit": result.cache_hit,
        "best_fitness": result.best_fitness,
        "best_individual": result.best_individual,
        "evaluations": result.evaluations,
        "convergence_generation": convergence_generation(result),
        "latency_s": result.latency_s,
    }


@dataclass
class ExperimentResult:
    """Everything one :meth:`Experiment.run` produced."""

    experiment: Experiment
    rows: list[dict]
    wall_s: float
    out_dir: Path
    #: populated by :meth:`write`
    summary: dict = field(default_factory=dict)

    def by_scenario(self) -> dict[str, list[dict]]:
        grouped: dict[str, list[dict]] = {
            s.name: [] for s in self.experiment.scenarios
        }
        for row in self.rows:
            grouped[row["scenario"]].append(row)
        return grouped

    def build_summary(self) -> dict:
        """Per-scenario aggregates over the repeat axis."""
        scenarios = {}
        for name, rows in self.by_scenario().items():
            bests = [row["best_fitness"] for row in rows]
            convergences = [
                row["convergence_generation"]
                for row in rows
                if row["convergence_generation"] is not None
            ]
            scenarios[name] = {
                "repeats": len(rows),
                "seeds": [row["rng_seed"] for row in rows],
                "store_keys": [row["store_key"] for row in rows],
                "cache_hits": sum(1 for row in rows if row["cache_hit"]),
                "best_fitness": max(bests),
                "mean_best_fitness": sum(bests) / len(bests),
                "worst_best_fitness": min(bests),
                "mean_convergence_generation": (
                    sum(convergences) / len(convergences)
                    if convergences
                    else None
                ),
                "evaluations": sum(row["evaluations"] for row in rows),
            }
        return {
            "schema": RESULTS_SCHEMA_VERSION,
            "experiment": self.experiment.name,
            "description": self.experiment.description,
            "nb_repeats": self.experiment.nb_repeats,
            "wall_s": self.wall_s,
            "scenarios": scenarios,
        }

    def write(self) -> None:
        """Persist results.jsonl + summary.json + summary.md atomically-ish."""
        from repro.experiments.report import experiment_summary_md

        self.summary = self.build_summary()
        lines = "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in self.rows
        )
        (self.out_dir / "results.jsonl").write_text(lines)
        (self.out_dir / "summary.json").write_text(
            json.dumps(self.summary, indent=2, sort_keys=True) + "\n"
        )
        (self.out_dir / "summary.md").write_text(
            experiment_summary_md(self.summary)
        )


def load_summary(out_dir: str | Path, name: str) -> dict:
    """Read back a previously written experiment summary."""
    path = Path(out_dir) / name / "summary.json"
    return json.loads(path.read_text())
