"""Ablation: RNG-seed sensitivity (Elsner [23], Sec. II-C).

"In a particular instance, Elsner observed that the performance worsened by
five times by changing the RNG seed."  Sweep 32 seeds on the hard mBF7_2
function at a fixed configuration and measure the spread of the optimality
gap — the quantitative case for the core's programmable seed.  The whole
sweep is one :class:`BatchBehavioralGA` call (32 replicas, one per seed),
bit-identical to the per-seed loop it replaced.
"""

import pytest

from conftest import print_table
from repro.core.batch import BatchBehavioralGA
from repro.core.params import GAParameters
from repro.fitness import MBF7_2


@pytest.mark.benchmark(group="seed-sensitivity")
def test_seed_sensitivity(benchmark):
    fn = MBF7_2()
    optimum = int(fn.table().max())
    base = GAParameters(
        n_generations=32,
        population_size=32,
        crossover_threshold=10,
        mutation_threshold=1,
        rng_seed=1,
    )
    seeds = [((0x2961 + 2749 * k) & 0xFFFF) or 1 for k in range(32)]

    def sweep():
        batch = BatchBehavioralGA([base.with_(rng_seed=s) for s in seeds], fn)
        return {
            seed: optimum - result.best_fitness
            for seed, result in zip(seeds, batch.run())
        }

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ranked = sorted(gaps.items(), key=lambda kv: kv[1])
    rows = [
        {"": "best seed", "seed": f"{ranked[0][0]:04X}", "gap": ranked[0][1]},
        {"": "median seed", "seed": f"{ranked[16][0]:04X}", "gap": ranked[16][1]},
        {"": "worst seed", "seed": f"{ranked[-1][0]:04X}", "gap": ranked[-1][1]},
    ]
    print_table(f"Seed sensitivity on mBF7_2 (optimum {optimum}, 32 seeds)", rows)
    worst, best = ranked[-1][1], max(1, ranked[0][1])
    print(f"gap spread: worst/best = {worst / best:.1f}x "
          "(Elsner reports 5x swings; the programmable seed lets the user "
          "escape a bad draw without touching anything else)")

    # The Elsner-shape claim: at least a 5x spread in solution gap.
    assert worst >= 5 * best
