#!/usr/bin/env python3
"""Scan-chain testing of the gate-level GA core (Sec. III-C.2).

Plays automated test equipment against the flattened gate-level datapath:

1. flatten the GA-core datapath to NAND/NOR/AND/OR/XOR gates + registers;
2. insert the scan chain ("connecting all the registers in the design");
3. shift a test pattern in through ``scanin``, run one functional cycle,
   shift the response out through ``scanout`` — the classic launch-and-
   capture pattern an ASIC tester would use on the fabricated chip.
"""

from repro.analysis.resources import estimate_netlist
from repro.hdl import rtlib
from repro.hdl.flatten import flatten_ga_datapath, merge
from repro.hdl.netlist import Netlist
from repro.hdl.scan import Stepper, insert_scan_chain, scan_dump, scan_load


def ate_session_on_counter() -> None:
    """Small worked example: scan-test a 8-bit counter block."""
    dut = Netlist("counter_dut")
    merge(dut, rtlib.build_counter(8), "cnt")
    length = insert_scan_chain(dut)
    print(f"DUT: 8-bit counter, scan chain length {length}")

    stepper = Stepper(dut)
    pattern = [1, 0, 1, 0, 0, 1, 0, 0]  # load 0x25 = 37
    scan_load(stepper, pattern, **{"cnt.en": 0, "cnt.clear": 0})
    print(f"loaded via scanin : {pattern} (counter = 37)")

    # launch: one functional clock with test low
    out = stepper.step(test=0, **{"cnt.en": 1, "cnt.clear": 0})
    print(f"functional cycle  : q = {out['cnt.q']} (expect 37, then +1 latched)")

    # capture: shift the state back out
    response = scan_dump(stepper, **{"cnt.en": 0, "cnt.clear": 0})
    value = sum(b << i for i, b in enumerate(response))
    print(f"dumped via scanout: {response} (counter = {value}, expect 38)")
    assert value == 38, "scan capture mismatch"
    print("scan test PASSED\n")


def full_core_chain() -> None:
    """Insert the chain into the full flattened GA datapath."""
    core = flatten_ga_datapath()
    stats = core.stats()
    length = insert_scan_chain(core)
    report = estimate_netlist(core)
    print("full GA-core datapath:")
    print(f"  gates: {stats['gates']}, registers: {stats['dff']}")
    print(f"  scan chain length: {length} (all registers threaded)")
    print(f"  estimated: {report.luts} LUTs, Fmax {report.max_frequency_mhz:.1f} MHz")

    stepper = Stepper(core)
    held = {name: 0 for name in core.inputs if name not in ("test", "scanin")}
    image = [(i * 7) % 2 for i in range(length)]
    scan_load(stepper, image, **held)
    assert stepper.peek_flops() == image
    print(f"  shifted a {length}-bit pattern in; register image verified")
    dumped = scan_dump(stepper, **held)
    assert dumped == image
    print("  shifted it back out; round-trip PASSED")


if __name__ == "__main__":
    ate_session_on_counter()
    full_core_chain()
