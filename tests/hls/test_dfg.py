"""Tests for DFG construction and reference evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hls.dfg import DFG, OpType

u16 = st.integers(0, 0xFFFF)


def linear_dfg():
    d = DFG("lin")
    x = d.input("x")
    y = d.input("y")
    d.output("f", d.sub(d.add(d.add(x, x), d.const(100)), y))
    return d


class TestBuilder:
    def test_duplicate_input_rejected(self):
        d = DFG("t")
        d.input("x")
        with pytest.raises(ValueError):
            d.input("x")

    def test_duplicate_output_rejected(self):
        d = DFG("t")
        x = d.input("x")
        d.output("f", x)
        with pytest.raises(ValueError):
            d.output("f", x)

    def test_forward_reference_rejected(self):
        d = DFG("t")
        with pytest.raises(ValueError):
            d.add(0, 1)

    def test_arity_enforced(self):
        d = DFG("t")
        x = d.input("x")
        with pytest.raises(ValueError):
            d._add(OpType.ADD, (x,))

    def test_const_masked(self):
        d = DFG("t")
        c = d.const(0x12345)
        assert d.ops[c].value == 0x2345

    def test_cmp_width_is_one(self):
        d = DFG("t")
        x, y = d.input("x"), d.input("y")
        assert d.ops[d.lt(x, y)].width == 1
        assert d.ops[d.eq(x, y)].width == 1


class TestEvaluate:
    @given(u16, u16)
    def test_linear(self, x, y):
        d = linear_dfg()
        assert d.evaluate({"x": x, "y": y})["f"] == (2 * x + 100 - y) & 0xFFFF

    @given(u16, u16)
    def test_bitwise(self, x, y):
        d = DFG("bw")
        a, b = d.input("a"), d.input("b")
        d.output("and", d.and_(a, b))
        d.output("or", d.or_(a, b))
        d.output("xor", d.xor(a, b))
        d.output("not", d.not_(a))
        out = d.evaluate({"a": x, "b": y})
        assert out == {
            "and": x & y,
            "or": x | y,
            "xor": x ^ y,
            "not": ~x & 0xFFFF,
        }

    @given(u16, u16)
    def test_mux_and_compare(self, x, y):
        d = DFG("mc")
        a, b = d.input("a"), d.input("b")
        sel = d.lt(a, b)
        d.output("min", d.mux(sel, b, a))  # sel ? a : b
        out = d.evaluate({"a": x, "b": y})
        assert out["min"] == min(x, y)

    def test_missing_input_defaults_zero(self):
        d = linear_dfg()
        assert d.evaluate({"x": 5})["f"] == 110

    def test_consumers(self):
        d = DFG("c")
        x = d.input("x")
        s = d.add(x, x)
        d.output("f", s)
        assert [op.index for op in d.consumers(x)] == [s]
