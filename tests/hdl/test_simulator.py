"""Unit tests for the two-phase simulation kernel and clock domains."""

import pytest

from repro.hdl.component import Component
from repro.hdl.register import Counter, Register
from repro.hdl.signal import Signal
from repro.hdl.simulator import SimulationTimeout, Simulator


class Inverter(Component):
    """Registered inverter used to observe Moore (1-cycle) latency."""

    def __init__(self, name, a, y):
        super().__init__(name)
        self.a, self.y = a, y

    def clock(self):
        self.drive(self.y, ~self.a.value)


class TestTwoPhaseSemantics:
    def test_moore_latency_one_cycle(self):
        a, y = Signal("a", 4), Signal("y", 4)
        sim = Simulator()
        sim.add(Inverter("inv", a, y))
        a.poke(0b0101)
        assert y.value == 0
        sim.step()
        assert y.value == 0b1010

    def test_chain_propagates_one_stage_per_cycle(self):
        a, b, c = Signal("a", 4), Signal("b", 4), Signal("c", 4)
        sim = Simulator()
        sim.add(Inverter("i1", a, b))
        sim.add(Inverter("i2", b, c))
        a.poke(0xF)
        sim.step()
        assert b.value == 0x0 and c.value == 0xF  # c saw old b
        sim.step()
        assert c.value == 0xF  # ~0 == 0xF

    def test_all_components_see_pre_edge_values(self):
        # Two cross-coupled registered inverters settle into oscillation,
        # proving neither sees the other's same-cycle update.
        a, b = Signal("a", 1, init=0), Signal("b", 1, init=0)
        sim = Simulator()
        sim.add(Inverter("i1", a, b))
        sim.add(Inverter("i2", b, a))
        sim.step()
        assert (a.value, b.value) == (1, 1)
        sim.step()
        assert (a.value, b.value) == (0, 0)


class TestClockDomains:
    def test_divided_component_clocks_less_often(self):
        qfast, qslow = Signal("qf", 16), Signal("qs", 16)
        sim = Simulator()
        sim.add(Counter("fast", qfast))
        sim.add(Counter("slow", qslow), divider=4)
        sim.step(16)
        assert qfast.value == 16
        assert qslow.value == 4

    def test_phase_offsets(self):
        q = Signal("q", 16)
        sim = Simulator()
        sim.add(Counter("c", q), divider=2, phase=1)
        sim.step(1)
        assert q.value == 0  # tick 0 is not phase 1
        sim.step(1)
        assert q.value == 1

    def test_bad_divider_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.add(Counter("c", Signal("q", 8)), divider=0)
        with pytest.raises(ValueError):
            sim.add(Counter("c", Signal("q", 8)), divider=2, phase=2)


class TestRunUntil:
    def test_run_until_returns_tick_count(self):
        q = Signal("q", 8)
        sim = Simulator()
        sim.add(Counter("c", q))
        n = sim.run_until(lambda: q.value == 10)
        assert n == 10

    def test_timeout_raises(self):
        sim = Simulator()
        sim.add(Counter("c", Signal("q", 8)))
        with pytest.raises(SimulationTimeout):
            sim.run_until(lambda: False, max_ticks=50)

    def test_wait_high_low(self):
        q = Signal("q", 1)
        toggler = Counter("c", Signal("cnt", 4))

        class Toggle(Component):
            def __init__(self):
                super().__init__("t")
                self.n = 0

            def clock(self):
                self.set_state(n=self.n + 1)
                self.drive(q, 1 if (self.n + 1) >= 3 else 0)

        sim = Simulator()
        sim.add(Toggle())
        assert sim.wait_high(q) == 3

    def test_reset_restores_components_and_time(self):
        q = Signal("q", 8)
        sim = Simulator()
        sim.add(Counter("c", q))
        sim.step(5)
        sim.reset()
        assert sim.time == 0
        assert q.value == 0


class TestRegister:
    def test_register_loads_on_enable(self):
        d, q, en = Signal("d", 8), Signal("q", 8), Signal("en", 1)
        sim = Simulator()
        sim.add(Register("r", d, q, en))
        d.poke(0x5A)
        sim.step()
        assert q.value == 0  # enable low
        en.poke(1)
        sim.step()
        assert q.value == 0x5A

    def test_register_width_mismatch(self):
        with pytest.raises(ValueError):
            Register("r", Signal("d", 8), Signal("q", 4))

    def test_counter_clear_beats_enable(self):
        q, en, clr = Signal("q", 8), Signal("en", 1, init=1), Signal("clr", 1)
        sim = Simulator()
        sim.add(Counter("c", q, en, clr))
        sim.step(3)
        assert q.value == 3
        clr.poke(1)
        sim.step()
        assert q.value == 0

    def test_counter_wraps_at_width(self):
        q = Signal("q", 2)
        sim = Simulator()
        sim.add(Counter("c", q))
        sim.step(5)
        assert q.value == 1  # 5 mod 4

    def test_probe_sees_post_commit_values(self):
        q = Signal("q", 8)
        sim = Simulator()
        sim.add(Counter("c", q))
        seen = []
        sim.probe(lambda t: seen.append((t, q.value)))
        sim.step(3)
        assert seen == [(1, 1), (2, 2), (3, 3)]
