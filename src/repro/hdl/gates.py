"""Gate-level primitives.

The paper's flattening flow emits netlists over "simple Boolean gates such as
NAND, NOR, AND, OR, XOR, and SCAN_REGISTER" (Sec. III-A).  This module
defines exactly that alphabet (plus NOT/BUF/XNOR and constants, which any
real cell library also provides) together with the flip-flop record used by
:class:`repro.hdl.netlist.Netlist`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class GateType(enum.Enum):
    """Combinational cell types available to the flattened netlists."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"
    CONST0 = "const0"
    CONST1 = "const1"


#: Evaluation functions, input-count agnostic where the cell is associative.
_EVAL = {
    GateType.AND: lambda ins: int(all(ins)),
    GateType.OR: lambda ins: int(any(ins)),
    GateType.NAND: lambda ins: int(not all(ins)),
    GateType.NOR: lambda ins: int(not any(ins)),
    GateType.XOR: lambda ins: sum(ins) & 1,
    GateType.XNOR: lambda ins: (sum(ins) + 1) & 1,
    GateType.NOT: lambda ins: 1 - ins[0],
    GateType.BUF: lambda ins: ins[0],
    GateType.CONST0: lambda ins: 0,
    GateType.CONST1: lambda ins: 1,
}

#: Maximum fan-in accepted per cell type (two-input cells, mirroring the
#: simple std-cell library of the paper's ASIC flow).
_MAX_FANIN = {
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
}


@dataclass(frozen=True)
class Gate:
    """One combinational cell instance: ``out = type(*inputs)``."""

    type: GateType
    inputs: tuple[int, ...]
    output: int

    def __post_init__(self) -> None:
        limit = _MAX_FANIN[self.type]
        if len(self.inputs) != limit:
            raise ValueError(
                f"{self.type.value} gate takes {limit} inputs, got {len(self.inputs)}"
            )

    def evaluate(self, values: list[int]) -> int:
        """Compute the output value given a net-value table."""
        return _EVAL[self.type]([values[i] for i in self.inputs])


@dataclass
class DFF:
    """A D flip-flop (SCAN_REGISTER once a scan chain has been inserted).

    ``scan_index`` orders the flop inside the scan chain; -1 means the
    netlist has no chain or the flop is excluded from it.
    """

    d: int
    q: int
    init: int = 0
    name: str = ""
    scan_index: int = field(default=-1)
