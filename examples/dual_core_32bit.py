#!/usr/bin/env python3
"""32-bit optimization with two 16-bit GA cores (Fig. 6, Sec. III-D).

Composes two core instances — their own RNGs, forced-shared parent
selection via the scalingLogic_parSel trick, independent per-half crossover
and mutation — into a 32-bit optimizer, and demonstrates the paper's
probability-composition guidance.
"""

from repro import GAParameters
from repro.core.scaling import (
    DualCoreGA32,
    compose_rate,
    onemax32,
    plateau32,
    split_rate,
)


def main() -> None:
    params = GAParameters(
        n_generations=48,
        population_size=32,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=45890,
    )

    print("== 32-bit OneMax via two 16-bit cores ==")
    result = DualCoreGA32(params, onemax32).run()
    optimum = onemax32(0xFFFFFFFF)
    print(f"best: {result.best_individual:08X} "
          f"fitness {result.best_fitness}/{optimum} "
          f"({result.best_individual.bit_count()}/32 bits set)")
    print(f"evaluations: {result.evaluations}")

    print("\n== probability composition (the Fig. 6 equations) ==")
    p16 = params.crossover_rate
    print(f"per-core crossover rate      : {p16:.4f} (threshold 10)")
    print(f"composite 32-bit rate        : {compose_rate(p16, p16):.4f} "
          "(xovProb32 = p1 + p2 - p1*p2)")
    compensated = split_rate(p16)
    print(f"compensated per-core rate    : {compensated:.4f} "
          f"-> threshold {round(16 * compensated)} "
          "(program this to keep the intended 0.625)")

    print("\n== effective 3-point crossover on a structured objective ==")
    for label, thr in (("naive thresholds (eff. rate 0.86)", 10),
                       ("compensated thresholds (eff. rate 0.63)",
                        round(16 * compensated))):
        ga = DualCoreGA32(params.with_(crossover_threshold=thr), plateau32)
        res = ga.run()
        print(f"{label:<42}: best {res.best_fitness:>6} "
              f"({res.best_individual:08X} vs target DEADBEEF)")
    print("\nLower per-core rates limit the disruption of the composite")
    print("3-point crossover, as Sec. III-D recommends.")


if __name__ == "__main__":
    main()
