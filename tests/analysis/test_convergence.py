"""Tests for the convergence metrics."""

import pytest

from repro.analysis.convergence import (
    convergence_generation,
    evaluations_to_best,
    first_hit_generation,
    fraction_of_space,
)
from repro.core.stats import GenerationStats


def make_history(avgs, bests, pop=32):
    return [
        GenerationStats(
            generation=i,
            best_fitness=b,
            best_individual=0,
            fitness_sum=int(a * pop),
            population_size=pop,
        )
        for i, (a, b) in enumerate(zip(avgs, bests))
    ]


class TestConvergenceGeneration:
    def test_five_percent_rule(self):
        # averages: 100 -> 150 -> 153 (2% step): converged at gen 1
        hist = make_history([100, 150, 153], [1, 2, 3])
        assert convergence_generation(hist) == 1

    def test_never_converges_returns_last(self):
        hist = make_history([100, 200, 400, 800], [1, 2, 3, 4])
        assert convergence_generation(hist) == 3

    def test_custom_threshold(self):
        hist = make_history([100, 109, 120], [1, 2, 3])
        # one-step reading: the first quiet step is gen 0 at 10% threshold
        assert convergence_generation(hist, threshold=0.10, sustained=False) == 0
        # sustained reading: the 109 -> 120 step (10.09%) breaks it
        assert convergence_generation(hist, threshold=0.10) == 2
        assert convergence_generation(hist, threshold=0.05) == 2

    def test_sustained_ignores_early_quiet_step(self):
        # a single flat step mid-climb does not count as convergence
        hist = make_history([100, 101, 150, 152, 153], [1] * 5)
        assert convergence_generation(hist, sustained=False) == 0
        assert convergence_generation(hist) == 2

    def test_zero_average_skipped(self):
        hist = make_history([0, 0, 50, 51], [1, 1, 1, 1])
        assert convergence_generation(hist) == 2

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            convergence_generation([])


class TestFirstHit:
    def test_hit_in_middle(self):
        hist = make_history([1, 1, 1, 1], [10, 50, 90, 90])
        assert first_hit_generation(hist) == 2

    def test_hit_in_initial_population(self):
        hist = make_history([1, 1], [90, 90])
        assert first_hit_generation(hist) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            first_hit_generation([])


class TestEvaluationArithmetic:
    def test_paper_formula(self):
        # Fig. 13: best found by generation 10 with pop 64 ->
        # (10 + 1) * 64 = 704 candidates evaluated.
        hist = make_history([1] * 21, [5] * 10 + [9] * 11, pop=64)
        assert first_hit_generation(hist) == 10
        assert evaluations_to_best(hist) == 704

    def test_fraction_of_space(self):
        # 704 / 65536 = 1.07% (< 1.1%, the paper's claim).
        hist = make_history([1] * 21, [5] * 10 + [9] * 11, pop=64)
        assert fraction_of_space(hist) == pytest.approx(704 / 65536)
        assert fraction_of_space(hist) < 0.011


class TestOnRealRuns:
    def test_mbf6_finds_best_quickly(self):
        # The headline Sec. IV-B claim on our reproduction: best found
        # within a small fraction of the solution space.
        from repro.core.behavioral import BehavioralGA
        from repro.core.params import GAParameters
        from repro.fitness import MBF6_2

        result = BehavioralGA(
            GAParameters(64, 64, 10, 1, 0x061F), MBF6_2()
        ).run()
        assert fraction_of_space(result.history) < 0.10
        assert convergence_generation(result.history) <= 64
