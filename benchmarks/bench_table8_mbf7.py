"""Table VIII — mBF7_2 best fitness across the 6-seed x 4-setting grid.

The 24 cells run as one batched sweep (``run_fpga_table`` fans them into
two :class:`BatchBehavioralGA` calls, one per population size)."""

import pytest

from conftest import print_table
from repro.experiments.table789 import run_fpga_table


@pytest.mark.benchmark(group="table8")
def test_table8_mbf7_grid(benchmark):
    report = benchmark.pedantic(
        run_fpga_table, args=("mBF7_2",), rounds=1, iterations=1
    )
    keys = ["seed", "pop32/XR10", "pop32/XR12", "pop64/XR10", "pop64/XR12",
            "paper_pop64/XR12"]
    print_table(f"Table VIII (mBF7_2, optimum {report['optimum']})",
                report["rows"], keys)
    print(f"best overall: {report['best_overall']}, gap {report['gap_pct']}%")

    # Paper claim: best solution within ~3.7% of the global optimum.
    assert report["gap_pct"] <= 3.7
