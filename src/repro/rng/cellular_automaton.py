"""Cellular-automaton PRNG — the GA core's random number generator.

The paper uses "a 16-bit cellular automaton-based PRNG, similar to the
implementation in [5]" (Scott et al.), i.e. a null-boundary one-dimensional
CA where each cell follows rule 90 (``left XOR right``) or rule 150
(``left XOR self XOR right``).  The rule assignment is fixed per cell by a
*rule vector*; a well-chosen hybrid vector gives the maximal period of
``2**16 - 1`` non-zero states.

The paper does not publish its rule vector, so this reproduction uses
``0x6C04``, found by exhaustive period search and locked down by a unit test
(``tests/rng/test_cellular_automaton.py::test_default_rule_is_maximal``).

The full orbit of the CA is precomputed lazily (65,535 ``uint16`` values,
128 KiB) which makes block draws O(1) numpy slices — the vectorised fast
path the behavioural GA model rides on — while staying bit-identical to the
cycle-accurate stepped hardware model.
"""

from __future__ import annotations

import numpy as np

from repro.rng.base import RandomSource

#: Verified maximal-length hybrid 90/150 rule vector (bit i set = rule 150).
DEFAULT_RULE_VECTOR = 0x6C04

#: The three in-built seeds selectable via the preset mechanism
#: (Sec. II-C: "three in-built seeds to select from").  These are the three
#: seeds the paper's RT-level experiments use (Table V).
PRESET_SEEDS: tuple[int, int, int] = (45890, 10593, 1567)


def ca_step(state: int, rule_vector: int = DEFAULT_RULE_VECTOR, width: int = 16) -> int:
    """One synchronous update of the null-boundary hybrid 90/150 CA.

    Bit ``i`` of the next state is ``state[i+1] XOR state[i-1]``, additionally
    XOR ``state[i]`` where the rule vector selects rule 150.  Out-of-range
    neighbours read as 0 (null boundary).
    """
    mask = (1 << width) - 1
    left = state >> 1
    right = (state << 1) & mask
    return (left ^ right ^ (state & rule_vector)) & mask


def ca_step_array(
    states: np.ndarray, rule_vector: int = DEFAULT_RULE_VECTOR, width: int = 16
) -> np.ndarray:
    """Word-parallel CA advance: one synchronous update of *every* state.

    Rule 90/150 is pure XOR/shift arithmetic, so a whole array of replica
    streams steps in three vectorised bit operations — the kernel the turbo
    engine's pre-drawn word blocks ultimately rest on.  Element ``i`` of the
    result equals ``ca_step(states[i], rule_vector, width)`` exactly
    (property-tested against the scalar step and the orbit tables).
    """
    states = np.asarray(states, dtype=np.int64)
    mask = np.int64((1 << width) - 1)
    left = states >> 1
    right = (states << 1) & mask
    return (left ^ right ^ (states & np.int64(rule_vector))) & mask


def ca_period(rule_vector: int, width: int = 16, limit: int | None = None) -> int:
    """Cycle length of the orbit containing state 1 (== ``2**width - 1`` for
    a maximal-length rule vector).  Returns -1 if no cycle is found within
    ``limit`` steps."""
    limit = limit if limit is not None else (1 << width) + 1
    start = 1
    state = ca_step(start, rule_vector, width)
    steps = 1
    while state != start:
        state = ca_step(state, rule_vector, width)
        steps += 1
        if steps > limit:
            return -1
    return steps


_ORBIT_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _orbit(rule_vector: int, width: int) -> tuple[np.ndarray, np.ndarray]:
    """(orbit, position) tables for a maximal-length rule vector.

    ``orbit[k]`` is the state after ``k`` steps from state 1;
    ``position[s]`` is the index of state ``s`` in the orbit (0 for unused
    state 0, which never occurs for valid seeds).
    """
    key = (rule_vector, width)
    cached = _ORBIT_CACHE.get(key)
    if cached is not None:
        return cached
    size = (1 << width) - 1
    orbit = np.empty(size, dtype=np.uint32)
    state = 1
    for k in range(size):
        orbit[k] = state
        state = ca_step(state, rule_vector, width)
    if state != 1:
        raise ValueError(
            f"rule vector {rule_vector:#x} is not maximal-length for width {width}"
        )
    position = np.zeros(1 << width, dtype=np.uint32)
    position[orbit] = np.arange(size, dtype=np.uint32)
    cached = (orbit.astype(np.uint16), position)
    _ORBIT_CACHE[key] = cached
    return cached


_WRAPPED_CACHE: dict[tuple[int, int], np.ndarray] = {}


def _wrapped_orbit(rule_vector: int, width: int) -> np.ndarray:
    """The orbit table doubled back-to-back, so any window starting below
    ``size`` with offsets below ``size`` can be gathered without a modulo.
    """
    key = (rule_vector, width)
    cached = _WRAPPED_CACHE.get(key)
    if cached is None:
        orbit, _ = _orbit(rule_vector, width)
        cached = np.concatenate([orbit, orbit])
        _WRAPPED_CACHE[key] = cached
    return cached


def orbit_tables(
    rule_vector: int = DEFAULT_RULE_VECTOR, width: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Public accessor for the precomputed ``(orbit, position)`` tables.

    ``orbit[k]`` is the CA state after ``k`` steps from state 1 and
    ``position[s]`` inverts it (``orbit[position[s]] == s`` for every
    non-zero state ``s``).  Both tables are cached per ``(rule_vector,
    width)``; callers must treat them as read-only.
    """
    return _orbit(rule_vector, width)


class CAStreamBank:
    """``N`` independent CA-PRNG streams advanced by orbit-index slicing.

    The vectorised multi-stream twin of :class:`CellularAutomatonPRNG`:
    every stream is just a position on the shared precomputed orbit, so a
    draw across all streams is one numpy gather and an advance is one add.
    Stream ``i`` is draw-for-draw identical to
    ``CellularAutomatonPRNG(seeds[i], spacing=spacing)`` — including
    *conditional* consumption: :meth:`draw` takes a boolean mask selecting
    which streams actually advance, mirroring serial code where only some
    replicas take an RNG-consuming branch.  This is what lets
    :class:`repro.core.batch.BatchBehavioralGA` stay bit-identical to N
    separate serial runs.
    """

    def __init__(
        self,
        seeds,
        rule_vector: int = DEFAULT_RULE_VECTOR,
        width: int = 16,
        spacing: int = 1,
    ):
        if spacing < 1:
            raise ValueError("spacing must be >= 1")
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.ndim != 1 or seeds.size == 0:
            raise ValueError("seeds must be a non-empty 1-D sequence")
        if np.any((seeds <= 0) | (seeds >= (1 << width))):
            raise ValueError(
                f"every seed must be in [1, {(1 << width) - 1}]"
            )
        self.rule_vector = rule_vector
        self.width = width
        self.spacing = spacing
        orbit, position = _orbit(rule_vector, width)
        self._orbit = orbit
        self._size = orbit.shape[0]
        self._wrapped = _wrapped_orbit(rule_vector, width)
        #: Orbit index of each stream's current state.
        self.pos = position[seeds].astype(np.int64)
        #: Words consumed per stream (matches ``RandomSource.draws``).
        self.draws = np.zeros(seeds.size, dtype=np.int64)

    def __len__(self) -> int:
        return self.pos.size

    @property
    def states(self) -> np.ndarray:
        """Current state (= next word to be emitted) of every stream."""
        return self._orbit[self.pos].astype(np.int64)

    def draw(self, advance: np.ndarray | None = None) -> np.ndarray:
        """Return the current word of every stream as ``int64``.

        Streams selected by the boolean mask ``advance`` (all streams when
        ``None``) step to their next state; the others are *peeked* — they
        did not consume a word, exactly like serial replicas that skip an
        RNG-consuming branch.
        """
        out = self._orbit[self.pos].astype(np.int64)
        if advance is None:
            self.pos += self.spacing
            self.pos %= self._size
            self.draws += 1
        else:
            adv = np.asarray(advance, dtype=bool)
            self.pos += self.spacing * adv
            self.pos %= self._size
            self.draws += adv
        return out

    def block2d(self, n: int) -> np.ndarray:
        """The next ``n`` words of every stream as an ``(N, n)`` array.

        Row ``i`` equals what ``CellularAutomatonPRNG.block(n)`` would
        return for stream ``i``; all streams advance by ``n`` draws.
        """
        steps = self.spacing * np.arange(n, dtype=np.int64)
        if n and int(steps[-1]) < self._size:
            # pos < size and offsets < size: index the doubled orbit
            # directly, skipping the (N, n) modulo pass
            out = self._wrapped[self.pos[:, None] + steps[None, :]]
        else:
            idx = (self.pos[:, None] + steps[None, :]) % self._size
            out = self._orbit[idx]
        self.pos = (self.pos + self.spacing * n) % self._size
        self.draws += n
        return out

    def draw_ragged(self, counts: np.ndarray) -> np.ndarray:
        """Per-stream variable-length draw: stream ``i`` consumes exactly
        ``counts[i]`` words.

        Returns a ``(N, counts.max())`` array whose row ``i`` holds the
        stream's next ``counts[i]`` words in columns ``0..counts[i]-1``
        (later columns are meaningless peeks past the consumed range and
        must be masked by the caller).  This is the word-parallel form of
        serial replicas taking an RNG-consuming branch a different number
        of times — the turbo engine's binomial-sampled mutation draws its
        ``k`` event words per replica this way — and, like :meth:`draw`
        with a mask, keeps every stream's consumption independent of its
        batch-mates.
        """
        counts = np.asarray(counts, dtype=np.int64)
        width = int(counts.max()) if counts.size else 0
        if width == 0:
            return np.empty((self.pos.size, 0), dtype=self._orbit.dtype)
        steps = self.spacing * np.arange(width, dtype=np.int64)
        if int(steps[-1]) < self._size:
            out = self._wrapped[self.pos[:, None] + steps[None, :]]
        else:
            idx = (self.pos[:, None] + steps[None, :]) % self._size
            out = self._orbit[idx]
        self.pos = (self.pos + self.spacing * counts) % self._size
        self.draws += counts
        return out


class CellularAutomatonPRNG(RandomSource):
    """The GA core's RNG module, software twin.

    ``next_word()`` models the core reading the RNG output register (the
    module advances after each read); ``block(n)`` produces the same stream
    via precomputed-orbit slicing for the vectorised behavioural model.
    """

    def __init__(
        self,
        seed: int,
        rule_vector: int = DEFAULT_RULE_VECTOR,
        width: int = 16,
        precompute: bool = True,
        spacing: int = 1,
    ):
        """``spacing`` is the number of CA steps per emitted word (time
        spacing).  Raw successive CA states are serially correlated because
        the update is local; spacing >= 2 decorrelates the stream, modelling
        a hardware RNG that free-runs between core reads."""
        if spacing < 1:
            raise ValueError("spacing must be >= 1")
        self.width = width
        self.rule_vector = rule_vector
        self.spacing = spacing
        super().__init__(seed)
        self._tables: tuple[np.ndarray, np.ndarray] | None = None
        if precompute:
            self._tables = _orbit(rule_vector, width)

    def _advance(self, state: int) -> int:
        for _ in range(self.spacing):
            state = ca_step(state, self.rule_vector, self.width)
        return state

    def block(self, n: int) -> np.ndarray:
        if self._tables is None:
            return super().block(n)
        orbit, position = self._tables
        size = orbit.shape[0]
        start = int(position[self.state])
        idx = (start + self.spacing * np.arange(n, dtype=np.int64)) % size
        out = orbit[idx]
        self.state = int(orbit[(start + self.spacing * n) % size])
        self.draws += n
        return out

    def orbit_position(self) -> int:
        """Index of the current state on the precomputed orbit.

        Two generators are at the same point of their stream iff their
        orbit positions are equal; the batch engine uses this to resume a
        vectorised multi-stream run from serial generator states.
        """
        _orbit_tab, position = orbit_tables(self.rule_vector, self.width)
        return int(position[self.state])

    def stream_bank(self) -> CAStreamBank:
        """A single-stream :class:`CAStreamBank` positioned at this
        generator's current state (continues the same word sequence)."""
        return CAStreamBank(
            [self.state],
            rule_vector=self.rule_vector,
            width=self.width,
            spacing=self.spacing,
        )

    @classmethod
    def block2d(
        cls,
        seeds,
        n: int,
        rule_vector: int = DEFAULT_RULE_VECTOR,
        width: int = 16,
        spacing: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-shot vectorised multi-stream draw.

        Returns ``(words, end_states)`` where ``words[i]`` is bit-identical
        to ``CellularAutomatonPRNG(seeds[i], spacing=spacing).block(n)`` and
        ``end_states[i]`` is that generator's state afterwards.
        """
        bank = CAStreamBank(
            seeds, rule_vector=rule_vector, width=width, spacing=spacing
        )
        words = bank.block2d(n)
        return words, bank.states

    @classmethod
    def from_preset(cls, index: int, **kwargs) -> "CellularAutomatonPRNG":
        """Construct from one of the three in-built preset seeds."""
        if not 0 <= index < len(PRESET_SEEDS):
            raise ValueError(f"preset seed index must be 0..2, got {index}")
        return cls(PRESET_SEEDS[index], **kwargs)
