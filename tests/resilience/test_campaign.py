"""Campaign runner: determinism, report shape, and the headline
hardened-vs-unprotected regression on the MEDIUM preset."""

import pytest

from repro.core.params import GAParameters, PRESET_MODES, PresetMode
from repro.fitness import MBF6_2
from repro.resilience import (
    PROTECTION_PRESETS,
    REPORT_COLUMNS,
    ResilienceCampaign,
    report_rows,
    run_campaign,
)

SMALL = GAParameters(
    n_generations=16,
    population_size=16,
    crossover_threshold=10,
    mutation_threshold=1,
    rng_seed=0x2961,
)


def small_campaign(**overrides):
    kwargs = dict(
        params=SMALL,
        fitness=MBF6_2(),
        rates=(0.0, 1e-3),
        configs=("unprotected", "hardened"),
        n_replicas=3,
        seed=2026,
    )
    kwargs.update(overrides)
    return ResilienceCampaign(**kwargs)


class TestDeterminism:
    def test_same_seed_reproduces_report_verbatim(self):
        assert small_campaign().run() == small_campaign().run()

    def test_different_seed_changes_upsets(self):
        a = small_campaign(seed=1).run()
        b = small_campaign(seed=2).run()
        cell_a = next(c for c in a["cells"] if c["rate"] > 0)
        cell_b = next(c for c in b["cells"] if c["rate"] > 0)
        assert cell_a["injected"] != cell_b["injected"]

    def test_report_is_json_serialisable(self):
        import json

        json.dumps(small_campaign().run())


class TestReportShape:
    def test_zero_rate_cells_are_perfect(self):
        report = small_campaign().run()
        for cell in report["cells"]:
            if cell["rate"] == 0.0:
                assert cell["recovery_rate"] == 1.0
                assert cell["sdc_rate"] == 0.0
                assert cell["hang_rate"] == 0.0
                assert cell["degradation_pct"] == 0.0
                assert all(v == 0 for v in cell["injected"].values())

    def test_cell_grid_covers_both_axes(self):
        report = small_campaign().run()
        assert len(report["cells"]) == 4
        assert {c["config"] for c in report["cells"]} == {"unprotected", "hardened"}
        assert report["baseline_best"] > 0
        assert report["fitness"] == "mBF6_2"

    def test_report_rows_columns(self):
        rows = report_rows(small_campaign().run())
        assert len(rows) == 4
        assert all(tuple(r.keys()) == REPORT_COLUMNS for r in rows)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown protection preset"):
            small_campaign(configs=("radiation-proof",)).run()


class TestMediumPresetRegression:
    """The acceptance-criteria regression: on the MEDIUM preset at a
    nonzero upset rate, the fully hardened config demonstrably beats the
    unprotected one on recovery rate and final-best degradation."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_campaign(
            PRESET_MODES[PresetMode.MEDIUM],
            MBF6_2(),
            rates=(2e-4,),
            configs=("unprotected", "hardened"),
            n_replicas=6,
            seed=2026,
        )

    def cell(self, report, config):
        return next(c for c in report["cells"] if c["config"] == config)

    def test_hardened_beats_unprotected(self, report):
        unprotected = self.cell(report, "unprotected")
        hardened = self.cell(report, "hardened")
        assert hardened["recovery_rate"] > unprotected["recovery_rate"]
        assert hardened["degradation_pct"] < unprotected["degradation_pct"]
        assert hardened["hang_rate"] < unprotected["hang_rate"]

    def test_defences_actually_fired(self, report):
        hardened = self.cell(report, "hardened")
        assert hardened["corrected"] > 0  # SECDED earned its keep
        assert hardened["watchdog_retries"] > 0  # and so did the watchdog

    def test_unprotected_actually_suffered(self, report):
        unprotected = self.cell(report, "unprotected")
        assert unprotected["hang_rate"] > 0.5
        assert unprotected["corrected"] == 0


@pytest.mark.slow
class TestFullSweep:
    """The full rate x preset sweep (deselected from tier-1 by the
    ``slow`` marker; run with ``pytest -m slow``)."""

    def test_every_preset_across_rates(self):
        report = run_campaign(
            PRESET_MODES[PresetMode.MEDIUM],
            MBF6_2(),
            rates=(0.0, 1e-4, 5e-4),
            configs=tuple(sorted(PROTECTION_PRESETS)),
            n_replicas=8,
            seed=2026,
        )
        assert len(report["cells"]) == 3 * len(PROTECTION_PRESETS)
        by = {(c["config"], c["rate"]): c for c in report["cells"]}
        for config in PROTECTION_PRESETS:
            assert by[(config, 0.0)]["recovery_rate"] == 1.0
        for rate in (1e-4, 5e-4):
            assert (
                by[("hardened", rate)]["recovery_rate"]
                >= by[("unprotected", rate)]["recovery_rate"]
            )
            assert (
                by[("hardened", rate)]["hang_rate"]
                <= by[("unprotected", rate)]["hang_rate"]
            )
