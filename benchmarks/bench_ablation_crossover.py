"""Ablation: crossover operators (1-point vs. 4-point vs. uniform).

The proposed core fixes 1-point crossover; Tang & Yip's machine [9] offered
1-point, 4-point, and uniform.  This bench quantifies what the design
choice costs across the paper's test functions at equal budgets — and shows
the core's 1-point choice is competitive (the paper's implicit argument for
keeping the cheap operator).
"""

import statistics

import pytest

from conftest import print_table
from repro.baselines import CROSSOVER_OPERATORS, TangYipGA
from repro.fitness import BF6, MBF6_2, MShubert2D
from repro.rng.cellular_automaton import CellularAutomatonPRNG

SEEDS = [45890, 10593, 1567, 0x2961, 0x061F]
FUNCTIONS = [BF6(), MBF6_2(), MShubert2D()]


@pytest.mark.benchmark(group="ablation-crossover")
def test_crossover_operator_comparison(benchmark):
    def sweep():
        rows = []
        for fn in FUNCTIONS:
            row = {"function": fn.name, "optimum": int(fn.table().max())}
            for op in CROSSOVER_OPERATORS:
                bests = []
                for seed in SEEDS:
                    engine = TangYipGA(
                        rng=CellularAutomatonPRNG(seed), operator=op
                    )
                    bests.append(engine.run(fn, 2048).best_fitness)
                row[op] = round(statistics.mean(bests))
            rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("Crossover-operator ablation (mean best of 5 seeds, 2048 evals)",
                rows)

    for row in rows:
        # 1-point stays within 5% of the best operator on every function —
        # the justification for the core's cheap single-point datapath.
        best_op = max(CROSSOVER_OPERATORS, key=lambda op: row[op])
        assert row["1-point"] >= 0.95 * row[best_op]
