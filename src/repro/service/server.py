"""GA-as-a-service front ends: the in-process facade and a TCP server.

:class:`GAService` is the embeddable form — construct, ``start()``,
``submit()`` :class:`~repro.service.jobs.GARequest` objects, read
``metrics``.  It wires the policy, metrics, worker pool, scheduler, and
(optionally) the checkpoint spill store and chaos monkey together and
owns their lifecycle (it is also a context manager; leaving the block
drains and shuts down).  ``spill_dir`` arms checkpointed resume;
``resume=True`` makes ``start()`` reclaim whatever a crashed process
spilled there (``repro serve --resume``).

The TCP layer is a deliberately tiny JSON-lines protocol for the
``repro serve`` / ``repro submit`` CLI pair: one request object per line,
one response line back.  Ops: ``submit`` (blocks until the job's result
streams back), ``metrics`` (snapshot), ``ping``.  It is a front door for
the scheduler, not a message bus — every connection is handled by a
thread that polls the job handle, so the batching and backpressure
semantics are exactly the in-process ones.

The framing is hardened against untrusted peers (fuzzed in
``tests/service/test_server_fuzz.py``): request lines are capped at
``MAX_LINE_BYTES``, a missing line terminator or non-object frame is
rejected, and every rejection is a *typed* error frame::

    {"ok": false, "error": {"kind": "MalformedJSON", "detail": "..."}}

where ``kind`` is the server-side exception class name for service
errors (``QueueFullError``, ``OverloadedError``, ...) or one of the
protocol kinds (``LineTooLong``, ``TruncatedFrame``, ``MalformedJSON``,
``BadRequest``, ``Timeout``).  A client that disconnects while its job
is in flight gets the job cancelled at the next chunk boundary instead
of evolving generations nobody will read.
"""

from __future__ import annotations

import json
import select
import socket
import socketserver
import threading
import time

from repro.service.batcher import BatchPolicy
from repro.service.checkpoint import CheckpointStore
from repro.service.jobs import (
    GARequest,
    JobHandle,
    JobResult,
    ServiceError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import Scheduler
from repro.service.workers import WorkerPool

#: hard cap on one JSON-lines request frame — far above any legitimate
#: request, far below what a hostile peer needs to exhaust memory
MAX_LINE_BYTES = 1_000_000


class GAService:
    """The embeddable GA serving stack: pool + scheduler + metrics."""

    def __init__(
        self,
        workers: int = 2,
        mode: str = "thread",
        policy: BatchPolicy | None = None,
        spill_dir=None,
        resume: bool = False,
        chaos=None,
        store_dir=None,
        cache: bool = True,
    ):
        self.policy = policy or BatchPolicy()
        self.metrics = ServiceMetrics(max_batch=self.policy.max_batch)
        self.chaos = chaos
        self.pool = WorkerPool(workers, mode, chaos=chaos)
        #: content-addressed run store (``--store-dir``): cached results,
        #: in-flight coalescing, and — unless ``spill_dir`` overrides —
        #: the spill checkpoints, all under one root
        self.run_store = None
        if store_dir is not None:
            from repro.store.runstore import RunStore

            self.run_store = RunStore(store_dir)
        if spill_dir is not None:
            self.store = CheckpointStore(spill_dir)
        elif self.run_store is not None:
            self.store = self.run_store.checkpoint_store()
        else:
            self.store = None
        self.scheduler = Scheduler(
            self.pool, self.policy, self.metrics, store=self.store,
            run_store=self.run_store, cache=cache,
        )
        self._resume = resume
        #: handles of jobs reclaimed from the spill store at ``start()``
        self.resumed_handles: list[JobHandle] = []

    def start(self) -> "GAService":
        if self._resume:
            self.resumed_handles = self.scheduler.resume_spilled()
        self.scheduler.start()
        return self

    def submit(self, request: GARequest) -> JobHandle:
        return self.scheduler.submit(request)

    def run_all(
        self, requests: list[GARequest], timeout: float | None = None
    ) -> list[JobResult]:
        """Submit a burst and block for every result, in request order."""
        handles = [self.submit(request) for request in requests]
        return [handle.result(timeout) for handle in handles]

    def snapshot(self) -> dict:
        return self.metrics.snapshot()

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        self.scheduler.shutdown(drain=drain, timeout=timeout)
        self.pool.shutdown()

    def __enter__(self) -> "GAService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)


# ---------------------------------------------------------------------------
# TCP front end (JSON lines)
# ---------------------------------------------------------------------------


def _error_frame(kind: str, detail: str) -> dict:
    return {"ok": False, "error": {"kind": kind, "detail": detail}}


def _peer_disconnected(sock: socket.socket) -> bool:
    """True when the client hung up (readable socket, zero-byte peek)."""
    try:
        readable, _, _ = select.select([sock], [], [], 0)
        if not readable:
            return False
        return sock.recv(1, socket.MSG_PEEK) == b""
    except (OSError, ValueError):
        return True


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:  # one request line, one response line
        server: ServiceTCPServer = self.server  # type: ignore[assignment]
        chaos = server.service.chaos
        if chaos is not None and chaos.drop_connection():
            # scheduled connection fault: vanish without a byte
            server.service.metrics.connection_dropped()
            return
        line = self.rfile.readline(MAX_LINE_BYTES + 1)
        if not line.strip():
            return
        if len(line) > MAX_LINE_BYTES:
            self._reply(
                _error_frame(
                    "LineTooLong",
                    f"request line exceeds {MAX_LINE_BYTES} bytes",
                )
            )
            return
        if not line.endswith(b"\n"):
            self._reply(
                _error_frame(
                    "TruncatedFrame", "request line not newline-terminated"
                )
            )
            return
        try:
            message = json.loads(line)
        except ValueError as exc:
            self._reply(_error_frame("MalformedJSON", str(exc)))
            return
        if not isinstance(message, dict):
            self._reply(
                _error_frame("BadRequest", "request frame must be a JSON object")
            )
            return
        try:
            response = server.dispatch(message, connection=self.connection)
        except ServiceError as exc:
            response = _error_frame(type(exc).__name__, str(exc))
        except Exception as exc:  # malformed input must not kill the server
            response = _error_frame("BadRequest", str(exc))
        if response is not None:
            self._reply(response)

    def _reply(self, response: dict) -> None:
        try:
            self.wfile.write((json.dumps(response) + "\n").encode())
        except OSError:
            pass  # peer already gone; nothing left to tell it


class ServiceTCPServer(socketserver.ThreadingTCPServer):
    """JSON-lines TCP front door over one :class:`GAService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: GAService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_jobs: int | None = None,
    ):
        super().__init__((host, port), _Handler)
        self.service = service
        self.max_jobs = max_jobs
        self._served = 0
        self._served_lock = threading.Lock()

    @property
    def endpoint(self) -> tuple[str, int]:
        return self.server_address[0], self.server_address[1]

    def dispatch(self, message: dict, connection=None) -> dict | None:
        op = message.get("op", "submit")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "metrics":
            return {"ok": True, "metrics": self.service.snapshot()}
        if op == "submit":
            request = GARequest.from_dict(message["job"])
            handle = self.service.submit(request)
            try:
                result = self._await_result(
                    handle, message.get("timeout_s"), connection
                )
            except TimeoutError as exc:
                handle.cancel()
                return _error_frame("Timeout", str(exc))
            if result is None:
                return None  # client hung up; job cancelled, nobody to tell
            self._count_served()
            return {"ok": True, "result": result.to_dict()}
        return _error_frame("BadRequest", f"unknown op {op!r}")

    def _await_result(
        self,
        handle: JobHandle,
        timeout_s: float | None,
        connection: socket.socket | None,
    ) -> JobResult | None:
        """Park on the handle, watching the client socket: a disconnect
        cancels the job (returns None), a timeout cancels and raises."""
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        while not handle._event.wait(0.1):
            if connection is not None and _peer_disconnected(connection):
                handle.cancel()
                return None
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {handle.job_id} not done after {timeout_s}s"
                )
        return handle.result(timeout=0)

    def _count_served(self) -> None:
        if self.max_jobs is None:
            return
        with self._served_lock:
            self._served += 1
            done = self._served >= self.max_jobs
        if done:
            # shutdown() must come from outside the serve_forever thread
            threading.Thread(target=self.shutdown, daemon=True).start()


def serve(
    service: GAService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_jobs: int | None = None,
    ready_callback=None,
) -> None:
    """Run the TCP front end until interrupted (or ``max_jobs`` served).

    ``ready_callback(host, port)`` fires once the socket is bound — the
    CLI prints the endpoint there, and tests learn the ephemeral port.
    """
    with ServiceTCPServer(service, host, port, max_jobs) as server:
        if ready_callback is not None:
            ready_callback(*server.endpoint)
        try:
            server.serve_forever(poll_interval=0.05)
        except KeyboardInterrupt:
            pass


def call(host: str, port: int, message: dict, timeout: float | None = None) -> dict:
    """One JSON-lines round trip to a running server."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall((json.dumps(message) + "\n").encode())
        with sock.makefile("r", encoding="utf-8") as reader:
            line = reader.readline()
    if not line:
        raise ServiceError("server closed the connection without a response")
    return json.loads(line)


def error_kind(response: dict) -> str:
    """The kind of a failed response frame (tolerates the pre-typed,
    flat-string shape for mixed-version fleets)."""
    err = response.get("error")
    if isinstance(err, dict):
        return str(err.get("kind", "ServiceError"))
    return str(err or "ServiceError")


def submit_remote(
    host: str, port: int, request: GARequest, timeout: float | None = None
) -> JobResult:
    """Client side of ``repro submit``: send one job, wait for its result."""
    response = call(
        host, port,
        {"op": "submit", "job": request.to_dict(), "timeout_s": timeout},
        timeout=timeout,
    )
    if not response.get("ok"):
        err = response.get("error")
        if isinstance(err, dict):
            kind = err.get("kind", "ServiceError")
            detail = err.get("detail", "remote submission failed")
        else:
            kind = err or "ServiceError"
            detail = response.get("detail", "remote submission failed")
        raise ServiceError(f"{kind}: {detail}")
    return JobResult.from_dict(response["result"])
