"""Table VI — post-place-and-route statistics, regenerated.

Benchmarks the flatten-and-estimate pipeline and prints the four Table VI
rows (paper vs. measured) plus the per-block breakdown.
"""

import pytest

from conftest import print_table
from repro.experiments.table6 import run_table6


@pytest.mark.benchmark(group="table6")
def test_table6_resource_report(benchmark):
    report = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    print_table(f"Table VI ({report['device']})", report["rows"])
    print_table("GA datapath blocks (appendix)", report["block_breakdown"])
    stats = report["datapath_stats"]
    print(f"flattened datapath: {stats['gates']} gates, {stats['dff']} flops")

    rows = {r["attribute"]: r for r in report["rows"]}
    # Reproduction targets: all four attributes inside the paper's band.
    assert abs(rows["Logic utilization (% slices)"]["measured"] - 13.0) <= 3.0
    assert abs(rows["Clock (MHz)"]["measured"] - 50.0) <= 10.0
    assert rows["Block memory, GA memory (%)"]["measured"] <= 1.0
    assert 40.0 <= rows["Block memory, fitness lookup (%)"]["measured"] <= 50.0
