"""The async job scheduler: bounded queue, slab formation, dispatch.

One scheduler thread owns the pending queue and the set of in-flight
slabs.  Its loop is event-driven: it sleeps on a condition variable and
wakes on submission, chunk completion, shutdown, or the earliest of the
timed events it tracks — the oldest pending job's ``max_wait_s`` batching
window, a parked slab's retry-backoff expiry, an in-flight chunk's
watchdog deadline, or an enforce-mode job's deadline — then seals every
*ready* group of compatible jobs into a :class:`~repro.service.batcher.Slab`
and dispatches its first chunk to the worker pool.  A group is ready when
it is full (``max_batch``), aged (``max_wait_s``), hardened (nothing to
wait for — it cannot batch), or the service is draining.

Chunk completions are folded back in from the pool's callback thread:
finished jobs retire and fulfil their handles, compatible pending jobs are
admitted into the freed replica rows, and a non-empty slab re-dispatches
immediately so workers never idle while work exists.  Because each job's
evolution depends only on its own seed, parameters, and carried state,
*no scheduling decision can change a job's numbers* — arrival order,
batch width, chunk boundaries, and worker count only move wall-clock time
(property-tested in ``tests/service/test_determinism.py``).

Fault tolerance (``docs/architecture.md`` has the full story):

* **Crash recovery** — a chunk lost to a dead worker (a
  ``BrokenProcessPool``, a chaos kill, or the per-chunk wall-clock
  watchdog) is *retryable*: ``run_slab_chunk`` is stateless and chunk
  boundaries are generation boundaries, so re-executing the lost chunk
  from the slab's carried state is bit-identical by construction.  The
  slab parks for the per-job :class:`~repro.service.jobs.RetryPolicy`
  backoff, the broken process pool respawns (generation-guarded, so one
  crash's cascade of broken futures triggers exactly one respawn), and
  the chunk re-dispatches.  Application exceptions raised by the job
  itself are *not* retried — re-execution is deterministic, so they
  would simply recur — and fail the slab immediately, as before.
* **Checkpointed resume** — with a spill store attached, every slab's
  carried state is checkpointed at dispatch (every
  ``checkpoint_every_chunks`` chunk boundaries) and discarded at
  retirement; :meth:`Scheduler.resume_spilled` reloads whatever a
  crashed process left behind and re-dispatches it from the last
  boundary instead of generation 0.
* **Overload protection** — beyond the hard ``max_pending`` bound,
  ``shed_queue_depth``/``max_backlog_s`` start *shedding*: the
  worst-ordered job (the incoming one, or a pending victim it beats)
  fails fast with :class:`~repro.service.jobs.OverloadedError` instead
  of joining a queue the service cannot drain in time.
* **Deadline enforcement** — ``deadline_mode="enforce"`` jobs are
  cancelled with :class:`~repro.service.jobs.DeadlineExceededError` at
  the first chunk boundary (or queue scan) past their deadline, instead
  of merely reporting the miss.

Backpressure is explicit: ``submit`` raises
:class:`~repro.service.jobs.QueueFullError` once ``max_pending`` jobs
wait, and :class:`~repro.service.jobs.ServiceClosedError` after shutdown
begins.  Shutdown drains by default (every accepted job completes);
``drain=False`` cancels pending jobs and fails in-flight ones at their
next chunk boundary; a ``timeout`` that expires with the scheduler
thread still alive abandons the backlog, failing every remaining handle
with :class:`~repro.service.jobs.ShutdownTimeoutError` so no client
blocks forever.
"""

from __future__ import annotations

import concurrent.futures
import itertools
import logging
import threading
import time

from repro.service.batcher import (
    BatchPolicy,
    JobRecord,
    Slab,
    compat_key,
    restore_records,
)
from repro.service.checkpoint import CheckpointStore
from repro.service.jobs import (
    ChunkTimeoutError,
    DeadlineExceededError,
    GARequest,
    JobCancelledError,
    JobFailedError,
    JobHandle,
    JobResult,
    OverloadedError,
    QueueFullError,
    ServiceClosedError,
    ShutdownTimeoutError,
    WorkerCrashError,
)
from repro.service.metrics import ServiceMetrics
from repro.service.workers import WorkerPool
from repro.store.keys import job_key

log = logging.getLogger("repro.service")

#: infrastructure failures whose chunks re-execute bit-identically;
#: anything else is an application error and fails the slab at once
RETRYABLE_ERRORS = (
    concurrent.futures.BrokenExecutor,
    WorkerCrashError,
    ChunkTimeoutError,
)


class Scheduler:
    """Continuous-batching job scheduler over a worker pool."""

    def __init__(
        self,
        pool: WorkerPool,
        policy: BatchPolicy | None = None,
        metrics: ServiceMetrics | None = None,
        store: CheckpointStore | None = None,
        run_store=None,
        cache: bool = True,
    ):
        self.pool = pool
        self.policy = policy or BatchPolicy()
        self.metrics = metrics or ServiceMetrics(max_batch=self.policy.max_batch)
        self.store = store
        #: content-addressed result cache (:class:`repro.store.RunStore`):
        #: admission lookups, in-flight coalescing, completion write-back
        self.run_store = run_store
        #: service-level cache-read switch (``repro serve --no-cache``):
        #: ``False`` disables lookups and coalescing but keeps write-back,
        #: so a no-cache server still populates the store it is given
        self.cache = cache
        #: store key -> primary job_id for every keyed job currently
        #: pending, parked, or in flight (the coalescing target map)
        self._active_keys: dict[str, int] = {}
        #: store key -> handles of duplicate submissions riding the
        #: primary computation (fulfilled/failed when the primary is)
        self._followers: dict[str, list[JobHandle]] = {}
        self._cond = threading.Condition()
        self._pending: dict[tuple, list[JobRecord]] = {}
        self._pending_count = 0
        #: sum of pending jobs' remaining generations — the backlog-time
        #: estimator's numerator, maintained incrementally
        self._pending_gens = 0
        #: slab_id -> {"slab", "chunk", "token", "at", "deadline",
        #: "pool_gen"} for every chunk currently at the pool
        self._inflight: dict[int, dict] = {}
        #: (ready_at, slab) pairs waiting out a retry backoff (or a resume)
        self._parked: list[tuple[float, Slab]] = []
        #: thread-mode hung chunks: their worker thread is still occupied,
        #: so each zombie token subtracts a slot until its callback lands
        self._zombies: set[int] = set()
        #: process-mode tokens whose pool was respawned; their eventual
        #: callbacks are stale and must be discarded
        self._dead_tokens: set[int] = set()
        self._tokens = itertools.count()
        self._seq = itertools.count()
        self._closing = False
        self._draining = True
        self._abandoned = False
        self._started = False
        self._thread = threading.Thread(
            target=self._loop, name="ga-scheduler", daemon=True
        )

    @property
    def _slots_free(self) -> int:
        """Worker slots not held by an in-flight chunk or a zombie."""
        return self.pool.n_workers - len(self._inflight) - len(self._zombies)

    # -- client API -----------------------------------------------------
    def start(self) -> "Scheduler":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def submit(self, request: GARequest) -> JobHandle:
        """Enqueue one job; returns its handle immediately.

        With a run store attached, admission first consults the cache: a
        stored result fulfils the handle before it is even returned (no
        queue, no worker dispatch), and a duplicate of a job already
        pending or in flight becomes a *follower* riding that primary's
        computation.  Cache hits and followers never occupy the pending
        queue, so they are served even at the admission bound.

        Raises :class:`QueueFullError` (hard admission bound),
        :class:`OverloadedError` (load shedding) or
        :class:`ServiceClosedError` (shutdown in progress).
        """
        with self._cond:
            if self._closing:
                raise ServiceClosedError("service is shutting down")
            now = time.monotonic()
            key = None
            if self.run_store is not None:
                key = job_key(request)
                if self.cache and request.use_cache:
                    stored = self.run_store.get_result(key)
                    if stored is not None:
                        seq = next(self._seq)
                        handle = JobHandle(seq, request, now)
                        handle._fulfil(
                            self._revive_cached(stored, seq, key, now, now)
                        )
                        self.metrics.cache_hit()
                        self.metrics.job_submitted(self._pending_count)
                        self.metrics.job_completed(0.0, 0.0)
                        return handle
                    if key in self._active_keys:
                        seq = next(self._seq)
                        handle = JobHandle(seq, request, now)
                        handle._canceller = (
                            lambda job_id, k=key, h=handle:
                            self._cancel_follower(k, h)
                        )
                        self._followers.setdefault(key, []).append(handle)
                        self.metrics.job_coalesced()
                        self.metrics.job_submitted(self._pending_count)
                        return handle
                    self.metrics.cache_miss()
            if self._pending_count >= self.policy.max_pending:
                self.metrics.job_rejected()
                raise QueueFullError(
                    f"pending queue at bound ({self.policy.max_pending})"
                )
            seq = next(self._seq)
            handle = JobHandle(seq, request, now)
            record = JobRecord(
                job_id=seq, request=request, handle=handle,
                submitted_at=now, seq=seq, store_key=key,
            )
            handle._canceller = self._request_cancel
            reason = self._overload_reason()
            if reason is not None:
                victim = self._worst_pending()
                if victim is None or record.order_key() >= victim.order_key():
                    # the incoming job is the worst-ordered: shed it
                    self.metrics.job_rejected()
                    self.metrics.job_shed()
                    raise OverloadedError(f"job shed: {reason}")
                self._shed_pending(victim, reason)
            self._register_primary(record)
            self._pending.setdefault(compat_key(record), []).append(record)
            self._pending_count += 1
            self._pending_gens += record.remaining
            self.metrics.job_submitted(self._pending_count)
            self._cond.notify_all()
            return handle

    def resume_spilled(self) -> list[JobHandle]:
        """Reload every spilled slab checkpoint and re-dispatch it.

        Resumed jobs get fresh handles (returned here, keyed by original
        ``job_id``) and re-enter as parked slabs ready immediately; their
        results are bit-identical to an uninterrupted run because the
        checkpoint is the carried state at a chunk boundary.  A no-op
        without a spill store.
        """
        if self.store is None:
            return []
        handles: list[JobHandle] = []
        with self._cond:
            now = time.monotonic()
            for payload in self.store.claim_all():
                records = restore_records(payload, self._seq, now)
                if not records:
                    continue
                for record in records:
                    record.handle._canceller = self._request_cancel
                    if self.run_store is not None:
                        # resumed jobs re-enter the coalescing map so later
                        # duplicates ride them instead of recomputing
                        record.store_key = job_key(record.request)
                        self._register_primary(record)
                    handles.append(record.handle)
                self._parked.append((0.0, Slab(records, self.policy)))
            if handles:
                self.metrics.jobs_resumed(len(handles))
                self._cond.notify_all()
        return handles

    def shutdown(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop accepting jobs; drain (default) or cancel the backlog.

        When ``timeout`` expires with the scheduler thread still alive,
        the backlog is *abandoned*: every job still pending, parked, or
        in flight fails with :class:`ShutdownTimeoutError` so no client
        waits on a handle that will never land, and the loop exits at
        its next wakeup.
        """
        with self._cond:
            self._closing = True
            self._draining = drain
            if not drain:
                for records in self._pending.values():
                    for record in records:
                        self._fail_record(
                            record,
                            JobCancelledError(
                                f"job {record.job_id} cancelled by shutdown"
                            ),
                        )
                self._pending.clear()
                self._pending_count = 0
                self._pending_gens = 0
                self.metrics.queue_drained_to(0)
                for _, slab in self._parked:
                    self._cancel_slab(slab, "cancelled by shutdown")
                    self._retire_slab(slab)
                self._parked = []
            self._cond.notify_all()
        if not self._started:
            return
        self._thread.join(timeout)
        if not self._thread.is_alive():
            return
        log.warning(
            "scheduler thread still alive after %ss shutdown timeout; "
            "abandoning in-flight work",
            timeout,
        )
        with self._cond:
            self._abandoned = True
            leftovers: list[JobRecord] = []
            for records in self._pending.values():
                leftovers.extend(records)
            for entry in self._inflight.values():
                leftovers.extend(entry["slab"].entries)
            for _, slab in self._parked:
                leftovers.extend(slab.entries)
            for record in leftovers:
                self._fail_record(
                    record,
                    ShutdownTimeoutError(
                        f"job {record.job_id} abandoned: scheduler did not "
                        f"stop within {timeout}s"
                    ),
                )
            # safety net: any follower whose primary was not among the
            # leftovers can never be served now
            for handles in self._followers.values():
                for handle in handles:
                    handle._fail(
                        ShutdownTimeoutError(
                            f"job {handle.job_id} abandoned: scheduler did "
                            f"not stop within {timeout}s"
                        )
                    )
                    self.metrics.job_failed()
            self._followers.clear()
            self._active_keys.clear()
            self._pending.clear()
            self._pending_count = 0
            self._pending_gens = 0
            self._parked = []
            self._inflight.clear()
            self._cond.notify_all()

    # -- overload protection --------------------------------------------
    def _overload_reason(self) -> str | None:
        """Why admission should shed right now, or None (lock held)."""
        if (
            self.policy.shed_queue_depth is not None
            and self._pending_count >= self.policy.shed_queue_depth
        ):
            return (
                f"queue depth {self._pending_count} >= shed bound "
                f"{self.policy.shed_queue_depth}"
            )
        if self.policy.max_backlog_s is not None and self.metrics.chunks > 0:
            rate = self.metrics.generations_rate()
            if rate > 0:
                backlog = self._pending_gens / rate
                if backlog > self.policy.max_backlog_s:
                    return (
                        f"estimated backlog {backlog:.2f}s > "
                        f"{self.policy.max_backlog_s}s"
                    )
        return None

    def _worst_pending(self) -> JobRecord | None:
        worst: JobRecord | None = None
        for records in self._pending.values():
            for record in records:
                if worst is None or record.order_key() > worst.order_key():
                    worst = record
        return worst

    def _shed_pending(self, victim: JobRecord, reason: str) -> None:
        """Fail a queued job to make room for a better-ordered arrival."""
        key = compat_key(victim)
        records = self._pending[key]
        records.remove(victim)
        if not records:
            del self._pending[key]
        self._pending_count -= 1
        self._pending_gens -= victim.remaining
        self.metrics.queue_drained_to(self._pending_count)
        self._fail_record(
            victim, OverloadedError(f"job {victim.job_id} shed: {reason}")
        )
        self.metrics.job_shed()

    # -- cancellation ---------------------------------------------------
    def _request_cancel(self, job_id: int) -> bool:
        """Handle-side cancel: drop a pending job now, flag an in-flight
        or parked one for eviction at its next chunk boundary."""
        with self._cond:
            for key, records in self._pending.items():
                for record in records:
                    if record.job_id != job_id:
                        continue
                    records.remove(record)
                    if not records:
                        del self._pending[key]
                    self._pending_count -= 1
                    self._pending_gens -= record.remaining
                    self.metrics.queue_drained_to(self._pending_count)
                    self._fail_record(
                        record, JobCancelledError(f"job {job_id} cancelled")
                    )
                    self.metrics.job_cancelled()
                    self._cond.notify_all()
                    return True
            for entry in self._inflight.values():
                for record in entry["slab"].entries:
                    if record.job_id == job_id:
                        record.cancel_requested = True
                        return True
            for _, slab in self._parked:
                for record in slab.entries:
                    if record.job_id == job_id:
                        record.cancel_requested = True
                        self._cond.notify_all()
                        return True
            return False

    # -- scheduler loop -------------------------------------------------
    def _loop(self) -> None:
        with self._cond:
            while True:
                now = time.monotonic()
                self._fail_hung_chunks(now)
                self._expire_pending(now)
                self._unpark(now)
                self._dispatch_ready(now)
                if self._abandoned:
                    break
                if (
                    self._closing
                    and self._pending_count == 0
                    and not self._inflight
                    and not self._parked
                ):
                    break
                self._cond.wait(self._wait_timeout(now))

    def _wait_timeout(self, now: float) -> float | None:
        """Sleep until the earliest timed event the loop must act on."""
        deadlines: list[float] = []
        if self._pending and self._slots_free > 0:
            deadlines.append(
                min(
                    min(r.submitted_at for r in records) + self.policy.max_wait_s
                    for records in self._pending.values()
                    if records
                )
            )
        for records in self._pending.values():
            for record in records:
                if record.request.deadline_mode == "enforce":
                    deadlines.append(record.deadline_at)
        for ready_at, _ in self._parked:
            deadlines.append(ready_at)
        for entry in self._inflight.values():
            if entry["deadline"] is not None:
                deadlines.append(entry["deadline"])
        if not deadlines:
            return None
        return max(min(deadlines) - now, 1e-4)

    def _group_ready(self, key: tuple, records: list[JobRecord], now: float) -> bool:
        if self._closing:
            return True
        if key[0] in ("hardened", "island", "substrate"):
            return True  # solo by construction; waiting buys nothing
        if len(records) >= self.policy.max_batch:
            return True
        oldest = min(r.submitted_at for r in records)
        return now - oldest >= self.policy.max_wait_s

    def _dispatch_ready(self, now: float) -> None:
        """Seal and dispatch ready groups while worker slots are free."""
        while self._slots_free > 0:
            ready = [
                key
                for key, records in self._pending.items()
                if records and self._group_ready(key, records, now)
            ]
            if not ready:
                return
            # most urgent group first: the one owning the best-ordered job
            key = min(
                ready, key=lambda k: min(r.order_key() for r in self._pending[k])
            )
            records = sorted(self._pending[key], key=JobRecord.order_key)
            taken = records[: self.policy.max_batch]
            self._pending[key] = records[len(taken):]
            if not self._pending[key]:
                del self._pending[key]
            self._pending_count -= len(taken)
            self._pending_gens -= sum(r.remaining for r in taken)
            self.metrics.queue_drained_to(self._pending_count)
            self._dispatch(Slab(taken, self.policy))

    def _dispatch(self, slab: Slab) -> None:
        """Send the slab's next chunk to the pool (lock held)."""
        chunk = slab.next_chunk_gens()
        now = time.monotonic()
        token = next(self._tokens)
        for record in slab.entries:
            if record.started_at is None:
                record.started_at = now
        if (
            self.store is not None
            and slab.chunks_done % self.policy.checkpoint_every_chunks == 0
        ):
            self.store.save(slab.slab_id, slab.checkpoint_payload())
            self.metrics.slab_checkpointed()
        deadline = (
            now + self.policy.chunk_timeout_s
            if self.policy.chunk_timeout_s is not None
            else None
        )
        self._inflight[slab.slab_id] = {
            "slab": slab,
            "chunk": chunk,
            "token": token,
            "at": now,
            "deadline": deadline,
            "pool_gen": self.pool.generation,
        }
        self.metrics.chunk_dispatched(len(slab), chunk)
        spec = slab.make_spec(chunk)
        self.pool.submit_chunk(
            spec,
            lambda out, sid=slab.slab_id, tok=token: self._on_chunk(
                sid, tok, out
            ),
        )

    # -- timed-event sweeps (lock held) ---------------------------------
    def _fail_hung_chunks(self, now: float) -> None:
        """The per-chunk wall-clock watchdog: treat overdue chunks as lost."""
        if self.policy.chunk_timeout_s is None:
            return
        for slab_id in list(self._inflight):
            entry = self._inflight[slab_id]
            if entry["deadline"] is None or now < entry["deadline"]:
                continue
            del self._inflight[slab_id]
            if self.pool.can_respawn:
                # the stuck process dies with its pool; the stale future's
                # eventual callback is discarded by token
                if self.pool.respawn(entry["pool_gen"]):
                    self.metrics.pool_respawned()
                self._dead_tokens.add(entry["token"])
            else:
                # a thread cannot be killed: it keeps occupying a worker
                # slot until it returns, so account it as a zombie
                self._zombies.add(entry["token"])
            self.metrics.chunk_timed_out()
            log.warning(
                "chunk on slab %d overdue after %.3fs; retrying",
                slab_id,
                self.policy.chunk_timeout_s,
            )
            self._chunk_failed(
                entry["slab"],
                ChunkTimeoutError(
                    f"chunk on slab {slab_id} exceeded "
                    f"{self.policy.chunk_timeout_s}s watchdog"
                ),
                now,
            )

    def _expire_pending(self, now: float) -> None:
        """Fail enforce-mode jobs that blew their deadline while queued."""
        changed = False
        for key in list(self._pending):
            keep = []
            for record in self._pending[key]:
                if (
                    record.request.deadline_mode == "enforce"
                    and now > record.deadline_at
                ):
                    self._pending_count -= 1
                    self._pending_gens -= record.remaining
                    self._fail_record(
                        record,
                        DeadlineExceededError(
                            f"job {record.job_id} blew its "
                            f"{record.request.deadline_s}s deadline in queue"
                        ),
                    )
                    self.metrics.job_deadline_enforced()
                    changed = True
                else:
                    keep.append(record)
            if keep:
                self._pending[key] = keep
            else:
                del self._pending[key]
        if changed:
            self.metrics.queue_drained_to(self._pending_count)

    def _unpark(self, now: float) -> None:
        """Re-dispatch parked slabs whose backoff has expired."""
        still: list[tuple[float, Slab]] = []
        for ready_at, slab in sorted(self._parked, key=lambda p: p[0]):
            if now < ready_at or self._slots_free <= 0:
                still.append((ready_at, slab))
                continue
            self._evict(slab, now)
            if slab.entries:
                self._dispatch(slab)
            else:
                self._retire_slab(slab)
        self._parked = still

    # -- pool callback --------------------------------------------------
    def _on_chunk(self, slab_id: int, token: int, out: dict | BaseException) -> None:
        with self._cond:
            if self._abandoned:
                return
            entry = self._inflight.get(slab_id)
            if entry is None or entry["token"] != token:
                # stale: a zombie finally returned, or a respawned pool's
                # broken future landed after the watchdog already retried
                self._zombies.discard(token)
                self._dead_tokens.discard(token)
                self._cond.notify_all()
                return
            del self._inflight[slab_id]
            slab = entry["slab"]
            now = time.monotonic()
            if isinstance(out, BaseException):
                if isinstance(out, RETRYABLE_ERRORS):
                    if isinstance(out, concurrent.futures.BrokenExecutor):
                        if self.pool.respawn(entry["pool_gen"]):
                            self.metrics.pool_respawned()
                    self._chunk_failed(slab, out, now)
                else:
                    # application error: deterministic, retry cannot help
                    self._fail_slab(slab, out)
                self._cond.notify_all()
                return
            finished = slab.apply_chunk(out, entry["chunk"])
            if slab.failed_at is not None:
                self.metrics.chunk_recovered(now - slab.failed_at)
                slab.failed_at = None
            for record in finished:
                self._complete_record(record, record.to_result(now), now)
            self._evict(slab, now)
            if self._closing and not self._draining:
                self._cancel_slab(slab, "cancelled by shutdown")
            else:
                self._admit_into(slab)
            if slab.entries:
                self._dispatch(slab)
            else:
                self._retire_slab(slab)
            self._cond.notify_all()

    def _chunk_failed(self, slab: Slab, exc: BaseException, now: float) -> None:
        """Retry accounting for a lost chunk (lock held).

        Jobs whose retry budget is exhausted fail; the survivors park for
        the longest of their per-job backoffs and re-dispatch.
        """
        survivors: list[JobRecord] = []
        for record in slab.entries:
            record.attempts += 1
            if record.attempts >= record.request.retry.max_attempts:
                self._fail_record(
                    record,
                    JobFailedError(
                        f"job {record.job_id} failed after "
                        f"{record.attempts} attempts: {exc!r}"
                    ),
                )
            else:
                survivors.append(record)
        slab.entries = survivors
        if self._closing and not self._draining:
            self._cancel_slab(slab, "cancelled by shutdown")
        if not slab.entries:
            self._retire_slab(slab)
            return
        slab.failed_at = slab.failed_at if slab.failed_at is not None else now
        delay = max(
            r.request.retry.delay_s(r.attempts, r.request.params.rng_seed)
            for r in slab.entries
        )
        self._parked.append((now + delay, slab))
        self.metrics.chunk_retried(len(slab.entries))
        log.warning(
            "retrying slab %d (%d jobs) in %.3fs after %r",
            slab.slab_id,
            len(slab.entries),
            delay,
            exc,
        )

    def _fail_slab(self, slab: Slab, exc: BaseException) -> None:
        for record in slab.entries:
            self._fail_record(
                record, JobFailedError(f"job {record.job_id} failed: {exc!r}")
            )
        slab.entries = []
        self._retire_slab(slab)

    def _cancel_slab(self, slab: Slab, reason: str) -> None:
        for record in slab.entries:
            self._fail_record(
                record, JobCancelledError(f"job {record.job_id} {reason}")
            )
        slab.entries = []

    def _evict(self, slab: Slab, now: float) -> None:
        """Drop cancelled and enforce-expired jobs at a chunk boundary."""
        keep: list[JobRecord] = []
        for record in slab.entries:
            if record.cancel_requested:
                self._fail_record(
                    record, JobCancelledError(f"job {record.job_id} cancelled")
                )
                self.metrics.job_cancelled()
            elif (
                record.request.deadline_mode == "enforce"
                and now > record.deadline_at
            ):
                self._fail_record(
                    record,
                    DeadlineExceededError(
                        f"job {record.job_id} blew its "
                        f"{record.request.deadline_s}s deadline"
                    ),
                )
                self.metrics.job_deadline_enforced()
            else:
                keep.append(record)
        slab.entries = keep

    def _retire_slab(self, slab: Slab) -> None:
        """A slab leaves the scheduler: drop its spilled checkpoint."""
        if self.store is not None:
            self.store.discard(slab.slab_id)

    # -- run-store cache (admission, coalescing, write-back) -------------
    def _revive_cached(
        self,
        stored: JobResult,
        job_id: int,
        key: str,
        submitted_at: float,
        now: float,
    ) -> JobResult:
        """A stored result re-addressed to one submission (lock held).

        The scientific payload (best individual/fitness, evaluations,
        history, stats) is byte-for-byte the stored computation; only the
        execution-bookkeeping fields are this submission's own.
        """
        result = JobResult.from_dict(stored.to_dict())
        result.job_id = job_id
        result.cache_hit = True
        result.store_key = key
        result.latency_s = max(now - submitted_at, 0.0)
        result.wait_s = 0.0
        result.n_chunks = 0
        result.deadline_missed = False
        return result

    def _register_primary(self, record: JobRecord) -> None:
        """Make a keyed job the coalescing target for later duplicates
        (lock held).  No-op without a key or with caching disabled."""
        if record.store_key is not None and self.cache:
            self._active_keys[record.store_key] = record.job_id
            self._followers.setdefault(record.store_key, [])

    def _pop_followers(self, record: JobRecord) -> list[JobHandle]:
        """Release a terminating primary's followers (lock held)."""
        key = record.store_key
        if key is None or self._active_keys.get(key) != record.job_id:
            return []
        del self._active_keys[key]
        return self._followers.pop(key, [])

    def _fail_record(self, record: JobRecord, exc: BaseException) -> None:
        """The one terminal failure path: the primary's handle and every
        follower riding it fail together (lock held).  Followers share
        their primary's fate by design — the duplicate work they avoided
        no longer exists to fall back on."""
        record.handle._fail(exc)
        self.metrics.job_failed()
        for handle in self._pop_followers(record):
            handle._fail(exc)
            self.metrics.job_failed()

    def _complete_record(
        self, record: JobRecord, result: JobResult, now: float
    ) -> None:
        """The one terminal success path: write back to the run store,
        fulfil the primary, serve every follower (lock held)."""
        if self.run_store is not None and record.store_key is not None:
            result.store_key = record.store_key
            try:
                self.run_store.put(
                    record.request,
                    result,
                    compute_s=now - (record.started_at or now),
                    source="service",
                )
                self.metrics.cache_written()
            except OSError as exc:
                log.warning(
                    "run-store write-back failed for job %d: %s",
                    record.job_id,
                    exc,
                )
        record.handle._fulfil(result)
        self.metrics.job_completed(
            now - record.submitted_at,
            (record.started_at or now) - record.submitted_at,
        )
        for handle in self._pop_followers(record):
            served = self._revive_cached(
                result, handle.job_id, record.store_key,
                handle.submitted_at, now,
            )
            handle._fulfil(served)
            self.metrics.job_completed(served.latency_s, 0.0)

    def _cancel_follower(self, key: str, handle: JobHandle) -> bool:
        """Handle-side cancel for a follower: drops only that handle,
        never the primary computation other clients are riding."""
        with self._cond:
            followers = self._followers.get(key)
            if followers is None or handle not in followers:
                return False
            followers.remove(handle)
            handle._fail(JobCancelledError(f"job {handle.job_id} cancelled"))
            self.metrics.job_failed()
            self.metrics.job_cancelled()
            return True

    def _admit_into(self, slab: Slab) -> None:
        """Continuous batching: pull compatible pending jobs into freed
        replica rows at the chunk boundary (lock held)."""
        capacity = slab.capacity_left
        if capacity <= 0 or slab.solo:
            return
        # key must mirror compat_key exactly — it silently stopped
        # matching when the engine mode joined the key, killing late
        # admission into running slabs
        key = ("batch", slab.pop, slab.engine_mode)
        records = self._pending.get(key)
        if not records:
            return
        records.sort(key=JobRecord.order_key)
        taken = records[:capacity]
        self._pending[key] = records[len(taken):]
        if not self._pending[key]:
            del self._pending[key]
        self._pending_count -= len(taken)
        self._pending_gens -= sum(r.remaining for r in taken)
        self.metrics.queue_drained_to(self._pending_count)
        slab.admit(taken)
