"""The paper's experimental grids, verbatim.

``TABLE5_RUNS`` lists the ten RT-level simulation runs of Table V (function,
seed, population, crossover threshold) together with the paper's reported
best fitness and convergence generation.  ``FPGA_SEEDS``/``FPGA_GRID`` are
the 6-seed x 4-setting grids of Tables VII-IX; ``PAPER_TABLE7/8/9`` hold the
paper's per-cell best-fitness values for side-by-side reporting.

Our absolute per-cell values cannot match the paper's (the silicon's CA rule
vector and bit-slice positions are unpublished, so the PRNG streams differ);
the reproduction target is the claim set: optimum found (or within a few
percent), strong seed sensitivity, fast convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import GAParameters


@dataclass(frozen=True)
class Table5Run:
    """One row of Table V."""

    run: int
    function: str
    seed: int
    population: int
    crossover_threshold: int
    paper_best: int
    paper_found_gen: int
    paper_convergence: int

    def params(self) -> GAParameters:
        """All Table V runs use 32 generations and mutation rate 0.0625."""
        return GAParameters(
            n_generations=32,
            population_size=self.population,
            crossover_threshold=self.crossover_threshold,
            mutation_threshold=1,
            rng_seed=self.seed,
        )


#: Table V, rows 1-10 (Sec. IV-A).
TABLE5_RUNS: list[Table5Run] = [
    Table5Run(1, "BF6", 45890, 32, 10, 4047, 1, 8),
    Table5Run(2, "BF6", 45890, 64, 10, 4271, 14, 30),
    Table5Run(3, "BF6", 10593, 32, 10, 4271, 3, 16),
    Table5Run(4, "BF6", 1567, 32, 10, 4146, 2, 26),
    Table5Run(5, "BF6", 1567, 32, 12, 4047, 2, 10),
    Table5Run(6, "F2", 45890, 32, 10, 3060, 15, 18),
    Table5Run(7, "F2", 45890, 64, 10, 2096, 1, 10),
    Table5Run(8, "F2", 10593, 64, 10, 3060, 10, 26),
    Table5Run(9, "F2", 10593, 32, 12, 3060, 5, 12),
    Table5Run(10, "F3", 1567, 32, 10, 3060, 16, 20),
]

#: The six RNG seeds of the FPGA experiments (Tables VII-IX), hexadecimal
#: in the paper.
FPGA_SEEDS: list[int] = [0x2961, 0x061F, 0xB342, 0xAAAA, 0xA0A0, 0xFFFF]

#: The four (population, crossover threshold) settings per table; all runs
#: use 64 generations and mutation threshold 1 (Sec. IV-B).
FPGA_GRID: list[tuple[int, int]] = [(32, 10), (32, 12), (64, 10), (64, 12)]


def fpga_params(population: int, crossover_threshold: int, seed: int) -> GAParameters:
    """Parameters for one cell of Tables VII-IX."""
    return GAParameters(
        n_generations=64,
        population_size=population,
        crossover_threshold=crossover_threshold,
        mutation_threshold=1,
        rng_seed=seed,
    )


def fpga_sweep_cells() -> list[tuple[int, int, int]]:
    """All 24 ``(seed, population, crossover threshold)`` cells of one
    FPGA table, row-major (seeds outer, grid settings inner) — the
    canonical ordering of Tables VII-IX and of the batched sweep."""
    return [(seed, pop, xt) for seed in FPGA_SEEDS for pop, xt in FPGA_GRID]


def fpga_sweep_params() -> list[GAParameters]:
    """Parameters for the full 24-cell grid, in :func:`fpga_sweep_cells`
    order; feed to :func:`repro.core.batch.run_batched` with the table's
    fitness function to regenerate one of Tables VII-IX in two batches
    (one per population size)."""
    return [fpga_params(pop, xt, seed) for seed, pop, xt in fpga_sweep_cells()]


def table5_sweep_params() -> list[GAParameters]:
    """Parameters for the ten Table V rows, in ``TABLE5_RUNS`` order (the
    behavioural sweep batches these by population size)."""
    return [run.params() for run in TABLE5_RUNS]


#: Paper Table VII: best mBF6_2 fitness; rows = FPGA_SEEDS, cols = FPGA_GRID.
PAPER_TABLE7: dict[int, tuple[int, int, int, int]] = {
    0x2961: (7999, 7813, 7824, 7819),
    0x061F: (6175, 7578, 8134, 8129),
    0xB342: (7612, 7497, 7612, 7719),
    0xAAAA: (7534, 7534, 7578, 7864),
    0xA0A0: (8104, 7406, 8135, 8039),
    0xFFFF: (7291, 7623, 7847, 7669),
}

#: Paper Table VIII: best mBF7_2 fitness.
PAPER_TABLE8: dict[int, tuple[int, int, int, int]] = {
    0x2961: (56835, 56835, 48135, 56456),
    0x061F: (59648, 53432, 59648, 60656),
    0xB342: (55000, 59928, 59480, 57184),
    0xAAAA: (55560, 52704, 55000, 61496),
    0xA0A0: (58136, 53040, 58024, 56624),
    0xFFFF: (60880, 61384, 56344, 60768),
}

#: Paper Table IX: best mShubert2D fitness (bold = global optimum 65535).
PAPER_TABLE9: dict[int, tuple[int, int, int, int]] = {
    0x2961: (56835, 56835, 48135, 56835),
    0x061F: (56835, 55095, 65535, 58227),
    0xB342: (56487, 56487, 54051, 63795),
    0xAAAA: (63795, 56487, 65535, 65535),
    0xA0A0: (56835, 63795, 65535, 53355),
    0xFFFF: (53355, 65535, 48135, 56835),
}

PAPER_TABLES = {"mBF6_2": PAPER_TABLE7, "mBF7_2": PAPER_TABLE8, "mShubert2D": PAPER_TABLE9}
