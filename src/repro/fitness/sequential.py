"""Sequential-logic circuit evolution — truth tables *over time*.

Soleimani et al. (PAPERS.md) evolve synchronous sequential circuits
(counters, sequence detectors) on a cycle-accurate evolvable substrate;
this module brings that workload class to the GA core.  The genotype is
exactly the core's 16-bit chromosome, interpreted as the complete
next-state table of a 4-state, 1-input Moore machine:

* state register: 2 bits (states 0-3), reset state 0;
* table entry index: ``(state << 1) | input`` (8 entries);
* entry value: the 2-bit next state, stored at bit offset ``2 * index`` —
  8 entries x 2 bits fills the 16-bit chromosome with no slack;
* Moore output: ``1`` iff the machine sits in state 3 (the accept state).

Fitness is truth-table-over-time agreement: the candidate machine and a
hand-written *target* machine consume the same fixed input stimulus from
reset, and every cycle whose post-transition output matches the target's
is worth :data:`MATCH_SCORE`.  Both targets below are themselves
expressible in the encoding, so the global optimum is a perfect score and
the target's own table is one of the optima (pinned in
``tests/fitness/test_sequential.py``).

All arithmetic is integer-exact — no floating point anywhere — which
makes these functions safe to pin bit-for-bit in the experiment zoo's
golden-run regression suite across platforms and numpy versions.

:class:`FEMMuxComposite` is the software analogue of the Sec. III-B.5
8-way FEM mux driven as a *multi-objective* evaluator: up to
:data:`~repro.fitness.mux.MAX_SLOTS` component objectives time-multiplexed
onto one candidate, blended by integer weights (and optionally gated by a
constraint objective) into a single 16-bit fitness word.
"""

from __future__ import annotations

import numpy as np

from repro.fitness.base import FitnessFunction
from repro.fitness.mux import MAX_SLOTS

#: Cycles of stimulus per evaluation (one comparison per cycle).
N_CYCLES = 32

#: Fitness per matching output cycle: 32 matches x 2047 = 65,504, inside
#: the 16-bit ``fit_value`` range.
MATCH_SCORE = 2047

#: The fixed input stimulus, LSB first — a constant chosen to exercise
#: every table entry of both targets (runs of 0s/1s plus alternations).
STIMULUS_WORD = 0xB5A1_6D39

#: Accept state of the fixed Moore output rule (``out = state == 3``).
ACCEPT_STATE = 3


def stimulus_bits(n_cycles: int = N_CYCLES, word: int = STIMULUS_WORD) -> list[int]:
    """The input bit sequence driven into every candidate, LSB first."""
    return [(word >> t) & 1 for t in range(n_cycles)]


def encode_table(next_state: dict[tuple[int, int], int]) -> int:
    """Pack a ``{(state, input): next_state}`` table into a chromosome."""
    word = 0
    for (state, inp), nxt in next_state.items():
        if not (0 <= state <= 3 and inp in (0, 1) and 0 <= nxt <= 3):
            raise ValueError(f"bad table entry ({state}, {inp}) -> {nxt}")
        word |= (nxt & 3) << (2 * ((state << 1) | inp))
    return word


def next_state(chromosome: int, state: int, inp: int) -> int:
    """One transition of the encoded machine."""
    return (chromosome >> (2 * (((state & 3) << 1) | (inp & 1)))) & 3


def output_trace(chromosome: int, stimulus: list[int] | None = None) -> list[int]:
    """Post-transition Moore outputs of the machine over the stimulus."""
    bits = stimulus if stimulus is not None else stimulus_bits()
    state, outs = 0, []
    for inp in bits:
        state = next_state(chromosome, state, inp)
        outs.append(1 if state == ACCEPT_STATE else 0)
    return outs


#: Mod-4 enable counter: count up while ``input`` (enable) is 1, hold
#: while 0; the accept state fires once per four enabled cycles — a
#: divide-by-four, the canonical Soleimani counter target.
COUNTER4_TABLE = encode_table(
    {
        (s, e): (s + 1) % 4 if e else s
        for s in range(4)
        for e in (0, 1)
    }
)

#: Overlapping "101" sequence detector (Moore): S0 start, S1 = seen "1",
#: S2 = seen "10", S3 = seen "101" (accept, overlap back through S1/S2).
DETECT101_TABLE = encode_table(
    {
        (0, 0): 0, (0, 1): 1,
        (1, 0): 2, (1, 1): 1,
        (2, 0): 0, (2, 1): 3,
        (3, 0): 2, (3, 1): 1,
    }
)


class SequentialFitness(FitnessFunction):
    """Agreement with a target sequential machine over the stimulus."""

    n_vars = 1
    #: subclasses pin these
    target_table: int = 0

    def __init__(self) -> None:
        self._stimulus = np.asarray(stimulus_bits(), dtype=np.int64)
        self._target_outputs = np.asarray(
            output_trace(self.target_table), dtype=np.int64
        )

    @property
    def perfect_score(self) -> int:
        return N_CYCLES * MATCH_SCORE

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        c = np.asarray(chromosomes).astype(np.int64)
        states = np.zeros(c.shape, dtype=np.int64)
        matches = np.zeros(c.shape, dtype=np.int64)
        for t, inp in enumerate(self._stimulus):
            index = (states << 1) | inp
            states = (c >> (2 * index)) & 3
            out = (states == ACCEPT_STATE).astype(np.int64)
            matches += out == self._target_outputs[t]
        return matches * MATCH_SCORE


class SeqCounter4(SequentialFitness):
    """Evolve the mod-4 enable counter (divide-by-four output)."""

    name = "seq_counter4"
    target_table = COUNTER4_TABLE


class SeqDetect101(SequentialFitness):
    """Evolve the overlapping "101" serial sequence detector."""

    name = "seq_detect101"
    target_table = DETECT101_TABLE


class FEMMuxComposite(FitnessFunction):
    """Multi-objective blend through the 8-way FEM mux (Sec. III-B.5).

    ``components`` are ``(FitnessFunction, integer weight)`` pairs — one
    per occupied mux slot, at most :data:`~repro.fitness.mux.MAX_SLOTS`.
    The blended fitness is ``sum(w_i * f_i(x)) >> shift``, with ``shift``
    chosen by the subclass so the worst case stays inside the 16-bit
    ``fit_value`` port.  An optional *constraint* slot gates the blend:
    candidates whose constraint objective falls below ``constraint_floor``
    keep only a quartered fitness (a soft penalty, so the search can still
    climb toward feasibility).
    """

    n_vars = 1

    def __init__(
        self,
        components: list[tuple[FitnessFunction, int]],
        shift: int,
        constraint: FitnessFunction | None = None,
        constraint_floor: int = 0,
    ):
        if not 1 <= len(components) <= MAX_SLOTS:
            raise ValueError(
                f"composite needs 1..{MAX_SLOTS} mux slots, "
                f"got {len(components)}"
            )
        if any(w < 1 for _, w in components):
            raise ValueError("component weights must be >= 1")
        self.components = list(components)
        self.shift = shift
        self.constraint = constraint
        self.constraint_floor = constraint_floor

    def evaluate_array(self, chromosomes: np.ndarray) -> np.ndarray:
        c = np.asarray(chromosomes)
        blended = np.zeros(c.shape, dtype=np.int64)
        for fn, weight in self.components:
            blended += weight * fn.evaluate_array(c).astype(np.int64)
        blended >>= self.shift
        if self.constraint is not None:
            feasible = (
                self.constraint.evaluate_array(c).astype(np.int64)
                >= self.constraint_floor
            )
            blended = np.where(feasible, blended, blended >> 2)
        return blended


class MOSeqBlend(FEMMuxComposite):
    """Zoo objective ``mo_seq_blend``: one machine judged on both targets.

    Slot 0 (weight 3) is the "101" detector, slot 1 (weight 1) the mod-4
    counter; the blend is shifted right by 2 so a perfect dual score is
    65,504.  A constraint slot (the counter again) demands at least half
    the counter score — machines that ignore the counter entirely are
    penalized 4x.  The two targets conflict (no 16-bit table satisfies
    both perfectly), so this is a genuine multi-objective trade-off.
    """

    name = "mo_seq_blend"

    def __init__(self) -> None:
        detector, counter = SeqDetect101(), SeqCounter4()
        super().__init__(
            components=[(detector, 3), (counter, 1)],
            shift=2,
            constraint=counter,
            constraint_floor=counter.perfect_score // 2,
        )
