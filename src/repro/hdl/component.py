"""Base class for synchronous hardware components.

Every module of the reproduced system (GA core, GA memory, RNG module,
initialization module, application/FEM module) derives from
:class:`Component`.  A component owns internal state attributes and drives
output :class:`~repro.hdl.signal.Signal` objects.  The simulator calls
:meth:`Component.clock` on every due rising edge; the component reads input
signal values (all pre-edge) and calls :meth:`drive` / :meth:`set_state` to
queue its reaction, which the simulator later commits.  This models a Moore
machine: outputs change one cycle after the inputs that caused them, exactly
like the registered outputs of the synthesized IP core.
"""

from __future__ import annotations

from typing import Any

from repro.hdl.signal import Signal


class Component:
    """A clocked hardware component with two-phase update semantics."""

    def __init__(self, name: str):
        self.name = name
        self._drives: list[tuple[Signal, int]] = []
        self._next_state: dict[str, Any] = {}
        self.cycles: int = 0

    # ------------------------------------------------------------------
    # Phase 1 (observe): subclasses implement clock();
    # helpers below queue effects without mutating visible state.
    # ------------------------------------------------------------------
    def clock(self) -> None:
        """React to a rising clock edge.  Subclasses read input signals and
        queue effects with :meth:`drive` and :meth:`set_state`."""
        raise NotImplementedError

    def drive(self, signal: Signal, value: int) -> None:
        """Queue ``signal <= value`` for commit at the end of this cycle."""
        signal.queue(value, driver=self.name)
        self._drives.append((signal, value))

    def set_state(self, **updates: Any) -> None:
        """Queue attribute updates (the component's internal registers)."""
        self._next_state.update(updates)

    # ------------------------------------------------------------------
    # Phase 2 (commit): applied by the simulator after all due components
    # have clocked.
    # ------------------------------------------------------------------
    def commit(self) -> None:
        """Apply queued signal drives and internal state updates."""
        for signal, _ in self._drives:
            signal.apply()
        self._drives.clear()
        if self._next_state:
            for key, val in self._next_state.items():
                setattr(self, key, val)
            self._next_state.clear()
        self.cycles += 1

    def reset(self) -> None:
        """Return to the power-on state.  Subclasses must restore their
        internal registers and call ``super().reset()``."""
        self._drives.clear()
        self._next_state.clear()
        self.cycles = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
