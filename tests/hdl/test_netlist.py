"""Unit tests for gate primitives and netlist construction/simulation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hdl.gates import DFF, Gate, GateType
from repro.hdl.netlist import Netlist, NetlistError


class TestGate:
    @pytest.mark.parametrize(
        "gtype,a,b,expected",
        [
            (GateType.AND, 1, 1, 1),
            (GateType.AND, 1, 0, 0),
            (GateType.OR, 0, 0, 0),
            (GateType.OR, 1, 0, 1),
            (GateType.NAND, 1, 1, 0),
            (GateType.NAND, 0, 1, 1),
            (GateType.NOR, 0, 0, 1),
            (GateType.NOR, 1, 0, 0),
            (GateType.XOR, 1, 1, 0),
            (GateType.XOR, 1, 0, 1),
            (GateType.XNOR, 1, 1, 1),
            (GateType.XNOR, 1, 0, 0),
        ],
    )
    def test_two_input_truth_tables(self, gtype, a, b, expected):
        gate = Gate(gtype, (0, 1), 2)
        assert gate.evaluate([a, b, 0]) == expected

    def test_not_buf(self):
        assert Gate(GateType.NOT, (0,), 1).evaluate([1, 0]) == 0
        assert Gate(GateType.BUF, (0,), 1).evaluate([1, 0]) == 1

    def test_fanin_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateType.AND, (0,), 1)
        with pytest.raises(ValueError):
            Gate(GateType.NOT, (0, 1), 2)


class TestNetlistStructure:
    def test_duplicate_port_rejected(self):
        nl = Netlist("t")
        nl.add_input("a", 4)
        with pytest.raises(NetlistError):
            nl.add_input("a", 4)

    def test_gate_with_unknown_net_rejected(self):
        nl = Netlist("t")
        with pytest.raises(NetlistError):
            nl.add_gate(GateType.AND, 0, 99)

    def test_combinational_cycle_detected(self):
        nl = Netlist("t")
        (a,) = nl.add_input("a", 1)
        # Build a cycle manually: g1 = AND(a, g2), g2 = BUF(g1)
        out1 = nl.net()
        out2 = nl.net()
        nl.gates.append(Gate(GateType.AND, (a, out2), out1))
        nl.gates.append(Gate(GateType.BUF, (out1,), out2))
        with pytest.raises(NetlistError):
            nl.topo_order()

    def test_stats_counts(self):
        nl = Netlist("t")
        a = nl.add_input("a", 2)
        y = nl.add_gate(GateType.AND, a[0], a[1])
        nl.add_dff(y)
        stats = nl.stats()
        assert stats["and"] == 1
        assert stats["dff"] == 1
        assert stats["gates"] == 1


class TestNetlistSimulation:
    def test_combinational_evaluate(self):
        nl = Netlist("halfadder")
        a = nl.add_input("a", 1)
        b = nl.add_input("b", 1)
        nl.add_output("s", [nl.add_gate(GateType.XOR, a[0], b[0])])
        nl.add_output("c", [nl.add_gate(GateType.AND, a[0], b[0])])
        assert nl.evaluate({"a": 1, "b": 1}) == {"s": 0, "c": 1}
        assert nl.evaluate({"a": 1, "b": 0}) == {"s": 1, "c": 0}

    def test_missing_inputs_default_zero(self):
        nl = Netlist("t")
        a = nl.add_input("a", 1)
        nl.add_output("y", [nl.add_gate(GateType.NOT, a[0])])
        assert nl.evaluate({}) == {"y": 1}

    def test_clocked_toggle_flop(self):
        nl = Netlist("toggle")
        q = nl.net("q")
        nq = nl.add_gate(GateType.NOT, q)
        nl.dffs.append(DFF(d=nq, q=q))
        nl.add_output("q", [q])
        results = nl.simulate([{}] * 4)
        assert [r["q"] for r in results] == [0, 1, 0, 1]

    def test_flop_init_value(self):
        nl = Netlist("t")
        q = nl.net("q")
        nl.dffs.append(DFF(d=q, q=q, init=1))
        nl.add_output("q", [q])
        assert nl.simulate([{}])[0]["q"] == 1

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_wide_buses_pack_unpack(self, a, b):
        nl = Netlist("t")
        an = nl.add_input("a", 8)
        bn = nl.add_input("b", 8)
        nl.add_output("y", [nl.add_gate(GateType.XOR, x, y) for x, y in zip(an, bn)])
        assert nl.evaluate({"a": a, "b": b})["y"] == a ^ b
