"""The workload zoo: named, seed-pinned scenarios beyond the paper's grid.

Three workload families extend the paper's combinational Tables V/VII-IX
evaluation, each expressed as ordinary :class:`~repro.service.jobs.GARequest`
scenarios so the whole zoo runs through the serving layer and the
content-addressed store:

* **sequential logic** (Soleimani et al., PAPERS.md): evolve the complete
  next-state table of a 4-state Moore machine against counter / sequence-
  detector targets — on the behavioral engine, the turbo engine, an
  archipelago, and the cycle-accurate Fig. 4 testbench
  (``substrate="cycle"``);
* **scaled EHW** (Sec. III-D / Fig. 6): 6-input multiplexer and parity
  targets on an 8-cell virtual fabric whose 32-bit configuration runs on
  the dual-core composition (``substrate="dual32"``);
* **constrained multi-objective**: two conflicting sequential targets
  blended through the 8-way FEM mux with a feasibility constraint
  (``mo_seq_blend``).

Every scenario is pinned to a seed from the paper's FPGA experiment seed
list, and every scenario has a committed golden summary under
``goldens/`` that ``tests/experiments/test_goldens.py`` replays
bit-identically — the zoo doubles as a differential conformance suite
across engines.  All zoo fitness functions are integer-exact (no libm),
so the goldens are portable across platforms and numpy versions.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.params import GAParameters
from repro.experiments.harness import Experiment, Scenario
from repro.service.jobs import GARequest

#: Where the committed golden summaries live (one JSON per scenario).
GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"


def _params(gens: int, pop: int, seed: int) -> GAParameters:
    # crossover 10/16, mutation 2/16: the paper's Table VII operating point
    return GAParameters(
        n_generations=gens,
        population_size=pop,
        crossover_threshold=10,
        mutation_threshold=2,
        rng_seed=seed,
    )


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="seq-counter",
            request=GARequest(
                params=_params(24, 32, 0x2961), fitness_name="seq_counter4"
            ),
            description="mod-4 enable counter, exact engine",
        ),
        Scenario(
            name="seq-detector",
            request=GARequest(
                params=_params(24, 32, 0x061F), fitness_name="seq_detect101"
            ),
            description='overlapping "101" detector, exact engine',
        ),
        Scenario(
            name="seq-counter-turbo",
            request=GARequest(
                params=_params(24, 32, 0x2961),
                fitness_name="seq_counter4",
                engine_mode="turbo",
            ),
            description="mod-4 counter on the vectorized turbo engine",
        ),
        Scenario(
            name="seq-archipelago",
            request=GARequest(
                params=_params(16, 16, 0xB342),
                fitness_name="seq_detect101",
                n_islands=4,
                migration_interval=4,
                topology="ring",
            ),
            description="detector on a 4-island ring archipelago",
        ),
        Scenario(
            name="seq-cycle",
            request=GARequest(
                params=_params(8, 16, 0x2961),
                fitness_name="seq_counter4",
                substrate="cycle",
            ),
            description="mod-4 counter on the cycle-accurate Fig. 4 testbench",
        ),
        Scenario(
            name="mux6-dual32",
            request=GARequest(
                params=_params(12, 16, 0xAAAA),
                fitness_name="fabric32_mux6",
                substrate="dual32",
            ),
            description="6-input multiplexer on the dual-core 32-bit fabric",
        ),
        Scenario(
            name="parity6-dual32",
            request=GARequest(
                params=_params(12, 16, 0xA0A0),
                fitness_name="fabric32_parity6",
                substrate="dual32",
            ),
            description="6-input odd parity on the dual-core 32-bit fabric",
        ),
        Scenario(
            name="mo-constrained",
            request=GARequest(
                params=_params(24, 32, 0xFFFF), fitness_name="mo_seq_blend"
            ),
            description="constrained multi-objective blend via the FEM mux",
        ),
    )
}


#: The zoo's experiments: each a themed slice of the scenarios above.
ZOO: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment(
            name="sequential",
            scenarios=(
                SCENARIOS["seq-counter"],
                SCENARIOS["seq-detector"],
                SCENARIOS["mo-constrained"],
            ),
            nb_repeats=3,
            description="sequential-logic evolution + multi-objective blend",
        ),
        Experiment(
            name="engine-modes",
            scenarios=(
                SCENARIOS["seq-counter"],
                SCENARIOS["seq-counter-turbo"],
                SCENARIOS["seq-archipelago"],
            ),
            nb_repeats=2,
            description="one workload across exact / turbo / island engines",
        ),
        Experiment(
            name="substrates",
            scenarios=(
                SCENARIOS["seq-cycle"],
                SCENARIOS["mux6-dual32"],
                SCENARIOS["parity6-dual32"],
            ),
            nb_repeats=2,
            description="cycle-accurate testbench + 32-bit scaled core",
        ),
        Experiment(
            name="zoo-smoke",
            scenarios=tuple(SCENARIOS.values()),
            nb_repeats=1,
            description="every zoo scenario once (the CI smoke sweep)",
        ),
    )
}


def experiment(name: str, nb_repeats: int | None = None) -> Experiment:
    """A zoo experiment by name, optionally overriding the repeat count."""
    try:
        exp = ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown zoo experiment {name!r}; available: {sorted(ZOO)}"
        ) from None
    if nb_repeats is not None and nb_repeats != exp.nb_repeats:
        exp = Experiment(
            name=exp.name,
            scenarios=exp.scenarios,
            nb_repeats=nb_repeats,
            description=exp.description,
        )
    return exp


def golden_path(scenario_name: str) -> Path:
    return GOLDENS_DIR / f"{scenario_name}.json"


#: Golden file format version.
GOLDEN_SCHEMA_VERSION = 1


def make_golden(scenario: Scenario) -> dict:
    """Cold-compute one scenario's repeat-0 run into a golden summary.

    The golden pins the full deterministic result (every canonical field,
    via the same rendering ``repro replay`` compares), its sha256 digest,
    and the content-addressed store key — so the committed file detects
    any drift in champion, trace, evaluations count, or key schema.
    """
    import hashlib

    from repro.store.keys import (
        canonical_json,
        canonical_result_dict,
        job_key,
    )
    from repro.store.replay import execute_request

    result = execute_request(scenario.request)
    digest = hashlib.sha256(
        canonical_json(canonical_result_dict(result)).encode()
    ).hexdigest()
    return {
        "schema": GOLDEN_SCHEMA_VERSION,
        "scenario": scenario.name,
        "description": scenario.description,
        "request": scenario.request.to_dict(),
        "store_key": job_key(scenario.request),
        "result": result.to_dict(),
        "result_digest": digest,
    }


def write_goldens(out_dir: Path | None = None, progress=None) -> list[Path]:
    """(Re)generate every zoo scenario's committed golden file."""
    import json

    out = Path(out_dir) if out_dir is not None else GOLDENS_DIR
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for scenario in SCENARIOS.values():
        if progress is not None:
            progress(f"golden: {scenario.name}")
        golden = make_golden(scenario)
        path = out / f"{scenario.name}.json"
        path.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
        paths.append(path)
    return paths


if __name__ == "__main__":  # pragma: no cover - maintenance entry point
    import sys

    for p in write_goldens(progress=lambda m: print(m, file=sys.stderr)):
        print(p)
